//! Faerie (Deng, Li, Feng, Duan, Gong — VLDB Journal 24(1), 2015) and the
//! paper's FaerieR extension.
//!
//! Faerie is the state-of-the-art *syntactic* AEE framework the paper
//! benchmarks against (Figure 9). Pipeline:
//!
//! 1. **Inverted index** over entity tokens: `L[t]` = sorted entry ids.
//! 2. **Single-heap grouping**: the posting lists of the document's tokens
//!    are merged through one min-heap, producing each entry's sorted list of
//!    occurrence positions in the document (`P_e`).
//! 3. **Lazy-count pruning**: an entry with `|P_e| < ⌈τ·|e|⌉` can never
//!    reach Jaccard τ and is dropped wholesale.
//! 4. **Windowed counting**: for every admissible substring length `l`, a
//!    two-pointer sweep over `P_e` finds start positions whose window holds
//!    at least `⌈τ·|e|⌉` occurrences (same asymptotics as the original's
//!    binary span/shift enumeration — see DESIGN.md).
//! 5. **Verification** of the exact Jaccard for every candidate.
//!
//! `FaerieR` = [`Faerie::build_derived`]: the same machinery over the
//! *derived* dictionary, with results mapped back to origin entities and
//! deduplicated by maximum score — exactly how the paper extends Faerie to
//! the AEES problem (§6.3).

use aeetes_rules::DerivedDictionary;
use aeetes_text::{Dictionary, Document, EntityId, Span, TokenId};
use std::collections::{BinaryHeap, HashMap};

/// One result pair: origin entity, matched span and its (Jaccard or JaccAR)
/// score.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FaerieMatch {
    /// Origin entity.
    pub entity: EntityId,
    /// Matched token span in the document.
    pub span: Span,
    /// Best Jaccard over the entry (or entries, for FaerieR) verified.
    pub score: f64,
}

/// Counters for Faerie extraction.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaerieStats {
    /// Heap pops = posting entries touched while grouping.
    pub accessed_entries: u64,
    /// Entries surviving lazy-count pruning.
    pub surviving_entries: u64,
    /// Candidate `(entry, span)` pairs verified.
    pub verifications: u64,
    /// Result pairs.
    pub matches: u64,
}

/// The Faerie engine over a set of "entries" (origin entities for plain
/// AEE, derived entities for FaerieR).
#[derive(Debug, Clone)]
pub struct Faerie {
    /// Sorted distinct token set per entry.
    sets: Vec<Vec<TokenId>>,
    /// Entry id → origin entity (identity for plain Faerie).
    origin: Vec<EntityId>,
    /// Token → sorted entry ids containing it.
    inverted: HashMap<TokenId, Vec<u32>>,
    /// Largest distinct-set size over entries (global window bound).
    max_len: usize,
}

impl Faerie {
    /// Plain Faerie over the origin dictionary (syntactic AEE, no synonyms).
    pub fn build_plain(dict: &Dictionary) -> Self {
        Self::build(dict.iter().map(|(id, e)| (id, e.tokens)))
    }

    /// FaerieR: Faerie over the derived dictionary, mapping every derived
    /// entry back to its origin entity.
    pub fn build_derived(dd: &DerivedDictionary) -> Self {
        Self::build(dd.iter().map(|(_, d)| (d.origin, d.tokens)))
    }

    fn build<'a, I>(entries: I) -> Self
    where
        I: Iterator<Item = (EntityId, &'a [TokenId])>,
    {
        let mut sets = Vec::new();
        let mut origin = Vec::new();
        let mut inverted: HashMap<TokenId, Vec<u32>> = HashMap::new();
        for (orig, tokens) in entries {
            if tokens.is_empty() {
                continue;
            }
            let mut set = tokens.to_vec();
            set.sort_unstable();
            set.dedup();
            let id = sets.len() as u32;
            for &t in &set {
                inverted.entry(t).or_default().push(id);
            }
            sets.push(set);
            origin.push(orig);
        }
        let max_len = sets.iter().map(Vec::len).max().unwrap_or(0);
        Self { sets, origin, inverted, max_len }
    }

    /// Number of entries indexed.
    pub fn len(&self) -> usize {
        self.sets.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.sets.is_empty()
    }

    /// Approximate heap size in bytes (for the §6.3 index-size comparison).
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut n = 0;
        for s in &self.sets {
            n += s.capacity() * size_of::<TokenId>();
        }
        for v in self.inverted.values() {
            n += v.capacity() * size_of::<u32>() + size_of::<TokenId>();
        }
        n
    }

    /// Extracts all pairs with `Jaccard(entry, substring) ≥ tau`, reported
    /// per origin entity (max score per `(origin, span)`).
    pub fn extract(&self, doc: &Document, tau: f64) -> (Vec<FaerieMatch>, FaerieStats) {
        assert!(tau > 0.0 && tau <= 1.0, "similarity threshold must be in (0, 1], got {tau}");
        let mut stats = FaerieStats::default();
        let tokens = doc.tokens();
        let mut best: HashMap<(u32, u32, u32), f64> = HashMap::new();

        // ---- Single-heap grouping: entry id → its positions in the doc ----
        // Heap holds (entry, position, cursor-into-position's-list).
        let mut heap: BinaryHeap<std::cmp::Reverse<(u32, u32, u32)>> = BinaryHeap::new();
        let lists: Vec<Option<&Vec<u32>>> = tokens.iter().map(|t| self.inverted.get(t)).collect();
        for (pos, list) in lists.iter().enumerate() {
            if let Some(list) = list {
                heap.push(std::cmp::Reverse((list[0], pos as u32, 0)));
            }
        }
        let mut cur_entry: Option<u32> = None;
        let mut positions: Vec<u32> = Vec::new();
        let mut s_keys: Vec<TokenId> = Vec::new();
        while let Some(std::cmp::Reverse((entry, pos, cursor))) = heap.pop() {
            stats.accessed_entries += 1;
            if cur_entry != Some(entry) {
                if let Some(e) = cur_entry {
                    self.process_entry(e, &positions, tokens, tau, &mut best, &mut stats, &mut s_keys);
                }
                cur_entry = Some(entry);
                positions.clear();
            }
            positions.push(pos);
            // Advance this document position's cursor.
            let list = lists[pos as usize].expect("list existed when pushed");
            let next = cursor as usize + 1;
            if next < list.len() {
                heap.push(std::cmp::Reverse((list[next], pos, next as u32)));
            }
        }
        if let Some(e) = cur_entry {
            self.process_entry(e, &positions, tokens, tau, &mut best, &mut stats, &mut s_keys);
        }

        let mut out: Vec<FaerieMatch> = best
            .into_iter()
            .map(|((e, p, l), score)| FaerieMatch { entity: EntityId(e), span: Span { start: p, len: l }, score })
            .collect();
        out.sort_unstable_by_key(|a| (a.span.start, a.span.len, a.entity.0));
        stats.matches = out.len() as u64;
        (out, stats)
    }

    /// Lazy-count check, windowed counting and verification for one entry.
    #[allow(clippy::too_many_arguments)]
    fn process_entry(
        &self,
        entry: u32,
        positions: &[u32],
        tokens: &[TokenId],
        tau: f64,
        best: &mut HashMap<(u32, u32, u32), f64>,
        stats: &mut FaerieStats,
        s_keys: &mut Vec<TokenId>,
    ) {
        let set = &self.sets[entry as usize];
        let le = set.len();
        // Minimum overlap for any similar substring: o ≥ ⌈τ·|e|⌉ (J ≤ o/|e|).
        let required = (tau * le as f64 - 1e-9).ceil().max(1.0) as usize;
        if positions.len() < required {
            return; // lazy-count pruning
        }
        stats.surviving_entries += 1;
        let n = tokens.len() as u32;
        let l_lo = ((le as f64 * tau + 1e-9).floor() as u32).max(1);
        // Token-length upper bound: under *set* semantics a window may carry
        // duplicate tokens, so its token length is only bounded by the
        // problem's global window size E⊤ = ⌈|e|⊤/τ⌉ (the distinct-size
        // bound ⌈le/τ⌉ is enforced during verification instead).
        let l_hi = ((self.max_len as f64 / tau - 1e-9).ceil() as u32).min(n);
        let origin = self.origin[entry as usize];
        for l in l_lo..=l_hi {
            // For every j, treat positions[j] as the last occurrence inside
            // the window. A window of length l starting at p holds at least
            // `required` occurrences iff it also contains the anchor
            // positions[j+1-required]: p ≤ anchor and p + l > positions[j].
            let mut last_emitted_start: Option<u32> = None;
            for j in required - 1..positions.len() {
                let anchor = positions[j + 1 - required];
                if positions[j] - anchor + 1 > l {
                    continue; // the required occurrences cannot fit in l tokens
                }
                let p_lo = positions[j].saturating_sub(l - 1);
                let p_hi = anchor.min(n.saturating_sub(l));
                let p_start = match last_emitted_start {
                    Some(s) if s >= p_lo => s + 1, // skip starts already emitted
                    _ => p_lo,
                };
                for p in p_start..=p_hi {
                    last_emitted_start = Some(p);
                    let span = Span { start: p, len: l };
                    stats.verifications += 1;
                    s_keys.clear();
                    s_keys.extend_from_slice(&tokens[p as usize..(p + l) as usize]);
                    s_keys.sort_unstable();
                    s_keys.dedup();
                    let score = aeetes_sim::jaccard(set, s_keys);
                    if score >= tau {
                        let key = (origin.0, span.start, span.len);
                        let slot = best.entry(key).or_insert(0.0);
                        if score > *slot {
                            *slot = score;
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_core::{Aeetes, AeetesConfig};
    use aeetes_rules::{DeriveConfig, RuleSet};
    use aeetes_text::{Interner, Tokenizer};

    fn ctx() -> (Interner, Tokenizer) {
        (Interner::new(), Tokenizer::default())
    }

    #[test]
    fn plain_faerie_finds_syntactic_matches_only() {
        let (mut int, tok) = ctx();
        let dict = Dictionary::from_strings(["purdue university usa", "uq au"], &tok, &mut int);
        let f = Faerie::build_plain(&dict);
        let doc = Document::parse("at purdue university usa with uq australia", &tok, &mut int);
        let (got, _) = f.extract(&doc, 0.9);
        assert_eq!(got.len(), 1, "only the exact syntactic mention: {got:?}");
        assert_eq!(got[0].span, Span::new(1, 3));
        assert_eq!(got[0].score, 1.0);
    }

    #[test]
    fn partial_match_scores_correctly() {
        let (mut int, tok) = ctx();
        let dict = Dictionary::from_strings(["purdue university usa"], &tok, &mut int);
        let f = Faerie::build_plain(&dict);
        let doc = Document::parse("purdue university", &tok, &mut int);
        let (got, _) = f.extract(&doc, 0.6);
        assert!(got.iter().any(|m| m.span == Span::new(0, 2) && (m.score - 2.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn lazy_count_prunes_sparse_entries() {
        let (mut int, tok) = ctx();
        let dict = Dictionary::from_strings(["a b c d e"], &tok, &mut int);
        let f = Faerie::build_plain(&dict);
        // Only one of the five entity tokens occurs → pruned before counting.
        let doc = Document::parse("a x y z w", &tok, &mut int);
        let (got, stats) = f.extract(&doc, 0.8);
        assert!(got.is_empty());
        assert_eq!(stats.surviving_entries, 0);
        assert!(stats.accessed_entries > 0);
    }

    #[test]
    fn faerier_agrees_with_aeetes_end_to_end() {
        let (mut int, tok) = ctx();
        let mut dict = Dictionary::new();
        dict.push("University of Wisconsin Madison", &tok, &mut int);
        dict.push("Purdue University USA", &tok, &mut int);
        dict.push("UQ AU", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap();
        rules.push_str("USA", "United States", &tok, &mut int).unwrap();
        rules.push_str("AU", "Australia", &tok, &mut int).unwrap();
        rules.push_str("UW", "University of Wisconsin", &tok, &mut int).unwrap();
        let dd = DerivedDictionary::build(&dict, &rules, &DeriveConfig::default());
        let faerier = Faerie::build_derived(&dd);
        let engine = Aeetes::build(dict, &rules, &int, AeetesConfig::default());
        let doc = Document::parse(
            "talks by UW Madison faculty then Purdue University United States \
             then Purdue University USA and finally University of Queensland Australia",
            &tok,
            &mut int,
        );
        for tau in [0.7, 0.8, 0.9] {
            let (fr, _) = faerier.extract(&doc, tau);
            let am = engine.extract(&doc, tau);
            let f_pairs: Vec<(u32, u32, u32)> = fr.iter().map(|m| (m.entity.0, m.span.start, m.span.len)).collect();
            let a_pairs: Vec<(u32, u32, u32)> = am.iter().map(|m| (m.entity.0, m.span.start, m.span.len)).collect();
            assert_eq!(f_pairs, a_pairs, "tau={tau}");
            for (fm, amm) in fr.iter().zip(&am) {
                assert!((fm.score - amm.score).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn empty_inputs() {
        let (mut int, tok) = ctx();
        let dict = Dictionary::from_strings([], &tok, &mut int);
        let f = Faerie::build_plain(&dict);
        assert!(f.is_empty());
        let doc = Document::parse("whatever text", &tok, &mut int);
        let (got, _) = f.extract(&doc, 0.8);
        assert!(got.is_empty());
        let dict2 = Dictionary::from_strings(["a b"], &tok, &mut int);
        let f2 = Faerie::build_plain(&dict2);
        let empty_doc = Document::parse("", &tok, &mut int);
        assert!(f2.extract(&empty_doc, 0.8).0.is_empty());
    }

    #[test]
    fn duplicate_document_tokens_handled() {
        let (mut int, tok) = ctx();
        let dict = Dictionary::from_strings(["ny marathon"], &tok, &mut int);
        let f = Faerie::build_plain(&dict);
        let doc = Document::parse("ny ny marathon marathon", &tok, &mut int);
        let (got, _) = f.extract(&doc, 0.9);
        assert!(got.iter().any(|m| m.span == Span::new(1, 2) && m.score == 1.0));
    }

    #[test]
    fn size_bytes_positive() {
        let (mut int, tok) = ctx();
        let dict = Dictionary::from_strings(["a b c"], &tok, &mut int);
        assert!(Faerie::build_plain(&dict).size_bytes() > 0);
    }
}
