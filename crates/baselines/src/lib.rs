//! Baselines the paper compares against (§6).
//!
//! * [`ExactMatcher`] — exact dictionary matching (the "Exact Match"
//!   approach of Example 1.1): finds only verbatim token-sequence mentions.
//! * [`Faerie`] — our implementation of the state-of-the-art AEE framework
//!   of Deng et al. (VLDB J. 24(1), 2015): single-heap grouping of inverted
//!   lists, lazy-count pruning and windowed occurrence counting.
//! * **FaerieR** — the paper's extension of Faerie to the AEES problem:
//!   run Faerie over the *derived* dictionary and map every derived entity
//!   back to its origin ([`Faerie::build_derived`]).

mod exact;
mod faerie;

pub use exact::ExactMatcher;
pub use faerie::{Faerie, FaerieMatch, FaerieStats};
