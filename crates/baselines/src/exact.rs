//! Exact dictionary matching (Example 1.1's "Exact Match" baseline).

use aeetes_text::{Dictionary, Document, EntityId, Span, TokenId};
use std::collections::HashMap;

/// Finds verbatim token-sequence mentions of dictionary entities.
///
/// Entities are bucketed by first token; at each document position the
/// matcher compares every same-first-token entity in full. With natural-
/// language dictionaries the buckets are tiny, giving near-linear scans.
#[derive(Debug, Clone)]
pub struct ExactMatcher {
    /// first token → entities starting with it
    heads: HashMap<TokenId, Vec<EntityId>>,
    entities: Vec<Vec<TokenId>>,
}

impl ExactMatcher {
    /// Builds the matcher from a dictionary.
    pub fn build(dict: &Dictionary) -> Self {
        let mut heads: HashMap<TokenId, Vec<EntityId>> = HashMap::new();
        let mut entities = Vec::with_capacity(dict.len());
        for (id, e) in dict.iter() {
            if let Some(&first) = e.tokens.first() {
                heads.entry(first).or_default().push(id);
            }
            entities.push(e.tokens.to_vec());
        }
        Self { heads, entities }
    }

    /// All `(entity, span)` pairs where the span's tokens equal the entity's.
    pub fn extract(&self, doc: &Document) -> Vec<(EntityId, Span)> {
        let tokens = doc.tokens();
        let mut out = Vec::new();
        for (p, &t) in tokens.iter().enumerate() {
            let Some(bucket) = self.heads.get(&t) else { continue };
            for &e in bucket {
                let pat = &self.entities[e.idx()];
                if pat.len() <= tokens.len() - p && tokens[p..p + pat.len()] == *pat {
                    out.push((e, Span::new(p, pat.len())));
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_text::{Interner, Tokenizer};

    fn setup(entries: &[&str], doc: &str) -> (ExactMatcher, Document, Dictionary) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let m = ExactMatcher::build(&dict);
        let d = Document::parse(doc, &tok, &mut int);
        (m, d, dict)
    }

    #[test]
    fn finds_exact_mentions_only() {
        let (m, d, _) = setup(&["purdue university usa", "uq au"], "visited purdue university usa not purdue university");
        let got = m.extract(&d);
        assert_eq!(got.len(), 1);
        assert_eq!(got[0].1, Span::new(1, 3));
    }

    #[test]
    fn overlapping_and_nested_mentions() {
        let (m, d, _) = setup(&["a b", "b a", "a b a"], "a b a b a");
        let got = m.extract(&d);
        // "a b" at 0 and 2; "b a" at 1 and 3; "a b a" at 0 and 2.
        assert_eq!(got.len(), 6);
    }

    #[test]
    fn empty_document_or_dictionary() {
        let (m, d, _) = setup(&["x"], "");
        assert!(m.extract(&d).is_empty());
        let (m2, d2, _) = setup(&[], "x y z");
        assert!(m2.extract(&d2).is_empty());
    }

    #[test]
    fn single_token_entities() {
        let (m, d, _) = setup(&["mit"], "mit and mit again");
        assert_eq!(m.extract(&d).len(), 2);
    }
}
