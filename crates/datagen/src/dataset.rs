//! Generated dataset container, gold mentions and Table 1 statistics.

use aeetes_rules::{find_applications, select_non_conflict, RuleSet};
use aeetes_text::{Dictionary, Document, EntityId, Interner, Span, Tokenizer};

/// How a gold mention was planted in the document.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MentionForm {
    /// Verbatim copy of the entity.
    Exact,
    /// Entity rewritten by one or more of its synonym rules — only
    /// synonym-aware extraction (JaccAR) can score these 1.0.
    Synonym,
    /// Entity with one extra token spliced into the middle
    /// (`Jaccard = n/(n+1)`): syntactically approximate.
    Noisy,
    /// Entity with a single-character typo in one token: only
    /// character-tolerant metrics (Fuzzy Jaccard) recover full similarity.
    Typo,
}

/// One hand-planted ground-truth mention.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GoldMention {
    /// Document index into [`Dataset::documents`].
    pub doc: usize,
    /// Token span of the mention in that document.
    pub span: Span,
    /// The entity the mention refers to.
    pub entity: EntityId,
    /// How the mention was derived from the entity.
    pub form: MentionForm,
}

/// A complete synthetic corpus: dictionary, rules, documents and gold.
#[derive(Debug)]
pub struct Dataset {
    /// Profile name ("pubmed" / "dbworld" / "usjob").
    pub name: String,
    /// Interner shared by dictionary, rules and documents.
    pub interner: Interner,
    /// The tokenizer the corpus was built with.
    pub tokenizer: Tokenizer,
    /// The reference entity table `E0`.
    pub dictionary: Dictionary,
    /// The synonym rule table `R`.
    pub rules: RuleSet,
    /// The document collection.
    pub documents: Vec<Document>,
    /// Planted ground-truth mentions.
    pub gold: Vec<GoldMention>,
}

/// The measured Table 1 row of a generated dataset.
#[derive(Debug, Clone, PartialEq)]
pub struct DatasetStatistics {
    /// Dataset name.
    pub name: String,
    /// Number of documents.
    pub docs: usize,
    /// Number of entities.
    pub entities: usize,
    /// Number of synonym rules.
    pub synonyms: usize,
    /// Average tokens per document.
    pub avg_doc_len: f64,
    /// Average tokens per entity.
    pub avg_entity_len: f64,
    /// Average applicable rules per entity (`avg |A(e)|`, all side
    /// occurrences, before conflict resolution — the Table 1 figure).
    pub avg_applicable: f64,
    /// Average rules surviving non-conflict selection per entity.
    pub avg_selected: f64,
}

impl Dataset {
    /// Computes the Table 1 statistics row.
    ///
    /// `sample` caps how many entities are inspected for the applicability
    /// averages (applicability scanning is `O(entities · rules-per-token)`);
    /// pass `usize::MAX` for an exact figure.
    pub fn statistics(&self, sample: usize) -> DatasetStatistics {
        let doc_tokens: usize = self.documents.iter().map(Document::len).sum();
        let ent_tokens: usize = self.dictionary.iter().map(|(_, e)| e.len()).sum();
        let take = sample.min(self.dictionary.len());
        let mut applicable = 0usize;
        let mut selected = 0usize;
        for (_, e) in self.dictionary.iter().take(take) {
            applicable += find_applications(e.tokens, &self.rules).len();
            selected += select_non_conflict(e.tokens, &self.rules).iter().map(Vec::len).sum::<usize>();
        }
        let denom = take.max(1) as f64;
        DatasetStatistics {
            name: self.name.clone(),
            docs: self.documents.len(),
            entities: self.dictionary.len(),
            synonyms: self.rules.len(),
            avg_doc_len: doc_tokens as f64 / self.documents.len().max(1) as f64,
            avg_entity_len: ent_tokens as f64 / self.dictionary.len().max(1) as f64,
            avg_applicable: applicable as f64 / denom,
            avg_selected: selected as f64 / denom,
        }
    }

    /// Gold mentions of one document.
    pub fn gold_for(&self, doc: usize) -> impl Iterator<Item = &GoldMention> {
        self.gold.iter().filter(move |g| g.doc == doc)
    }
}
