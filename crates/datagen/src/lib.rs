//! Synthetic dataset generation for the Aeetes experiments.
//!
//! The paper evaluates on three proprietary corpora (PubMed, DBWorld,
//! USJob). We cannot redistribute them, so this crate generates synthetic
//! datasets calibrated to the *published statistics* of Table 1 — entity
//! and document length distributions, dictionary/rule set sizes, Zipfian
//! token frequencies and per-entity rule applicability — and plants ground
//! truth mentions the way the paper's authors hand-marked theirs
//! (see DESIGN.md, "Substitutions").
//!
//! Every generator is fully deterministic given a seed.
//!
//! ```
//! use aeetes_datagen::{DatasetProfile, generate};
//!
//! let data = generate(&DatasetProfile::dbworld_like().scaled(0.05), 42);
//! assert!(!data.documents.is_empty());
//! assert!(!data.gold.is_empty());
//! ```

mod dataset;
mod export;
mod generator;
mod profile;
mod vocab;

pub use dataset::{Dataset, DatasetStatistics, GoldMention, MentionForm};
pub use export::write_files;
pub use generator::generate;
pub use profile::DatasetProfile;
pub use vocab::{WordFactory, ZipfSampler};
