//! File export: write a generated dataset in the CLI's text formats.

use crate::dataset::Dataset;
use std::fs;
use std::io::Write;
use std::path::Path;

/// Writes `dataset` into `dir` as the four files the `aeetes` CLI consumes:
///
/// * `dict.txt` — one entity per line;
/// * `rules.tsv` — `lhs <TAB> rhs <TAB> weight`;
/// * `docs.txt` — one document per line (tokens space-joined);
/// * `gold.tsv` — `doc <TAB> start <TAB> len <TAB> entity <TAB> form`
///   (ground truth for scoring extraction output).
///
/// Returns the number of files written.
pub fn write_files(dataset: &Dataset, dir: &Path) -> std::io::Result<usize> {
    fs::create_dir_all(dir)?;

    let mut dict = fs::File::create(dir.join("dict.txt"))?;
    for (_, e) in dataset.dictionary.iter() {
        writeln!(dict, "{}", e.raw)?;
    }

    let mut rules = fs::File::create(dir.join("rules.tsv"))?;
    for (_, r) in dataset.rules.iter() {
        writeln!(rules, "{}\t{}\t{}", dataset.interner.render(&r.lhs), dataset.interner.render(&r.rhs), r.weight)?;
    }

    let mut docs = fs::File::create(dir.join("docs.txt"))?;
    for d in &dataset.documents {
        writeln!(docs, "{}", dataset.interner.render(d.tokens()))?;
    }

    let mut gold = fs::File::create(dir.join("gold.tsv"))?;
    for g in &dataset.gold {
        writeln!(gold, "{}\t{}\t{}\t{}\t{:?}", g.doc, g.span.start, g.span.len, g.entity.0, g.form)?;
    }

    Ok(4)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{generate, DatasetProfile};

    #[test]
    fn writes_all_four_files_with_content() {
        let data = generate(&DatasetProfile::pubmed_like().scaled(0.005), 3);
        let dir = std::env::temp_dir().join(format!("aeetes-export-test-{}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        let written = write_files(&data, &dir).expect("export");
        assert_eq!(written, 4);
        for (file, min_lines) in [
            ("dict.txt", data.dictionary.len()),
            ("rules.tsv", data.rules.len()),
            ("docs.txt", data.documents.len()),
            ("gold.tsv", 1),
        ] {
            let body = fs::read_to_string(dir.join(file)).unwrap();
            assert!(body.lines().count() >= min_lines, "{file}: too few lines");
        }
        // rules.tsv must round-trip through the CLI's parser conventions.
        let body = fs::read_to_string(dir.join("rules.tsv")).unwrap();
        for line in body.lines() {
            let cols: Vec<&str> = line.split('\t').collect();
            assert_eq!(cols.len(), 3, "rule line: {line}");
            let w: f64 = cols[2].parse().unwrap();
            assert!(w > 0.0 && w <= 1.0);
        }
        let _ = fs::remove_dir_all(&dir);
    }
}
