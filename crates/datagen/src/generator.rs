//! The corpus generator.

use crate::dataset::{Dataset, GoldMention, MentionForm};
use crate::profile::DatasetProfile;
use crate::vocab::{WordFactory, ZipfSampler};
use aeetes_rules::{select_non_conflict, RuleSet};
use aeetes_text::{Dictionary, Document, EntityId, Interner, Span, TokenId, Tokenizer};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Generates a full synthetic dataset for `profile`, deterministically from
/// `seed`.
pub fn generate(profile: &DatasetProfile, seed: u64) -> Dataset {
    let mut rng = SmallRng::seed_from_u64(seed);
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut words = WordFactory::new();

    // ---- Vocabularies ----
    let entity_vocab: Vec<TokenId> = words.words(profile.entity_vocab, &mut rng).into_iter().map(|w| interner.intern(&w)).collect();
    let background_vocab: Vec<TokenId> = words.words(profile.background_vocab, &mut rng).into_iter().map(|w| interner.intern(&w)).collect();
    let zipf = ZipfSampler::new(entity_vocab.len(), profile.zipf_exponent);
    let bg_zipf = ZipfSampler::new(background_vocab.len(), 1.0);

    // ---- Entities (distinct token sequences) ----
    let mut dictionary = Dictionary::new();
    let mut seen_entities: std::collections::HashSet<Vec<TokenId>> = std::collections::HashSet::new();
    for _ in 0..profile.entities {
        let mut tokens = Vec::new();
        for attempt in 0..20 {
            let len = sample_len(profile.avg_entity_len, profile.max_entity_len, &mut rng).max(profile.min_entity_len);
            tokens.clear();
            while tokens.len() < len {
                let t = entity_vocab[zipf.sample(&mut rng)];
                if !tokens.contains(&t) {
                    tokens.push(t);
                }
            }
            if seen_entities.insert(tokens.clone()) || attempt == 19 {
                break;
            }
        }
        let raw = interner.render(&tokens);
        dictionary.push_tokens(raw, tokens);
    }

    // Adjacent-pair set of the dictionary: used both for rule anchoring and
    // to keep the background from accidentally assembling entity bigrams.
    let mut entity_pairs: std::collections::HashSet<(TokenId, TokenId)> = std::collections::HashSet::new();
    for (_, e) in dictionary.iter() {
        for w in e.tokens.windows(2) {
            entity_pairs.insert((w[0], w[1]));
        }
    }

    // ---- Synonym rules (self-calibrating to `target_applicable`) ----
    // Every candidate lhs is a single entity token or an adjacent entity
    // token pair, so its exact contribution to the total applicable-rule
    // count is its entity frequency; generation keeps adding rule groups
    // (one lhs, ≥1 rhs alternatives) until the measured avg |A(e)| reaches
    // the profile's Table 1 target.
    let mut rules = RuleSet::new();
    let expansion_vocab: Vec<TokenId> = words
        .words((profile.rule_groups * 2).max(16), &mut rng)
        .into_iter()
        .map(|w| interner.intern(&w))
        .collect();
    {
        // Entity frequency of each vocabulary token and of adjacent pairs.
        let mut tok_freq: std::collections::HashMap<TokenId, u64> = std::collections::HashMap::new();
        let mut pair_freq: std::collections::HashMap<(TokenId, TokenId), u64> = std::collections::HashMap::new();
        for (_, e) in dictionary.iter() {
            for &t in e.tokens {
                *tok_freq.entry(t).or_insert(0) += 1; // tokens are distinct per entity
            }
            for w in e.tokens.windows(2) {
                *pair_freq.entry((w[0], w[1])).or_insert(0) += 1;
            }
        }
        let target_total = (profile.target_applicable * dictionary.len() as f64) as u64;
        let max_groups = profile.rule_groups * 40 + 64;
        let mut total = 0u64;
        let mut groups = 0usize;
        while total < target_total && groups < max_groups {
            groups += 1;
            let remaining = target_total - total;
            // When close to the target, switch to adjacent-pair lhs (adds
            // only a handful of applications each) for a soft landing.
            let coarse = remaining > target_total / 10 + 8;
            let (lhs, freq) = if coarse && rng.gen_bool(profile.rule_head_bias) {
                // A moderately frequent single token: uniform over a band
                // below the extreme head to avoid thousand-entity jumps.
                let band_lo = entity_vocab.len() / 200;
                let band_hi = (entity_vocab.len() / 6).max(band_lo + 1);
                let t = entity_vocab[rng.gen_range(band_lo..band_hi)];
                (vec![t], tok_freq.get(&t).copied().unwrap_or(0))
            } else {
                // An adjacent token pair from a random entity.
                let e = dictionary.entity(EntityId(rng.gen_range(0..dictionary.len()) as u32));
                if e.len() < 2 {
                    let t = e.first().copied();
                    match t {
                        Some(t) if coarse => (vec![t], tok_freq.get(&t).copied().unwrap_or(0)),
                        _ => continue,
                    }
                } else {
                    let p = rng.gen_range(0..e.len() - 1);
                    let pair = (e[p], e[p + 1]);
                    (vec![pair.0, pair.1], pair_freq.get(&pair).copied().unwrap_or(0))
                }
            };
            if freq == 0 {
                continue;
            }
            // Avoid one group overshooting the whole remaining budget badly.
            if freq > remaining.saturating_mul(4) && groups < max_groups / 2 {
                continue;
            }
            let alt_cap = (profile.alternatives_per_rule * 3.0).ceil() as usize;
            let alternatives = sample_len(profile.alternatives_per_rule, alt_cap.max(4), &mut rng).max(1);
            for _ in 0..alternatives {
                let rlen = rng.gen_range(1..=3);
                let mut rhs = Vec::with_capacity(rlen);
                for _ in 0..rlen {
                    rhs.push(expansion_vocab[rng.gen_range(0..expansion_vocab.len())]);
                }
                if rules.push_tokens(lhs.clone(), rhs, 1.0).is_ok() {
                    total += freq;
                }
            }
        }
    }

    // ---- Documents with planted mentions ----
    let mut documents = Vec::with_capacity(profile.docs);
    let mut gold = Vec::new();
    let ent_sampler = ZipfSampler::new(dictionary.len(), 0.8);
    for doc_id in 0..profile.docs {
        let target_len = sample_len(profile.avg_doc_len as f64, profile.avg_doc_len * 3, &mut rng).max(8);
        let mut tokens: Vec<TokenId> = Vec::with_capacity(target_len + 16);
        let mentions = sample_len(profile.mentions_per_doc, 20, &mut rng);
        // Split the background into `mentions + 1` chunks with mentions in
        // the gaps, guaranteeing ≥ 1 background token between mentions so
        // gold spans never touch.
        // Mentions are inserted on top of the background, so the background
        // budget excludes the expected mention tokens to keep avg |d| on
        // target.
        let mention_budget = (mentions as f64 * profile.avg_entity_len).round() as usize;
        let chunk = (target_len.saturating_sub(mention_budget).max(mentions + 1)) / (mentions + 1);
        for _ in 0..mentions {
            append_background(&mut tokens, chunk.max(1), &background_vocab, &bg_zipf, &entity_vocab, &zipf, &entity_pairs, &mut rng);
            // One guaranteed non-dictionary token on each side keeps the
            // planted span's boundaries unambiguous.
            tokens.push(background_vocab[bg_zipf.sample(&mut rng)]);
            let entity = EntityId(ent_sampler.sample(&mut rng) as u32);
            if let Some((mention, form)) = render_mention(&dictionary, &rules, entity, &background_vocab, &bg_zipf, &mut interner, &mut rng) {
                let span = Span::new(tokens.len(), mention.len());
                tokens.extend_from_slice(&mention);
                tokens.push(background_vocab[bg_zipf.sample(&mut rng)]);
                gold.push(GoldMention { doc: doc_id, span, entity, form });
            }
        }
        append_background(&mut tokens, chunk.max(1), &background_vocab, &bg_zipf, &entity_vocab, &zipf, &entity_pairs, &mut rng);
        documents.push(Document::from_tokens(tokens));
    }

    Dataset {
        name: profile.name.clone(),
        interner,
        tokenizer,
        dictionary,
        rules,
        documents,
        gold,
    }
}

/// Appends `n` background tokens; ~30% of them are drawn from the entity
/// vocabulary — real corpora are dense in dictionary tokens (common words
/// appear in some entity of a large dictionary), which is precisely what
/// makes unfiltered inverted-list merging expensive and prefix filtering
/// valuable.
#[allow(clippy::too_many_arguments)]
fn append_background(
    out: &mut Vec<TokenId>,
    n: usize,
    background: &[TokenId],
    bg_zipf: &ZipfSampler,
    entity_vocab: &[TokenId],
    zipf: &ZipfSampler,
    entity_pairs: &std::collections::HashSet<(TokenId, TokenId)>,
    rng: &mut SmallRng,
) {
    for _ in 0..n {
        let mut tok = if rng.gen_bool(0.3) {
            entity_vocab[zipf.sample(rng)]
        } else {
            background[bg_zipf.sample(rng)]
        };
        // Avoid accidentally assembling a dictionary bigram (which would be
        // a legitimate extraction but a false positive against the planted
        // gold); a couple of resamples keeps the distribution intact.
        for _ in 0..4 {
            let forms_pair = out.last().is_some_and(|&p| entity_pairs.contains(&(p, tok)));
            if !forms_pair {
                break;
            }
            tok = background[bg_zipf.sample(rng)];
        }
        out.push(tok);
    }
}

/// Renders one mention of `entity` in a randomly chosen form.
fn render_mention(
    dictionary: &Dictionary,
    rules: &RuleSet,
    entity: EntityId,
    background: &[TokenId],
    bg_zipf: &ZipfSampler,
    interner: &mut Interner,
    rng: &mut SmallRng,
) -> Option<(Vec<TokenId>, MentionForm)> {
    let tokens = dictionary.entity(entity);
    if tokens.is_empty() {
        return None;
    }
    let roll: f64 = rng.gen();
    if roll < 0.35 {
        // Synonym-rewritten: apply one random rule from each of a random
        // subset of the non-conflict groups.
        let groups = select_non_conflict(tokens, rules);
        if !groups.is_empty() {
            let mut chosen = Vec::with_capacity(groups.len());
            for g in &groups {
                if rng.gen_bool(0.7) {
                    chosen.push(g[rng.gen_range(0..g.len())]);
                }
            }
            if chosen.is_empty() {
                let g = &groups[rng.gen_range(0..groups.len())];
                chosen.push(g[rng.gen_range(0..g.len())]);
            }
            chosen.sort_by_key(|a| a.start);
            let mut out = Vec::with_capacity(tokens.len() + 4);
            let mut pos = 0usize;
            for app in &chosen {
                out.extend_from_slice(&tokens[pos..app.start as usize]);
                out.extend_from_slice(rules.other_side_of(app.rule, app.side));
                pos = app.end() as usize;
            }
            out.extend_from_slice(&tokens[pos..]);
            return Some((out, MentionForm::Synonym));
        }
        // No applicable rules: fall through to exact.
    } else if roll < 0.47 && tokens.len() >= 3 {
        // Noisy: one background token spliced into the middle.
        let mut out = tokens.to_vec();
        let at = rng.gen_range(1..out.len());
        out.insert(at, background[bg_zipf.sample(rng)]);
        return Some((out, MentionForm::Noisy));
    } else if roll < 0.53 {
        // Typo: mutate one character of one token.
        let mut out = tokens.to_vec();
        let at = rng.gen_range(0..out.len());
        let original = interner.resolve(out[at]).to_string();
        if original.len() >= 4 {
            let mut chars: Vec<char> = original.chars().collect();
            let i = rng.gen_range(0..chars.len());
            let replacement = (b'a' + rng.gen_range(0..26u8)) as char;
            if chars[i] != replacement {
                chars[i] = replacement;
                let mutated: String = chars.into_iter().collect();
                out[at] = interner.intern(&mutated);
                return Some((out, MentionForm::Typo));
            }
        }
        // Token too short / mutation collided: fall through to exact.
    }
    Some((tokens.to_vec(), MentionForm::Exact))
}

/// Samples a positive length with the given mean (geometric-ish shape),
/// capped at `max`.
fn sample_len(mean: f64, max: usize, rng: &mut SmallRng) -> usize {
    debug_assert!(mean > 0.0);
    // Sum of a base floor plus a geometric tail keeps the mean close to the
    // target while producing a realistic right-skewed distribution.
    let floor = mean.floor().max(1.0) as usize;
    let frac = mean - floor as f64;
    let mut len = floor;
    if rng.gen_bool(frac.clamp(0.0, 1.0)) {
        len += 1;
    }
    // Right-skew: occasionally extend.
    while len < max && rng.gen_bool(0.12) {
        len += 1;
    }
    // Occasionally shrink toward 1 to widen the left tail.
    if len > 1 && rng.gen_bool(0.18) {
        len -= 1;
    }
    len.clamp(1, max.max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(profile: DatasetProfile) -> Dataset {
        generate(&profile.scaled(0.02), 42)
    }

    #[test]
    fn generates_all_parts() {
        let d = small(DatasetProfile::pubmed_like());
        assert!(!d.documents.is_empty());
        assert!(!d.dictionary.is_empty());
        assert!(!d.rules.is_empty());
        assert!(!d.gold.is_empty());
    }

    #[test]
    fn deterministic_for_seed() {
        let a = small(DatasetProfile::dbworld_like());
        let b = small(DatasetProfile::dbworld_like());
        assert_eq!(a.gold, b.gold);
        assert_eq!(a.documents.len(), b.documents.len());
        for (x, y) in a.documents.iter().zip(&b.documents) {
            assert_eq!(x.tokens(), y.tokens());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let a = generate(&DatasetProfile::pubmed_like().scaled(0.02), 1);
        let b = generate(&DatasetProfile::pubmed_like().scaled(0.02), 2);
        assert_ne!(a.documents[0].tokens(), b.documents[0].tokens(), "different seeds should give different corpora");
    }

    #[test]
    fn gold_spans_are_in_bounds_and_disjoint() {
        let d = small(DatasetProfile::usjob_like());
        for doc in 0..d.documents.len() {
            let mut spans: Vec<Span> = d.gold_for(doc).map(|g| g.span).collect();
            spans.sort_by_key(|s| s.start);
            for s in &spans {
                assert!(s.end() <= d.documents[doc].len());
                assert!(s.len >= 1);
            }
            for w in spans.windows(2) {
                assert!(!w[0].overlaps(&w[1]), "gold mentions must not overlap: {w:?}");
            }
        }
    }

    #[test]
    fn exact_mentions_equal_entity_tokens() {
        let d = small(DatasetProfile::pubmed_like());
        for g in d.gold.iter().filter(|g| g.form == MentionForm::Exact) {
            let got = d.documents[g.doc].slice(g.span);
            assert_eq!(got, d.dictionary.entity(g.entity));
        }
    }

    #[test]
    fn noisy_mentions_are_entity_plus_one() {
        // Larger sample than `small()`: the noisy band is only ~7% of
        // mentions, so a dozen mentions can easily contain none.
        let d = generate(&DatasetProfile::usjob_like().scaled(0.1), 42);
        let mut seen = 0;
        for g in d.gold.iter().filter(|g| g.form == MentionForm::Noisy) {
            seen += 1;
            let got = d.documents[g.doc].slice(g.span);
            let ent = d.dictionary.entity(g.entity);
            assert_eq!(got.len(), ent.len() + 1);
        }
        assert!(seen > 0, "expected some noisy mentions");
    }

    #[test]
    fn statistics_land_near_profile() {
        let d = generate(&DatasetProfile::pubmed_like().scaled(0.05), 7);
        let s = d.statistics(500);
        assert!((s.avg_entity_len - 3.04).abs() < 0.8, "avg |e| = {}", s.avg_entity_len);
        assert!(s.avg_doc_len > 100.0 && s.avg_doc_len < 320.0, "avg |d| = {}", s.avg_doc_len);
        assert!(s.avg_applicable > 0.3, "rules should be applicable: {}", s.avg_applicable);
    }

    #[test]
    fn all_forms_appear_at_default_scale() {
        let d = generate(&DatasetProfile::pubmed_like().scaled(0.1), 11);
        for form in [MentionForm::Exact, MentionForm::Synonym, MentionForm::Noisy, MentionForm::Typo] {
            assert!(d.gold.iter().any(|g| g.form == form), "missing {form:?}");
        }
    }
}
