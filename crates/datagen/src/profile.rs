//! Dataset profiles mirroring the paper's Table 1.

/// Shape parameters for one synthetic dataset.
///
/// The three constructors mirror the paper's corpora; [`scaled`] shrinks or
/// grows the *size* dimensions (documents, entities, rules, vocabulary)
/// while keeping the per-item statistics (lengths, applicability) fixed,
/// which is what the paper's Figure 12 scalability sweep varies.
///
/// [`scaled`]: DatasetProfile::scaled
#[derive(Debug, Clone)]
pub struct DatasetProfile {
    /// Dataset name (for report rows).
    pub name: String,
    /// Number of documents.
    pub docs: usize,
    /// Number of dictionary entities.
    pub entities: usize,
    /// Number of synonym-rule *groups*: each group shares one lhs and holds
    /// `alternatives_per_rule` rhs variants on average.
    pub rule_groups: usize,
    /// Mean rhs alternatives per rule group (≥ 1).
    pub alternatives_per_rule: f64,
    /// Mean document length in tokens (Table 1's `avg |d|`).
    pub avg_doc_len: usize,
    /// Mean entity length in tokens (Table 1's `avg |e|`).
    pub avg_entity_len: f64,
    /// Cap on entity length.
    pub max_entity_len: usize,
    /// Minimum entity length (≥ 2 avoids single-token entities that match
    /// any stray occurrence of their token at every threshold).
    pub min_entity_len: usize,
    /// Vocabulary size for entity tokens.
    pub entity_vocab: usize,
    /// Vocabulary size for background (document-only) tokens.
    pub background_vocab: usize,
    /// Zipf exponent for entity-token sampling.
    pub zipf_exponent: f64,
    /// Mean planted mentions per document.
    pub mentions_per_doc: f64,
    /// How strongly rule lhs tokens skew toward frequent tokens (0 =
    /// uniform over entity occurrences, 1 = heavily biased to the head).
    pub rule_head_bias: f64,
    /// Target average applicable rules per entity (Table 1's `avg |A(e)|`).
    /// Rule generation self-calibrates: it keeps adding rule groups until
    /// the measured average reaches this target (or a hard group cap).
    pub target_applicable: f64,
}

impl DatasetProfile {
    /// PubMed-like: short entities (avg 3.04 tokens), medium documents
    /// (avg 188), avg `|A(e)|` ≈ 2.4.
    pub fn pubmed_like() -> Self {
        Self {
            name: "pubmed".into(),
            docs: 200,
            entities: 20_000,
            rule_groups: 1_400,
            alternatives_per_rule: 1.3,
            avg_doc_len: 188,
            avg_entity_len: 3.04,
            max_entity_len: 8,
            min_entity_len: 2,
            entity_vocab: 9_000,
            background_vocab: 12_000,
            zipf_exponent: 1.05,
            mentions_per_doc: 5.0,
            rule_head_bias: 0.12,
            target_applicable: 2.42,
        }
    }

    /// DBWorld-like: very short entities (avg 2.04), long documents
    /// (avg 796), avg `|A(e)|` ≈ 3.2.
    pub fn dbworld_like() -> Self {
        Self {
            name: "dbworld".into(),
            docs: 60,
            entities: 12_000,
            rule_groups: 450,
            alternatives_per_rule: 1.4,
            avg_doc_len: 796,
            avg_entity_len: 2.04,
            max_entity_len: 6,
            min_entity_len: 2,
            entity_vocab: 5_000,
            background_vocab: 10_000,
            zipf_exponent: 1.05,
            mentions_per_doc: 8.0,
            rule_head_bias: 0.4,
            target_applicable: 3.24,
        }
    }

    /// USJob-like: long entities (avg 6.92), medium documents (avg 323),
    /// very high applicability (avg `|A(e)|` ≈ 22.7) through rule groups
    /// with many alternatives anchored on frequent tokens.
    pub fn usjob_like() -> Self {
        Self {
            name: "usjob".into(),
            docs: 120,
            entities: 30_000,
            rule_groups: 1_500,
            alternatives_per_rule: 12.0,
            avg_doc_len: 323,
            avg_entity_len: 6.92,
            max_entity_len: 14,
            min_entity_len: 2,
            entity_vocab: 6_000,
            background_vocab: 10_000,
            zipf_exponent: 1.1,
            mentions_per_doc: 6.0,
            rule_head_bias: 0.05,
            target_applicable: 22.7,
        }
    }

    /// The three paper datasets at default scale.
    pub fn all() -> Vec<Self> {
        vec![Self::pubmed_like(), Self::dbworld_like(), Self::usjob_like()]
    }

    /// Scales the size dimensions by `factor` (≥ 0), keeping per-item
    /// statistics. Used by the Figure 12 entity sweep and by fast tests.
    pub fn scaled(mut self, factor: f64) -> Self {
        let s = |v: usize| ((v as f64 * factor).round() as usize).max(1);
        self.docs = s(self.docs);
        self.entities = s(self.entities);
        self.rule_groups = s(self.rule_groups);
        // Vocabularies scale with √factor: scaling them linearly would make
        // token collisions (and thus spurious matches) explode at small
        // scales and vanish at large ones.
        let sv = |v: usize| ((v as f64 * factor.sqrt()).round() as usize).max(16);
        self.entity_vocab = sv(self.entity_vocab);
        self.background_vocab = sv(self.background_vocab);
        self
    }

    /// Overrides the entity count (Figure 12 varies it directly).
    pub fn with_entities(mut self, entities: usize) -> Self {
        self.entities = entities.max(1);
        self
    }

    /// Overrides the document count.
    pub fn with_docs(mut self, docs: usize) -> Self {
        self.docs = docs.max(1);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profiles_match_table1_shape() {
        let p = DatasetProfile::pubmed_like();
        assert!((p.avg_entity_len - 3.04).abs() < 1e-9);
        assert_eq!(p.avg_doc_len, 188);
        let d = DatasetProfile::dbworld_like();
        assert!((d.avg_entity_len - 2.04).abs() < 1e-9);
        assert_eq!(d.avg_doc_len, 796);
        let u = DatasetProfile::usjob_like();
        assert!((u.avg_entity_len - 6.92).abs() < 1e-9);
        assert_eq!(u.avg_doc_len, 323);
    }

    #[test]
    fn scaling_shrinks_sizes_not_statistics() {
        let p = DatasetProfile::pubmed_like().scaled(0.1);
        assert_eq!(p.entities, 2_000);
        assert_eq!(p.docs, 20);
        assert_eq!(p.avg_doc_len, 188, "per-item stats untouched");
    }

    #[test]
    fn scaling_never_hits_zero() {
        let p = DatasetProfile::dbworld_like().scaled(0.000001);
        assert!(p.entities >= 1 && p.docs >= 1);
    }

    #[test]
    fn with_entities_overrides() {
        let p = DatasetProfile::usjob_like().with_entities(123);
        assert_eq!(p.entities, 123);
    }
}
