//! Pseudo-word vocabulary and Zipfian sampling.

use rand::Rng;

/// Generates pronounceable, unique pseudo-words.
///
/// Real token strings matter for the character-level baselines (Fuzzy
/// Jaccard, typo injection), so tokens are syllable-built words rather than
/// opaque ids.
#[derive(Debug, Clone, Default)]
pub struct WordFactory {
    produced: usize,
}

const ONSETS: [&str; 18] = ["b", "c", "d", "f", "g", "h", "k", "l", "m", "n", "p", "r", "s", "t", "v", "z", "st", "tr"];
const VOWELS: [&str; 6] = ["a", "e", "i", "o", "u", "ia"];
const CODAS: [&str; 8] = ["", "", "n", "r", "s", "l", "x", "m"];

impl WordFactory {
    /// Creates a factory.
    pub fn new() -> Self {
        Self::default()
    }

    /// Produces the next pseudo-word using `rng` for shape decisions.
    /// Uniqueness is guaranteed by a base-N counter suffix woven into the
    /// syllables, so two calls never collide.
    pub fn word<R: Rng>(&mut self, rng: &mut R) -> String {
        let mut w = String::new();
        let syllables = rng.gen_range(2..=3);
        for _ in 0..syllables {
            w.push_str(ONSETS[rng.gen_range(0..ONSETS.len())]);
            w.push_str(VOWELS[rng.gen_range(0..VOWELS.len())]);
        }
        w.push_str(CODAS[rng.gen_range(0..CODAS.len())]);
        // Disambiguating tail: encode the counter as lowercase letters.
        let mut n = self.produced;
        self.produced += 1;
        w.push('q');
        loop {
            w.push((b'a' + (n % 26) as u8) as char);
            n /= 26;
            if n == 0 {
                break;
            }
        }
        w
    }

    /// Produces `n` words.
    pub fn words<R: Rng>(&mut self, n: usize, rng: &mut R) -> Vec<String> {
        (0..n).map(|_| self.word(rng)).collect()
    }
}

/// Zipf-distributed index sampler over `0..n` with exponent `s`:
/// `P(k) ∝ 1 / (k+1)^s`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    cumulative: Vec<f64>,
}

impl ZipfSampler {
    /// Builds the sampler for `n` items (`n ≥ 1`).
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n >= 1, "ZipfSampler needs at least one item");
        let mut cumulative = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 0..n {
            acc += 1.0 / ((k + 1) as f64).powf(s);
            cumulative.push(acc);
        }
        Self { cumulative }
    }

    /// Samples an index in `0..n`; index 0 is the most frequent.
    pub fn sample<R: Rng>(&self, rng: &mut R) -> usize {
        let total = *self.cumulative.last().expect("non-empty");
        let u = rng.gen_range(0.0..total);
        self.cumulative.partition_point(|&c| c < u).min(self.cumulative.len() - 1)
    }

    /// Samples restricted to the head `0..head` (used to bias rule anchors
    /// toward frequent tokens).
    pub fn sample_head<R: Rng>(&self, head: usize, rng: &mut R) -> usize {
        let head = head.clamp(1, self.cumulative.len());
        let total = self.cumulative[head - 1];
        let u = rng.gen_range(0.0..total);
        self.cumulative[..head].partition_point(|&c| c < u).min(head - 1)
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.cumulative.len()
    }

    /// Always false (the constructor requires `n ≥ 1`).
    pub fn is_empty(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;
    use std::collections::HashSet;

    #[test]
    fn words_are_unique() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut f = WordFactory::new();
        let words = f.words(5_000, &mut rng);
        let set: HashSet<&String> = words.iter().collect();
        assert_eq!(set.len(), words.len());
    }

    #[test]
    fn words_are_lowercase_alpha() {
        let mut rng = SmallRng::seed_from_u64(8);
        let mut f = WordFactory::new();
        for w in f.words(100, &mut rng) {
            assert!(w.chars().all(|c| c.is_ascii_lowercase()), "{w}");
            assert!(w.len() >= 3);
        }
    }

    #[test]
    fn zipf_head_is_heavier() {
        let mut rng = SmallRng::seed_from_u64(9);
        let z = ZipfSampler::new(1000, 1.05);
        let mut counts = vec![0usize; 1000];
        for _ in 0..50_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(counts[0] > counts[99] * 5, "rank-0 ≫ rank-99: {} vs {}", counts[0], counts[99]);
        assert!(counts[0] > counts[500].max(1) * 20);
    }

    #[test]
    fn zipf_sample_in_range() {
        let mut rng = SmallRng::seed_from_u64(10);
        let z = ZipfSampler::new(5, 1.0);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 5);
        }
    }

    #[test]
    fn sample_head_restricts() {
        let mut rng = SmallRng::seed_from_u64(11);
        let z = ZipfSampler::new(100, 1.0);
        for _ in 0..1000 {
            assert!(z.sample_head(10, &mut rng) < 10);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let z = ZipfSampler::new(50, 1.1);
        let a: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(3);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        let b: Vec<usize> = {
            let mut rng = SmallRng::seed_from_u64(3);
            (0..20).map(|_| z.sample(&mut rng)).collect()
        };
        assert_eq!(a, b);
    }
}
