//! Top-k extraction (extension): the k best-scoring pairs above a floor.
//!
//! [`extract_top_k`] no longer extracts everything at the floor and
//! truncates. It runs a *bound-pruned* scan: a max-size-k heap keeps the
//! best matches seen so far, and the effective threshold τ ratchets up from
//! `tau_floor` to the k-th best score as the heap fills. Every per-metric
//! filter bound ([`Metric::prefix_len`], [`Metric::length_bounds`],
//! [`metric_window_bounds`]) is re-derived at the ratcheted τ, so whole
//! window lengths — and eventually whole document suffixes — are skipped
//! once they cannot beat the current k-th best score.
//!
//! Soundness: the heap's k-th best score is always ≤ the true k-th best
//! score, so any pair that belongs in the final top-k scores ≥ the ratcheted
//! τ at the moment its start position is scanned — the thresholded
//! extraction at that τ finds it (the τ-filters admit every pair scoring
//! ≥ τ, and verification is exact). Window starts are visited left to
//! right and each span is generated only at its own start position, so no
//! pair is seen twice. The result is therefore *identical* to "extract all
//! at `tau_floor`, sort by (score desc, span, entity), truncate to k" — the
//! naive oracle kept in the test module — while examining strictly fewer
//! candidates whenever the ratchet rises above the floor.

use crate::candidates::scan_clustered;
use crate::extractor::Aeetes;
use crate::limits::{Budget, ExtractLimits};
use crate::matches::Match;
use crate::stats::ExtractStats;
use crate::verify::verify_candidates;
use aeetes_index::metric_window_bounds;
use aeetes_sim::Metric;
use aeetes_text::{Document, Span};
use std::collections::BinaryHeap;

/// Heap entry ordered so the *worst* match is the heap maximum: lower score
/// is "greater", and among equal scores the larger `(span, entity)` key is
/// "greater" (it would be truncated first by the canonical top-k order).
#[derive(Debug, Clone, Copy)]
struct Worst(Match);

impl PartialEq for Worst {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == std::cmp::Ordering::Equal
    }
}
impl Eq for Worst {}
impl PartialOrd for Worst {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Worst {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // Scores are exact similarity values in (0, 1] — never NaN.
        other
            .0
            .score
            .partial_cmp(&self.0.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| self.0.sort_key().cmp(&other.0.sort_key()))
    }
}

/// Sorts `matches` into the canonical top-k order — score descending, ties
/// by `(span, entity)` ascending — and truncates to `k`. This is the exact
/// post-filter the pruned scan is equivalent to; servers use it to apply a
/// `top_k` request field over an already-extracted result.
pub fn select_top_k(matches: &mut Vec<Match>, k: usize) {
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.sort_key().cmp(&b.sort_key()))
    });
    matches.truncate(k);
}

/// Returns the `k` highest-scoring `(entity, substring)` pairs with
/// `score ≥ tau_floor` under the engine's configured metric, ties broken by
/// `(span, entity)` for determinism. Equivalent to extracting everything at
/// `tau_floor` and keeping the best `k`, but bound-pruned: the effective
/// threshold ratchets up to the current k-th best score, shrinking the
/// window-length and prefix filters as the scan proceeds.
///
/// # Panics
/// Panics when `tau_floor` is not in `(0, 1]`.
pub fn extract_top_k(engine: &Aeetes, doc: &Document, k: usize, tau_floor: f64) -> Vec<Match> {
    extract_top_k_with(engine, doc, k, tau_floor, engine.config().metric).0
}

/// [`extract_top_k`] under an explicit metric, also returning the work
/// counters of the pruned scan (the bench harness counter-asserts these
/// against a full extraction).
///
/// # Panics
/// Panics when `tau_floor` is not in `(0, 1]`.
pub fn extract_top_k_with(engine: &Aeetes, doc: &Document, k: usize, tau_floor: f64, metric: Metric) -> (Vec<Match>, ExtractStats) {
    assert!(tau_floor > 0.0 && tau_floor <= 1.0, "similarity threshold must be in (0, 1], got {tau_floor}");
    let mut stats = ExtractStats::default();
    if k == 0 {
        return (Vec::new(), stats);
    }
    let index = engine.index();
    let dd = engine.derived();
    let set_bounds = (index.min_set_len(), index.max_set_len());
    let order = index.order();
    let n = doc.len();

    let mut remap = crate::window::DenseRemap::new();
    remap.build(doc.tokens().iter().map(|&t| order.key(t)));

    let mut heap: BinaryHeap<Worst> = BinaryHeap::with_capacity(k + 1);
    let mut sink = crate::candidates::CandidateSink::default();
    let mut buf: Vec<u32> = Vec::new();
    let mut s_keys: Vec<u64> = Vec::new();
    let mut verified: Vec<Match> = Vec::new();
    let mut budget = Budget::start(&ExtractLimits::UNLIMITED);

    for p in 0..n {
        // The ratcheted threshold: once the heap holds k matches, nothing
        // scoring below (or tying above, by sort key) the worst of them can
        // enter — so the worst score is a sound extraction threshold. The
        // comparison stays inclusive (≥) to keep equal-score, smaller-key
        // pairs discoverable.
        let tau_cur = match heap.peek() {
            Some(worst) if heap.len() == k => tau_floor.max(worst.0.score),
            _ => tau_floor,
        };
        // Window bounds tighten as τ rises: `min` only grows and `max` only
        // shrinks, so once the shortest admissible window no longer fits in
        // the remaining suffix, no later position can produce a match.
        let Some(bounds) = metric_window_bounds(set_bounds.0, set_bounds.1, tau_cur, metric) else {
            break;
        };
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break;
        }
        stats.windows += 1;
        sink.clear();
        for l in bounds.min..=lmax {
            stats.substrings += 1;
            stats.prefix_builds += 1;
            buf.clear();
            buf.extend_from_slice(&remap.doc_ranks()[p..p + l]);
            buf.sort_unstable();
            buf.dedup();
            let s_len = buf.len();
            let plen = metric.prefix_len(s_len, tau_cur);
            let span = Span::new(p, l);
            for &r in &buf[..plen] {
                if !remap.is_valid_rank(r) {
                    continue; // invalid token: empty posting list
                }
                let t = order.token_of(remap.key_of(r));
                scan_clustered(index, t, span, s_len, tau_cur, metric, &mut sink, &mut stats);
            }
        }
        // Verify this position's candidates immediately so the ratchet can
        // rise before the next position is scanned.
        verify_candidates(index, dd, doc, tau_cur, metric, &mut sink.pairs, &mut stats, false, &mut budget, &mut s_keys, &mut verified);
        for &m in &verified {
            if heap.len() < k {
                heap.push(Worst(m));
            } else if let Some(worst) = heap.peek() {
                if m.score > worst.0.score || (m.score == worst.0.score && m.sort_key() < worst.0.sort_key()) {
                    heap.pop();
                    heap.push(Worst(m));
                }
            }
        }
    }

    let mut out: Vec<Match> = heap.into_iter().map(|w| w.0).collect();
    select_top_k(&mut out, k);
    (out, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeetesConfig;
    use crate::strategy::Strategy;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Dictionary, Interner, Tokenizer};
    use proptest::prelude::*;

    /// The pre-pruning implementation, kept verbatim as the equivalence
    /// oracle: extract everything at the floor, sort, truncate.
    fn naive_top_k(engine: &Aeetes, doc: &Document, k: usize, tau_floor: f64) -> Vec<Match> {
        let mut matches = engine.extract(doc, tau_floor);
        select_top_k(&mut matches, k);
        matches
    }

    fn engine() -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("machine learning systems", &tok, &mut int);
        dict.push("learning systems", &tok, &mut int);
        let engine = Aeetes::build(dict, &RuleSet::new(), &int, AeetesConfig::default());
        (engine, int, tok)
    }

    #[test]
    fn returns_at_most_k_best_first() {
        let (e, mut int, tok) = engine();
        let doc = Document::parse("machine learning systems conference", &tok, &mut int);
        let top = extract_top_k(&e, &doc, 2, 0.5);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        assert_eq!(top[0].score, 1.0);
    }

    #[test]
    fn k_zero_is_empty() {
        let (e, mut int, tok) = engine();
        let doc = Document::parse("machine learning systems", &tok, &mut int);
        assert!(extract_top_k(&e, &doc, 0, 0.5).is_empty());
    }

    #[test]
    fn k_larger_than_matches_returns_all() {
        let (e, mut int, tok) = engine();
        let doc = Document::parse("machine learning systems", &tok, &mut int);
        let all = e.extract(&doc, 0.5);
        let top = extract_top_k(&e, &doc, 100, 0.5);
        assert_eq!(top.len(), all.len());
    }

    #[test]
    fn pruned_equals_naive_on_fixture() {
        let (e, mut int, tok) = engine();
        let doc = Document::parse("machine learning systems and other learning systems in machine learning", &tok, &mut int);
        for k in [1, 2, 3, 5, 100] {
            for tau in [0.3, 0.5, 0.8, 1.0] {
                assert_eq!(extract_top_k(&e, &doc, k, tau), naive_top_k(&e, &doc, k, tau), "k={k} tau={tau}");
            }
        }
    }

    #[test]
    fn small_k_examines_fewer_candidates() {
        let (e, mut int, tok) = engine();
        let text = "machine learning systems and other learning systems in machine learning \
                    plus machine learning systems again and yet more learning systems"
            .to_string();
        let doc = Document::parse(&text, &tok, &mut int);
        let (_, full) = e.extract_with(&doc, 0.3, Strategy::Simple);
        let (_, pruned) = extract_top_k_with(&e, &doc, 1, 0.3, Metric::Jaccard);
        assert!(
            pruned.candidates < full.candidates,
            "pruned ({}) should examine fewer candidates than full ({})",
            pruned.candidates,
            full.candidates
        );
    }

    /// Small vocabulary so generated documents actually hit the dictionary.
    fn word(i: u8) -> &'static str {
        ["alpha", "beta", "gamma", "delta", "epsilon", "zeta"][i as usize % 6]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]
        #[test]
        fn pruned_equals_naive(
            words in proptest::collection::vec(0u8..6, 0..24),
            k in 0usize..8,
            tau_idx in 0usize..4,
        ) {
            let tau_floor = [0.4, 0.6, 0.8, 1.0][tau_idx];
            let mut int = Interner::new();
            let tok = Tokenizer::default();
            let mut dict = Dictionary::new();
            dict.push("alpha beta gamma", &tok, &mut int);
            dict.push("beta gamma", &tok, &mut int);
            dict.push("delta epsilon", &tok, &mut int);
            dict.push("zeta", &tok, &mut int);
            let mut rules = RuleSet::new();
            rules.push_str("zeta", "epsilon delta", &tok, &mut int).unwrap();
            let text: String = words.iter().map(|&w| word(w)).collect::<Vec<_>>().join(" ");
            for strategy in Strategy::ALL {
                let config = AeetesConfig { strategy, ..AeetesConfig::default() };
                let engine = Aeetes::build(dict.clone(), &rules, &int, config);
                let doc = Document::parse(&text, &tok, &mut int);
                let pruned = extract_top_k(&engine, &doc, k, tau_floor);
                let naive = naive_top_k(&engine, &doc, k, tau_floor);
                prop_assert_eq!(pruned, naive, "strategy {} k {} tau {}", strategy, k, tau_floor);
            }
        }
    }
}
