//! Top-k extraction (extension): the k best-scoring pairs above a floor.

use crate::extractor::Aeetes;
use crate::matches::Match;
use aeetes_text::Document;

/// Returns the `k` highest-scoring `(entity, substring)` pairs with
/// `JaccAR ≥ tau_floor`, ties broken by `(span, entity)` for determinism.
///
/// This runs a thresholded extraction at `tau_floor` and keeps the best `k`;
/// choose the floor as the lowest score you are willing to surface.
pub fn extract_top_k(engine: &Aeetes, doc: &Document, k: usize, tau_floor: f64) -> Vec<Match> {
    let mut matches = engine.extract(doc, tau_floor);
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| a.sort_key().cmp(&b.sort_key()))
    });
    matches.truncate(k);
    matches
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeetesConfig;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn engine() -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("machine learning systems", &tok, &mut int);
        dict.push("learning systems", &tok, &mut int);
        let engine = Aeetes::build(dict, &RuleSet::new(), &int, AeetesConfig::default());
        (engine, int, tok)
    }

    #[test]
    fn returns_at_most_k_best_first() {
        let (e, mut int, tok) = engine();
        let doc = Document::parse("machine learning systems conference", &tok, &mut int);
        let top = extract_top_k(&e, &doc, 2, 0.5);
        assert_eq!(top.len(), 2);
        assert!(top[0].score >= top[1].score);
        assert_eq!(top[0].score, 1.0);
    }

    #[test]
    fn k_zero_is_empty() {
        let (e, mut int, tok) = engine();
        let doc = Document::parse("machine learning systems", &tok, &mut int);
        assert!(extract_top_k(&e, &doc, 0, 0.5).is_empty());
    }

    #[test]
    fn k_larger_than_matches_returns_all() {
        let (e, mut int, tok) = engine();
        let doc = Document::parse("machine learning systems", &tok, &mut int);
        let all = e.extract(&doc, 0.5);
        let top = extract_top_k(&e, &doc, 100, 0.5);
        assert_eq!(top.len(), all.len());
    }
}
