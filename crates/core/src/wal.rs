//! Write-ahead log for dictionary deltas.
//!
//! Serving nodes and the fleet coordinator append each accepted delta here
//! *before* acknowledging it, then replay the log over the last engine
//! snapshot on restart to rebuild the exact pre-crash generation. The
//! payloads are opaque bytes to this layer (the callers store canonical
//! JSON delta bodies), so `aeetes-core` stays ignorant of the delta schema.
//!
//! ## On-disk format
//!
//! ```text
//! header  (20 bytes): magic "AWAL" | version u32 = 1 | base_generation u64
//!                     | CRC-32 of the preceding 16 bytes
//! record  (16+n):     payload-len u32 | generation u64
//!                     | CRC-32 of the payload | payload bytes
//! ```
//!
//! Everything is little-endian. Record `i` (0-based) must carry generation
//! `base + i + 1`: applying it takes the engine from generation `base + i`
//! to `base + i + 1`, and the monotonic check turns any out-of-sequence
//! record into a detected corruption instead of a silently wrong replay.
//!
//! ## Durability contract
//!
//! [`Wal::append`] writes the record; [`Wal::sync`] makes every appended
//! record durable (`File::sync_all`). Callers acknowledge a delta only
//! after `sync` returns, so at any crash point the set of *acknowledged*
//! deltas is a prefix of the fully-written records. [`Wal::create`] and
//! [`Wal::reset`] additionally fsync the parent directory, making the
//! log's existence (and compacted replacement) itself durable.
//!
//! ## Torn-tail recovery
//!
//! [`Wal::open`] scans records from the front and stops at the first
//! invalid one — incomplete header, implausible length, short payload, CRC
//! mismatch, or out-of-sequence generation — then truncates the file back
//! to the end of the last valid record. Because acknowledgement implies
//! fsync of the whole preceding log, everything at or after the first
//! invalid record is necessarily unacknowledged, so dropping it never
//! loses an acked delta; the byte count removed is reported in
//! [`WalReplay::truncated_bytes`] for the caller to log.

use crate::durable::{fsync_dir, write_all_at_site};
use crate::failpoint;
use crate::persist::crc32;
use std::fmt;
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom};
use std::path::{Path, PathBuf};

const WAL_MAGIC: &[u8; 4] = b"AWAL";
const WAL_VERSION: u32 = 1;
const HEADER_LEN: u64 = 20;
const RECORD_HEADER_LEN: usize = 16;
/// Sanity cap on one record's payload; a length field above this is treated
/// as tail garbage, bounding allocations during replay of a damaged log.
const MAX_WAL_PAYLOAD: u32 = 1 << 30;

/// Errors raised by WAL operations.
#[derive(Debug)]
pub enum WalError {
    /// Underlying I/O failure (open, read, write, fsync, rename).
    Io(io::Error),
    /// The file does not start with the `AWAL` magic.
    BadMagic,
    /// The header names a format version this library doesn't understand.
    UnsupportedVersion(u32),
    /// The file is shorter than a complete header. A header is written and
    /// fsynced before any record, so this can only be the debris of a
    /// crashed `create` — [`Wal::open_or_create`] recreates it.
    HeaderTorn,
    /// The header is present but fails its CRC or is otherwise inconsistent.
    Corrupt(String),
    /// An append would break the monotonic generation sequence.
    NonMonotonic {
        /// The generation the log requires next (`last + 1`).
        expected: u64,
        /// The generation the caller tried to append.
        got: u64,
    },
}

impl fmt::Display for WalError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WalError::Io(e) => write!(f, "wal I/O error: {e}"),
            WalError::BadMagic => write!(f, "not an Aeetes WAL file (bad magic)"),
            WalError::UnsupportedVersion(v) => write!(f, "unsupported wal format version {v}"),
            WalError::HeaderTorn => write!(f, "wal file is shorter than its header (torn create)"),
            WalError::Corrupt(msg) => write!(f, "corrupt wal file: {msg}"),
            WalError::NonMonotonic { expected, got } => {
                write!(f, "wal append out of sequence: expected generation {expected}, got {got}")
            }
        }
    }
}

impl std::error::Error for WalError {}

impl From<io::Error> for WalError {
    fn from(e: io::Error) -> Self {
        WalError::Io(e)
    }
}

/// One committed record recovered from the log.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    /// The generation this delta produces when applied.
    pub generation: u64,
    /// The caller-defined delta payload.
    pub payload: Vec<u8>,
}

/// The result of replaying a log: the longest committed record prefix plus
/// how much tail debris (if any) was truncated away.
#[derive(Debug, Default)]
pub struct WalReplay {
    /// Committed records in append order; record `i` carries generation
    /// `base + i + 1`.
    pub records: Vec<WalRecord>,
    /// Bytes of torn/corrupt tail removed during recovery (0 on a clean
    /// log). Anything removed was never acknowledged.
    pub truncated_bytes: u64,
}

/// An open write-ahead log positioned for appending.
pub struct Wal {
    file: File,
    path: PathBuf,
    base: u64,
    last: u64,
    records: u64,
    /// Committed file length: header plus every fully-appended record.
    len: u64,
    /// Set when an append failed *and* the torn tail could not be erased;
    /// the log refuses further appends rather than bury a new record
    /// behind garbage where replay would never find it.
    broken: bool,
}

fn header_bytes(base: u64) -> [u8; HEADER_LEN as usize] {
    let mut h = [0u8; HEADER_LEN as usize];
    h[..4].copy_from_slice(WAL_MAGIC);
    h[4..8].copy_from_slice(&WAL_VERSION.to_le_bytes());
    h[8..16].copy_from_slice(&base.to_le_bytes());
    let crc = crc32(&h[..16]);
    h[16..20].copy_from_slice(&crc.to_le_bytes());
    h
}

impl Wal {
    /// Creates a fresh log at `path` (truncating any existing file) whose
    /// replay starts from engine generation `base`. The header is written,
    /// the file fsynced, and the parent directory fsynced before this
    /// returns, so a created log survives power loss.
    pub fn create(path: &Path, base: u64) -> Result<Wal, WalError> {
        let mut file = OpenOptions::new().read(true).write(true).create(true).truncate(true).open(path)?;
        write_all_at_site(&mut file, &header_bytes(base), "wal.create.write")?;
        failpoint::io_site("wal.create.sync")?;
        file.sync_all()?;
        if let Some(dir) = path.parent().filter(|p| !p.as_os_str().is_empty()) {
            fsync_dir(dir)?;
        } else {
            fsync_dir(Path::new("."))?;
        }
        Ok(Wal {
            file,
            path: path.to_path_buf(),
            base,
            last: base,
            records: 0,
            len: HEADER_LEN,
            broken: false,
        })
    }

    /// Opens an existing log, recovers the longest committed record prefix
    /// (truncating any torn tail back to it), and returns the log
    /// positioned for appending plus the recovered records.
    pub fn open(path: &Path) -> Result<(Wal, WalReplay), WalError> {
        failpoint::io_site("wal.open.read")?;
        let bytes = fs::read(path)?;
        if bytes.len() < HEADER_LEN as usize {
            return Err(WalError::HeaderTorn);
        }
        if &bytes[..4] != WAL_MAGIC {
            return Err(WalError::BadMagic);
        }
        let version = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
        if version != WAL_VERSION {
            return Err(WalError::UnsupportedVersion(version));
        }
        let expected = u32::from_le_bytes(bytes[16..20].try_into().expect("4 bytes"));
        let actual = crc32(&bytes[..16]);
        if expected != actual {
            return Err(WalError::Corrupt(format!("header checksum mismatch (expected {expected:#010x}, got {actual:#010x})")));
        }
        let base = u64::from_le_bytes(bytes[8..16].try_into().expect("8 bytes"));

        let mut replay = WalReplay::default();
        let mut pos = HEADER_LEN as usize;
        let mut last = base;
        loop {
            let rest = &bytes[pos..];
            if rest.len() < RECORD_HEADER_LEN {
                break; // incomplete record header: torn tail (or clean EOF)
            }
            let len = u32::from_le_bytes(rest[..4].try_into().expect("4 bytes"));
            if len > MAX_WAL_PAYLOAD {
                break; // implausible length: tail garbage
            }
            let len = len as usize;
            if rest.len() - RECORD_HEADER_LEN < len {
                break; // payload runs past EOF: torn tail
            }
            let generation = u64::from_le_bytes(rest[4..12].try_into().expect("8 bytes"));
            let crc = u32::from_le_bytes(rest[12..16].try_into().expect("4 bytes"));
            let payload = &rest[RECORD_HEADER_LEN..RECORD_HEADER_LEN + len];
            if crc32(payload) != crc {
                break; // damaged record
            }
            if generation != last + 1 {
                break; // out-of-sequence: not a record we ever acked here
            }
            replay.records.push(WalRecord { generation, payload: payload.to_vec() });
            last = generation;
            pos += RECORD_HEADER_LEN + len;
        }

        let committed = pos as u64;
        let mut file = OpenOptions::new().read(true).write(true).open(path)?;
        if (bytes.len() as u64) > committed {
            replay.truncated_bytes = bytes.len() as u64 - committed;
            file.set_len(committed)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;
        let records = replay.records.len() as u64;
        Ok((
            Wal {
                file,
                path: path.to_path_buf(),
                base,
                last,
                records,
                len: committed,
                broken: false,
            },
            replay,
        ))
    }

    /// Opens `path` if it holds a usable log, or creates a fresh one based
    /// at `base` when the file is missing or is the torn debris of a
    /// crashed create (shorter than one header — nothing in it was ever
    /// acknowledged). Real corruption still fails loudly.
    pub fn open_or_create(path: &Path, base: u64) -> Result<(Wal, WalReplay), WalError> {
        match Wal::open(path) {
            Ok(ok) => Ok(ok),
            Err(WalError::HeaderTorn) => Ok((Wal::create(path, base)?, WalReplay::default())),
            Err(WalError::Io(e)) if e.kind() == io::ErrorKind::NotFound => Ok((Wal::create(path, base)?, WalReplay::default())),
            Err(e) => Err(e),
        }
    }

    /// Appends one record without syncing. `generation` must be exactly
    /// `last_generation() + 1`. On a write failure the torn tail is erased
    /// (so the log stays appendable); if even that fails the log marks
    /// itself broken and refuses further appends.
    pub fn append(&mut self, generation: u64, payload: &[u8]) -> Result<(), WalError> {
        if self.broken {
            return Err(WalError::Corrupt("wal is broken after a failed append".into()));
        }
        if generation != self.last + 1 {
            return Err(WalError::NonMonotonic { expected: self.last + 1, got: generation });
        }
        if payload.len() as u64 > u64::from(MAX_WAL_PAYLOAD) {
            return Err(WalError::Corrupt(format!("payload of {} bytes exceeds the wal record cap", payload.len())));
        }
        let mut rec = Vec::with_capacity(RECORD_HEADER_LEN + payload.len());
        rec.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        rec.extend_from_slice(&generation.to_le_bytes());
        rec.extend_from_slice(&crc32(payload).to_le_bytes());
        rec.extend_from_slice(payload);
        if let Err(e) = write_all_at_site(&mut self.file, &rec, "wal.append.write") {
            // Roll the file back to the committed prefix so the next append
            // (or replay) doesn't trip over a half-written record.
            if self.file.set_len(self.len).is_err() || self.file.seek(SeekFrom::End(0)).is_err() {
                self.broken = true;
            }
            return Err(e.into());
        }
        self.len += rec.len() as u64;
        self.last = generation;
        self.records += 1;
        Ok(())
    }

    /// Makes every appended record durable. Callers must not acknowledge a
    /// delta before this returns for it.
    pub fn sync(&mut self) -> Result<(), WalError> {
        failpoint::io_site("wal.append.sync")?;
        self.file.sync_all()?;
        Ok(())
    }

    /// Replaces the log with a fresh empty one based at `new_base`
    /// (post-compaction: the snapshot now embeds every logged delta). The
    /// replacement is built as a temp file and renamed over the old log
    /// with file and directory fsyncs, so a crash leaves either the old
    /// complete log or the new empty one — never neither.
    pub fn reset(&mut self, new_base: u64) -> Result<(), WalError> {
        crate::durable::atomic_replace(&self.path, &header_bytes(new_base))?;
        self.file = OpenOptions::new().read(true).write(true).open(&self.path)?;
        self.file.seek(SeekFrom::End(0))?;
        self.base = new_base;
        self.last = new_base;
        self.records = 0;
        self.len = HEADER_LEN;
        self.broken = false;
        Ok(())
    }

    /// The engine generation replay starts from.
    pub fn base_generation(&self) -> u64 {
        self.base
    }

    /// The generation the most recent record produces (= base when empty).
    pub fn last_generation(&self) -> u64 {
        self.last
    }

    /// Number of committed records in the log.
    pub fn record_count(&self) -> u64 {
        self.records
    }

    /// Committed length of the log file in bytes.
    pub fn len_bytes(&self) -> u64 {
        self.len
    }

    /// The log's path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("aeetes-wal-{tag}-{}-{n}.wal", std::process::id()))
    }

    #[test]
    fn create_append_reopen_round_trip() {
        let path = tmp_path("roundtrip");
        let mut wal = Wal::create(&path, 5).unwrap();
        assert_eq!(wal.base_generation(), 5);
        assert_eq!(wal.last_generation(), 5);
        wal.append(6, b"alpha").unwrap();
        wal.append(7, b"").unwrap();
        wal.append(8, b"gamma-payload").unwrap();
        wal.sync().unwrap();
        drop(wal);

        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(wal.base_generation(), 5);
        assert_eq!(wal.last_generation(), 8);
        assert_eq!(wal.record_count(), 3);
        assert_eq!(replay.truncated_bytes, 0);
        let got: Vec<(u64, &[u8])> = replay.records.iter().map(|r| (r.generation, r.payload.as_slice())).collect();
        assert_eq!(got, vec![(6, b"alpha".as_slice()), (7, b"".as_slice()), (8, b"gamma-payload".as_slice())]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn non_monotonic_append_rejected() {
        let path = tmp_path("mono");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(2, b"x").unwrap();
        assert!(matches!(wal.append(2, b"y"), Err(WalError::NonMonotonic { expected: 3, got: 2 })));
        assert!(matches!(wal.append(5, b"y"), Err(WalError::NonMonotonic { expected: 3, got: 5 })));
        wal.append(3, b"y").unwrap();
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_truncated_on_open() {
        let path = tmp_path("torn");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(2, b"first").unwrap();
        wal.append(3, b"second").unwrap();
        wal.sync().unwrap();
        let committed = wal.len_bytes();
        drop(wal);
        // Simulate a crash mid-append: half a record of garbage at the tail.
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(&[0xAB; 9]);
        fs::write(&path, &bytes).unwrap();

        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(replay.records.len(), 2);
        assert_eq!(replay.truncated_bytes, 9);
        assert_eq!(wal.last_generation(), 3);
        assert_eq!(fs::metadata(&path).unwrap().len(), committed, "torn tail must be physically removed");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn appending_after_recovery_extends_the_committed_prefix() {
        let path = tmp_path("extend");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(2, b"keep").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        bytes.extend_from_slice(b"torn-debris");
        fs::write(&path, &bytes).unwrap();

        let (mut wal, _) = Wal::open(&path).unwrap();
        wal.append(3, b"after-recovery").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (_, replay) = Wal::open(&path).unwrap();
        let gens: Vec<u64> = replay.records.iter().map(|r| r.generation).collect();
        assert_eq!(gens, vec![2, 3]);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn header_damage_is_a_hard_error_not_a_recreate() {
        let path = tmp_path("header");
        let mut wal = Wal::create(&path, 1).unwrap();
        wal.append(2, b"x").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let mut bytes = fs::read(&path).unwrap();
        bytes[9] ^= 0xFF; // inside base_generation, guarded by the header CRC
        fs::write(&path, &bytes).unwrap();
        assert!(matches!(Wal::open(&path), Err(WalError::Corrupt(_))));
        assert!(matches!(Wal::open_or_create(&path, 1), Err(WalError::Corrupt(_))), "corruption must not be silently recreated");
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn short_create_debris_is_recreated() {
        let path = tmp_path("debris");
        fs::write(&path, b"AWAL").unwrap(); // crashed before the header completed
        let (wal, replay) = Wal::open_or_create(&path, 7).unwrap();
        assert_eq!(wal.base_generation(), 7);
        assert!(replay.records.is_empty());
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_compacts_to_empty_log_at_new_base() {
        let path = tmp_path("reset");
        let mut wal = Wal::create(&path, 1).unwrap();
        for g in 2..=6 {
            wal.append(g, format!("delta-{g}").as_bytes()).unwrap();
        }
        wal.sync().unwrap();
        wal.reset(6).unwrap();
        assert_eq!(wal.base_generation(), 6);
        assert_eq!(wal.record_count(), 0);
        wal.append(7, b"post-compact").unwrap();
        wal.sync().unwrap();
        drop(wal);
        let (wal, replay) = Wal::open(&path).unwrap();
        assert_eq!(wal.base_generation(), 6);
        assert_eq!(replay.records.len(), 1);
        assert_eq!(replay.records[0].generation, 7);
        fs::remove_file(&path).unwrap();
    }

    #[test]
    fn wrong_magic_and_version_rejected() {
        let path = tmp_path("magic");
        fs::write(&path, b"AEETxxxxxxxxxxxxxxxxxxxx").unwrap();
        assert!(matches!(Wal::open(&path), Err(WalError::BadMagic)));
        let mut h = header_bytes(1);
        h[4..8].copy_from_slice(&9u32.to_le_bytes());
        let crc = crc32(&h[..16]);
        h[16..20].copy_from_slice(&crc.to_le_bytes());
        fs::write(&path, h).unwrap();
        assert!(matches!(Wal::open(&path), Err(WalError::UnsupportedVersion(9))));
        fs::remove_file(&path).unwrap();
    }
}
