//! Corpus-level mention analytics — the paper's §1 motivating application:
//! "product analysis and reporting systems ... extract the substrings that
//! mentioned reference product names from those reviews" and aggregate them
//! as signals.

use crate::extractor::Aeetes;
use crate::nms::suppress_overlaps;
use crate::stats::ExtractStats;
use aeetes_text::{Document, EntityId};

/// Aggregated mention statistics over a document collection.
#[derive(Debug, Clone)]
pub struct MentionReport {
    /// Documents processed.
    pub documents: usize,
    /// Documents containing at least one mention.
    pub documents_with_mentions: usize,
    /// Total mentions (after per-region suppression when enabled).
    pub total_mentions: u64,
    /// Accumulated extraction statistics.
    pub stats: ExtractStats,
    counts: Vec<u64>,
}

impl MentionReport {
    /// Mentions of entity `e` across the collection.
    pub fn count(&self, e: EntityId) -> u64 {
        self.counts.get(e.idx()).copied().unwrap_or(0)
    }

    /// The `k` most-mentioned entities, descending (ties by entity id).
    pub fn top(&self, k: usize) -> Vec<(EntityId, u64)> {
        let mut pairs: Vec<(EntityId, u64)> = self
            .counts
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (EntityId(i as u32), c))
            .collect();
        pairs.sort_by_key(|&(e, c)| (std::cmp::Reverse(c), e));
        pairs.truncate(k);
        pairs
    }

    /// Entities mentioned at least once.
    pub fn distinct_entities(&self) -> usize {
        self.counts.iter().filter(|&&c| c > 0).count()
    }
}

/// Extracts over `docs` and aggregates per-entity mention counts.
///
/// With `best_per_region` the standard overlap suppression runs per document
/// first, so each document region contributes one mention (recommended for
/// analytics; raw thresholded pairs over-count every near-duplicate span).
pub fn mention_report<'a, I>(engine: &Aeetes, docs: I, tau: f64, best_per_region: bool) -> MentionReport
where
    I: IntoIterator<Item = &'a Document>,
{
    let mut report = MentionReport {
        documents: 0,
        documents_with_mentions: 0,
        total_mentions: 0,
        stats: ExtractStats::default(),
        counts: vec![0; engine.dictionary().len()],
    };
    for doc in docs {
        report.documents += 1;
        let (matches, stats) = engine.extract_with(doc, tau, engine.config().strategy);
        report.stats += stats;
        let matches = if best_per_region { suppress_overlaps(matches) } else { matches };
        if !matches.is_empty() {
            report.documents_with_mentions += 1;
        }
        for m in &matches {
            report.total_mentions += 1;
            report.counts[m.entity.idx()] += 1;
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeetesConfig;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn setup() -> (Aeetes, Vec<Document>) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("alpha one", &tok, &mut int);
        dict.push("beta two", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("alpha one", "a1", &tok, &mut int).unwrap();
        let engine = Aeetes::build(dict, &rules, &int, AeetesConfig::default());
        let docs: Vec<Document> = ["we saw alpha one and later a1 again", "beta two showed up once", "nothing in this one", "alpha one"]
            .iter()
            .map(|t| Document::parse(t, &tok, &mut int))
            .collect();
        (engine, docs)
    }

    #[test]
    fn counts_and_top() {
        let (engine, docs) = setup();
        let report = mention_report(&engine, docs.iter(), 0.9, true);
        assert_eq!(report.documents, 4);
        assert_eq!(report.documents_with_mentions, 3);
        assert_eq!(report.count(EntityId(0)), 3, "alpha one: two mentions in doc 0, one in doc 3");
        assert_eq!(report.count(EntityId(1)), 1);
        assert_eq!(report.total_mentions, 4);
        assert_eq!(report.distinct_entities(), 2);
        let top = report.top(1);
        assert_eq!(top, vec![(EntityId(0), 3)]);
        assert_eq!(report.top(10).len(), 2);
    }

    #[test]
    fn raw_counts_at_least_suppressed() {
        let (engine, docs) = setup();
        let best = mention_report(&engine, docs.iter(), 0.7, true);
        let raw = mention_report(&engine, docs.iter(), 0.7, false);
        assert!(raw.total_mentions >= best.total_mentions);
    }

    #[test]
    fn empty_collection() {
        let (engine, _) = setup();
        let report = mention_report(&engine, std::iter::empty(), 0.8, true);
        assert_eq!(report.documents, 0);
        assert_eq!(report.total_mentions, 0);
        assert!(report.top(5).is_empty());
    }
}
