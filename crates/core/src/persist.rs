//! Binary persistence of the off-line artifacts.
//!
//! The derived dictionary is the expensive part of preprocessing (rule
//! application over the whole entity table), so production deployments
//! build once and ship the artifact. [`save_engine`] serializes the
//! interner, the origin dictionary, the derived dictionary and the engine
//! configuration into a compact little-endian format; [`load_engine`]
//! restores them and rebuilds the clustered index (which is derived state —
//! rebuilding keeps the format small and version-stable).
//!
//! Format (version 2):
//!
//! ```text
//! magic  "AEET"            4 bytes
//! version u32
//! interner: u32 count, then per string: u32 byte-len + UTF-8 bytes
//! dictionary: u32 count, per entity: u32 raw-len + bytes, u32 n + n×u32 ids
//! derived: u32 count, per variant:
//!     u32 origin, u32 n + n×u32 token ids, u32 r + r×u32 rule ids, f64 weight
//! derive stats: 6×u64
//! config: u8 strategy, u8 metric, u64 max_derived
//! checksum: u32 CRC-32 (IEEE) of every preceding byte   (version ≥ 2 only)
//! ```
//!
//! Version 1 files are identical minus the checksum footer and still load
//! (they simply don't get integrity verification). The loader is hardened
//! against hostile input: the checksum is verified before any field is
//! parsed, every length field is validated against the bytes actually
//! remaining before allocation, and all cross-references (token ids,
//! origins, weights, enum tags) are range-checked. A corrupt or truncated
//! buffer yields a [`PersistError`], never a panic or an outsized
//! allocation.

use crate::config::AeetesConfig;
use crate::extractor::Aeetes;
use crate::strategy::Strategy;
use aeetes_rules::{DeriveConfig, DeriveStats, DerivedDictionary, DerivedEntity, RuleId};
use aeetes_sim::Metric;
use aeetes_text::{Dictionary, EntityId, Interner, TokenId};
use std::fmt;

const MAGIC: &[u8; 4] = b"AEET";
const VERSION: u32 = 2;
/// Oldest format version [`load_engine`] still accepts.
const MIN_VERSION: u32 = 1;
/// A token list longer than this could not be indexed anyway: the clustered
/// index addresses positions within a variant's sorted token set with `u16`.
const MAX_VARIANT_TOKENS: usize = u16::MAX as usize;
/// Smallest possible encoding of one derived variant (origin + two zero
/// counts + weight); used to cap pre-allocation against the bytes remaining.
const MIN_VARIANT_BYTES: usize = 4 + 4 + 4 + 8;

/// Errors raised while loading a persisted engine.
#[derive(Debug)]
pub enum PersistError {
    /// The buffer does not start with the `AEET` magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The checksum footer does not match the payload (version ≥ 2).
    ChecksumMismatch {
        /// CRC-32 recorded in the file footer.
        expected: u32,
        /// CRC-32 computed over the payload actually read.
        actual: u32,
    },
    /// The buffer ended early or a length field is inconsistent.
    Truncated(&'static str),
    /// A cross-reference (token, origin, rule id) is out of range.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an Aeetes engine file (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported engine format version {v}"),
            PersistError::ChecksumMismatch { expected, actual } => {
                write!(f, "engine file checksum mismatch (expected {expected:#010x}, got {actual:#010x})")
            }
            PersistError::Truncated(what) => write!(f, "truncated engine file while reading {what}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt engine file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), the same checksum as gzip.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    const fn make_table() -> [u32; 256] {
        let mut table = [0u32; 256];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            table[i] = c;
            i += 1;
        }
        table
    }
    static TABLE: [u32; 256] = make_table();
    let mut c = !0u32;
    for &b in data {
        c = TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

fn put_ids(buf: &mut Vec<u8>, ids: &[TokenId]) {
    put_u32(buf, ids.len() as u32);
    for t in ids {
        put_u32(buf, t.0);
    }
}

/// Serializes `engine` (and the interner its token ids refer to) into a
/// standalone byte buffer, ending with a CRC-32 integrity footer.
pub fn save_engine(engine: &Aeetes, interner: &Interner) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 << 16);
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);

    put_u32(&mut buf, interner.len() as u32);
    for s in interner.iter_strings() {
        put_str(&mut buf, s);
    }

    let dict = engine.dictionary();
    put_u32(&mut buf, dict.len() as u32);
    for (_, e) in dict.iter() {
        put_str(&mut buf, &e.raw);
        put_ids(&mut buf, &e.tokens);
    }

    let dd = engine.derived();
    put_u32(&mut buf, dd.len() as u32);
    for (_, d) in dd.iter() {
        put_u32(&mut buf, d.origin.0);
        put_ids(&mut buf, &d.tokens);
        put_u32(&mut buf, d.rules.len() as u32);
        for r in &d.rules {
            put_u32(&mut buf, r.0);
        }
        buf.extend_from_slice(&d.weight.to_le_bytes());
    }
    let st = dd.stats();
    for v in [
        st.origins,
        st.derived,
        st.applicable_total,
        st.selected_total,
        st.truncated_entities,
        st.duplicates_dropped,
    ] {
        put_u64(&mut buf, v as u64);
    }

    let config = engine.config();
    buf.push(match config.strategy {
        Strategy::Simple => 0,
        Strategy::Skip => 1,
        Strategy::Dynamic => 2,
        Strategy::Lazy => 3,
    });
    buf.push(match config.metric {
        Metric::Jaccard => 0,
        Metric::Dice => 1,
        Metric::Cosine => 2,
        Metric::Overlap => 3,
    });
    put_u64(&mut buf, config.derive.max_derived as u64);

    let checksum = crc32(&buf);
    put_u32(&mut buf, checksum);
    buf
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize, what: &'static str) -> Result<(), PersistError> {
        if self.buf.len() < n {
            Err(PersistError::Truncated(what))
        } else {
            Ok(())
        }
    }
    fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        self.need(n, what)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    /// Rejects a count field whose elements (at `min_size` bytes each)
    /// could not possibly fit in the remaining buffer. Called before any
    /// `with_capacity` so forged counts can't drive huge allocations.
    fn check_count(&self, n: usize, min_size: usize, what: &'static str) -> Result<(), PersistError> {
        match n.checked_mul(min_size) {
            Some(total) if total <= self.buf.len() => Ok(()),
            _ => Err(PersistError::Truncated(what)),
        }
    }
    fn u8(&mut self, what: &'static str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4-byte slice")))
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8-byte slice")))
    }
    fn f64(&mut self, what: &'static str) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8-byte slice")))
    }
    fn str(&mut self, what: &'static str) -> Result<String, PersistError> {
        let n = self.u32(what)? as usize;
        let raw = self.take(n, what)?;
        Ok(std::str::from_utf8(raw)
            .map_err(|_| PersistError::Corrupt(format!("invalid UTF-8 in {what}")))?
            .to_string())
    }
    /// Reads a `u32` count followed by that many range-checked token ids.
    /// The count is validated against the remaining bytes (4 per id) before
    /// any allocation, so a forged length can't trigger an outsized
    /// `Vec::with_capacity`.
    fn ids(&mut self, max: u32, what: &'static str) -> Result<Vec<TokenId>, PersistError> {
        let n = self.u32(what)? as usize;
        if n > MAX_VARIANT_TOKENS {
            return Err(PersistError::Corrupt(format!("{what}: token list of {n} exceeds the index limit of {MAX_VARIANT_TOKENS}")));
        }
        let raw = self.take(n.checked_mul(4).ok_or(PersistError::Truncated(what))?, what)?;
        let mut out = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(4) {
            let id = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if id >= max {
                return Err(PersistError::Corrupt(format!("token id {id} out of range {max} in {what}")));
            }
            out.push(TokenId(id));
        }
        Ok(out)
    }
}

/// Restores an engine (and its interner) previously written by
/// [`save_engine`]. The clustered index is rebuilt from the derived
/// dictionary. Accepts format versions 1 (no checksum) and 2.
pub fn load_engine(bytes: &[u8]) -> Result<(Aeetes, Interner), PersistError> {
    let mut r = Reader { buf: bytes };
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32("version")?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    if version >= 2 {
        // Verify integrity before trusting any length or id field.
        let payload_len = bytes.len().checked_sub(4).ok_or(PersistError::Truncated("checksum"))?;
        if payload_len < 8 {
            return Err(PersistError::Truncated("checksum"));
        }
        let expected = u32::from_le_bytes(bytes[payload_len..].try_into().expect("4-byte footer"));
        let actual = crc32(&bytes[..payload_len]);
        if expected != actual {
            return Err(PersistError::ChecksumMismatch { expected, actual });
        }
        // Drop the footer from the reader's view of the payload.
        r.buf = &bytes[8..payload_len];
    }

    let mut interner = Interner::new();
    let n_tokens = r.u32("interner size")?;
    // Each interned string takes at least its 4-byte length prefix.
    r.check_count(n_tokens as usize, 4, "interner size")?;
    for _ in 0..n_tokens {
        let s = r.str("interner string")?;
        interner.intern(&s);
    }

    let mut dict = Dictionary::new();
    let n_entities = r.u32("dictionary size")?;
    // Each entity takes at least its two 4-byte length prefixes.
    r.check_count(n_entities as usize, 8, "dictionary size")?;
    for _ in 0..n_entities {
        let raw = r.str("entity raw")?;
        let tokens = r.ids(n_tokens, "entity tokens")?;
        dict.push_tokens(raw, tokens);
    }

    let n_derived = r.u32("derived size")? as usize;
    r.check_count(n_derived, MIN_VARIANT_BYTES, "derived size")?;
    let mut derived = Vec::with_capacity(n_derived);
    for _ in 0..n_derived {
        let origin = r.u32("variant origin")?;
        if origin >= n_entities {
            return Err(PersistError::Corrupt(format!("origin {origin} out of range {n_entities}")));
        }
        let tokens = r.ids(n_tokens, "variant tokens")?;
        let n_rules = r.u32("variant rules")? as usize;
        let raw_rules = r.take(n_rules.checked_mul(4).ok_or(PersistError::Truncated("variant rules"))?, "variant rule id")?;
        let rules = raw_rules
            .chunks_exact(4)
            .map(|c| RuleId(u32::from_le_bytes(c.try_into().expect("4-byte chunk"))))
            .collect();
        let weight = r.f64("variant weight")?;
        if !(weight > 0.0 && weight <= 1.0) {
            return Err(PersistError::Corrupt(format!("variant weight {weight} outside (0, 1]")));
        }
        derived.push(DerivedEntity { origin: EntityId(origin), tokens, rules, weight });
    }
    let stats = DeriveStats {
        origins: r.u64("stats")? as usize,
        derived: r.u64("stats")? as usize,
        applicable_total: r.u64("stats")? as usize,
        selected_total: r.u64("stats")? as usize,
        truncated_entities: r.u64("stats")? as usize,
        duplicates_dropped: r.u64("stats")? as usize,
    };
    let dd = DerivedDictionary::from_parts(derived, n_entities as usize, stats).map_err(PersistError::Corrupt)?;

    let strategy = match r.u8("strategy")? {
        0 => Strategy::Simple,
        1 => Strategy::Skip,
        2 => Strategy::Dynamic,
        3 => Strategy::Lazy,
        other => return Err(PersistError::Corrupt(format!("unknown strategy tag {other}"))),
    };
    let metric = match r.u8("metric")? {
        0 => Metric::Jaccard,
        1 => Metric::Dice,
        2 => Metric::Cosine,
        3 => Metric::Overlap,
        other => return Err(PersistError::Corrupt(format!("unknown metric tag {other}"))),
    };
    let max_derived = r.u64("max_derived")? as usize;
    if !r.buf.is_empty() {
        return Err(PersistError::Corrupt(format!("{} trailing bytes after engine data", r.buf.len())));
    }
    let config = AeetesConfig {
        derive: DeriveConfig { max_derived, ..DeriveConfig::default() },
        strategy,
        metric,
        ..AeetesConfig::default()
    };

    Ok((Aeetes::from_parts(dict, dd, config), interner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Document, Tokenizer};

    fn sample_engine() -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("Purdue University USA", &tok, &mut int);
        dict.push("UQ AU", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap();
        rules.push_weighted_str("AU", "Australia", 0.9, &tok, &mut int).unwrap();
        let engine = Aeetes::build(dict, &rules, AeetesConfig::default());
        (engine, int, tok)
    }

    #[test]
    fn round_trip_preserves_results() {
        let (engine, mut int, tok) = sample_engine();
        let bytes = save_engine(&engine, &int);
        let (loaded, mut loaded_int) = load_engine(&bytes).expect("load");

        let doc_text = "she left UQ Australia for Purdue University USA";
        let doc_a = Document::parse(doc_text, &tok, &mut int);
        let doc_b = Document::parse(doc_text, &tok, &mut loaded_int);
        for tau in [0.7, 0.9] {
            let a = engine.extract(&doc_a, tau);
            let b = loaded.extract(&doc_b, tau);
            assert_eq!(a, b, "tau={tau}");
        }
        assert_eq!(loaded.dictionary().len(), engine.dictionary().len());
        assert_eq!(loaded.derived().len(), engine.derived().len());
        assert_eq!(loaded.derived().stats(), engine.derived().stats());
        assert_eq!(loaded.config().strategy, engine.config().strategy);
    }

    #[test]
    fn round_trip_preserves_interner() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        let (_, loaded_int) = load_engine(&bytes).unwrap();
        assert_eq!(loaded_int.len(), int.len());
        for (a, b) in int.iter_strings().zip(loaded_int.iter_strings()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(load_engine(b"NOPE1234"), Err(PersistError::BadMagic)));
        assert!(matches!(load_engine(b"AE"), Err(PersistError::Truncated(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let (engine, int, _) = sample_engine();
        let mut bytes = save_engine(&engine, &int);
        bytes[4] = 99;
        assert!(matches!(load_engine(&bytes), Err(PersistError::UnsupportedVersion(99))));
    }

    #[test]
    fn version_one_without_checksum_still_loads() {
        // A v1 file is the v2 payload minus the footer, with the version
        // field rewritten — exactly what pre-checksum builds produced.
        let (engine, int, _) = sample_engine();
        let mut bytes = save_engine(&engine, &int);
        bytes.truncate(bytes.len() - 4);
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let (loaded, _) = load_engine(&bytes).expect("v1 file must load");
        assert_eq!(loaded.derived().len(), engine.derived().len());
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Flip one payload byte: the checksum must catch it up front.
        let mut b = bytes.clone();
        let mid = b.len() / 2;
        b[mid] ^= 0x01;
        assert!(
            matches!(load_engine(&b), Err(PersistError::ChecksumMismatch { .. })),
            "single-bit payload corruption must fail the checksum"
        );
        // Flip a footer byte: same outcome (expected != actual).
        let mut b = bytes.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        assert!(matches!(load_engine(&b), Err(PersistError::ChecksumMismatch { .. })));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(load_engine(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (engine, int, _) = sample_engine();
        let mut bytes = save_engine(&engine, &int);
        bytes.extend_from_slice(b"junk");
        assert!(load_engine(&bytes).is_err(), "trailing bytes accepted");
    }

    #[test]
    fn corrupt_token_id_rejected() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Flip a byte anywhere and require "no panic" (error OR a
        // still-consistent engine; with the v2 checksum it is always an
        // error).
        for i in 8..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = load_engine(&b); // must not panic
        }
    }

    #[test]
    fn oversized_length_fields_fail_without_allocating() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Overwrite each 4-byte window with u32::MAX. Whatever field that
        // lands on (counts, lengths, ids), the loader must neither panic
        // nor reserve memory proportional to the forged value.
        for i in (8..bytes.len().saturating_sub(4)).step_by(2) {
            let mut b = bytes.clone();
            b[i..i + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let _ = load_engine(&b); // must not panic or OOM
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn display_messages() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(7).to_string().contains('7'));
        assert!(PersistError::Truncated("x").to_string().contains('x'));
        assert!(PersistError::Corrupt("y".into()).to_string().contains('y'));
        assert!(PersistError::ChecksumMismatch { expected: 1, actual: 2 }.to_string().contains("checksum"));
    }
}
