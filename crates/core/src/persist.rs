//! Binary persistence of the off-line artifacts.
//!
//! The derived dictionary is the expensive part of preprocessing (rule
//! application over the whole entity table), so production deployments
//! build once and ship the artifact. [`save_engine`] serializes the
//! interner, the origin dictionary, the derived dictionary and the engine
//! configuration into a compact little-endian format; [`load_engine`]
//! restores them and rebuilds the clustered index (which is derived state —
//! rebuilding keeps the format small and version-stable).
//!
//! Format (version 1):
//!
//! ```text
//! magic  "AEET"            4 bytes
//! version u32
//! interner: u32 count, then per string: u32 byte-len + UTF-8 bytes
//! dictionary: u32 count, per entity: u32 raw-len + bytes, u32 n + n×u32 ids
//! derived: u32 count, per variant:
//!     u32 origin, u32 n + n×u32 token ids, u32 r + r×u32 rule ids, f64 weight
//! derive stats: 6×u64
//! config: u8 strategy, u8 metric, u64 max_derived
//! ```

use crate::config::AeetesConfig;
use crate::extractor::Aeetes;
use crate::strategy::Strategy;
use aeetes_rules::{DeriveConfig, DeriveStats, DerivedDictionary, DerivedEntity, RuleId};
use aeetes_sim::Metric;
use aeetes_text::{Dictionary, EntityId, Interner, TokenId};
use bytes::{Buf, BufMut, Bytes, BytesMut};
use std::fmt;

const MAGIC: &[u8; 4] = b"AEET";
const VERSION: u32 = 1;

/// Errors raised while loading a persisted engine.
#[derive(Debug)]
pub enum PersistError {
    /// The buffer does not start with the `AEET` magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The buffer ended early or a length field is inconsistent.
    Truncated(&'static str),
    /// A cross-reference (token, origin, rule id) is out of range.
    Corrupt(String),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an Aeetes engine file (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported engine format version {v}"),
            PersistError::Truncated(what) => write!(f, "truncated engine file while reading {what}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt engine file: {msg}"),
        }
    }
}

impl std::error::Error for PersistError {}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_ids(buf: &mut BytesMut, ids: &[TokenId]) {
    buf.put_u32_le(ids.len() as u32);
    for t in ids {
        buf.put_u32_le(t.0);
    }
}

/// Serializes `engine` (and the interner its token ids refer to) into a
/// standalone byte buffer.
pub fn save_engine(engine: &Aeetes, interner: &Interner) -> Bytes {
    let mut buf = BytesMut::with_capacity(1 << 16);
    buf.put_slice(MAGIC);
    buf.put_u32_le(VERSION);

    buf.put_u32_le(interner.len() as u32);
    for s in interner.iter_strings() {
        put_str(&mut buf, s);
    }

    let dict = engine.dictionary();
    buf.put_u32_le(dict.len() as u32);
    for (_, e) in dict.iter() {
        put_str(&mut buf, &e.raw);
        put_ids(&mut buf, &e.tokens);
    }

    let dd = engine.derived();
    buf.put_u32_le(dd.len() as u32);
    for (_, d) in dd.iter() {
        buf.put_u32_le(d.origin.0);
        put_ids(&mut buf, &d.tokens);
        buf.put_u32_le(d.rules.len() as u32);
        for r in &d.rules {
            buf.put_u32_le(r.0);
        }
        buf.put_f64_le(d.weight);
    }
    let st = dd.stats();
    for v in [st.origins, st.derived, st.applicable_total, st.selected_total, st.truncated_entities, st.duplicates_dropped]
    {
        buf.put_u64_le(v as u64);
    }

    let config = engine.config();
    buf.put_u8(match config.strategy {
        Strategy::Simple => 0,
        Strategy::Skip => 1,
        Strategy::Dynamic => 2,
        Strategy::Lazy => 3,
    });
    buf.put_u8(match config.metric {
        Metric::Jaccard => 0,
        Metric::Dice => 1,
        Metric::Cosine => 2,
        Metric::Overlap => 3,
    });
    buf.put_u64_le(config.derive.max_derived as u64);
    buf.freeze()
}

struct Reader<'a> {
    buf: &'a [u8],
}

impl<'a> Reader<'a> {
    fn need(&self, n: usize, what: &'static str) -> Result<(), PersistError> {
        if self.buf.remaining() < n {
            Err(PersistError::Truncated(what))
        } else {
            Ok(())
        }
    }
    fn u8(&mut self, what: &'static str) -> Result<u8, PersistError> {
        self.need(1, what)?;
        Ok(self.buf.get_u8())
    }
    fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        self.need(4, what)?;
        Ok(self.buf.get_u32_le())
    }
    fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        self.need(8, what)?;
        Ok(self.buf.get_u64_le())
    }
    fn f64(&mut self, what: &'static str) -> Result<f64, PersistError> {
        self.need(8, what)?;
        Ok(self.buf.get_f64_le())
    }
    fn str(&mut self, what: &'static str) -> Result<String, PersistError> {
        let n = self.u32(what)? as usize;
        self.need(n, what)?;
        let out = std::str::from_utf8(&self.buf[..n])
            .map_err(|_| PersistError::Corrupt(format!("invalid UTF-8 in {what}")))?
            .to_string();
        self.buf.advance(n);
        Ok(out)
    }
    fn ids(&mut self, max: u32, what: &'static str) -> Result<Vec<TokenId>, PersistError> {
        let n = self.u32(what)? as usize;
        self.need(n * 4, what)?;
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            let id = self.buf.get_u32_le();
            if id >= max {
                return Err(PersistError::Corrupt(format!("token id {id} out of range {max} in {what}")));
            }
            out.push(TokenId(id));
        }
        Ok(out)
    }
}

/// Restores an engine (and its interner) previously written by
/// [`save_engine`]. The clustered index is rebuilt from the derived
/// dictionary.
pub fn load_engine(bytes: &[u8]) -> Result<(Aeetes, Interner), PersistError> {
    let mut r = Reader { buf: bytes };
    r.need(4, "magic")?;
    if &r.buf[..4] != MAGIC {
        return Err(PersistError::BadMagic);
    }
    r.buf.advance(4);
    let version = r.u32("version")?;
    if version != VERSION {
        return Err(PersistError::UnsupportedVersion(version));
    }

    let mut interner = Interner::new();
    let n_tokens = r.u32("interner size")?;
    for _ in 0..n_tokens {
        let s = r.str("interner string")?;
        interner.intern(&s);
    }

    let mut dict = Dictionary::new();
    let n_entities = r.u32("dictionary size")?;
    for _ in 0..n_entities {
        let raw = r.str("entity raw")?;
        let tokens = r.ids(n_tokens, "entity tokens")?;
        dict.push_tokens(raw, tokens);
    }

    let n_derived = r.u32("derived size")?;
    let mut derived = Vec::with_capacity(n_derived as usize);
    for _ in 0..n_derived {
        let origin = r.u32("variant origin")?;
        if origin >= n_entities {
            return Err(PersistError::Corrupt(format!("origin {origin} out of range {n_entities}")));
        }
        let tokens = r.ids(n_tokens, "variant tokens")?;
        let n_rules = r.u32("variant rules")? as usize;
        let mut rules = Vec::with_capacity(n_rules);
        for _ in 0..n_rules {
            rules.push(RuleId(r.u32("variant rule id")?));
        }
        let weight = r.f64("variant weight")?;
        if !(weight > 0.0 && weight <= 1.0) {
            return Err(PersistError::Corrupt(format!("variant weight {weight} outside (0, 1]")));
        }
        derived.push(DerivedEntity { origin: EntityId(origin), tokens, rules, weight });
    }
    let stats = DeriveStats {
        origins: r.u64("stats")? as usize,
        derived: r.u64("stats")? as usize,
        applicable_total: r.u64("stats")? as usize,
        selected_total: r.u64("stats")? as usize,
        truncated_entities: r.u64("stats")? as usize,
        duplicates_dropped: r.u64("stats")? as usize,
    };
    let dd = DerivedDictionary::from_parts(derived, n_entities as usize, stats).map_err(PersistError::Corrupt)?;

    let strategy = match r.u8("strategy")? {
        0 => Strategy::Simple,
        1 => Strategy::Skip,
        2 => Strategy::Dynamic,
        3 => Strategy::Lazy,
        other => return Err(PersistError::Corrupt(format!("unknown strategy tag {other}"))),
    };
    let metric = match r.u8("metric")? {
        0 => Metric::Jaccard,
        1 => Metric::Dice,
        2 => Metric::Cosine,
        3 => Metric::Overlap,
        other => return Err(PersistError::Corrupt(format!("unknown metric tag {other}"))),
    };
    let max_derived = r.u64("max_derived")? as usize;
    let config = AeetesConfig { derive: DeriveConfig { max_derived, ..DeriveConfig::default() }, strategy, metric };

    Ok((Aeetes::from_parts(dict, dd, config), interner))
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Document, Tokenizer};

    fn sample_engine() -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("Purdue University USA", &tok, &mut int);
        dict.push("UQ AU", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap();
        rules.push_weighted_str("AU", "Australia", 0.9, &tok, &mut int).unwrap();
        let engine = Aeetes::build(dict, &rules, AeetesConfig::default());
        (engine, int, tok)
    }

    #[test]
    fn round_trip_preserves_results() {
        let (engine, mut int, tok) = sample_engine();
        let bytes = save_engine(&engine, &int);
        let (loaded, mut loaded_int) = load_engine(&bytes).expect("load");

        let doc_text = "she left UQ Australia for Purdue University USA";
        let doc_a = Document::parse(doc_text, &tok, &mut int);
        let doc_b = Document::parse(doc_text, &tok, &mut loaded_int);
        for tau in [0.7, 0.9] {
            let a = engine.extract(&doc_a, tau);
            let b = loaded.extract(&doc_b, tau);
            assert_eq!(a, b, "tau={tau}");
        }
        assert_eq!(loaded.dictionary().len(), engine.dictionary().len());
        assert_eq!(loaded.derived().len(), engine.derived().len());
        assert_eq!(loaded.derived().stats(), engine.derived().stats());
        assert_eq!(loaded.config().strategy, engine.config().strategy);
    }

    #[test]
    fn round_trip_preserves_interner() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        let (_, loaded_int) = load_engine(&bytes).unwrap();
        assert_eq!(loaded_int.len(), int.len());
        for (a, b) in int.iter_strings().zip(loaded_int.iter_strings()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(load_engine(b"NOPE1234"), Err(PersistError::BadMagic)));
        assert!(matches!(load_engine(b"AE"), Err(PersistError::Truncated(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let (engine, int, _) = sample_engine();
        let mut bytes = save_engine(&engine, &int).to_vec();
        bytes[4] = 99;
        assert!(matches!(load_engine(&bytes), Err(PersistError::UnsupportedVersion(99))));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(load_engine(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn corrupt_token_id_rejected() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int).to_vec();
        // Find the dictionary's first token id and set it out of range:
        // simplest robust approach — flip a byte late in the buffer and
        // require "no panic" (error OR a still-consistent engine).
        for i in 8..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = load_engine(&b); // must not panic
        }
    }

    #[test]
    fn display_messages() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(7).to_string().contains('7'));
        assert!(PersistError::Truncated("x").to_string().contains('x'));
        assert!(PersistError::Corrupt("y".into()).to_string().contains('y'));
    }
}
