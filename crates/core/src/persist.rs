//! Binary persistence of the off-line artifacts.
//!
//! The derived dictionary is the expensive part of preprocessing (rule
//! application over the whole entity table), so production deployments
//! build once and ship the artifact. [`save_engine`] serializes the
//! interner, the origin dictionary, the derived dictionary and the engine
//! configuration into a compact little-endian format; [`load_engine`]
//! restores them and rebuilds the clustered index (which is derived state —
//! rebuilding keeps the format small and version-stable).
//!
//! Format (version 2, the single-engine layout [`save_engine`] writes):
//!
//! ```text
//! magic  "AEET"            4 bytes
//! version u32
//! interner: u32 count, then per string: u32 byte-len + UTF-8 bytes
//! dictionary: u32 count, per entity: u32 raw-len + bytes, u32 n + n×u32 ids
//! derived: u32 count, per variant:
//!     u32 origin, u32 n + n×u32 token ids, u32 r + r×u32 rule ids, f64 weight
//! derive stats: 6×u64
//! config: u8 strategy, u8 metric, u64 max_derived
//! checksum: u32 CRC-32 (IEEE) of every preceding byte   (version ≥ 2 only)
//! ```
//!
//! Format version 3 ([`save_sharded`]) carries a sharded engine: the derived
//! dictionary is split into per-shard *segments*, each independently
//! CRC-guarded, and the artifact additionally records the synonym rule table
//! (needed to re-derive affected shards on a dictionary delta) and removal
//! tombstones:
//!
//! ```text
//! magic "AEET", version u32 = 3
//! interner, dictionary            (as v2)
//! removed: u32 count + n×u32 origin-entity ids (tombstones)
//! rules: u32 count, per rule: u32 l + l×u32 ids, u32 r + r×u32 ids, f64 w
//! config: u8 strategy, u8 metric, u64 max_derived
//! segments: u32 count, per segment:
//!     u32 payload-len, payload (u32 derived count + variants + 6×u64 stats),
//!     u32 CRC-32 of the payload
//! checksum: u32 CRC-32 of every preceding byte
//! ```
//!
//! Format version 4 is v3 plus one field: the engine's generation number,
//! a `u64` immediately after the version word. Persisting it lets a
//! restarted server (or a WAL compaction) resume the generation sequence
//! exactly where the saved engine left off instead of renumbering from 1:
//!
//! ```text
//! magic "AEET", version u32 = 4
//! generation u64                  (the saved engine's generation id)
//! ...rest identical to v3...
//! ```
//!
//! Version 1 files are identical to v2 minus the checksum footer and still
//! load (they simply don't get integrity verification); [`load_engine`]
//! accepts v1–v4 (merging v3/v4 segments back into one derived dictionary),
//! and [`load_sharded`] accepts the same versions (wrapping v1/v2 as one
//! segment with generation 1). The loader is hardened against hostile
//! input: the checksum is
//! verified before any field is parsed, every length field is validated
//! against the bytes actually remaining before allocation, and all
//! cross-references (token ids, origins, weights, enum tags) are
//! range-checked. A corrupt or truncated buffer yields a [`PersistError`],
//! never a panic or an outsized allocation.

use crate::config::AeetesConfig;
use crate::extractor::Aeetes;
use crate::strategy::Strategy;
use aeetes_rules::{DeriveConfig, DeriveStats, DerivedDictionary, DerivedEntity, RuleId, RuleSet};
use aeetes_sim::Metric;
use aeetes_text::{Dictionary, EntityId, Interner, TokenId};
use std::fmt;

pub(crate) const MAGIC: &[u8; 4] = b"AEET";
const VERSION: u32 = 2;
/// First sharded format version (no generation field).
const VERSION_SHARDED: u32 = 3;
/// Current sharded format version ([`save_sharded`]): v3 + generation id.
const VERSION_SHARDED_GEN: u32 = 4;
/// The flat, mmap-able frozen format ([`crate::frozen`]). Not a
/// [`load_sharded`] format: the v5 layout is opened zero-copy by
/// [`crate::frozen::open_frozen`] instead of deserialized here.
pub(crate) const VERSION_FROZEN: u32 = 5;
/// Oldest format version [`load_engine`] still accepts.
const MIN_VERSION: u32 = 1;
/// A token list longer than this could not be indexed anyway: the clustered
/// index addresses positions within a variant's sorted token set with `u16`.
const MAX_VARIANT_TOKENS: usize = u16::MAX as usize;
/// Smallest possible encoding of one derived variant (origin + two zero
/// counts + weight); used to cap pre-allocation against the bytes remaining.
const MIN_VARIANT_BYTES: usize = 4 + 4 + 4 + 8;

/// Errors raised while loading a persisted engine.
#[derive(Debug)]
pub enum PersistError {
    /// The buffer does not start with the `AEET` magic.
    BadMagic,
    /// The format version is newer than this library understands.
    UnsupportedVersion(u32),
    /// The checksum footer does not match the payload (version ≥ 2).
    ChecksumMismatch {
        /// CRC-32 recorded in the file footer.
        expected: u32,
        /// CRC-32 computed over the payload actually read.
        actual: u32,
    },
    /// The buffer ended early or a length field is inconsistent.
    Truncated(&'static str),
    /// A cross-reference (token, origin, rule id) is out of range.
    Corrupt(String),
    /// An I/O error while reading or mapping an artifact file.
    Io(std::io::Error),
}

impl fmt::Display for PersistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PersistError::BadMagic => write!(f, "not an Aeetes engine file (bad magic)"),
            PersistError::UnsupportedVersion(v) => write!(f, "unsupported engine format version {v}"),
            PersistError::ChecksumMismatch { expected, actual } => {
                write!(f, "engine file checksum mismatch (expected {expected:#010x}, got {actual:#010x})")
            }
            PersistError::Truncated(what) => write!(f, "truncated engine file while reading {what}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt engine file: {msg}"),
            PersistError::Io(e) => write!(f, "engine file I/O error: {e}"),
        }
    }
}

impl std::error::Error for PersistError {}

/// CRC-32 (IEEE 802.3 polynomial, reflected), the same checksum as gzip.
///
/// The frozen (v5) open path checksums the whole artifact before trusting
/// a single offset, which puts this function on the cold-start critical
/// path for multi-megabyte indexes. Large inputs are therefore split
/// across threads and the per-chunk CRCs merged with the standard GF(2)
/// combine — bit-identical to the serial computation.
pub(crate) fn crc32(data: &[u8]) -> u32 {
    // Below this size thread spawns cost more than they save.
    const PARALLEL_THRESHOLD: usize = 1 << 21;
    let threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get).min(8);
    if data.len() < PARALLEL_THRESHOLD || threads < 2 {
        return crc32_serial(data);
    }
    let chunk = data.len().div_ceil(threads);
    let crcs: Vec<(u32, u64)> = std::thread::scope(|s| {
        let handles: Vec<_> = data.chunks(chunk).map(|c| s.spawn(move || (crc32_serial(c), c.len() as u64))).collect();
        handles.into_iter().map(|h| h.join().expect("crc worker")).collect()
    });
    let mut iter = crcs.into_iter();
    let (mut acc, _) = iter.next().expect("at least one chunk");
    for (crc, len) in iter {
        acc = crc32_combine(acc, crc, len);
    }
    acc
}

/// `crc32(a ++ b)` from `crc32(a)`, `crc32(b)` and `b`'s length, by
/// advancing `crc1` through `len2` zero bytes with GF(2) matrix powers
/// (zlib's `crc32_combine`): O(log len2), no data access.
fn crc32_combine(crc1: u32, crc2: u32, len2: u64) -> u32 {
    fn times(mat: &[u32; 32], mut vec: u32) -> u32 {
        let mut sum = 0;
        let mut i = 0;
        while vec != 0 {
            if vec & 1 != 0 {
                sum ^= mat[i];
            }
            vec >>= 1;
            i += 1;
        }
        sum
    }
    fn square(out: &mut [u32; 32], mat: &[u32; 32]) {
        for n in 0..32 {
            out[n] = times(mat, mat[n]);
        }
    }
    if len2 == 0 {
        return crc1;
    }
    // odd = the one-zero-bit operator, then repeatedly square.
    let mut odd = [0u32; 32];
    odd[0] = 0xEDB8_8320;
    let mut row = 1u32;
    for entry in odd.iter_mut().skip(1) {
        *entry = row;
        row <<= 1;
    }
    let mut even = [0u32; 32];
    square(&mut even, &odd);
    square(&mut odd, &even);
    let mut crc1 = crc1;
    let mut len2 = len2;
    loop {
        square(&mut even, &odd);
        if len2 & 1 != 0 {
            crc1 = times(&even, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
        square(&mut odd, &even);
        if len2 & 1 != 0 {
            crc1 = times(&odd, crc1);
        }
        len2 >>= 1;
        if len2 == 0 {
            break;
        }
    }
    crc1 ^ crc2
}

/// One thread's worth of CRC: the carry-less-multiply kernel where the
/// CPU has it (x86-64 `pclmulqdq`, ~an order of magnitude faster), the
/// slice-by-16 table loop everywhere else. Results are identical.
fn crc32_serial(data: &[u8]) -> u32 {
    #[cfg(target_arch = "x86_64")]
    if data.len() >= 64 && clmul::supported() {
        let head = data.len() & !15;
        // SAFETY: feature support was just checked; `head` is a multiple
        // of 16 and at least 64.
        let crc = unsafe { clmul::crc32(&data[..head]) };
        return !crc32_table_update(!crc, &data[head..]);
    }
    !crc32_table_update(!0, data)
}

/// Carry-less-multiply CRC-32 kernel, the 4-lane folding scheme of Gopal
/// et al., "Fast CRC Computation for Generic Polynomials Using PCLMULQDQ
/// Instruction" (Intel, 2009) for the reflected polynomial.
#[cfg(target_arch = "x86_64")]
mod clmul {
    use std::arch::x86_64::*;

    // Folding constants for reflected CRC-32 (poly 0x104C11DB7):
    // K1 = x^(4·128+64) mod P, K2 = x^(4·128), K3 = x^(128+64),
    // K4 = x^128, K5 = x^96 (all bit-reflected), P' and µ' for the final
    // Barrett reduction.
    const K1: i64 = 0x1_5444_2bd4;
    const K2: i64 = 0x1_c6e4_1596;
    const K3: i64 = 0x1_7519_97d0;
    const K4: i64 = 0x0_ccaa_009e;
    const K5: i64 = 0x1_63cd_6124;
    const P_X: i64 = 0x1_DB71_0641;
    const U_PRIME: i64 = 0x1_F701_1641;

    pub fn supported() -> bool {
        std::arch::is_x86_feature_detected!("pclmulqdq") && std::arch::is_x86_feature_detected!("sse4.1")
    }

    /// Folds 16-byte lane `a` down onto `b` under `keys`.
    #[inline]
    #[target_feature(enable = "pclmulqdq", enable = "sse2")]
    unsafe fn fold16(a: __m128i, b: __m128i, keys: __m128i) -> __m128i {
        let lo = _mm_clmulepi64_si128(a, keys, 0x00);
        let hi = _mm_clmulepi64_si128(a, keys, 0x11);
        _mm_xor_si128(_mm_xor_si128(b, lo), hi)
    }

    /// Whole-buffer CRC-32 (standard init/final-xor conventions).
    ///
    /// # Safety
    /// Requires `pclmulqdq` + `sse4.1`; `data.len()` must be a multiple of
    /// 16 and at least 64.
    #[target_feature(enable = "pclmulqdq", enable = "sse2", enable = "sse4.1")]
    pub unsafe fn crc32(data: &[u8]) -> u32 {
        debug_assert!(data.len() >= 64 && data.len().is_multiple_of(16));
        let mut ptr = data.as_ptr() as *const __m128i;
        let mut rest = data.len() - 64;
        let mut x3 = _mm_loadu_si128(ptr);
        let mut x2 = _mm_loadu_si128(ptr.add(1));
        let mut x1 = _mm_loadu_si128(ptr.add(2));
        let mut x0 = _mm_loadu_si128(ptr.add(3));
        ptr = ptr.add(4);
        // Fold the CRC init value (!0) into the first lane.
        x3 = _mm_xor_si128(x3, _mm_cvtsi32_si128(!0i32));
        let k1k2 = _mm_set_epi64x(K2, K1);
        while rest >= 64 {
            x3 = fold16(x3, _mm_loadu_si128(ptr), k1k2);
            x2 = fold16(x2, _mm_loadu_si128(ptr.add(1)), k1k2);
            x1 = fold16(x1, _mm_loadu_si128(ptr.add(2)), k1k2);
            x0 = fold16(x0, _mm_loadu_si128(ptr.add(3)), k1k2);
            ptr = ptr.add(4);
            rest -= 64;
        }
        let k3k4 = _mm_set_epi64x(K4, K3);
        let mut x = fold16(x3, x2, k3k4);
        x = fold16(x, x1, k3k4);
        x = fold16(x, x0, k3k4);
        while rest >= 16 {
            x = fold16(x, _mm_loadu_si128(ptr), k3k4);
            ptr = ptr.add(1);
            rest -= 16;
        }
        // Reduce 128 → 64 bits, then Barrett-reduce 64 → 32.
        let x = _mm_xor_si128(_mm_clmulepi64_si128(x, k3k4, 0x10), _mm_srli_si128(x, 8));
        let mask32 = _mm_set_epi32(0, 0, 0, !0);
        let x = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(x, mask32), _mm_set_epi64x(0, K5), 0x00), _mm_srli_si128(x, 4));
        let pu = _mm_set_epi64x(U_PRIME, P_X);
        let t1 = _mm_clmulepi64_si128(_mm_and_si128(x, mask32), pu, 0x10);
        let t2 = _mm_xor_si128(_mm_clmulepi64_si128(_mm_and_si128(t1, mask32), pu, 0x00), x);
        !(_mm_extract_epi32(t2, 1) as u32)
    }
}

/// Slice-by-16 table fallback: sixteen lookup tables let each iteration
/// fold 16 input bytes with independent loads, so the update chain is 16×
/// shorter than the classic one-byte Sarwate loop. Takes and returns the
/// raw (pre-inversion) CRC register so the SIMD kernel can hand over tails.
fn crc32_table_update(state: u32, data: &[u8]) -> u32 {
    const fn make_tables() -> [[u32; 256]; 16] {
        let mut tables = [[0u32; 256]; 16];
        let mut i = 0;
        while i < 256 {
            let mut c = i as u32;
            let mut k = 0;
            while k < 8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
                k += 1;
            }
            tables[0][i] = c;
            i += 1;
        }
        let mut t = 1;
        while t < 16 {
            let mut i = 0;
            while i < 256 {
                let prev = tables[t - 1][i];
                tables[t][i] = tables[0][(prev & 0xFF) as usize] ^ (prev >> 8);
                i += 1;
            }
            t += 1;
        }
        tables
    }
    static TABLES: [[u32; 256]; 16] = make_tables();
    let mut c = state;
    let mut chunks = data.chunks_exact(16);
    for chunk in &mut chunks {
        c ^= u32::from_le_bytes(chunk[..4].try_into().expect("4-byte word"));
        let mid = u32::from_le_bytes(chunk[4..8].try_into().expect("4-byte word"));
        let hi = u32::from_le_bytes(chunk[8..12].try_into().expect("4-byte word"));
        let top = u32::from_le_bytes(chunk[12..16].try_into().expect("4-byte word"));
        c = TABLES[15][(c & 0xFF) as usize]
            ^ TABLES[14][((c >> 8) & 0xFF) as usize]
            ^ TABLES[13][((c >> 16) & 0xFF) as usize]
            ^ TABLES[12][(c >> 24) as usize]
            ^ TABLES[11][(mid & 0xFF) as usize]
            ^ TABLES[10][((mid >> 8) & 0xFF) as usize]
            ^ TABLES[9][((mid >> 16) & 0xFF) as usize]
            ^ TABLES[8][(mid >> 24) as usize]
            ^ TABLES[7][(hi & 0xFF) as usize]
            ^ TABLES[6][((hi >> 8) & 0xFF) as usize]
            ^ TABLES[5][((hi >> 16) & 0xFF) as usize]
            ^ TABLES[4][(hi >> 24) as usize]
            ^ TABLES[3][(top & 0xFF) as usize]
            ^ TABLES[2][((top >> 8) & 0xFF) as usize]
            ^ TABLES[1][((top >> 16) & 0xFF) as usize]
            ^ TABLES[0][(top >> 24) as usize];
    }
    for &b in chunks.remainder() {
        c = TABLES[0][((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c
}

pub(crate) fn put_u32(buf: &mut Vec<u8>, v: u32) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(buf: &mut Vec<u8>, v: u64) {
    buf.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_str(buf: &mut Vec<u8>, s: &str) {
    put_u32(buf, s.len() as u32);
    buf.extend_from_slice(s.as_bytes());
}

pub(crate) fn put_ids(buf: &mut Vec<u8>, ids: &[TokenId]) {
    put_u32(buf, ids.len() as u32);
    for t in ids {
        put_u32(buf, t.0);
    }
}

fn put_interner(buf: &mut Vec<u8>, interner: &Interner) {
    put_u32(buf, interner.len() as u32);
    for s in interner.iter_strings() {
        put_str(buf, s);
    }
}

pub(crate) fn put_dict(buf: &mut Vec<u8>, dict: &Dictionary) {
    put_u32(buf, dict.len() as u32);
    for (_, e) in dict.iter() {
        put_str(buf, e.raw);
        put_ids(buf, e.tokens);
    }
}

fn put_variants(buf: &mut Vec<u8>, dd: &DerivedDictionary) {
    put_u32(buf, dd.len() as u32);
    for (_, d) in dd.iter() {
        put_u32(buf, d.origin.0);
        put_ids(buf, d.tokens);
        put_u32(buf, d.rules.len() as u32);
        for r in d.rules {
            put_u32(buf, r.0);
        }
        buf.extend_from_slice(&d.weight.to_le_bytes());
    }
}

pub(crate) fn put_stats(buf: &mut Vec<u8>, st: &DeriveStats) {
    for v in [
        st.origins,
        st.derived,
        st.applicable_total,
        st.selected_total,
        st.truncated_entities,
        st.duplicates_dropped,
    ] {
        put_u64(buf, v as u64);
    }
}

pub(crate) fn put_config(buf: &mut Vec<u8>, config: &AeetesConfig) {
    buf.push(match config.strategy {
        Strategy::Simple => 0,
        Strategy::Skip => 1,
        Strategy::Dynamic => 2,
        Strategy::Lazy => 3,
    });
    buf.push(match config.metric {
        Metric::Jaccard => 0,
        Metric::Dice => 1,
        Metric::Cosine => 2,
        Metric::Overlap => 3,
    });
    put_u64(buf, config.derive.max_derived as u64);
}

/// Serializes `engine` (and the interner its token ids refer to) into a
/// standalone byte buffer, ending with a CRC-32 integrity footer.
pub fn save_engine(engine: &Aeetes, interner: &Interner) -> Vec<u8> {
    let mut buf = Vec::with_capacity(1 << 16);
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, VERSION);
    put_interner(&mut buf, interner);
    put_dict(&mut buf, engine.dictionary());
    put_variants(&mut buf, engine.derived());
    put_stats(&mut buf, engine.derived().stats());
    put_config(&mut buf, engine.config());
    let checksum = crc32(&buf);
    put_u32(&mut buf, checksum);
    buf
}

/// The engine-neutral contents of a sharded (format v3) artifact: the shared
/// sections plus one derived-dictionary segment per shard. `aeetes-core`
/// stays ignorant of shard routing — it only guarantees that every origin's
/// variants live in exactly one segment, which is what lets
/// [`ShardedParts::into_single`] merge them back with a stable sort.
#[derive(Debug, Clone)]
pub struct ShardedParts {
    /// Token interner every id in the artifact refers into.
    pub interner: Interner,
    /// The origin dictionary, over the *full* entity id space (removed
    /// entities keep their slot so ids stay stable across generations).
    pub dict: Dictionary,
    /// Tombstones: origin ids whose variants have been dropped from every
    /// segment but whose dictionary slots remain reserved.
    pub removed: Vec<EntityId>,
    /// The synonym rule table, persisted so a dictionary delta can re-derive
    /// affected shards without the original rule source.
    pub rules: RuleSet,
    /// Engine configuration (strategy, metric, derive cap).
    pub config: AeetesConfig,
    /// One derived dictionary per shard. Each spans the full origin id space
    /// (non-resident origins have empty variant ranges), and no origin has
    /// variants in more than one segment.
    pub segments: Vec<DerivedDictionary>,
    /// The saved engine's generation number (v4; 1 for older artifacts).
    /// A loader resuming from this artifact continues numbering from here,
    /// which is what keeps WAL record generations aligned across restarts.
    pub generation: u64,
}

impl ShardedParts {
    /// Merges every segment back into one monolithic engine. Origins are
    /// disjoint across segments, so a stable sort by origin restores the
    /// grouped-ascending order `DerivedDictionary` requires while keeping
    /// each origin's variants in their original relative order.
    pub fn into_single(self) -> Result<(Aeetes, Interner), PersistError> {
        let ShardedParts { interner, dict, config, segments, .. } = self;
        let mut derived: Vec<DerivedEntity> = Vec::new();
        let mut stats = DeriveStats::default();
        for dd in &segments {
            derived.extend(dd.iter().map(|(_, d)| d.to_owned()));
            let st = dd.stats();
            stats.origins += st.origins;
            stats.derived += st.derived;
            stats.applicable_total += st.applicable_total;
            stats.selected_total += st.selected_total;
            stats.truncated_entities += st.truncated_entities;
            stats.duplicates_dropped += st.duplicates_dropped;
        }
        derived.sort_by_key(|d| d.origin.0);
        let dd = DerivedDictionary::from_parts(derived, dict.len(), stats).map_err(PersistError::Corrupt)?;
        Ok((Aeetes::from_parts(dict, dd, &interner, config), interner))
    }
}

/// Serializes a sharded engine's parts into a format v4 artifact: the
/// generation number, shared sections once, then each shard's derived
/// dictionary as an independently CRC-guarded segment, then the whole-file
/// CRC-32 footer.
pub fn save_sharded(parts: &ShardedParts) -> Vec<u8> {
    save_sharded_versioned(parts, VERSION_SHARDED_GEN)
}

/// Writer parameterized on format version (v3 drops the generation field);
/// kept internal so the version-compatibility tests can produce genuine
/// old-format fixtures with the same encoder.
#[doc(hidden)]
pub fn save_sharded_versioned(parts: &ShardedParts, version: u32) -> Vec<u8> {
    debug_assert!((VERSION_SHARDED..=VERSION_SHARDED_GEN).contains(&version));
    let mut buf = Vec::with_capacity(1 << 16);
    buf.extend_from_slice(MAGIC);
    put_u32(&mut buf, version);
    if version >= VERSION_SHARDED_GEN {
        put_u64(&mut buf, parts.generation);
    }
    put_interner(&mut buf, &parts.interner);
    put_dict(&mut buf, &parts.dict);
    put_u32(&mut buf, parts.removed.len() as u32);
    for e in &parts.removed {
        put_u32(&mut buf, e.0);
    }
    put_u32(&mut buf, parts.rules.len() as u32);
    for (_, rule) in parts.rules.iter() {
        put_ids(&mut buf, &rule.lhs);
        put_ids(&mut buf, &rule.rhs);
        buf.extend_from_slice(&rule.weight.to_le_bytes());
    }
    put_config(&mut buf, &parts.config);
    put_u32(&mut buf, parts.segments.len() as u32);
    let mut payload = Vec::new();
    for dd in &parts.segments {
        payload.clear();
        put_variants(&mut payload, dd);
        put_stats(&mut payload, dd.stats());
        put_u32(&mut buf, payload.len() as u32);
        buf.extend_from_slice(&payload);
        put_u32(&mut buf, crc32(&payload));
    }
    let checksum = crc32(&buf);
    put_u32(&mut buf, checksum);
    buf
}

pub(crate) struct Reader<'a> {
    pub(crate) buf: &'a [u8],
}

impl<'a> Reader<'a> {
    pub(crate) fn need(&self, n: usize, what: &'static str) -> Result<(), PersistError> {
        if self.buf.len() < n {
            Err(PersistError::Truncated(what))
        } else {
            Ok(())
        }
    }
    pub(crate) fn take(&mut self, n: usize, what: &'static str) -> Result<&'a [u8], PersistError> {
        self.need(n, what)?;
        let (head, tail) = self.buf.split_at(n);
        self.buf = tail;
        Ok(head)
    }
    /// Rejects a count field whose elements (at `min_size` bytes each)
    /// could not possibly fit in the remaining buffer. Called before any
    /// `with_capacity` so forged counts can't drive huge allocations.
    pub(crate) fn check_count(&self, n: usize, min_size: usize, what: &'static str) -> Result<(), PersistError> {
        match n.checked_mul(min_size) {
            Some(total) if total <= self.buf.len() => Ok(()),
            _ => Err(PersistError::Truncated(what)),
        }
    }
    pub(crate) fn u8(&mut self, what: &'static str) -> Result<u8, PersistError> {
        Ok(self.take(1, what)?[0])
    }
    pub(crate) fn u32(&mut self, what: &'static str) -> Result<u32, PersistError> {
        Ok(u32::from_le_bytes(self.take(4, what)?.try_into().expect("4-byte slice")))
    }
    pub(crate) fn u64(&mut self, what: &'static str) -> Result<u64, PersistError> {
        Ok(u64::from_le_bytes(self.take(8, what)?.try_into().expect("8-byte slice")))
    }
    pub(crate) fn f64(&mut self, what: &'static str) -> Result<f64, PersistError> {
        Ok(f64::from_le_bytes(self.take(8, what)?.try_into().expect("8-byte slice")))
    }
    pub(crate) fn str(&mut self, what: &'static str) -> Result<String, PersistError> {
        Ok(self.str_ref(what)?.to_string())
    }
    /// Borrowed form of [`Reader::str`] — no allocation; the `&str` views
    /// the underlying buffer.
    pub(crate) fn str_ref(&mut self, what: &'static str) -> Result<&'a str, PersistError> {
        let n = self.u32(what)? as usize;
        let raw = self.take(n, what)?;
        std::str::from_utf8(raw).map_err(|_| PersistError::Corrupt(format!("invalid UTF-8 in {what}")))
    }
    /// Reads a `u32` count followed by that many range-checked token ids.
    /// The count is validated against the remaining bytes (4 per id) before
    /// any allocation, so a forged length can't trigger an outsized
    /// `Vec::with_capacity`.
    pub(crate) fn ids(&mut self, max: u32, what: &'static str) -> Result<Vec<TokenId>, PersistError> {
        let n = self.u32(what)? as usize;
        if n > MAX_VARIANT_TOKENS {
            return Err(PersistError::Corrupt(format!("{what}: token list of {n} exceeds the index limit of {MAX_VARIANT_TOKENS}")));
        }
        let raw = self.take(n.checked_mul(4).ok_or(PersistError::Truncated(what))?, what)?;
        let mut out = Vec::with_capacity(n);
        for chunk in raw.chunks_exact(4) {
            let id = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
            if id >= max {
                return Err(PersistError::Corrupt(format!("token id {id} out of range {max} in {what}")));
            }
            out.push(TokenId(id));
        }
        Ok(out)
    }
    /// Like [`Reader::ids`], but yields a validated borrowed iterator
    /// instead of allocating a `Vec` — the dictionary bulk-load path calls
    /// this once per entity, so per-call allocations add up.
    pub(crate) fn ids_ref(&mut self, max: u32, what: &'static str) -> Result<impl ExactSizeIterator<Item = TokenId> + 'a, PersistError> {
        let n = self.u32(what)? as usize;
        if n > MAX_VARIANT_TOKENS {
            return Err(PersistError::Corrupt(format!("{what}: token list of {n} exceeds the index limit of {MAX_VARIANT_TOKENS}")));
        }
        let raw = self.take(n.checked_mul(4).ok_or(PersistError::Truncated(what))?, what)?;
        let decode = |c: &[u8]| u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
        if let Some(id) = raw.chunks_exact(4).map(decode).find(|&id| id >= max) {
            return Err(PersistError::Corrupt(format!("token id {id} out of range {max} in {what}")));
        }
        Ok(raw.chunks_exact(4).map(move |c| TokenId(decode(c))))
    }
}

/// Parses the header, validates the version against `MIN_VERSION..=`
/// [`VERSION_SHARDED_GEN`], and — for checksummed versions — verifies the
/// whole-file CRC-32 footer before any field is trusted. Returns the version
/// and a reader over the payload (header stripped, footer dropped).
fn open(bytes: &[u8]) -> Result<(u32, Reader<'_>), PersistError> {
    let mut r = Reader { buf: bytes };
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32("version")?;
    if !(MIN_VERSION..=VERSION_SHARDED_GEN).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    if version >= 2 {
        // Verify integrity before trusting any length or id field.
        let payload_len = bytes.len().checked_sub(4).ok_or(PersistError::Truncated("checksum"))?;
        if payload_len < 8 {
            return Err(PersistError::Truncated("checksum"));
        }
        let expected = u32::from_le_bytes(bytes[payload_len..].try_into().expect("4-byte footer"));
        let actual = crc32(&bytes[..payload_len]);
        if expected != actual {
            return Err(PersistError::ChecksumMismatch { expected, actual });
        }
        // Drop the footer from the reader's view of the payload.
        r.buf = &bytes[8..payload_len];
    }
    Ok((version, r))
}

fn read_interner(r: &mut Reader<'_>) -> Result<Interner, PersistError> {
    let mut interner = Interner::new();
    let n_tokens = r.u32("interner size")?;
    // Each interned string takes at least its 4-byte length prefix.
    r.check_count(n_tokens as usize, 4, "interner size")?;
    for _ in 0..n_tokens {
        let s = r.str("interner string")?;
        interner.intern(&s);
    }
    Ok(interner)
}

pub(crate) fn read_dict(r: &mut Reader<'_>, n_tokens: u32) -> Result<Dictionary, PersistError> {
    let mut dict = Dictionary::new();
    let n_entities = r.u32("dictionary size")?;
    // Each entity takes at least its two 4-byte length prefixes.
    r.check_count(n_entities as usize, 8, "dictionary size")?;
    dict.reserve(n_entities as usize, 4, 24);
    for _ in 0..n_entities {
        let raw = r.str_ref("entity raw")?;
        let tokens = r.ids_ref(n_tokens, "entity tokens")?;
        dict.push_from(raw, tokens);
    }
    Ok(dict)
}

/// Reads a variant table. `max_rule` bounds rule-id cross-references when
/// the artifact carries a rule table (v3); v1/v2 artifacts don't, so their
/// rule ids are provenance-only and pass through unchecked.
fn read_variants(r: &mut Reader<'_>, n_tokens: u32, n_entities: u32, max_rule: Option<u32>) -> Result<Vec<DerivedEntity>, PersistError> {
    let n_derived = r.u32("derived size")? as usize;
    r.check_count(n_derived, MIN_VARIANT_BYTES, "derived size")?;
    let mut derived = Vec::with_capacity(n_derived);
    for _ in 0..n_derived {
        let origin = r.u32("variant origin")?;
        if origin >= n_entities {
            return Err(PersistError::Corrupt(format!("origin {origin} out of range {n_entities}")));
        }
        let tokens = r.ids(n_tokens, "variant tokens")?;
        let n_rules = r.u32("variant rules")? as usize;
        let raw_rules = r.take(n_rules.checked_mul(4).ok_or(PersistError::Truncated("variant rules"))?, "variant rule id")?;
        let mut rules = Vec::with_capacity(n_rules);
        for c in raw_rules.chunks_exact(4) {
            let id = u32::from_le_bytes(c.try_into().expect("4-byte chunk"));
            if let Some(max) = max_rule {
                if id >= max {
                    return Err(PersistError::Corrupt(format!("variant rule id {id} out of range {max}")));
                }
            }
            rules.push(RuleId(id));
        }
        let weight = r.f64("variant weight")?;
        if !(weight > 0.0 && weight <= 1.0) {
            return Err(PersistError::Corrupt(format!("variant weight {weight} outside (0, 1]")));
        }
        derived.push(DerivedEntity { origin: EntityId(origin), tokens, rules, weight });
    }
    Ok(derived)
}

pub(crate) fn read_stats(r: &mut Reader<'_>) -> Result<DeriveStats, PersistError> {
    Ok(DeriveStats {
        origins: r.u64("stats")? as usize,
        derived: r.u64("stats")? as usize,
        applicable_total: r.u64("stats")? as usize,
        selected_total: r.u64("stats")? as usize,
        truncated_entities: r.u64("stats")? as usize,
        duplicates_dropped: r.u64("stats")? as usize,
    })
}

pub(crate) fn read_config(r: &mut Reader<'_>) -> Result<AeetesConfig, PersistError> {
    let strategy = match r.u8("strategy")? {
        0 => Strategy::Simple,
        1 => Strategy::Skip,
        2 => Strategy::Dynamic,
        3 => Strategy::Lazy,
        other => return Err(PersistError::Corrupt(format!("unknown strategy tag {other}"))),
    };
    let metric = match r.u8("metric")? {
        0 => Metric::Jaccard,
        1 => Metric::Dice,
        2 => Metric::Cosine,
        3 => Metric::Overlap,
        other => return Err(PersistError::Corrupt(format!("unknown metric tag {other}"))),
    };
    let max_derived = r.u64("max_derived")? as usize;
    Ok(AeetesConfig {
        derive: DeriveConfig { max_derived, ..DeriveConfig::default() },
        strategy,
        metric,
        ..AeetesConfig::default()
    })
}

/// Restores the parts of a persisted engine in shard-segmented form.
/// Accepts format versions 1–3; v1/v2 single-engine artifacts come back as
/// one segment with an empty rule table and no tombstones. Every segment's
/// CRC is verified and each origin is checked to own variants in at most
/// one segment.
pub fn load_sharded(bytes: &[u8]) -> Result<ShardedParts, PersistError> {
    let (version, mut r) = open(bytes)?;
    let generation = if version >= VERSION_SHARDED_GEN {
        let g = r.u64("generation")?;
        if g == 0 {
            return Err(PersistError::Corrupt("generation 0 is invalid (generations start at 1)".into()));
        }
        g
    } else {
        1
    };
    let interner = read_interner(&mut r)?;
    let n_tokens = interner.len() as u32;
    let dict = read_dict(&mut r, n_tokens)?;
    let n_entities = dict.len() as u32;

    if version < VERSION_SHARDED {
        // v1/v2 single-engine layout: derived, stats, config.
        let derived = read_variants(&mut r, n_tokens, n_entities, None)?;
        let stats = read_stats(&mut r)?;
        let config = read_config(&mut r)?;
        if !r.buf.is_empty() {
            return Err(PersistError::Corrupt(format!("{} trailing bytes after engine data", r.buf.len())));
        }
        let dd = DerivedDictionary::from_parts(derived, dict.len(), stats).map_err(PersistError::Corrupt)?;
        return Ok(ShardedParts {
            interner,
            dict,
            removed: Vec::new(),
            rules: RuleSet::new(),
            config,
            segments: vec![dd],
            generation,
        });
    }

    let n_removed = r.u32("removed size")? as usize;
    r.check_count(n_removed, 4, "removed size")?;
    let mut removed = Vec::with_capacity(n_removed);
    for _ in 0..n_removed {
        let id = r.u32("removed id")?;
        if id >= n_entities {
            return Err(PersistError::Corrupt(format!("removed id {id} out of range {n_entities}")));
        }
        removed.push(EntityId(id));
    }

    let n_rules = r.u32("rules size")? as usize;
    // Each rule takes at least two 4-byte counts plus the 8-byte weight.
    r.check_count(n_rules, 16, "rules size")?;
    let mut rules = RuleSet::new();
    rules.reserve(n_rules);
    for _ in 0..n_rules {
        let lhs = r.ids(n_tokens, "rule lhs")?;
        let rhs = r.ids(n_tokens, "rule rhs")?;
        let weight = r.f64("rule weight")?;
        rules
            .push_tokens(lhs, rhs, weight)
            .map_err(|e| PersistError::Corrupt(format!("invalid persisted rule: {e}")))?;
    }

    let config = read_config(&mut r)?;

    let n_segments = r.u32("segment count")? as usize;
    // Each segment takes at least its length prefix, an empty variant
    // table, the stats block and its CRC.
    r.check_count(n_segments, 4 + 4 + 48 + 4, "segment count")?;
    let mut segments = Vec::with_capacity(n_segments);
    let mut claimed = vec![false; dict.len()];
    for _ in 0..n_segments {
        let len = r.u32("segment length")? as usize;
        let payload = r.take(len, "segment payload")?;
        let expected = r.u32("segment checksum")?;
        let actual = crc32(payload);
        if expected != actual {
            return Err(PersistError::ChecksumMismatch { expected, actual });
        }
        let mut sr = Reader { buf: payload };
        let derived = read_variants(&mut sr, n_tokens, n_entities, Some(n_rules as u32))?;
        let stats = read_stats(&mut sr)?;
        if !sr.buf.is_empty() {
            return Err(PersistError::Corrupt(format!("{} trailing bytes in segment payload", sr.buf.len())));
        }
        let dd = DerivedDictionary::from_parts(derived, dict.len(), stats).map_err(PersistError::Corrupt)?;
        // `from_parts` guarantees grouped-ascending origins within the
        // segment; across segments each origin may appear only once, or the
        // merge in `into_single` would interleave variants of one origin.
        let mut prev = None;
        for (_, d) in dd.iter() {
            if prev == Some(d.origin) {
                continue;
            }
            prev = Some(d.origin);
            let o = d.origin.0 as usize;
            if claimed[o] {
                return Err(PersistError::Corrupt(format!("origin {} has variants in multiple segments", d.origin.0)));
            }
            claimed[o] = true;
        }
        segments.push(dd);
    }
    if !r.buf.is_empty() {
        return Err(PersistError::Corrupt(format!("{} trailing bytes after engine data", r.buf.len())));
    }
    Ok(ShardedParts { interner, dict, removed, rules, config, segments, generation })
}

/// Reads just enough of an artifact header to report its generation number
/// without parsing (or integrity-checking) the body: v4 and the frozen v5
/// format both store it right after the version word; older versions are
/// generation 1 by definition. Used by the fleet coordinator to align its
/// WAL base with an artifact cheaply.
pub fn peek_generation(bytes: &[u8]) -> Result<u64, PersistError> {
    let mut r = Reader { buf: bytes };
    let magic = r.take(4, "magic")?;
    if magic != MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32("version")?;
    if !(MIN_VERSION..=VERSION_FROZEN).contains(&version) {
        return Err(PersistError::UnsupportedVersion(version));
    }
    if version >= VERSION_SHARDED_GEN {
        let g = r.u64("generation")?;
        if g == 0 {
            return Err(PersistError::Corrupt("generation 0 is invalid (generations start at 1)".into()));
        }
        Ok(g)
    } else {
        Ok(1)
    }
}

/// Restores an engine (and its interner) previously written by
/// [`save_engine`] or [`save_sharded`]. The clustered index is rebuilt from
/// the derived dictionary. Accepts format versions 1 (no checksum), 2, and
/// 3 (whose segments are merged back into one derived dictionary).
pub fn load_engine(bytes: &[u8]) -> Result<(Aeetes, Interner), PersistError> {
    load_sharded(bytes)?.into_single()
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Document, Tokenizer};

    fn sample_engine() -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("Purdue University USA", &tok, &mut int);
        dict.push("UQ AU", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap();
        rules.push_weighted_str("AU", "Australia", 0.9, &tok, &mut int).unwrap();
        let engine = Aeetes::build(dict, &rules, &int, AeetesConfig::default());
        (engine, int, tok)
    }

    #[test]
    fn round_trip_preserves_results() {
        let (engine, mut int, tok) = sample_engine();
        let bytes = save_engine(&engine, &int);
        let (loaded, mut loaded_int) = load_engine(&bytes).expect("load");

        let doc_text = "she left UQ Australia for Purdue University USA";
        let doc_a = Document::parse(doc_text, &tok, &mut int);
        let doc_b = Document::parse(doc_text, &tok, &mut loaded_int);
        for tau in [0.7, 0.9] {
            let a = engine.extract(&doc_a, tau);
            let b = loaded.extract(&doc_b, tau);
            assert_eq!(a, b, "tau={tau}");
        }
        assert_eq!(loaded.dictionary().len(), engine.dictionary().len());
        assert_eq!(loaded.derived().len(), engine.derived().len());
        assert_eq!(loaded.derived().stats(), engine.derived().stats());
        assert_eq!(loaded.config().strategy, engine.config().strategy);
    }

    #[test]
    fn round_trip_preserves_interner() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        let (_, loaded_int) = load_engine(&bytes).unwrap();
        assert_eq!(loaded_int.len(), int.len());
        for (a, b) in int.iter_strings().zip(loaded_int.iter_strings()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bad_magic_rejected() {
        assert!(matches!(load_engine(b"NOPE1234"), Err(PersistError::BadMagic)));
        assert!(matches!(load_engine(b"AE"), Err(PersistError::Truncated(_))));
    }

    #[test]
    fn bad_version_rejected() {
        let (engine, int, _) = sample_engine();
        let mut bytes = save_engine(&engine, &int);
        bytes[4] = 99;
        assert!(matches!(load_engine(&bytes), Err(PersistError::UnsupportedVersion(99))));
    }

    #[test]
    fn version_one_without_checksum_still_loads() {
        // A v1 file is the v2 payload minus the footer, with the version
        // field rewritten — exactly what pre-checksum builds produced.
        let (engine, int, _) = sample_engine();
        let mut bytes = save_engine(&engine, &int);
        bytes.truncate(bytes.len() - 4);
        bytes[4..8].copy_from_slice(&1u32.to_le_bytes());
        let (loaded, _) = load_engine(&bytes).expect("v1 file must load");
        assert_eq!(loaded.derived().len(), engine.derived().len());
    }

    #[test]
    fn checksum_detects_payload_corruption() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Flip one payload byte: the checksum must catch it up front.
        let mut b = bytes.clone();
        let mid = b.len() / 2;
        b[mid] ^= 0x01;
        assert!(
            matches!(load_engine(&b), Err(PersistError::ChecksumMismatch { .. })),
            "single-bit payload corruption must fail the checksum"
        );
        // Flip a footer byte: same outcome (expected != actual).
        let mut b = bytes.clone();
        let last = b.len() - 1;
        b[last] ^= 0x01;
        assert!(matches!(load_engine(&b), Err(PersistError::ChecksumMismatch { .. })));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Every strict prefix must fail cleanly, never panic.
        for cut in 0..bytes.len() {
            assert!(load_engine(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
    }

    #[test]
    fn trailing_garbage_rejected() {
        let (engine, int, _) = sample_engine();
        let mut bytes = save_engine(&engine, &int);
        bytes.extend_from_slice(b"junk");
        assert!(load_engine(&bytes).is_err(), "trailing bytes accepted");
    }

    #[test]
    fn corrupt_token_id_rejected() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Flip a byte anywhere and require "no panic" (error OR a
        // still-consistent engine; with the v2 checksum it is always an
        // error).
        for i in 8..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = load_engine(&b); // must not panic
        }
    }

    #[test]
    fn oversized_length_fields_fail_without_allocating() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        // Overwrite each 4-byte window with u32::MAX. Whatever field that
        // lands on (counts, lengths, ids), the loader must neither panic
        // nor reserve memory proportional to the forged value.
        for i in (8..bytes.len().saturating_sub(4)).step_by(2) {
            let mut b = bytes.clone();
            b[i..i + 4].copy_from_slice(&u32::MAX.to_le_bytes());
            let _ = load_engine(&b); // must not panic or OOM
        }
    }

    /// A two-segment sharded fixture: even-id origins in segment 0, odd-id
    /// origins in segment 1, sharing one interner/dictionary/rule table.
    fn sample_sharded() -> (ShardedParts, Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("Purdue University USA", &tok, &mut int);
        dict.push("UQ AU", &tok, &mut int);
        dict.push("RMIT AU", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap();
        rules.push_weighted_str("AU", "Australia", 0.9, &tok, &mut int).unwrap();
        let config = AeetesConfig::default();
        let engine = Aeetes::build(dict.clone(), &rules, &int, config.clone());
        let segments = vec![
            DerivedDictionary::build_filtered(&dict, &rules, &config.derive, |e| e.0 % 2 == 0),
            DerivedDictionary::build_filtered(&dict, &rules, &config.derive, |e| e.0 % 2 == 1),
        ];
        let parts = ShardedParts {
            interner: int.clone(),
            dict,
            removed: vec![],
            rules,
            config,
            segments,
            generation: 5,
        };
        (parts, engine, int, tok)
    }

    #[test]
    fn sharded_round_trip_preserves_parts() {
        let (parts, _, _, _) = sample_sharded();
        let bytes = save_sharded(&parts);
        let loaded = load_sharded(&bytes).expect("v4 round trip");
        assert_eq!(loaded.generation, parts.generation);
        assert_eq!(loaded.segments.len(), 2);
        assert_eq!(loaded.dict.len(), parts.dict.len());
        assert_eq!(loaded.rules.len(), parts.rules.len());
        assert_eq!(loaded.removed, parts.removed);
        assert_eq!(loaded.interner.len(), parts.interner.len());
        for (a, b) in loaded.segments.iter().zip(parts.segments.iter()) {
            assert_eq!(a.len(), b.len());
            // `from_parts` renormalizes `origins` to the full id space, so
            // compare the fields that genuinely round-trip.
            assert_eq!(a.stats().derived, b.stats().derived);
            assert_eq!(a.stats().applicable_total, b.stats().applicable_total);
            assert_eq!(a.stats().selected_total, b.stats().selected_total);
        }
        for ((_, a), (_, b)) in loaded.rules.iter().zip(parts.rules.iter()) {
            assert_eq!(a.lhs, b.lhs);
            assert_eq!(a.rhs, b.rhs);
            assert_eq!(a.weight, b.weight);
        }
    }

    #[test]
    fn sharded_artifact_loads_as_single_engine() {
        let (parts, engine, mut int, tok) = sample_sharded();
        let bytes = save_sharded(&parts);
        let (merged, mut loaded_int) = load_engine(&bytes).expect("v3 merges into a single engine");
        let doc_text = "she left UQ Australia for Purdue University USA near RMIT AU";
        let doc_a = Document::parse(doc_text, &tok, &mut int);
        let doc_b = Document::parse(doc_text, &tok, &mut loaded_int);
        for tau in [0.7, 0.9] {
            assert_eq!(engine.extract(&doc_a, tau), merged.extract(&doc_b, tau), "tau={tau}");
        }
        assert_eq!(merged.derived().len(), engine.derived().len());
    }

    #[test]
    fn v2_artifact_loads_as_one_segment() {
        let (engine, int, _) = sample_engine();
        let bytes = save_engine(&engine, &int);
        let parts = load_sharded(&bytes).expect("v2 loads as sharded parts");
        assert_eq!(parts.segments.len(), 1);
        assert!(parts.removed.is_empty());
        assert!(parts.rules.is_empty());
        assert_eq!(parts.segments[0].len(), engine.derived().len());
    }

    #[test]
    fn segment_crc_detects_corruption_behind_a_valid_footer() {
        let (parts, _, _, _) = sample_sharded();
        let mut bytes = save_sharded(&parts);
        // Flip a byte inside the last segment's payload (weights sit right
        // before the segment CRC + footer), then recompute the whole-file
        // footer so only the per-segment CRC can catch the damage.
        let idx = bytes.len() - 20;
        bytes[idx] ^= 0x01;
        let len = bytes.len();
        let footer = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&footer.to_le_bytes());
        assert!(
            matches!(load_sharded(&bytes), Err(PersistError::ChecksumMismatch { .. })),
            "segment corruption must fail the per-segment CRC"
        );
    }

    #[test]
    fn sharded_truncation_and_bitflips_never_panic() {
        let (parts, _, _, _) = sample_sharded();
        let bytes = save_sharded(&parts);
        for cut in 0..bytes.len() {
            assert!(load_sharded(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        for i in 8..bytes.len() {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            let _ = load_sharded(&b); // must not panic
        }
    }

    #[test]
    fn duplicate_origin_across_segments_rejected() {
        let (mut parts, _, _, _) = sample_sharded();
        // Both segments carry the full derived dictionary → every origin is
        // claimed twice.
        let full = DerivedDictionary::build_filtered(&parts.dict, &parts.rules, &parts.config.derive, |_| true);
        parts.segments = vec![full.clone(), full];
        let bytes = save_sharded(&parts);
        let err = load_sharded(&bytes).expect_err("duplicated origins must be rejected");
        assert!(err.to_string().contains("multiple segments"), "unexpected error: {err}");
    }

    /// One fixture per supported format version, produced by the real
    /// encoders (v1 is the v2 payload with the version word rewritten and
    /// the footer dropped — byte-identical to what pre-checksum builds
    /// wrote; v3 comes from the versioned writer without the generation
    /// field).
    fn version_fixtures() -> Vec<(u32, Vec<u8>)> {
        let (engine, int, _) = sample_engine();
        let v2 = save_engine(&engine, &int);
        let mut v1 = v2.clone();
        v1.truncate(v1.len() - 4);
        v1[4..8].copy_from_slice(&1u32.to_le_bytes());
        let (parts, _, _, _) = sample_sharded();
        let v3 = save_sharded_versioned(&parts, VERSION_SHARDED);
        let v4 = save_sharded_versioned(&parts, VERSION_SHARDED_GEN);
        vec![(1, v1), (2, v2), (3, v3), (4, v4)]
    }

    #[test]
    fn version_matrix_loads_every_supported_format() {
        for (version, bytes) in version_fixtures() {
            let parts = load_sharded(&bytes).unwrap_or_else(|e| panic!("v{version} fixture must load: {e}"));
            assert_eq!(parts.generation, if version >= 4 { 5 } else { 1 }, "v{version} generation");
            assert_eq!(peek_generation(&bytes).unwrap(), parts.generation, "v{version} peek");
            let (engine, _) = load_engine(&bytes).unwrap_or_else(|e| panic!("v{version} must merge to a single engine: {e}"));
            assert!(!engine.derived().is_empty(), "v{version} produced an empty engine");
        }
    }

    #[test]
    fn version_matrix_truncation_never_panics() {
        // Every strict prefix of every version — including each cut through
        // the footer and (for v4) the generation field — must fail with a
        // structured error, never a panic. v1 has no checksum, so a prefix
        // may parse if it happens to be self-consistent; it must still
        // never panic.
        for (version, bytes) in version_fixtures() {
            for cut in 0..bytes.len() {
                let r = load_sharded(&bytes[..cut]);
                if version >= 2 {
                    assert!(r.is_err(), "v{version} prefix of {cut} bytes accepted");
                }
                let _ = peek_generation(&bytes[..cut]); // must not panic either
            }
        }
    }

    #[test]
    fn version_matrix_bitflips_never_panic() {
        for (_version, bytes) in version_fixtures() {
            for i in (0..bytes.len()).step_by(3) {
                let mut b = bytes.clone();
                b[i] ^= 0xFF;
                let _ = load_sharded(&b); // structured error or consistent load, never a panic
            }
        }
    }

    #[test]
    fn unsupported_future_version_rejected() {
        let (parts, _, _, _) = sample_sharded();
        // v5 names the frozen layout: `load_sharded` must refuse it (it is
        // opened by the frozen module), while `peek_generation` can read its
        // header (the generation sits at the same offset as v4's).
        let mut bytes = save_sharded(&parts);
        bytes[4..8].copy_from_slice(&5u32.to_le_bytes());
        let len = bytes.len();
        let footer = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&footer.to_le_bytes());
        assert!(matches!(load_sharded(&bytes), Err(PersistError::UnsupportedVersion(5))));
        assert_eq!(peek_generation(&bytes).unwrap(), parts.generation);
        // A genuinely unknown future version is rejected by both.
        bytes[4..8].copy_from_slice(&6u32.to_le_bytes());
        let footer = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&footer.to_le_bytes());
        assert!(matches!(load_sharded(&bytes), Err(PersistError::UnsupportedVersion(6))));
        assert!(matches!(peek_generation(&bytes), Err(PersistError::UnsupportedVersion(6))));
    }

    #[test]
    fn zero_generation_rejected() {
        let (mut parts, _, _, _) = sample_sharded();
        parts.generation = 0;
        let bytes = save_sharded(&parts);
        assert!(matches!(load_sharded(&bytes), Err(PersistError::Corrupt(_))));
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard test vector for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn crc32_simd_matches_table_at_every_length() {
        // Exercises every dispatcher branch: below the SIMD minimum, the
        // 4-lane loop, the single-lane loop, and 0..15-byte tails.
        let mut state = 0x0123_4567_89AB_CDEFu64;
        let data: Vec<u8> = (0..4096)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        for len in (0..256).chain((256..4096).step_by(97)) {
            let d = &data[..len];
            assert_eq!(crc32_serial(d), !crc32_table_update(!0, d), "len={len}");
        }
    }

    #[test]
    fn crc32_parallel_matches_serial() {
        // Crosses the parallel threshold with an uneven tail so every
        // chunking/combine path runs; xorshift keeps the data incompressible.
        let mut state = 0x9E37_79B9_7F4A_7C15u64;
        let data: Vec<u8> = (0..(5 << 21) + 12345)
            .map(|_| {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state as u8
            })
            .collect();
        assert_eq!(crc32(&data), crc32_serial(&data));
    }

    #[test]
    fn crc32_combine_matches_concatenation() {
        let a = b"an approximate entity extraction engine".as_slice();
        let b = b"with synonym rules and a sliding window".as_slice();
        let whole = [a, b].concat();
        for split in [0, 1, 7, a.len()] {
            let (x, y) = (&a[..split], &[&a[split..], b].concat()[..]);
            assert_eq!(crc32_combine(crc32(x), crc32(y), y.len() as u64), crc32(&whole), "split={split}");
        }
    }

    #[test]
    fn display_messages() {
        assert!(PersistError::BadMagic.to_string().contains("magic"));
        assert!(PersistError::UnsupportedVersion(7).to_string().contains('7'));
        assert!(PersistError::Truncated("x").to_string().contains('x'));
        assert!(PersistError::Corrupt("y".into()).to_string().contains('y'));
        assert!(PersistError::ChecksumMismatch { expected: 1, actual: 2 }.to_string().contains("checksum"));
    }
}
