//! Engine configuration.

use crate::limits::ExtractLimits;
use crate::strategy::Strategy;
use aeetes_rules::DeriveConfig;
use aeetes_sim::Metric;

/// Configuration for [`crate::Aeetes`].
#[derive(Debug, Clone)]
pub struct AeetesConfig {
    /// Derived-dictionary generation options (rule-combination cap).
    pub derive: DeriveConfig,
    /// Filtering strategy used by [`crate::Aeetes::extract`].
    /// Defaults to [`Strategy::Lazy`], the fastest variant (paper Fig. 10).
    pub strategy: Strategy,
    /// Token-set similarity metric (paper §2.2 extension; default Jaccard,
    /// giving exactly the paper's JaccAR semantics).
    pub metric: Metric,
    /// Resource budgets applied to every extraction call. Defaults to
    /// [`ExtractLimits::UNLIMITED`], which leaves results bit-for-bit
    /// identical to the unbudgeted engine.
    pub limits: ExtractLimits,
}

impl Default for AeetesConfig {
    fn default() -> Self {
        Self {
            derive: DeriveConfig::default(),
            strategy: Strategy::Lazy,
            metric: Metric::Jaccard,
            limits: ExtractLimits::UNLIMITED,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_strategy_is_lazy() {
        assert_eq!(AeetesConfig::default().strategy, Strategy::Lazy);
        assert_eq!(AeetesConfig::default().metric, Metric::Jaccard);
        assert!(AeetesConfig::default().limits.is_unlimited());
    }
}
