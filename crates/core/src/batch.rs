//! Shared types of parallel batch extraction.
//!
//! The paper's motivating systems "receive many consumer reviews" (§1) —
//! extraction is embarrassingly parallel across documents because the
//! engine is immutable after the off-line phase. The batch *executor*
//! lives in `aeetes-pool` (persistent work-stealing workers, one resident
//! scratch each); this module keeps the types both sides of that boundary
//! share: the per-document error taxonomy, the batch options, and the
//! panic-payload formatter.

use crate::limits::{CancelToken, ExtractLimits};

/// Why a single document in a batch produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// Extraction of this document panicked; the payload message is
    /// preserved. Other documents in the batch are unaffected.
    Panicked(String),
    /// The batch's [`CancelToken`] fired before this document started.
    Cancelled,
}

impl std::fmt::Display for DocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DocError::Panicked(msg) => write!(f, "extraction panicked: {msg}"),
            DocError::Cancelled => write!(f, "batch cancelled before this document started"),
        }
    }
}

impl std::error::Error for DocError {}

/// Knobs for fault-isolated batch extraction (`extract_batch_with` in
/// `aeetes-pool`).
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Maximum concurrent workers; `0` or `1` runs inline on the caller's
    /// thread. Clamped to the number of documents and the pool size.
    pub threads: usize,
    /// Per-document resource limits (default: unlimited).
    pub limits: ExtractLimits,
    /// Shared cancellation flag (default: never fires). Keep a clone to
    /// cancel the batch from another thread.
    pub cancel: CancelToken,
}

/// Renders a caught panic payload as a message, preserving `&str` and
/// `String` payloads (the overwhelmingly common cases).
pub fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}
