//! Parallel batch extraction over a document collection.
//!
//! The paper's motivating systems "receive many consumer reviews" (§1) —
//! extraction is embarrassingly parallel across documents because the
//! engine is immutable after the off-line phase. This helper fans a slice
//! of documents out over scoped threads and returns per-document results in
//! input order.

use crate::extractor::Aeetes;
use crate::matches::Match;
use aeetes_text::Document;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Extracts from every document with up to `threads` worker threads,
/// returning `results[i]` = matches of `docs[i]`.
///
/// `threads == 0` or `1` runs inline; thread count is clamped to the number
/// of documents.
pub fn extract_batch(engine: &Aeetes, docs: &[Document], tau: f64, threads: usize) -> Vec<Vec<Match>> {
    let threads = threads.clamp(1, docs.len().max(1));
    if threads <= 1 || docs.len() <= 1 {
        return docs.iter().map(|d| engine.extract(d, tau)).collect();
    }
    let next = AtomicUsize::new(0);
    let collected: std::sync::Mutex<Vec<(usize, Vec<Match>)>> =
        std::sync::Mutex::new(Vec::with_capacity(docs.len()));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| loop {
                // Atomic work-stealing by document index keeps long
                // documents from serializing behind a static partition.
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= docs.len() {
                    break;
                }
                let out = engine.extract(&docs[i], tau);
                collected.lock().expect("collector lock").push((i, out));
            });
        }
    });
    let mut collected = collected.into_inner().expect("collector lock");
    collected.sort_unstable_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, out)| out).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeetesConfig;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn setup() -> (Aeetes, Vec<Document>) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        dict.push("uq au", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
        let engine = Aeetes::build(dict, &rules, AeetesConfig::default());
        let docs: Vec<Document> = [
            "a visit to purdue university usa was nice",
            "nothing relevant here at all",
            "the university of queensland au idea",
            "purdue university usa and uq au together",
        ]
        .iter()
        .map(|t| Document::parse(t, &tok, &mut int))
        .collect();
        (engine, docs)
    }

    #[test]
    fn parallel_matches_serial() {
        let (engine, docs) = setup();
        let serial = extract_batch(&engine, &docs, 0.8, 1);
        for threads in [2, 3, 8] {
            let parallel = extract_batch(&engine, &docs, 0.8, threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_docs() {
        let (engine, _) = setup();
        assert!(extract_batch(&engine, &[], 0.8, 4).is_empty());
    }

    #[test]
    fn zero_threads_runs_inline() {
        let (engine, docs) = setup();
        let got = extract_batch(&engine, &docs[..1], 0.8, 0);
        assert_eq!(got.len(), 1);
        assert!(!got[0].is_empty());
    }
}
