//! Parallel batch extraction over a document collection.
//!
//! The paper's motivating systems "receive many consumer reviews" (§1) —
//! extraction is embarrassingly parallel across documents because the
//! engine is immutable after the off-line phase. This module fans a slice
//! of documents out over scoped threads and returns per-document results in
//! input order.
//!
//! Fault isolation: each document runs under [`std::panic::catch_unwind`],
//! so one poisoned document surfaces as [`DocError::Panicked`] while the
//! rest of the batch completes. Results travel over an mpsc channel rather
//! than a shared `Mutex`, so a worker panic can never poison the collector.
//! A shared [`CancelToken`] is consulted between documents — and, in
//! [`extract_batch_with`], at window boundaries *inside* each document —
//! for cooperative early shutdown.

use crate::extractor::Aeetes;
use crate::limits::{CancelToken, ExtractLimits, ExtractOutcome};
use crate::matches::Match;
use crate::scratch::ExtractScratch;
use aeetes_text::Document;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc;

/// Why a single document in a batch produced no result.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DocError {
    /// Extraction of this document panicked; the payload message is
    /// preserved. Other documents in the batch are unaffected.
    Panicked(String),
    /// The batch's [`CancelToken`] fired before this document started.
    Cancelled,
}

impl std::fmt::Display for DocError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DocError::Panicked(msg) => write!(f, "extraction panicked: {msg}"),
            DocError::Cancelled => write!(f, "batch cancelled before this document started"),
        }
    }
}

impl std::error::Error for DocError {}

/// Knobs for [`extract_batch_with`].
#[derive(Debug, Clone, Default)]
pub struct BatchOptions {
    /// Worker threads; `0` or `1` runs inline on the caller's thread.
    /// Clamped to the number of documents.
    pub threads: usize,
    /// Per-document resource limits (default: unlimited).
    pub limits: ExtractLimits,
    /// Shared cancellation flag (default: never fires). Keep a clone to
    /// cancel the batch from another thread.
    pub cancel: CancelToken,
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `f(i, scratch)` for every `i < len` on up to `threads` workers,
/// catching per-item panics and honouring `cancel` between items. Each
/// worker owns one [`ExtractScratch`] reused across every document it
/// claims, so steady-state extraction allocates nothing per document.
/// Results come back in input order through an mpsc channel — no lock to
/// poison.
fn batch_run<R, F>(len: usize, threads: usize, cancel: &CancelToken, f: F) -> Vec<Result<R, DocError>>
where
    R: Send,
    F: Fn(usize, &mut ExtractScratch) -> R + Sync,
{
    let run_one = |i: usize, scratch: &mut ExtractScratch| -> Result<R, DocError> {
        if cancel.is_cancelled() {
            return Err(DocError::Cancelled);
        }
        // The engine is immutable during extraction (`&self` API), so a
        // caught panic cannot leave it in a broken state for other
        // documents: AssertUnwindSafe is sound here. The scratch is reset
        // at the start of every pass, so a panic mid-document cannot leak
        // stale state into the worker's next document either.
        catch_unwind(AssertUnwindSafe(|| f(i, scratch))).map_err(|payload| DocError::Panicked(panic_message(payload)))
    };
    let threads = threads.clamp(1, len.max(1));
    if threads <= 1 || len <= 1 {
        let mut scratch = ExtractScratch::new();
        return (0..len).map(|i| run_one(i, &mut scratch)).collect();
    }
    let next = AtomicUsize::new(0);
    let (tx, rx) = mpsc::channel::<(usize, Result<R, DocError>)>();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            let tx = tx.clone();
            let next = &next;
            let run_one = &run_one;
            scope.spawn(move || {
                let mut scratch = ExtractScratch::new();
                loop {
                    // Atomic work-stealing by document index keeps long
                    // documents from serializing behind a static partition.
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= len {
                        break;
                    }
                    if tx.send((i, run_one(i, &mut scratch))).is_err() {
                        break; // receiver gone: nothing left to report to
                    }
                }
            });
        }
    });
    drop(tx);
    let mut slots: Vec<Option<Result<R, DocError>>> = (0..len).map(|_| None).collect();
    for (i, r) in rx {
        slots[i] = Some(r);
    }
    // Every index is claimed exactly once, so empty slots are impossible;
    // map them to Cancelled rather than panicking just in case.
    slots.into_iter().map(|s| s.unwrap_or(Err(DocError::Cancelled))).collect()
}

/// Extracts from every document with up to `threads` worker threads,
/// returning `results[i]` = matches of `docs[i]`.
///
/// `threads == 0` or `1` runs inline; thread count is clamped to the number
/// of documents. If extraction of any document panics, the rest of the
/// batch still completes and the first panic is then re-raised on the
/// caller's thread (the pre-fault-isolation contract). Use
/// [`extract_batch_with`] to receive per-document errors instead.
pub fn extract_batch(engine: &Aeetes, docs: &[Document], tau: f64, threads: usize) -> Vec<Vec<Match>> {
    let cancel = CancelToken::new();
    let limits = engine.config().limits;
    let results = batch_run(docs.len(), threads, &cancel, |i, scratch| {
        engine.extract_scratched(&docs[i], tau, &limits, None, scratch).matches.to_vec()
    });
    results
        .into_iter()
        .map(|r| match r {
            Ok(matches) => matches,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// Fault-isolated batch extraction: `results[i]` is the outcome of
/// `docs[i]`, or a [`DocError`] if that document panicked or the batch was
/// cancelled before it started. Per-document [`ExtractLimits`] come from
/// `opts.limits`; check [`ExtractOutcome::truncated`] to detect partial
/// results. `opts.cancel` is honoured *mid-document*: a document in flight
/// when the token fires stops at the next window boundary and returns a
/// truncated (partial but exact) outcome.
pub fn extract_batch_with(engine: &Aeetes, docs: &[Document], tau: f64, opts: &BatchOptions) -> Vec<Result<ExtractOutcome, DocError>> {
    batch_run(docs.len(), opts.threads, &opts.cancel, |i, scratch| {
        engine.extract_scratched(&docs[i], tau, &opts.limits, Some(&opts.cancel), scratch).to_outcome()
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeetesConfig;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn setup() -> (Aeetes, Vec<Document>) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        dict.push("uq au", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
        let engine = Aeetes::build(dict, &rules, &int, AeetesConfig::default());
        let docs: Vec<Document> = [
            "a visit to purdue university usa was nice",
            "nothing relevant here at all",
            "the university of queensland au idea",
            "purdue university usa and uq au together",
        ]
        .iter()
        .map(|t| Document::parse(t, &tok, &mut int))
        .collect();
        (engine, docs)
    }

    #[test]
    fn parallel_matches_serial() {
        let (engine, docs) = setup();
        let serial = extract_batch(&engine, &docs, 0.8, 1);
        for threads in [2, 3, 8] {
            let parallel = extract_batch(&engine, &docs, 0.8, threads);
            assert_eq!(serial, parallel, "threads={threads}");
        }
    }

    #[test]
    fn empty_docs() {
        let (engine, _) = setup();
        assert!(extract_batch(&engine, &[], 0.8, 4).is_empty());
    }

    #[test]
    fn zero_threads_runs_inline() {
        let (engine, docs) = setup();
        let got = extract_batch(&engine, &docs[..1], 0.8, 0);
        assert_eq!(got.len(), 1);
        assert!(!got[0].is_empty());
    }

    /// Regression test for the old `Mutex` collector: a worker panicking
    /// mid-batch used to poison the lock, turning one bad document into a
    /// batch-wide `expect("collector lock")` panic. The channel collector
    /// must instead report the one failure and finish everything else.
    #[test]
    fn one_panicking_item_does_not_poison_the_batch() {
        for threads in [1, 2, 8] {
            let results = batch_run(5, threads, &CancelToken::new(), |i, _scratch| {
                assert!(i != 2, "injected failure on item 2");
                i * 10
            });
            assert_eq!(results.len(), 5);
            for (i, r) in results.iter().enumerate() {
                if i == 2 {
                    let err = r.as_ref().expect_err("item 2 must fail");
                    assert!(matches!(err, DocError::Panicked(msg) if msg.contains("injected failure")), "{err:?}");
                } else {
                    assert_eq!(r.as_ref().unwrap(), &(i * 10), "item {i} with {threads} threads");
                }
            }
        }
    }

    #[test]
    fn extract_batch_with_matches_plain_extract() {
        let (engine, docs) = setup();
        let plain = extract_batch(&engine, &docs, 0.8, 2);
        let opts = BatchOptions { threads: 2, ..BatchOptions::default() };
        let outcomes = extract_batch_with(&engine, &docs, 0.8, &opts);
        assert_eq!(outcomes.len(), plain.len());
        for (o, p) in outcomes.iter().zip(&plain) {
            let o = o.as_ref().unwrap();
            assert!(!o.truncated);
            assert_eq!(&o.matches, p);
        }
    }

    #[test]
    fn cancelled_batch_reports_every_document() {
        let (engine, docs) = setup();
        let opts = BatchOptions { threads: 4, ..BatchOptions::default() };
        opts.cancel.cancel();
        let results = extract_batch_with(&engine, &docs, 0.8, &opts);
        assert!(results.iter().all(|r| matches!(r, Err(DocError::Cancelled))));
    }

    #[test]
    fn zero_candidate_budget_truncates_every_document() {
        let (engine, docs) = setup();
        let opts = BatchOptions {
            threads: 2,
            limits: ExtractLimits { max_candidates: Some(0), ..ExtractLimits::UNLIMITED },
            ..BatchOptions::default()
        };
        for r in extract_batch_with(&engine, &docs, 0.8, &opts) {
            let out = r.unwrap();
            assert!(out.truncated);
            assert!(out.matches.is_empty());
        }
    }

    #[test]
    fn panicking_document_surfaces_as_doc_error() {
        let (engine, docs) = setup();
        // tau = 0.0 violates the extractor's precondition and panics per
        // document; the batch must survive and report each one.
        let opts = BatchOptions { threads: 2, ..BatchOptions::default() };
        let results = extract_batch_with(&engine, &docs, 0.0, &opts);
        assert_eq!(results.len(), docs.len());
        for r in results {
            assert!(matches!(r, Err(DocError::Panicked(ref m)) if m.contains("similarity threshold")), "{r:?}");
        }
    }

    /// A fired token reaching the cancellable single-document API truncates
    /// the extraction (partial, well-formed outcome) instead of erroring;
    /// the batch path still classifies not-yet-started documents as
    /// `Cancelled`.
    #[test]
    fn fired_token_truncates_single_doc_and_cancels_batch() {
        let (engine, docs) = setup();
        let opts = BatchOptions { threads: 1, ..BatchOptions::default() };
        opts.cancel.cancel();
        let out = engine.extract_with_limits_cancellable(&docs[0], 0.8, &ExtractLimits::UNLIMITED, &opts.cancel);
        assert!(out.truncated, "cancelled extraction must report truncation");
        assert!(out.matches.is_empty());
        let results = extract_batch_with(&engine, &docs, 0.8, &opts);
        assert!(results.iter().all(|r| matches!(r, Err(DocError::Cancelled))));
    }
}
