//! The `Simple` and `Skip` strategies: per-substring prefix computation
//! from scratch (paper §4, "straightforward solution").

use crate::candidates::{scan_clustered, scan_flat, CandidateSink};
use crate::limits::Budget;
use crate::stats::ExtractStats;
use aeetes_index::{metric_window_bounds, ClusteredIndex};
use aeetes_sim::Metric;
use aeetes_text::{Document, Span};

/// Enumerates every substring `W_p^l`, sorts its tokens by the global order
/// to obtain the τ-prefix, and scans the posting list of each valid prefix
/// token. `clustered` toggles the batch-skipping scan (the `Skip` strategy)
/// versus the full scan (`Simple`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn generate(
    index: &ClusteredIndex,
    doc: &Document,
    tau: f64,
    metric: Metric,
    set_bounds: (Option<usize>, Option<usize>),
    clustered: bool,
    sink: &mut CandidateSink,
    stats: &mut ExtractStats,
    budget: &mut Budget,
) {
    let Some(bounds) = metric_window_bounds(set_bounds.0, set_bounds.1, tau, metric) else {
        return;
    };
    let order = index.order();
    let n = doc.len();
    let keys: Vec<u64> = doc.tokens().iter().map(|&t| order.key(t)).collect();
    let mut buf: Vec<u64> = Vec::with_capacity(bounds.max);
    for p in 0..n {
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break; // remaining windows are too short for any entity
        }
        if !budget.keep_generating(sink.len()) {
            break; // budget spent: degrade to the candidates found so far
        }
        stats.windows += 1;
        for l in bounds.min..=lmax {
            stats.substrings += 1;
            stats.prefix_builds += 1;
            buf.clear();
            buf.extend_from_slice(&keys[p..p + l]);
            buf.sort_unstable();
            buf.dedup();
            let s_len = buf.len();
            let k = metric.prefix_len(s_len, tau);
            let span = Span::new(p, l);
            for &key in &buf[..k] {
                if key >> 32 == 0 {
                    continue; // invalid token: empty posting list
                }
                let t = index.order().token_of(key);
                if clustered {
                    scan_clustered(index, t, span, s_len, tau, metric, sink, stats);
                } else {
                    scan_flat(index, t, span, s_len, tau, metric, sink, stats);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, DerivedDictionary, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn setup(entries: &[&str], doc: &str) -> (ClusteredIndex, Document) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let dd = DerivedDictionary::build(&dict, &RuleSet::new(), &DeriveConfig::default());
        let ix = ClusteredIndex::build(&dd, &int);
        let d = Document::parse(doc, &tok, &mut int);
        (ix, d)
    }

    fn own(ix: &ClusteredIndex) -> (Option<usize>, Option<usize>) {
        (ix.min_set_len(), ix.max_set_len())
    }

    #[test]
    fn finds_exact_mention() {
        let (ix, doc) = setup(&["purdue university"], "i visited purdue university yesterday");
        let mut sink = CandidateSink::new();
        let mut stats = ExtractStats::default();
        generate(&ix, &doc, 0.9, Metric::Jaccard, own(&ix), false, &mut sink, &mut stats, &mut Budget::unlimited());
        assert!(sink.pairs.iter().any(|(sp, _)| *sp == Span::new(2, 2)));
    }

    #[test]
    fn simple_accesses_at_least_as_many_entries_as_skip() {
        let (ix, doc) = setup(&["a b", "a c d", "a e f g", "h i", "a"], "a b c a e f g h i a a b");
        let mut s1 = CandidateSink::new();
        let mut s2 = CandidateSink::new();
        let mut st1 = ExtractStats::default();
        let mut st2 = ExtractStats::default();
        generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), false, &mut s1, &mut st1, &mut Budget::unlimited());
        generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), true, &mut s2, &mut st2, &mut Budget::unlimited());
        assert!(st1.accessed_entries >= st2.accessed_entries);
        let mut a = s1.pairs;
        let mut b = s2.pairs;
        a.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
        b.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
        assert_eq!(a, b, "same candidates either way");
    }

    #[test]
    fn empty_doc_and_empty_dict() {
        let (ix, doc) = setup(&["a b"], "");
        let mut sink = CandidateSink::new();
        let mut stats = ExtractStats::default();
        generate(&ix, &doc, 0.8, Metric::Jaccard, own(&ix), true, &mut sink, &mut stats, &mut Budget::unlimited());
        assert_eq!(sink.len(), 0);
        let (ix2, doc2) = setup(&[], "some words here");
        let mut sink2 = CandidateSink::new();
        generate(&ix2, &doc2, 0.8, Metric::Jaccard, own(&ix2), true, &mut sink2, &mut stats, &mut Budget::unlimited());
        assert_eq!(sink2.len(), 0);
    }

    #[test]
    fn substring_count_matches_window_arithmetic() {
        let (ix, doc) = setup(&["x y"], "one two three four five");
        // entity distinct len 2, τ=0.8 → E⊥=1, E⊤=3; n=5.
        let mut sink = CandidateSink::new();
        let mut stats = ExtractStats::default();
        generate(&ix, &doc, 0.8, Metric::Jaccard, own(&ix), true, &mut sink, &mut stats, &mut Budget::unlimited());
        // p=0..4: lmax = min(3, 5-p) → 3,3,3,2,1 → substrings 3+3+3+2+1 = 12.
        assert_eq!(stats.windows, 5);
        assert_eq!(stats.substrings, 12);
        assert_eq!(stats.prefix_builds, 12);
    }
}
