//! The `Simple` and `Skip` strategies: per-substring prefix computation
//! from scratch (paper §4, "straightforward solution").

use crate::candidates::{scan_clustered, scan_flat};
use crate::limits::Budget;
use crate::scratch::SegmentScratch;
use crate::stage::{SpanClock, Stage};
use crate::stats::ExtractStats;
use aeetes_index::{metric_window_bounds, ClusteredIndex};
use aeetes_sim::Metric;
use aeetes_text::{Document, Span};

/// Enumerates every substring `W_p^l`, sorts its tokens by the global order
/// (as dense ranks, which sort identically) to obtain the τ-prefix, and
/// scans the posting list of each valid prefix token. `clustered` toggles
/// the batch-skipping scan (the `Skip` strategy) versus the full scan
/// (`Simple`).
#[allow(clippy::too_many_arguments)]
pub(crate) fn generate(
    index: &ClusteredIndex,
    doc: &Document,
    tau: f64,
    metric: Metric,
    set_bounds: (Option<usize>, Option<usize>),
    clustered: bool,
    seg: &mut SegmentScratch,
    stats: &mut ExtractStats,
    budget: &mut Budget,
) {
    let Some(bounds) = metric_window_bounds(set_bounds.0, set_bounds.1, tau, metric) else {
        return;
    };
    let order = index.order();
    let n = doc.len();
    let SegmentScratch { remap, sink, buf, stages, .. } = seg;
    let remap_clk = SpanClock::always();
    remap.build(doc.tokens().iter().map(|&t| order.key(t)));
    let ranks = remap.doc_ranks();
    remap_clk.stop(Stage::Remap, stages);
    let slide_clk = SpanClock::always();
    let substrings_before = stats.substrings;
    for p in 0..n {
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break; // remaining windows are too short for any entity
        }
        if !budget.keep_generating(sink.len()) {
            break; // budget spent: degrade to the candidates found so far
        }
        stats.windows += 1;
        // One position in SAMPLE_MASK + 1 gets its substrings timed.
        let mut clk = SpanClock::sampled(p);
        for l in bounds.min..=lmax {
            stats.substrings += 1;
            stats.prefix_builds += 1;
            buf.clear();
            buf.extend_from_slice(&ranks[p..p + l]);
            buf.sort_unstable();
            buf.dedup();
            let s_len = buf.len();
            let k = metric.prefix_len(s_len, tau);
            let span = Span::new(p, l);
            clk.lap(Stage::PrefixBuild, stages);
            for &r in &buf[..k] {
                if !remap.is_valid_rank(r) {
                    continue; // invalid token: empty posting list
                }
                let t = order.token_of(remap.key_of(r));
                if clustered {
                    scan_clustered(index, t, span, s_len, tau, metric, sink, stats);
                } else {
                    scan_flat(index, t, span, s_len, tau, metric, sink, stats);
                }
            }
            clk.lap(Stage::CandidateGen, stages);
        }
    }
    // Sampled-out laps above record nothing; both sub-stages saw one span
    // per substring, accounted here in bulk.
    let substrings = stats.substrings - substrings_before;
    stages.account_spans(Stage::PrefixBuild, substrings);
    stages.account_spans(Stage::CandidateGen, substrings);
    slide_clk.stop(Stage::WindowSlide, stages);
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, DerivedDictionary, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn setup(entries: &[&str], doc: &str) -> (ClusteredIndex, Document) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let dd = DerivedDictionary::build(&dict, &RuleSet::new(), &DeriveConfig::default());
        let ix = ClusteredIndex::build(&dd, &int);
        let d = Document::parse(doc, &tok, &mut int);
        (ix, d)
    }

    fn own(ix: &ClusteredIndex) -> (Option<usize>, Option<usize>) {
        (ix.min_set_len(), ix.max_set_len())
    }

    fn run(ix: &ClusteredIndex, doc: &Document, tau: f64, clustered: bool, stats: &mut ExtractStats) -> Vec<(Span, aeetes_text::EntityId)> {
        let mut seg = SegmentScratch::default();
        generate(ix, doc, tau, Metric::Jaccard, own(ix), clustered, &mut seg, stats, &mut Budget::unlimited());
        seg.sink.pairs.clone()
    }

    #[test]
    fn finds_exact_mention() {
        let (ix, doc) = setup(&["purdue university"], "i visited purdue university yesterday");
        let mut stats = ExtractStats::default();
        let pairs = run(&ix, &doc, 0.9, false, &mut stats);
        assert!(pairs.iter().any(|(sp, _)| *sp == Span::new(2, 2)));
    }

    #[test]
    fn simple_accesses_at_least_as_many_entries_as_skip() {
        let (ix, doc) = setup(&["a b", "a c d", "a e f g", "h i", "a"], "a b c a e f g h i a a b");
        let mut st1 = ExtractStats::default();
        let mut st2 = ExtractStats::default();
        let mut a = run(&ix, &doc, 0.7, false, &mut st1);
        let mut b = run(&ix, &doc, 0.7, true, &mut st2);
        assert!(st1.accessed_entries >= st2.accessed_entries);
        a.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
        b.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
        assert_eq!(a, b, "same candidates either way");
    }

    #[test]
    fn empty_doc_and_empty_dict() {
        let (ix, doc) = setup(&["a b"], "");
        let mut stats = ExtractStats::default();
        assert!(run(&ix, &doc, 0.8, true, &mut stats).is_empty());
        let (ix2, doc2) = setup(&[], "some words here");
        assert!(run(&ix2, &doc2, 0.8, true, &mut stats).is_empty());
    }

    #[test]
    fn substring_count_matches_window_arithmetic() {
        let (ix, doc) = setup(&["x y"], "one two three four five");
        // entity distinct len 2, τ=0.8 → E⊥=1, E⊤=3; n=5.
        let mut stats = ExtractStats::default();
        run(&ix, &doc, 0.8, true, &mut stats);
        // p=0..4: lmax = min(3, 5-p) → 3,3,3,2,1 → substrings 3+3+3+2+1 = 12.
        assert_eq!(stats.windows, 5);
        assert_eq!(stats.substrings, 12);
        assert_eq!(stats.prefix_builds, 12);
    }
}
