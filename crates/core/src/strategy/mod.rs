//! Candidate-generation strategies (paper §4; ablation of Figure 10/11).

mod dynamic;
mod lazy;
mod naive;

use crate::limits::{Budget, ExtractLimits};
use crate::scratch::{ExtractScratch, SegmentScratch};
use crate::stats::ExtractStats;
use aeetes_index::ClusteredIndex;
use aeetes_sim::Metric;
use aeetes_text::{Document, EntityId, Span};

/// Which filtering pipeline generates candidates.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Strategy {
    /// Enumerate every substring, compute its prefix from scratch and scan
    /// the full posting list of each prefix token (per-entry filters only).
    Simple,
    /// Like `Simple`, but scans use the clustered index: length groups and
    /// already-candidate origin groups are skipped in batch (§3.2).
    Skip,
    /// Incremental prefix maintenance with Window Extend / Window Migrate
    /// (§4.1) on top of the clustered scans.
    Dynamic,
    /// Incremental prefixes plus lazy candidate generation (§4.2): posting
    /// lists are scanned once per document, after all valid tokens are
    /// collected.
    Lazy,
}

impl Strategy {
    /// All strategies, in the paper's ablation order.
    pub const ALL: [Strategy; 4] = [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy];

    /// Stable lowercase name (used by the experiment harness).
    pub fn name(self) -> &'static str {
        match self {
            Strategy::Simple => "simple",
            Strategy::Skip => "skip",
            Strategy::Dynamic => "dynamic",
            Strategy::Lazy => "lazy",
        }
    }
}

impl std::fmt::Display for Strategy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Runs the chosen strategy, filling `seg.sink` with the candidate pairs in
/// discovery order. The budget is consulted at every window advance; an
/// exhausted budget stops generation with whatever candidates were produced
/// so far.
///
/// `set_bounds` is the `(min, max)` distinct-set length range used to bound
/// window enumeration — the index's own range for a monolithic engine, or
/// the dictionary-global range when the index is one shard of a partition
/// (a shard's local range is tighter, and would skip windows the whole
/// dictionary admits).
#[allow(clippy::too_many_arguments)]
pub(crate) fn generate(
    index: &ClusteredIndex,
    doc: &Document,
    tau: f64,
    metric: Metric,
    strategy: Strategy,
    set_bounds: (Option<usize>, Option<usize>),
    seg: &mut SegmentScratch,
    stats: &mut ExtractStats,
    budget: &mut Budget,
) {
    seg.sink.clear();
    seg.stages.clear();
    // An already-spent budget (e.g. `max_candidates: Some(0)` or an expired
    // deadline) returns before any window is visited, even on inputs that
    // produce no windows at all.
    if !budget.keep_generating(0) {
        return;
    }
    match strategy {
        Strategy::Simple => naive::generate(index, doc, tau, metric, set_bounds, false, seg, stats, budget),
        Strategy::Skip => naive::generate(index, doc, tau, metric, set_bounds, true, seg, stats, budget),
        Strategy::Dynamic => dynamic::generate(index, doc, tau, metric, set_bounds, seg, stats, budget),
        Strategy::Lazy => lazy::generate(index, doc, tau, metric, set_bounds, seg, stats, budget),
    }
}

/// Runs candidate generation alone — no verification — into `scratch`,
/// returning the deduplicated candidate pairs in discovery order plus the
/// work counters. This is the hot path measured by `bench_hot_path`; the
/// returned slice borrows the scratch and is valid until its next use.
///
/// # Panics
/// Panics when `tau` is not in `(0, 1]`.
pub fn generate_candidates<'s>(
    index: &ClusteredIndex,
    doc: &Document,
    tau: f64,
    metric: Metric,
    strategy: Strategy,
    scratch: &'s mut ExtractScratch,
) -> (&'s [(Span, EntityId)], ExtractStats) {
    assert!(tau > 0.0 && tau <= 1.0, "similarity threshold must be in (0, 1], got {tau}");
    let set_bounds = (index.min_set_len(), index.max_set_len());
    let mut stats = ExtractStats::default();
    let mut budget = Budget::start(&ExtractLimits::UNLIMITED);
    let seg = scratch.segment(0);
    generate(index, doc, tau, metric, strategy, set_bounds, seg, &mut stats, &mut budget);
    (&seg.sink.pairs, stats)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_are_stable() {
        let names: Vec<&str> = Strategy::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, vec!["simple", "skip", "dynamic", "lazy"]);
        assert_eq!(Strategy::Lazy.to_string(), "lazy");
    }
}
