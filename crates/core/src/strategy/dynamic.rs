//! The `Dynamic` strategy: incremental prefix maintenance via the paper's
//! Window Extend and Window Migrate operations (§4.1, Algorithm 3).
//!
//! One [`crate::window::WindowState`] is kept per candidate substring
//! length `l ∈ [E⊥, E⊤]`, pooled in the scratch and migrated in place.
//! Moving the window start from `p−1` to `p` *migrates* every state (drop
//! `d[p−1]`, take `d[p−1+l]`); the first window is built once with
//! *extends*. The τ-prefix is read off the sorted live-rank slice instead
//! of being re-sorted per substring — and, crucially, the posting-list scan
//! of a prefix token is **reused across migrations**: a scan's outcome
//! depends only on `(token, |s|, τ)`, so tokens that stay in the prefix
//! (and a distinct-size that stays put) keep their cached candidate
//! origins, and only tokens that *enter* the prefix are scanned. This is
//! what drops the accessed-entry count below `Skip` in the paper's
//! Figure 11. Scan results live in a per-document arena; cache values are
//! ranges into it, so a cache hit copies nothing and a miss allocates
//! nothing once the arena has reached its high-water capacity.

use crate::candidates::scan_token_origins_into;
use crate::limits::Budget;
use crate::scratch::{DynScratch, SegmentScratch};
use crate::stage::{SpanClock, Stage};
use crate::stats::ExtractStats;
use aeetes_index::{metric_window_bounds, ClusteredIndex};
use aeetes_sim::Metric;
use aeetes_text::{Document, Span};

#[allow(clippy::too_many_arguments)]
pub(crate) fn generate(
    index: &ClusteredIndex,
    doc: &Document,
    tau: f64,
    metric: Metric,
    set_bounds: (Option<usize>, Option<usize>),
    seg: &mut SegmentScratch,
    stats: &mut ExtractStats,
    budget: &mut Budget,
) {
    let Some(bounds) = metric_window_bounds(set_bounds.0, set_bounds.1, tau, metric) else {
        return;
    };
    let n = doc.len();
    if n < bounds.min {
        return;
    }
    let order = index.order();
    let SegmentScratch { remap, states, sink, dynamic, stages, .. } = seg;
    let remap_clk = SpanClock::always();
    remap.build(doc.tokens().iter().map(|&t| order.key(t)));
    let universe = remap.universe();
    let ranks = remap.doc_ranks();
    remap_clk.stop(Stage::Remap, stages);

    // states[i] / caches[i] track the substring of length `bounds.min + i`
    // at the current start position; `live` counts the lengths that still
    // fit in the document (the pool itself is never truncated).
    let max_fit = bounds.max.min(n) - bounds.min + 1;
    if states.len() < max_fit {
        states.resize_with(max_fit, crate::window::WindowState::new);
    }
    if dynamic.caches.len() < max_fit {
        dynamic.caches.resize_with(max_fit, Default::default);
    }
    for st in &mut states[..max_fit] {
        st.reset(universe);
    }
    for cache in &mut dynamic.caches[..max_fit] {
        cache.clear();
    }
    dynamic.arena.clear();
    let DynScratch { caches, arena, seen } = dynamic;
    let mut live = 0usize;

    let slide_clk = SpanClock::always();
    let windows_before = stats.windows;
    for p in 0..n {
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break;
        }
        if !budget.keep_generating(sink.len()) {
            break; // budget spent: degrade to the candidates found so far
        }
        stats.windows += 1;
        // Sampled sub-stage timing: position 0 (always on the grid) times
        // the extend chain as `PrefixBuild`; later grid positions time the
        // migrate block as `PrefixUpdate` and the scans as `CandidateGen`.
        let mut clk = SpanClock::sampled(p);
        let fit = lmax - bounds.min + 1;
        if p == 0 {
            // Window Extend chain: build the E⊥ state, then grow one token
            // at a time, copying the previous length's multiset into the
            // next pooled state.
            for i in 0..fit {
                if i == 0 {
                    for &r in &ranks[0..bounds.min] {
                        states[0].add(r);
                    }
                    stats.prefix_builds += 1;
                } else {
                    let (prev, rest) = states.split_at_mut(i);
                    rest[0].copy_from(&prev[i - 1]);
                    rest[0].add(ranks[bounds.min + i - 1]);
                    stats.prefix_updates += 1;
                }
            }
            live = fit;
            clk.lap(Stage::PrefixBuild, stages);
        } else {
            // Lengths that no longer fit stop being migrated (their pooled
            // states stay behind for the next document).
            live = live.min(fit);
            // Window Migrate per surviving length.
            for (i, st) in states[..live].iter_mut().enumerate() {
                let l = bounds.min + i;
                st.remove(ranks[p - 1]);
                st.add(ranks[p - 1 + l]);
                stats.prefix_updates += 1;
            }
            clk.lap(Stage::PrefixUpdate, stages);
        }

        for (i, (st, cache)) in states[..live].iter().zip(caches.iter_mut()).enumerate() {
            let l = bounds.min + i;
            stats.substrings += 1;
            let s_len = st.distinct_len();
            let k = metric.prefix_len(s_len, tau);
            let prefix = st.prefix(k);
            let span = Span::new(p, l);
            // Drop cache entries for ranks that left the prefix (entries
            // for other distinct sizes of current ranks are kept warm).
            cache.retain(|&(r, _), _| prefix.binary_search(&r).is_ok());
            for &r in prefix {
                if !remap.is_valid_rank(r) {
                    continue; // invalid token
                }
                let (from, to) = *cache
                    .entry((r, s_len as u32))
                    .or_insert_with(|| scan_token_origins_into(index, order.token_of(remap.key_of(r)), s_len, tau, metric, stats, arena, seen));
                for &origin in &arena[from as usize..to as usize] {
                    sink.push(span, origin);
                }
            }
        }
        clk.lap(Stage::CandidateGen, stages);
    }
    // Sampled-out laps record nothing; span totals are accounted in bulk:
    // one migrate per position after the first, one scan block per position.
    let windows = stats.windows - windows_before;
    stages.account_spans(Stage::PrefixUpdate, windows.saturating_sub(1));
    stages.account_spans(Stage::CandidateGen, windows);
    slide_clk.stop(Stage::WindowSlide, stages);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::naive;
    use aeetes_rules::{DeriveConfig, DerivedDictionary, RuleSet};
    use aeetes_text::{Dictionary, EntityId, Interner, Tokenizer};

    fn setup(entries: &[&str], rules: &[(&str, &str)], doc: &str) -> (ClusteredIndex, Document) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        let ix = ClusteredIndex::build(&dd, &int);
        let d = Document::parse(doc, &tok, &mut int);
        (ix, d)
    }

    fn sorted(mut v: Vec<(Span, EntityId)>) -> Vec<(Span, EntityId)> {
        v.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
        v
    }

    fn own(ix: &ClusteredIndex) -> (Option<usize>, Option<usize>) {
        (ix.min_set_len(), ix.max_set_len())
    }

    fn run(ix: &ClusteredIndex, doc: &Document, tau: f64, seg: &mut SegmentScratch, stats: &mut ExtractStats) -> Vec<(Span, EntityId)> {
        seg.sink.clear();
        generate(ix, doc, tau, Metric::Jaccard, own(ix), seg, stats, &mut Budget::unlimited());
        seg.sink.pairs.clone()
    }

    fn run_naive(ix: &ClusteredIndex, doc: &Document, tau: f64, clustered: bool, stats: &mut ExtractStats) -> Vec<(Span, EntityId)> {
        let mut seg = SegmentScratch::default();
        naive::generate(ix, doc, tau, Metric::Jaccard, own(ix), clustered, &mut seg, stats, &mut Budget::unlimited());
        seg.sink.pairs.clone()
    }

    #[test]
    fn agrees_with_naive_on_mixed_document() {
        let (ix, doc) = setup(
            &["purdue university usa", "uq au", "university of wisconsin"],
            &[("uq", "university of queensland"), ("au", "australia"), ("usa", "united states")],
            "pc members include purdue university united states and the university of queensland australia plus university of wisconsin madison folks",
        );
        let mut seg = SegmentScratch::default();
        for tau in [0.7, 0.8, 0.9] {
            let mut st = ExtractStats::default();
            let eager = run_naive(&ix, &doc, tau, true, &mut st);
            let mut st2 = ExtractStats::default();
            let dynamic = run(&ix, &doc, tau, &mut seg, &mut st2);
            assert_eq!(sorted(eager), sorted(dynamic), "tau={tau}");
        }
    }

    #[test]
    fn accesses_fewer_entries_than_skip() {
        // A repetitive document keeps tokens in the prefix across many
        // migrations, which is exactly what the scan cache exploits.
        let (ix, doc) = setup(
            &["data base systems", "data mining", "system design"],
            &[("data base", "database")],
            "data base systems and data mining and data base design of system design for data base systems again data mining data base",
        );
        let mut st_skip = ExtractStats::default();
        let mut st_dyn = ExtractStats::default();
        let skip = run_naive(&ix, &doc, 0.7, true, &mut st_skip);
        let mut seg = SegmentScratch::default();
        let dynamic = run(&ix, &doc, 0.7, &mut seg, &mut st_dyn);
        assert_eq!(sorted(skip), sorted(dynamic));
        assert!(
            st_dyn.accessed_entries < st_skip.accessed_entries,
            "dynamic {} vs skip {}",
            st_dyn.accessed_entries,
            st_skip.accessed_entries
        );
    }

    #[test]
    fn uses_incremental_updates_not_rebuilds() {
        let (ix, doc) = setup(&["a b c"], &[], "a b c d e f g h i j");
        let mut seg = SegmentScratch::default();
        let mut stats = ExtractStats::default();
        run(&ix, &doc, 0.8, &mut seg, &mut stats);
        assert_eq!(stats.prefix_builds, 1, "only the very first state is built");
        assert!(stats.prefix_updates > 0);
    }

    #[test]
    fn short_document_tail_lengths_dropped() {
        // Document shorter than E⊤ forces live-length shrink near the end.
        let (ix, doc) = setup(&["a b c d e"], &[], "a b c d e f");
        let mut seg = SegmentScratch::default();
        let mut stats = ExtractStats::default();
        let pairs = run(&ix, &doc, 0.7, &mut seg, &mut stats);
        // must not panic, and still finds the full-entity match
        assert!(pairs.iter().any(|(sp, _)| *sp == Span::new(0, 5)));
    }

    #[test]
    fn document_shorter_than_min_window() {
        let (ix, doc) = setup(&["a b c d e f g h i j"], &[], "a b");
        let mut seg = SegmentScratch::default();
        let mut stats = ExtractStats::default();
        let pairs = run(&ix, &doc, 0.9, &mut seg, &mut stats);
        assert!(pairs.is_empty());
        assert_eq!(stats.windows, 0);
    }

    #[test]
    fn repeated_tokens_migrate_correctly() {
        let (ix, doc) = setup(&["ny ny"], &[], "ny ny ny ny ny");
        let mut st = ExtractStats::default();
        let skip = run_naive(&ix, &doc, 0.8, true, &mut st);
        let mut seg = SegmentScratch::default();
        let mut st2 = ExtractStats::default();
        let dynamic = run(&ix, &doc, 0.8, &mut seg, &mut st2);
        assert_eq!(sorted(skip), sorted(dynamic));
    }

    #[test]
    fn scratch_reuse_across_documents_is_bit_identical() {
        // The same scratch must give the same candidates as a fresh one,
        // document after document, including after a larger doc grew it.
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(["data base systems", "data mining", "system design"], &tok, &mut int);
        let mut rs = RuleSet::new();
        rs.push_str("data base", "database", &tok, &mut int).unwrap();
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        let ix = ClusteredIndex::build(&dd, &int);
        let big = Document::parse(
            "data base systems and data mining and data base design of system design for data base systems again data mining data base",
            &tok,
            &mut int,
        );
        let small = Document::parse("data mining of system design", &tok, &mut int);
        let mut reused = SegmentScratch::default();
        for doc in [&big, &small, &big, &small] {
            let mut st = ExtractStats::default();
            let with_reuse = run(&ix, doc, 0.7, &mut reused, &mut st);
            let mut fresh = SegmentScratch::default();
            let mut st2 = ExtractStats::default();
            let baseline = run(&ix, doc, 0.7, &mut fresh, &mut st2);
            assert_eq!(with_reuse, baseline, "discovery order must survive scratch reuse");
            assert_eq!(st.accessed_entries, st2.accessed_entries, "work counters must survive scratch reuse");
        }
    }
}
