//! The `Dynamic` strategy: incremental prefix maintenance via the paper's
//! Window Extend and Window Migrate operations (§4.1, Algorithm 3).
//!
//! One [`WindowState`] is kept per candidate substring length
//! `l ∈ [E⊥, E⊤]`. Moving the window start from `p−1` to `p` *migrates*
//! every state (drop `d[p−1]`, take `d[p−1+l]`); the first window is built
//! once with *extends*. The τ-prefix is read off the ordered state instead
//! of being re-sorted per substring — and, crucially, the posting-list scan
//! of a prefix token is **reused across migrations**: a scan's outcome
//! depends only on `(token, |s|, τ)`, so tokens that stay in the prefix
//! (and a distinct-size that stays put) keep their cached candidate
//! origins, and only tokens that *enter* the prefix are scanned. This is
//! what drops the accessed-entry count below `Skip` in the paper's
//! Figure 11.

use crate::candidates::{scan_token_origins, CandidateSink};
use crate::limits::Budget;
use crate::stats::ExtractStats;
use crate::window::WindowState;
use aeetes_index::{metric_window_bounds, ClusteredIndex};
use aeetes_sim::Metric;
use aeetes_text::{Document, EntityId, Span};
use std::collections::HashMap;

/// Sliding state for one substring length.
struct LenState {
    window: WindowState,
    /// `(prefix token key, distinct size)` → candidate origins of that
    /// scan. The distinct size is part of the key because the length-filter
    /// bounds depend on it; keeping stale sizes around lets a window whose
    /// distinct size oscillates keep both scans warm.
    cache: HashMap<(u64, u32), Vec<EntityId>>,
}

impl LenState {
    fn new(window: WindowState) -> Self {
        Self { window, cache: HashMap::new() }
    }
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn generate(
    index: &ClusteredIndex,
    doc: &Document,
    tau: f64,
    metric: Metric,
    set_bounds: (Option<usize>, Option<usize>),
    sink: &mut CandidateSink,
    stats: &mut ExtractStats,
    budget: &mut Budget,
) {
    let Some(bounds) = metric_window_bounds(set_bounds.0, set_bounds.1, tau, metric) else {
        return;
    };
    let n = doc.len();
    if n < bounds.min {
        return;
    }
    let order = index.order();
    let keys: Vec<u64> = doc.tokens().iter().map(|&t| order.key(t)).collect();
    let mut prefix_buf: Vec<u64> = Vec::new();

    // states[i] tracks the substring of length `bounds.min + i` at the
    // current start position (only lengths that fit in the document).
    let mut states: Vec<LenState> = Vec::new();

    for p in 0..n {
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break;
        }
        if !budget.keep_generating(sink.len()) {
            break; // budget spent: degrade to the candidates found so far
        }
        stats.windows += 1;
        let fit = lmax - bounds.min + 1;
        if p == 0 {
            // Window Extend chain: build the E⊥ state, then grow one token
            // at a time, cloning the previous length's multiset.
            let mut st = WindowState::from_keys(keys[0..bounds.min].iter().copied());
            stats.prefix_builds += 1;
            states.push(LenState::new(st.clone()));
            for l in bounds.min + 1..=lmax {
                st.add(keys[l - 1]);
                stats.prefix_updates += 1;
                states.push(LenState::new(st.clone()));
            }
        } else {
            // Lengths that no longer fit are dropped before migration.
            states.truncate(fit);
            // Window Migrate per surviving length.
            for (i, st) in states.iter_mut().enumerate() {
                let l = bounds.min + i;
                st.window.remove(keys[p - 1]);
                st.window.add(keys[p - 1 + l]);
                stats.prefix_updates += 1;
            }
        }

        for (i, st) in states.iter_mut().enumerate() {
            let l = bounds.min + i;
            stats.substrings += 1;
            let s_len = st.window.distinct_len();
            let k = metric.prefix_len(s_len, tau);
            prefix_buf.clear();
            prefix_buf.extend(st.window.prefix(k));
            let span = Span::new(p, l);
            // Drop cache entries for tokens that left the prefix (entries
            // for other distinct sizes of current tokens are kept warm).
            st.cache.retain(|(key, _), _| prefix_buf.binary_search(key).is_ok());
            for &key in &prefix_buf {
                if key >> 32 == 0 {
                    continue; // invalid token
                }
                let origins = st
                    .cache
                    .entry((key, s_len as u32))
                    .or_insert_with(|| scan_token_origins(index, index.order().token_of(key), s_len, tau, metric, stats));
                for &origin in origins.iter() {
                    sink.push(span, origin);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::naive;
    use aeetes_rules::{DeriveConfig, DerivedDictionary, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn setup(entries: &[&str], rules: &[(&str, &str)], doc: &str) -> (ClusteredIndex, Document) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        let ix = ClusteredIndex::build(&dd, &int);
        let d = Document::parse(doc, &tok, &mut int);
        (ix, d)
    }

    fn sorted(mut v: Vec<(Span, EntityId)>) -> Vec<(Span, EntityId)> {
        v.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
        v
    }

    fn own(ix: &ClusteredIndex) -> (Option<usize>, Option<usize>) {
        (ix.min_set_len(), ix.max_set_len())
    }

    #[test]
    fn agrees_with_naive_on_mixed_document() {
        let (ix, doc) = setup(
            &["purdue university usa", "uq au", "university of wisconsin"],
            &[("uq", "university of queensland"), ("au", "australia"), ("usa", "united states")],
            "pc members include purdue university united states and the university of queensland australia plus university of wisconsin madison folks",
        );
        for tau in [0.7, 0.8, 0.9] {
            let mut s1 = CandidateSink::new();
            let mut s2 = CandidateSink::new();
            let mut st = ExtractStats::default();
            naive::generate(&ix, &doc, tau, Metric::Jaccard, own(&ix), true, &mut s1, &mut st, &mut Budget::unlimited());
            let mut st2 = ExtractStats::default();
            generate(&ix, &doc, tau, Metric::Jaccard, own(&ix), &mut s2, &mut st2, &mut Budget::unlimited());
            assert_eq!(sorted(s1.pairs), sorted(s2.pairs), "tau={tau}");
        }
    }

    #[test]
    fn accesses_fewer_entries_than_skip() {
        // A repetitive document keeps tokens in the prefix across many
        // migrations, which is exactly what the scan cache exploits.
        let (ix, doc) = setup(
            &["data base systems", "data mining", "system design"],
            &[("data base", "database")],
            "data base systems and data mining and data base design of system design for data base systems again data mining data base",
        );
        let mut s_skip = CandidateSink::new();
        let mut s_dyn = CandidateSink::new();
        let mut st_skip = ExtractStats::default();
        let mut st_dyn = ExtractStats::default();
        naive::generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), true, &mut s_skip, &mut st_skip, &mut Budget::unlimited());
        generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), &mut s_dyn, &mut st_dyn, &mut Budget::unlimited());
        assert_eq!(sorted(s_skip.pairs), sorted(s_dyn.pairs));
        assert!(
            st_dyn.accessed_entries < st_skip.accessed_entries,
            "dynamic {} vs skip {}",
            st_dyn.accessed_entries,
            st_skip.accessed_entries
        );
    }

    #[test]
    fn uses_incremental_updates_not_rebuilds() {
        let (ix, doc) = setup(&["a b c"], &[], "a b c d e f g h i j");
        let mut sink = CandidateSink::new();
        let mut stats = ExtractStats::default();
        generate(&ix, &doc, 0.8, Metric::Jaccard, own(&ix), &mut sink, &mut stats, &mut Budget::unlimited());
        assert_eq!(stats.prefix_builds, 1, "only the very first state is built");
        assert!(stats.prefix_updates > 0);
    }

    #[test]
    fn short_document_tail_lengths_dropped() {
        // Document shorter than E⊤ forces state truncation near the end.
        let (ix, doc) = setup(&["a b c d e"], &[], "a b c d e f");
        let mut sink = CandidateSink::new();
        let mut stats = ExtractStats::default();
        generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), &mut sink, &mut stats, &mut Budget::unlimited());
        // must not panic, and still finds the full-entity match
        assert!(sink.pairs.iter().any(|(sp, _)| *sp == Span::new(0, 5)));
    }

    #[test]
    fn document_shorter_than_min_window() {
        let (ix, doc) = setup(&["a b c d e f g h i j"], &[], "a b");
        let mut sink = CandidateSink::new();
        let mut stats = ExtractStats::default();
        generate(&ix, &doc, 0.9, Metric::Jaccard, own(&ix), &mut sink, &mut stats, &mut Budget::unlimited());
        assert_eq!(sink.len(), 0);
        assert_eq!(stats.windows, 0);
    }

    #[test]
    fn repeated_tokens_migrate_correctly() {
        let (ix, doc) = setup(&["ny ny"], &[], "ny ny ny ny ny");
        let mut s1 = CandidateSink::new();
        let mut s2 = CandidateSink::new();
        let mut st = ExtractStats::default();
        naive::generate(&ix, &doc, 0.8, Metric::Jaccard, own(&ix), true, &mut s1, &mut st, &mut Budget::unlimited());
        let mut st2 = ExtractStats::default();
        generate(&ix, &doc, 0.8, Metric::Jaccard, own(&ix), &mut s2, &mut st2, &mut Budget::unlimited());
        assert_eq!(sorted(s1.pairs), sorted(s2.pairs));
    }
}
