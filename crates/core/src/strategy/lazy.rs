//! The `Lazy` strategy: lazy candidate generation (paper §4.2, Algorithm 4).
//!
//! Pass 1 slides the windows exactly like `Dynamic`, but instead of scanning
//! posting lists per substring it only records, for every *valid* token `t`,
//! which substrings carry `t` in their τ-prefix — the paper's substring
//! inverted index `I[t]` (built from the valid-token sets `Φ` and their
//! deltas `∆φ`; we materialize the aggregated index directly). Pass 2 then
//! scans the posting list of each distinct valid token **once**, pairing
//! every length group with the substrings whose length filter admits it.

use crate::candidates::CandidateSink;
use crate::limits::Budget;
use crate::stats::ExtractStats;
use crate::window::WindowState;
use aeetes_index::{metric_window_bounds, ClusteredIndex};
use aeetes_sim::Metric;
use aeetes_text::{Document, Span, TokenId};
use std::collections::HashMap;

/// One substring that carries a given valid token in its prefix, with its
/// precomputed admissible entity-length interval `[lo, hi]`.
#[derive(Debug, Clone, Copy)]
struct Pending {
    span: Span,
    lo: u32,
    hi: u32,
}

#[allow(clippy::too_many_arguments)]
pub(crate) fn generate(
    index: &ClusteredIndex,
    doc: &Document,
    tau: f64,
    metric: Metric,
    set_bounds: (Option<usize>, Option<usize>),
    sink: &mut CandidateSink,
    stats: &mut ExtractStats,
    budget: &mut Budget,
) {
    let Some(bounds) = metric_window_bounds(set_bounds.0, set_bounds.1, tau, metric) else {
        return;
    };
    let n = doc.len();
    if n < bounds.min {
        return;
    }
    let order = index.order();
    let keys: Vec<u64> = doc.tokens().iter().map(|&t| order.key(t)).collect();

    // ---- Pass 1: build the substring inverted index I[t]. ----
    let mut inv: HashMap<TokenId, Vec<Pending>> = HashMap::new();
    let mut states: Vec<WindowState> = Vec::new();
    for p in 0..n {
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break;
        }
        // No candidates are produced in this pass, but the deadline (and an
        // already-zero candidate budget) still applies per window advance.
        if !budget.keep_generating(sink.len()) {
            break;
        }
        stats.windows += 1;
        let fit = lmax - bounds.min + 1;
        if p == 0 {
            let mut st = WindowState::from_keys(keys[0..bounds.min].iter().copied());
            stats.prefix_builds += 1;
            states.push(st.clone());
            for l in bounds.min + 1..=lmax {
                st.add(keys[l - 1]);
                stats.prefix_updates += 1;
                states.push(st.clone());
            }
        } else {
            states.truncate(fit);
            for (i, st) in states.iter_mut().enumerate() {
                let l = bounds.min + i;
                st.remove(keys[p - 1]);
                st.add(keys[p - 1 + l]);
                stats.prefix_updates += 1;
            }
        }
        for (i, st) in states.iter().enumerate() {
            let l = bounds.min + i;
            stats.substrings += 1;
            let s_len = st.distinct_len();
            let k = metric.prefix_len(s_len, tau);
            let (lo, hi) = metric.length_bounds(s_len, tau, u32::MAX as usize);
            let span = Span::new(p, l);
            for key in st.prefix(k) {
                if key >> 32 == 0 {
                    continue; // invalid token: no postings to visit later
                }
                inv.entry(index.order().token_of(key))
                    .or_default()
                    .push(Pending { span, lo: lo as u32, hi: hi as u32 });
            }
        }
    }

    // ---- Pass 2: one scan of L[t] per distinct valid token. ----
    // Tokens are processed in id order for determinism.
    let mut tokens: Vec<TokenId> = inv.keys().copied().collect();
    tokens.sort_unstable();
    for t in tokens {
        // Candidates accumulate per scanned token, so this pass re-checks
        // the budget at every token boundary.
        if !budget.keep_generating(sink.len()) {
            break;
        }
        let mut list = inv.remove(&t).expect("token recorded in pass 1");
        let Some(tp) = index.postings(t) else { continue };
        list.sort_unstable_by_key(|pend| pend.lo);
        let mut next = 0usize; // next pending to activate
        let mut active: Vec<Pending> = Vec::new();
        for g in tp.groups() {
            let len = g.len() as u32;
            while next < list.len() && list[next].lo <= len {
                active.push(list[next]);
                next += 1;
            }
            active.retain(|pend| pend.hi >= len);
            if active.is_empty() {
                if next >= list.len() {
                    break; // nothing left to pair with larger groups
                }
                continue;
            }
            let plen = metric.prefix_len(len as usize, tau);
            for og in g.origins() {
                // One pass over the origin group: stop at the first entry
                // inside the entity prefix.
                let mut hit = false;
                for e in og.entries {
                    stats.accessed_entries += 1;
                    if (e.pos as usize) < plen {
                        hit = true;
                        break;
                    }
                }
                if hit {
                    for pend in &active {
                        sink.push(pend.span, og.origin);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{dynamic, naive};
    use aeetes_rules::{DeriveConfig, DerivedDictionary, RuleSet};
    use aeetes_text::{Dictionary, EntityId, Interner, Tokenizer};

    fn setup(entries: &[&str], rules: &[(&str, &str)], doc: &str) -> (ClusteredIndex, Document) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        let ix = ClusteredIndex::build(&dd, &int);
        let d = Document::parse(doc, &tok, &mut int);
        (ix, d)
    }

    fn sorted(mut v: Vec<(Span, EntityId)>) -> Vec<(Span, EntityId)> {
        v.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
        v
    }

    fn own(ix: &ClusteredIndex) -> (Option<usize>, Option<usize>) {
        (ix.min_set_len(), ix.max_set_len())
    }

    /// Theorem 4.5 (no false negatives): Lazy finds every candidate that the
    /// eager strategies find.
    #[test]
    fn candidate_superset_of_eager_strategies() {
        let (ix, doc) = setup(
            &["purdue university usa", "uq au", "university of wisconsin", "big apple"],
            &[
                ("uq", "university of queensland"),
                ("au", "australia"),
                ("usa", "united states"),
                ("big apple", "new york"),
            ],
            "alumni of purdue university united states met in new york near the university of queensland australia booth with university of wisconsin madison colleagues",
        );
        for tau in [0.7, 0.8, 0.9] {
            let mut eager = CandidateSink::new();
            let mut lazy_sink = CandidateSink::new();
            let mut st = ExtractStats::default();
            naive::generate(&ix, &doc, tau, Metric::Jaccard, own(&ix), true, &mut eager, &mut st, &mut Budget::unlimited());
            let mut st2 = ExtractStats::default();
            generate(&ix, &doc, tau, Metric::Jaccard, own(&ix), &mut lazy_sink, &mut st2, &mut Budget::unlimited());
            let e = sorted(eager.pairs);
            let l = sorted(lazy_sink.pairs);
            for pair in &e {
                assert!(l.contains(pair), "lazy missed {pair:?} at tau={tau}");
            }
        }
    }

    #[test]
    fn accesses_fewer_entries_than_dynamic() {
        // Repetitive document → many substrings share valid tokens, which is
        // exactly where lazy's scan-once pays off.
        let (ix, doc) = setup(
            &["data base systems", "data mining", "system design"],
            &[("data base", "database")],
            "data base systems and data mining and data base design of system design for data base systems again data mining data base",
        );
        let mut s_dyn = CandidateSink::new();
        let mut s_lazy = CandidateSink::new();
        let mut st_dyn = ExtractStats::default();
        let mut st_lazy = ExtractStats::default();
        dynamic::generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), &mut s_dyn, &mut st_dyn, &mut Budget::unlimited());
        generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), &mut s_lazy, &mut st_lazy, &mut Budget::unlimited());
        assert!(
            st_lazy.accessed_entries <= st_dyn.accessed_entries,
            "lazy {} vs dynamic {}",
            st_lazy.accessed_entries,
            st_dyn.accessed_entries
        );
    }

    #[test]
    fn empty_inputs() {
        let (ix, doc) = setup(&["a b"], &[], "");
        let mut sink = CandidateSink::new();
        let mut stats = ExtractStats::default();
        generate(&ix, &doc, 0.8, Metric::Jaccard, own(&ix), &mut sink, &mut stats, &mut Budget::unlimited());
        assert_eq!(sink.len(), 0);
    }

    #[test]
    fn single_token_entities_and_document() {
        let (ix, doc) = setup(&["rust"], &[], "rust");
        let mut sink = CandidateSink::new();
        let mut stats = ExtractStats::default();
        generate(&ix, &doc, 1.0, Metric::Jaccard, own(&ix), &mut sink, &mut stats, &mut Budget::unlimited());
        assert_eq!(sink.len(), 1);
        assert_eq!(sink.pairs[0].0, Span::new(0, 1));
    }
}
