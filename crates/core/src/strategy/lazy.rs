//! The `Lazy` strategy: lazy candidate generation (paper §4.2, Algorithm 4).
//!
//! Pass 1 slides the windows exactly like `Dynamic`, but instead of scanning
//! posting lists per substring it only records, for every *valid* token `t`,
//! which substrings carry `t` in their τ-prefix — the paper's substring
//! inverted index `I[t]` (built from the valid-token sets `Φ` and their
//! deltas `∆φ`; we materialize the aggregated index directly), stored here
//! as rank-indexed pooled vectors instead of a hash map. Pass 2 then scans
//! the posting list of each distinct valid token **once**, pairing every
//! length group with the substrings whose length filter admits it; expiry
//! of substrings whose `hi` bound falls below the group length is driven by
//! a single sort-by-`hi` cursor plus tombstones (compacted amortizedly),
//! not a per-group rescan of the active list.

use crate::limits::Budget;
use crate::scratch::{Pending, SegmentScratch};
use crate::stage::{SpanClock, Stage};
use crate::stats::ExtractStats;
use aeetes_index::{metric_window_bounds, ClusteredIndex};
use aeetes_sim::Metric;
use aeetes_text::{Document, Span};

#[allow(clippy::too_many_arguments)]
pub(crate) fn generate(
    index: &ClusteredIndex,
    doc: &Document,
    tau: f64,
    metric: Metric,
    set_bounds: (Option<usize>, Option<usize>),
    seg: &mut SegmentScratch,
    stats: &mut ExtractStats,
    budget: &mut Budget,
) {
    let Some(bounds) = metric_window_bounds(set_bounds.0, set_bounds.1, tau, metric) else {
        return;
    };
    let n = doc.len();
    if n < bounds.min {
        return;
    }
    let order = index.order();
    let SegmentScratch { remap, states, sink, lazy, stages, .. } = seg;
    let remap_clk = SpanClock::always();
    remap.build(doc.tokens().iter().map(|&t| order.key(t)));
    let universe = remap.universe();
    let ranks = remap.doc_ranks();
    remap_clk.stop(Stage::Remap, stages);

    // ---- Pass 1: build the substring inverted index I[t]. ----
    // `inv` is indexed by rank; only `touched` entries are non-empty, and
    // every entry keeps its capacity across documents.
    if lazy.inv.len() < universe {
        lazy.inv.resize_with(universe, Vec::new);
    }
    lazy.touched.clear();
    let max_fit = bounds.max.min(n) - bounds.min + 1;
    if states.len() < max_fit {
        states.resize_with(max_fit, crate::window::WindowState::new);
    }
    for st in &mut states[..max_fit] {
        st.reset(universe);
    }
    let mut live = 0usize;
    let slide_clk = SpanClock::always();
    let windows_before = stats.windows;
    for p in 0..n {
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break;
        }
        // No candidates are produced in this pass, but the deadline (and an
        // already-zero candidate budget) still applies per window advance.
        if !budget.keep_generating(sink.len()) {
            break;
        }
        stats.windows += 1;
        // Sampled sub-stage timing, as in `Dynamic`: the p=0 extend chain is
        // `PrefixBuild`, later grid positions time migrates as `PrefixUpdate`.
        let mut clk = SpanClock::sampled(p);
        let fit = lmax - bounds.min + 1;
        if p == 0 {
            for i in 0..fit {
                if i == 0 {
                    for &r in &ranks[0..bounds.min] {
                        states[0].add(r);
                    }
                    stats.prefix_builds += 1;
                } else {
                    let (prev, rest) = states.split_at_mut(i);
                    rest[0].copy_from(&prev[i - 1]);
                    rest[0].add(ranks[bounds.min + i - 1]);
                    stats.prefix_updates += 1;
                }
            }
            live = fit;
            clk.lap(Stage::PrefixBuild, stages);
        } else {
            live = live.min(fit);
            for (i, st) in states[..live].iter_mut().enumerate() {
                let l = bounds.min + i;
                st.remove(ranks[p - 1]);
                st.add(ranks[p - 1 + l]);
                stats.prefix_updates += 1;
            }
            clk.lap(Stage::PrefixUpdate, stages);
        }
        for (i, st) in states[..live].iter().enumerate() {
            let l = bounds.min + i;
            stats.substrings += 1;
            let s_len = st.distinct_len();
            let k = metric.prefix_len(s_len, tau);
            let (lo, hi) = metric.length_bounds(s_len, tau, u32::MAX as usize);
            let span = Span::new(p, l);
            for &r in st.prefix(k) {
                if !remap.is_valid_rank(r) {
                    continue; // invalid token: no postings to visit later
                }
                let list = &mut lazy.inv[r as usize];
                if list.is_empty() {
                    lazy.touched.push(r);
                }
                list.push(Pending { span, lo: lo as u32, hi: hi as u32 });
            }
        }
    }
    // Sampled-out laps record nothing; one migrate span per position after
    // the first, accounted in bulk.
    let windows = stats.windows - windows_before;
    stages.account_spans(Stage::PrefixUpdate, windows.saturating_sub(1));
    slide_clk.stop(Stage::WindowSlide, stages);

    // ---- Pass 2: one scan of L[t] per distinct valid token. ----
    // Tokens are processed in id order for determinism. The whole pass is
    // this strategy's candidate generation, timed exactly (once per doc).
    let gen_clk = SpanClock::always();
    lazy.tokens.clear();
    lazy.tokens.extend(lazy.touched.iter().map(|&r| (order.token_of(remap.key_of(r)), r)));
    lazy.tokens.sort_unstable_by_key(|&(t, _)| t);
    for ti in 0..lazy.tokens.len() {
        let (t, r) = lazy.tokens[ti];
        // Candidates accumulate per scanned token, so this pass re-checks
        // the budget at every token boundary.
        if !budget.keep_generating(sink.len()) {
            break;
        }
        let list = &mut lazy.inv[r as usize];
        let Some(tp) = index.postings(t) else { continue };
        list.sort_unstable_by_key(|pend| pend.lo);
        // Expiry order: pending indices sorted by `hi` once, advanced with
        // a cursor as group lengths grow — no per-group rescan.
        lazy.hi_order.clear();
        lazy.hi_order.extend(0..list.len() as u32);
        lazy.hi_order.sort_unstable_by_key(|&i| list[i as usize].hi);
        lazy.expired.clear();
        lazy.expired.resize(list.len(), false);
        lazy.active.clear();
        let mut next = 0usize; // next pending to activate (by lo)
        let mut expire_cursor = 0usize;
        let mut dead = 0usize; // tombstones currently in `active`
        for g in tp.groups() {
            let len = g.len() as u32;
            while next < list.len() && list[next].lo <= len {
                lazy.active.push(next as u32);
                next += 1;
            }
            // `hi < len ⇒ lo ≤ hi < len`, so an expiring pending was always
            // activated above (possibly in this very iteration): tombstone
            // it in place.
            while expire_cursor < lazy.hi_order.len() {
                let idx = lazy.hi_order[expire_cursor] as usize;
                if list[idx].hi >= len {
                    break;
                }
                lazy.expired[idx] = true;
                dead += 1;
                expire_cursor += 1;
            }
            if lazy.active.len() == dead {
                if next >= list.len() {
                    break; // nothing left to pair with larger groups
                }
                continue;
            }
            let plen = metric.prefix_len(len as usize, tau);
            for og in g.origins() {
                // One pass over the origin group: stop at the first entry
                // inside the entity prefix.
                let mut hit = false;
                for e in og.entries {
                    stats.accessed_entries += 1;
                    if (e.pos as usize) < plen {
                        hit = true;
                        break;
                    }
                }
                if hit {
                    for &ai in lazy.active.iter() {
                        if !lazy.expired[ai as usize] {
                            sink.push(list[ai as usize].span, og.origin);
                        }
                    }
                }
            }
            // Amortized compaction keeps the emission loop O(live) overall.
            if dead > lazy.active.len() / 2 {
                let expired = &lazy.expired;
                lazy.active.retain(|&ai| !expired[ai as usize]);
                dead = 0;
            }
        }
    }
    // Return every touched pool entry (processed or not) to the empty
    // state; capacities are retained for the next document.
    for &r in lazy.touched.iter() {
        lazy.inv[r as usize].clear();
    }
    gen_clk.stop(Stage::CandidateGen, stages);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::strategy::{dynamic, naive};
    use aeetes_rules::{DeriveConfig, DerivedDictionary, RuleSet};
    use aeetes_text::{Dictionary, EntityId, Interner, Tokenizer};

    fn setup(entries: &[&str], rules: &[(&str, &str)], doc: &str) -> (ClusteredIndex, Document) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        let ix = ClusteredIndex::build(&dd, &int);
        let d = Document::parse(doc, &tok, &mut int);
        (ix, d)
    }

    fn sorted(mut v: Vec<(Span, EntityId)>) -> Vec<(Span, EntityId)> {
        v.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
        v
    }

    fn own(ix: &ClusteredIndex) -> (Option<usize>, Option<usize>) {
        (ix.min_set_len(), ix.max_set_len())
    }

    fn run(ix: &ClusteredIndex, doc: &Document, tau: f64, stats: &mut ExtractStats) -> Vec<(Span, EntityId)> {
        let mut seg = SegmentScratch::default();
        generate(ix, doc, tau, Metric::Jaccard, own(ix), &mut seg, stats, &mut Budget::unlimited());
        seg.sink.pairs.clone()
    }

    /// Theorem 4.5 (no false negatives): Lazy finds every candidate that the
    /// eager strategies find.
    #[test]
    fn candidate_superset_of_eager_strategies() {
        let (ix, doc) = setup(
            &["purdue university usa", "uq au", "university of wisconsin", "big apple"],
            &[
                ("uq", "university of queensland"),
                ("au", "australia"),
                ("usa", "united states"),
                ("big apple", "new york"),
            ],
            "alumni of purdue university united states met in new york near the university of queensland australia booth with university of wisconsin madison colleagues",
        );
        for tau in [0.7, 0.8, 0.9] {
            let mut eager_seg = SegmentScratch::default();
            let mut st = ExtractStats::default();
            naive::generate(&ix, &doc, tau, Metric::Jaccard, own(&ix), true, &mut eager_seg, &mut st, &mut Budget::unlimited());
            let mut st2 = ExtractStats::default();
            let l = sorted(run(&ix, &doc, tau, &mut st2));
            let e = sorted(eager_seg.sink.pairs.clone());
            for pair in &e {
                assert!(l.contains(pair), "lazy missed {pair:?} at tau={tau}");
            }
        }
    }

    #[test]
    fn accesses_fewer_entries_than_dynamic() {
        // Repetitive document → many substrings share valid tokens, which is
        // exactly where lazy's scan-once pays off.
        let (ix, doc) = setup(
            &["data base systems", "data mining", "system design"],
            &[("data base", "database")],
            "data base systems and data mining and data base design of system design for data base systems again data mining data base",
        );
        let mut seg_dyn = SegmentScratch::default();
        let mut st_dyn = ExtractStats::default();
        let mut st_lazy = ExtractStats::default();
        dynamic::generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), &mut seg_dyn, &mut st_dyn, &mut Budget::unlimited());
        run(&ix, &doc, 0.7, &mut st_lazy);
        assert!(
            st_lazy.accessed_entries <= st_dyn.accessed_entries,
            "lazy {} vs dynamic {}",
            st_lazy.accessed_entries,
            st_dyn.accessed_entries
        );
    }

    #[test]
    fn empty_inputs() {
        let (ix, doc) = setup(&["a b"], &[], "");
        let mut stats = ExtractStats::default();
        assert!(run(&ix, &doc, 0.8, &mut stats).is_empty());
    }

    #[test]
    fn single_token_entities_and_document() {
        let (ix, doc) = setup(&["rust"], &[], "rust");
        let mut stats = ExtractStats::default();
        let pairs = run(&ix, &doc, 1.0, &mut stats);
        assert_eq!(pairs.len(), 1);
        assert_eq!(pairs[0].0, Span::new(0, 1));
    }

    #[test]
    fn pool_reuse_keeps_candidate_order() {
        // Re-running on the same scratch must reproduce the exact discovery
        // order (budget truncation depends on it).
        let (ix, doc) = setup(
            &["data base systems", "data mining", "system design"],
            &[("data base", "database")],
            "data base systems and data mining for system design data base",
        );
        let mut seg = SegmentScratch::default();
        let mut first = Vec::new();
        for round in 0..3 {
            seg.sink.clear();
            let mut st = ExtractStats::default();
            generate(&ix, &doc, 0.7, Metric::Jaccard, own(&ix), &mut seg, &mut st, &mut Budget::unlimited());
            if round == 0 {
                first = seg.sink.pairs.clone();
                assert!(!first.is_empty());
            } else {
                assert_eq!(seg.sink.pairs, first, "round {round}");
            }
        }
    }
}
