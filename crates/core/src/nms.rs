//! Overlap suppression: reduce raw pair output to the best mention per
//! document region.
//!
//! Thresholded extraction reports *every* `(entity, substring)` pair above
//! τ, so a strong mention is usually surrounded by slightly-shifted or
//! truncated pairs that also clear the threshold. Applications that want
//! one mention per region (e.g. the effectiveness evaluation of the paper's
//! Table 2) keep only the locally best pair; this is the standard
//! non-maximum-suppression step.

use crate::matches::Match;

/// Keeps a greedy maximum-score subset of non-overlapping matches.
///
/// Matches are considered best-score first (ties: longer span — so a full
/// mention beats an equal-scoring nested sub-mention — then earlier span,
/// then smaller entity id); a match is kept iff its span overlaps no
/// already-kept span. The result is sorted by span.
pub fn suppress_overlaps(mut matches: Vec<Match>) -> Vec<Match> {
    matches.sort_by(|a, b| {
        b.score
            .partial_cmp(&a.score)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| b.span.len.cmp(&a.span.len))
            .then_with(|| a.sort_key().cmp(&b.sort_key()))
    });
    let mut kept: Vec<Match> = Vec::new();
    for m in matches {
        if kept.iter().all(|k| !k.span.overlaps(&m.span)) {
            kept.push(m);
        }
    }
    kept.sort_unstable_by_key(Match::sort_key);
    kept
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::DerivedId;
    use aeetes_text::{EntityId, Span};

    fn m(e: u32, start: u32, len: u32, score: f64) -> Match {
        Match {
            entity: EntityId(e),
            span: Span { start, len },
            score,
            best_variant: DerivedId(0),
        }
    }

    #[test]
    fn keeps_best_per_region() {
        let out = suppress_overlaps(vec![m(0, 0, 3, 1.0), m(0, 0, 2, 0.8), m(1, 1, 2, 0.7), m(2, 5, 2, 0.9)]);
        assert_eq!(out.len(), 2);
        assert_eq!(out[0].span, Span::new(0, 3));
        assert_eq!(out[1].span, Span::new(5, 2));
    }

    #[test]
    fn equal_scores_prefer_longer_span() {
        // A nested shorter entity that ties must not displace the full
        // mention.
        let out = suppress_overlaps(vec![m(0, 0, 2, 1.0), m(1, 0, 4, 1.0)]);
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].span, Span::new(0, 4));
    }

    #[test]
    fn non_overlapping_all_kept_in_span_order() {
        let out = suppress_overlaps(vec![m(2, 6, 2, 0.7), m(0, 0, 2, 0.8), m(1, 3, 2, 0.9)]);
        assert_eq!(out.len(), 3);
        assert!(out.windows(2).all(|w| w[0].span.start < w[1].span.start));
    }

    #[test]
    fn empty_input() {
        assert!(suppress_overlaps(Vec::new()).is_empty());
    }
}
