//! Extraction statistics (drives the paper's Figure 11 metric) and serving
//! telemetry ([`LatencyRing`] for bounded-memory percentile estimates).

use std::ops::AddAssign;

/// Counters recorded during one (or more, when accumulated) extractions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Posting entries examined in the inverted index — the paper's
    /// "number of accessed entries" (Figure 11).
    pub accessed_entries: u64,
    /// Candidate `(substring, entity)` pairs sent to verification.
    pub candidates: u64,
    /// Derived-entity Jaccard computations performed during verification.
    pub verifications: u64,
    /// Result pairs with `JaccAR ≥ τ`.
    pub matches: u64,
    /// Prefixes computed from scratch (Simple / Skip).
    pub prefix_builds: u64,
    /// Incremental prefix updates — Window Extend / Migrate (Dynamic / Lazy).
    pub prefix_updates: u64,
    /// Substrings enumerated.
    pub substrings: u64,
    /// Windows (start positions) visited.
    pub windows: u64,
}

impl AddAssign for ExtractStats {
    fn add_assign(&mut self, rhs: Self) {
        self.accessed_entries += rhs.accessed_entries;
        self.candidates += rhs.candidates;
        self.verifications += rhs.verifications;
        self.matches += rhs.matches;
        self.prefix_builds += rhs.prefix_builds;
        self.prefix_updates += rhs.prefix_updates;
        self.substrings += rhs.substrings;
        self.windows += rhs.windows;
    }
}

/// Fixed-capacity ring of the most recent latency samples (microseconds),
/// for percentile estimates with bounded memory — a long-lived server must
/// never let telemetry grow with traffic. Not thread-safe by itself; wrap
/// in a lock (the write path is a single slot store, so contention is
/// negligible next to extraction work).
#[derive(Debug, Clone)]
pub struct LatencyRing {
    slots: Vec<u64>,
    /// Ring size (`Vec::with_capacity` may over-allocate, so the bound is
    /// kept explicitly).
    cap: usize,
    /// Total samples ever recorded; `min(count, cap)` are live.
    count: u64,
}

impl LatencyRing {
    /// A ring keeping the last `capacity` samples (`capacity` is clamped to
    /// at least 1).
    pub fn new(capacity: usize) -> Self {
        let cap = capacity.max(1);
        LatencyRing { slots: Vec::with_capacity(cap), cap, count: 0 }
    }

    /// Records one sample, evicting the oldest once full.
    pub fn record(&mut self, micros: u64) {
        if self.slots.len() < self.cap {
            self.slots.push(micros);
        } else {
            self.slots[(self.count % self.cap as u64) as usize] = micros;
        }
        self.count += 1;
    }

    /// Total samples ever recorded (not just the retained window).
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Whether no sample has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// The `q`-quantile (`0.0 ≤ q ≤ 1.0`, e.g. `0.5` / `0.99`) of the
    /// retained window via nearest-rank; `None` while empty. O(n log n) in
    /// the (fixed) window size — fine for a stats endpoint, not for a hot
    /// loop.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.slots.is_empty() {
            return None;
        }
        let mut sorted = self.slots.clone();
        sorted.sort_unstable();
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        Some(sorted[rank - 1])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = ExtractStats { accessed_entries: 1, candidates: 2, ..Default::default() };
        let b = ExtractStats { accessed_entries: 10, matches: 3, ..Default::default() };
        a += b;
        assert_eq!(a.accessed_entries, 11);
        assert_eq!(a.candidates, 2);
        assert_eq!(a.matches, 3);
    }

    #[test]
    fn empty_ring_has_no_quantiles() {
        let r = LatencyRing::new(8);
        assert!(r.is_empty());
        assert_eq!(r.quantile(0.5), None);
    }

    #[test]
    fn quantiles_over_small_window() {
        let mut r = LatencyRing::new(100);
        for v in [10, 20, 30, 40] {
            r.record(v);
        }
        assert_eq!(r.count(), 4);
        assert_eq!(r.quantile(0.0), Some(10)); // clamped to first rank
        assert_eq!(r.quantile(0.5), Some(20));
        assert_eq!(r.quantile(0.99), Some(40));
        assert_eq!(r.quantile(1.0), Some(40));
    }

    #[test]
    fn ring_evicts_oldest_beyond_capacity() {
        let mut r = LatencyRing::new(4);
        for v in 1..=100u64 {
            r.record(v);
        }
        assert_eq!(r.count(), 100);
        // Window is the last four samples: 97..=100.
        assert_eq!(r.quantile(0.0), Some(97));
        assert_eq!(r.quantile(1.0), Some(100));
    }

    #[test]
    fn zero_capacity_is_clamped_not_division_by_zero() {
        let mut r = LatencyRing::new(0);
        r.record(5);
        r.record(7);
        assert_eq!(r.quantile(0.5), Some(7));
    }
}
