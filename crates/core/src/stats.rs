//! Extraction statistics (drives the paper's Figure 11 metric).

use std::ops::AddAssign;

/// Counters recorded during one (or more, when accumulated) extractions.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractStats {
    /// Posting entries examined in the inverted index — the paper's
    /// "number of accessed entries" (Figure 11).
    pub accessed_entries: u64,
    /// Candidate `(substring, entity)` pairs sent to verification.
    pub candidates: u64,
    /// Derived-entity Jaccard computations performed during verification.
    pub verifications: u64,
    /// Result pairs with `JaccAR ≥ τ`.
    pub matches: u64,
    /// Prefixes computed from scratch (Simple / Skip).
    pub prefix_builds: u64,
    /// Incremental prefix updates — Window Extend / Migrate (Dynamic / Lazy).
    pub prefix_updates: u64,
    /// Substrings enumerated.
    pub substrings: u64,
    /// Windows (start positions) visited.
    pub windows: u64,
}

impl AddAssign for ExtractStats {
    fn add_assign(&mut self, rhs: Self) {
        self.accessed_entries += rhs.accessed_entries;
        self.candidates += rhs.candidates;
        self.verifications += rhs.verifications;
        self.matches += rhs.matches;
        self.prefix_builds += rhs.prefix_builds;
        self.prefix_updates += rhs.prefix_updates;
        self.substrings += rhs.substrings;
        self.windows += rhs.windows;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_assign_accumulates() {
        let mut a = ExtractStats { accessed_entries: 1, candidates: 2, ..Default::default() };
        let b = ExtractStats { accessed_entries: 10, matches: 3, ..Default::default() };
        a += b;
        assert_eq!(a.accessed_entries, 11);
        assert_eq!(a.candidates, 2);
        assert_eq!(a.matches, 3);
    }
}
