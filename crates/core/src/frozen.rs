//! Frozen AEET v5: a flat, mmap-able immutable engine image.
//!
//! Formats v1–v4 ([`crate::persist`]) deserialize the artifact into heap
//! structures and then *rebuild the clustered index from scratch* — cheap to
//! encode, but an engine restart pays seconds of CPU and every serve process
//! holds its own copy of the index. The v5 layout trades encoder simplicity
//! for zero-copy starts: every large structure (interner string table,
//! global order, derived dictionary, clustered index) is laid out as flat
//! little-endian arrays at 16-byte-aligned offsets, so an engine can
//! `mmap` the file, validate it, and serve its first request in
//! milliseconds — and N serve processes on one host share a single page
//! cache image instead of N private heaps.
//!
//! ## Layout
//!
//! ```text
//! [ 0.. 4)  magic "AEET"
//! [ 4.. 8)  version u32 = 5
//! [ 8..16)  generation u64            (same offset as v4's, so
//!                                      `peek_generation` is format-blind)
//! [16..20)  section count S (u32)
//! [20..24)  reserved (0)
//! [24..24+S·24)  section table: per section
//!                { kind u32, seg u32 (0xFFFF_FFFF = global), off u64, len u64 }
//! ... sections, each starting at a 16-byte-aligned offset, zero-padded ...
//! [len-4..len)  CRC-32 (IEEE) of every preceding byte
//! ```
//!
//! All integers are little-endian; the in-memory structures reinterpret the
//! mapped bytes directly, so v5 artifacts are only opened on little-endian
//! hosts (the opener refuses elsewhere rather than misread).
//!
//! Section *kinds* are fixed small integers (see the `SEC_*` constants):
//! the global sections carry the META blob (rules, config, counts — small,
//! decoded once), the origin dictionary's four arenas, the interner's
//! string arena/offsets/hash table and the global order's three arrays;
//! each shard segment carries the seven flat arrays of its derived
//! dictionary and the ten of its clustered index. Offsets are validated
//! against the file bounds and the 16-byte alignment rule, every prefix
//! array is re-validated structurally on open
//! ([`Dictionary::from_raw_arenas`], [`DerivedDictionary::from_raw_arenas`],
//! [`ClusteredIndex::from_raw_parts`], [`GlobalOrder::from_raw_parts`],
//! `FrozenStrings::new`), and the whole-file CRC is checked first — a
//! truncated or bit-flipped artifact yields a clean [`PersistError`],
//! never a panic or an out-of-bounds read.
//!
//! ## Mmap vs heap fallback
//!
//! [`open_frozen`] maps the file read-only when the platform allows and
//! falls back to reading it into an 8-byte-aligned heap buffer otherwise
//! (or when injected via the `frozen.open.mmap` failpoint). Both paths
//! produce the same [`FrozenParts`] backed by the same validation — lookups
//! are bit-identical either way; only residency behavior differs.

use crate::config::AeetesConfig;
use crate::failpoint;
use crate::persist::{self, crc32, PersistError, Reader};
use aeetes_frozen::{FrozenBuf, FrozenSlice, Pod};
use aeetes_index::{ClusteredIndex, GlobalOrder, IndexArenas};
use aeetes_rules::{DeriveStats, DerivedDictionary, DerivedId, RuleId, RuleSet};
use aeetes_text::{Dictionary, EntityId, FrozenStrings, Interner, TokenId};
use std::collections::HashMap;
use std::path::Path;
use std::sync::Arc;

/// Fixed header bytes before the section table.
const HEADER_FIXED: usize = 24;
/// Bytes per section-table entry.
const ENTRY_BYTES: usize = 24;
/// Every section starts at a multiple of this (covers every element type's
/// natural alignment with room to spare).
const SECTION_ALIGN: usize = 16;
/// `seg` value marking a global (non-per-segment) section.
const GLOBAL_SEG: u32 = u32::MAX;
/// Backstop against forged section counts (a real artifact has
/// `11 + 17 × shards` sections and shards are capped at 64).
const MAX_SECTIONS: usize = 1 << 16;

// Global section kinds.
const SEC_META: u32 = 0;
const SEC_ORD_FREQ: u32 = 1;
const SEC_ORD_TIE: u32 = 2;
const SEC_ORD_UNTIE: u32 = 3;
const SEC_STR_BYTES: u32 = 4;
const SEC_STR_OFF: u32 = 5;
const SEC_STR_TABLE: u32 = 6;
// Origin-dictionary arenas (global; mirror `Dictionary::raw_arenas`).
const SEC_DICT_RAWS: u32 = 30;
const SEC_DICT_RAWOFF: u32 = 31;
const SEC_DICT_TOKENS: u32 = 32;
const SEC_DICT_TOKOFF: u32 = 33;
// Per-segment derived-dictionary sections.
const SEC_DD_ORIGIN: u32 = 10;
const SEC_DD_WEIGHT: u32 = 11;
const SEC_DD_TOKENS: u32 = 12;
const SEC_DD_TOKOFF: u32 = 13;
const SEC_DD_RULES: u32 = 14;
const SEC_DD_RULEOFF: u32 = 15;
const SEC_DD_BYORIGIN: u32 = 16;
// Per-segment clustered-index sections.
const SEC_IX_TOKGROUPS: u32 = 20;
const SEC_IX_GROUPLEN: u32 = 21;
const SEC_IX_GROUPORIG: u32 = 22;
const SEC_IX_ORIGENT: u32 = 23;
const SEC_IX_ORIGENTRIES: u32 = 24;
const SEC_IX_ENTRIES: u32 = 25;
const SEC_IX_SETDATA: u32 = 26;
const SEC_IX_SETOFF: u32 = 27;
const SEC_IX_VARBYLEN: u32 = 28;
const SEC_IX_ORIGOFF: u32 = 29;

const GLOBAL_KINDS: [u32; 11] = [
    SEC_META,
    SEC_ORD_FREQ,
    SEC_ORD_TIE,
    SEC_ORD_UNTIE,
    SEC_STR_BYTES,
    SEC_STR_OFF,
    SEC_STR_TABLE,
    SEC_DICT_RAWS,
    SEC_DICT_RAWOFF,
    SEC_DICT_TOKENS,
    SEC_DICT_TOKOFF,
];
const SEGMENT_KINDS: [u32; 17] = [
    SEC_DD_ORIGIN,
    SEC_DD_WEIGHT,
    SEC_DD_TOKENS,
    SEC_DD_TOKOFF,
    SEC_DD_RULES,
    SEC_DD_RULEOFF,
    SEC_DD_BYORIGIN,
    SEC_IX_TOKGROUPS,
    SEC_IX_GROUPLEN,
    SEC_IX_GROUPORIG,
    SEC_IX_ORIGENT,
    SEC_IX_ORIGENTRIES,
    SEC_IX_ENTRIES,
    SEC_IX_SETDATA,
    SEC_IX_SETOFF,
    SEC_IX_VARBYLEN,
    SEC_IX_ORIGOFF,
];

/// Human-readable name of a section kind (for `aeetes dict info`).
pub fn section_kind_name(kind: u32) -> &'static str {
    match kind {
        SEC_META => "meta",
        SEC_ORD_FREQ => "order.freq",
        SEC_ORD_TIE => "order.tie",
        SEC_ORD_UNTIE => "order.untie",
        SEC_STR_BYTES => "strings.bytes",
        SEC_STR_OFF => "strings.offsets",
        SEC_STR_TABLE => "strings.table",
        SEC_DICT_RAWS => "dict.raws",
        SEC_DICT_RAWOFF => "dict.raw_off",
        SEC_DICT_TOKENS => "dict.tokens",
        SEC_DICT_TOKOFF => "dict.tok_off",
        SEC_DD_ORIGIN => "dd.origin",
        SEC_DD_WEIGHT => "dd.weight",
        SEC_DD_TOKENS => "dd.tokens",
        SEC_DD_TOKOFF => "dd.tok_off",
        SEC_DD_RULES => "dd.rules",
        SEC_DD_RULEOFF => "dd.rule_off",
        SEC_DD_BYORIGIN => "dd.by_origin",
        SEC_IX_TOKGROUPS => "ix.tok_groups",
        SEC_IX_GROUPLEN => "ix.group_len",
        SEC_IX_GROUPORIG => "ix.group_origins",
        SEC_IX_ORIGENT => "ix.origin_entity",
        SEC_IX_ORIGENTRIES => "ix.origin_entries",
        SEC_IX_ENTRIES => "ix.entries",
        SEC_IX_SETDATA => "ix.set_data",
        SEC_IX_SETOFF => "ix.set_offsets",
        SEC_IX_VARBYLEN => "ix.variants_by_len",
        SEC_IX_ORIGOFF => "ix.origin_offsets",
        _ => "unknown",
    }
}

/// One shard segment to freeze: its derived dictionary and index (built
/// against the [`FreezeSource::order`]).
pub struct FreezeSegment<'a> {
    /// The segment's derived dictionary.
    pub dd: &'a DerivedDictionary,
    /// The segment's clustered index.
    pub index: &'a ClusteredIndex,
}

/// Everything the v5 writer serializes. Borrowed: freezing never mutates or
/// copies the engine it snapshots (beyond the output buffer).
pub struct FreezeSource<'a> {
    /// The interner every token id refers into.
    pub interner: &'a Interner,
    /// The origin dictionary over the full entity id space.
    pub dict: &'a Dictionary,
    /// Tombstoned origin ids.
    pub removed: &'a [EntityId],
    /// The synonym rule table.
    pub rules: &'a RuleSet,
    /// Engine configuration.
    pub config: &'a AeetesConfig,
    /// Generation number stamped into the header.
    pub generation: u64,
    /// The shared global token order.
    pub order: &'a GlobalOrder,
    /// One entry per shard segment.
    pub segments: Vec<FreezeSegment<'a>>,
}

/// One decoded shard segment of an opened artifact: the derived dictionary
/// and clustered index, their arenas borrowing the file image.
pub struct FrozenSegmentParts {
    /// The segment's derived dictionary (frozen arenas).
    pub dd: DerivedDictionary,
    /// The segment's clustered index (frozen arenas).
    pub index: ClusteredIndex,
}

/// A validated, opened v5 artifact. The heavy structures borrow the mapped
/// (or heap-loaded) file image through their arenas; only the small META
/// structures (dictionary, rules, config) are decoded onto the heap.
pub struct FrozenParts {
    /// Interner whose base resolves from the frozen string table; newly
    /// interned tokens (document vocabulary) overlay it on the heap.
    pub interner: Interner,
    /// The origin dictionary (decoded from META).
    pub dict: Dictionary,
    /// Tombstoned origin ids.
    pub removed: Vec<EntityId>,
    /// The synonym rule table (decoded from META).
    pub rules: RuleSet,
    /// Engine configuration.
    pub config: AeetesConfig,
    /// Generation number from the header.
    pub generation: u64,
    /// The shared global order (frozen arenas).
    pub order: Arc<GlobalOrder>,
    /// One entry per shard segment, in shard order.
    pub segments: Vec<FrozenSegmentParts>,
    /// Whether the backing storage is an mmap (false: heap fallback).
    pub mmapped: bool,
}

// ---------------------------------------------------------------- writer --

struct SectionWriter {
    sections: Vec<(u32, u32, Vec<u8>)>,
}

impl SectionWriter {
    fn push(&mut self, kind: u32, seg: u32, bytes: Vec<u8>) {
        self.sections.push((kind, seg, bytes));
    }

    fn push_u32s(&mut self, kind: u32, seg: u32, it: impl Iterator<Item = u32>) {
        let mut out = Vec::new();
        for v in it {
            out.extend_from_slice(&v.to_le_bytes());
        }
        self.push(kind, seg, out);
    }

    fn push_u64s(&mut self, kind: u32, seg: u32, it: impl Iterator<Item = u64>) {
        let mut out = Vec::new();
        for v in it {
            out.extend_from_slice(&v.to_le_bytes());
        }
        self.push(kind, seg, out);
    }

    fn push_f64s(&mut self, kind: u32, seg: u32, it: impl Iterator<Item = f64>) {
        let mut out = Vec::new();
        for v in it {
            out.extend_from_slice(&v.to_le_bytes());
        }
        self.push(kind, seg, out);
    }
}

/// Serializes `src` into a standalone v5 byte buffer (see the module docs
/// for the layout). The inverse of [`open_frozen_bytes`].
pub fn freeze_to_bytes(src: &FreezeSource<'_>) -> Vec<u8> {
    let mut w = SectionWriter { sections: Vec::new() };

    // META: the small decoded-on-open blob. Leading counts let
    // `peek_frozen_info` report an artifact without decoding the rest.
    let mut meta = Vec::new();
    persist::put_u32(&mut meta, src.segments.len() as u32);
    persist::put_u32(&mut meta, src.dict.len() as u32);
    persist::put_u32(&mut meta, src.rules.len() as u32);
    persist::put_u32(&mut meta, src.removed.len() as u32);
    for e in src.removed {
        persist::put_u32(&mut meta, e.0);
    }
    for (_, rule) in src.rules.iter() {
        persist::put_ids(&mut meta, &rule.lhs);
        persist::put_ids(&mut meta, &rule.rhs);
        meta.extend_from_slice(&rule.weight.to_le_bytes());
    }
    persist::put_config(&mut meta, src.config);
    for seg in &src.segments {
        persist::put_stats(&mut meta, seg.dd.stats());
    }
    w.push(SEC_META, GLOBAL_SEG, meta);

    // Origin dictionary: its four arenas verbatim, so the opener can
    // validate them with linear scans and adopt them with four copies
    // instead of a per-entity parse.
    let (raws, raw_off, ent_tokens, ent_tok_off) = src.dict.raw_arenas();
    w.push(SEC_DICT_RAWS, GLOBAL_SEG, raws.as_bytes().to_vec());
    w.push_u32s(SEC_DICT_RAWOFF, GLOBAL_SEG, raw_off.iter().copied());
    w.push_u32s(SEC_DICT_TOKENS, GLOBAL_SEG, ent_tokens.iter().map(|t| t.0));
    w.push_u32s(SEC_DICT_TOKOFF, GLOBAL_SEG, ent_tok_off.iter().copied());

    // Interner: canonical frozen string table over the full id space.
    let strings = FrozenStrings::from_strings(src.interner.iter_strings());
    w.push(SEC_STR_BYTES, GLOBAL_SEG, strings.raw_bytes().to_vec());
    w.push_u32s(SEC_STR_OFF, GLOBAL_SEG, strings.raw_offsets().iter().copied());
    w.push_u32s(SEC_STR_TABLE, GLOBAL_SEG, strings.raw_table().iter().copied());

    // Global order.
    let (freq, tie, untie) = src.order.raw_parts();
    w.push_u32s(SEC_ORD_FREQ, GLOBAL_SEG, freq.iter().copied());
    w.push_u32s(SEC_ORD_TIE, GLOBAL_SEG, tie.iter().copied());
    w.push_u32s(SEC_ORD_UNTIE, GLOBAL_SEG, untie.iter().map(|t| t.0));

    for (i, seg) in src.segments.iter().enumerate() {
        let s = i as u32;
        let (origin, weight, tokens, tok_off, rules, rule_off, by_origin) = seg.dd.raw_arenas();
        w.push_u32s(SEC_DD_ORIGIN, s, origin.iter().map(|e| e.0));
        w.push_f64s(SEC_DD_WEIGHT, s, weight.iter().copied());
        w.push_u32s(SEC_DD_TOKENS, s, tokens.iter().map(|t| t.0));
        w.push_u32s(SEC_DD_TOKOFF, s, tok_off.iter().copied());
        let n_rules = src.rules.len() as u32;
        if rules.iter().all(|r| r.0 < n_rules) {
            w.push_u32s(SEC_DD_RULES, s, rules.iter().map(|r| r.0));
            w.push_u32s(SEC_DD_RULEOFF, s, rule_off.iter().copied());
        } else {
            // Engines loaded from v2 artifacts carry rule provenance ids
            // without a rule table (v2 never persisted one). A frozen
            // artifact must be self-consistent — the opener rejects
            // dangling cross-references — so unresolvable ids are dropped
            // here. They were already unresolvable in memory.
            let mut kept: Vec<u32> = Vec::with_capacity(rules.len());
            let mut offs: Vec<u32> = Vec::with_capacity(rule_off.len());
            offs.push(0);
            for win in rule_off.windows(2) {
                let (a, b) = (win[0] as usize, win[1] as usize);
                kept.extend(rules[a..b].iter().map(|r| r.0).filter(|&r| r < n_rules));
                offs.push(kept.len() as u32);
            }
            w.push_u32s(SEC_DD_RULES, s, kept.into_iter());
            w.push_u32s(SEC_DD_RULEOFF, s, offs.into_iter());
        }
        w.push_u32s(SEC_DD_BYORIGIN, s, by_origin.iter().copied());

        let ix = seg.index.raw_parts();
        w.push_u32s(SEC_IX_TOKGROUPS, s, ix.tok_groups.iter().copied());
        // u16 group lengths: written raw, padded to the element count.
        let mut gl = Vec::with_capacity(ix.group_len.len() * 2);
        for &l in ix.group_len {
            gl.extend_from_slice(&l.to_le_bytes());
        }
        w.push(SEC_IX_GROUPLEN, s, gl);
        w.push_u32s(SEC_IX_GROUPORIG, s, ix.group_origins.iter().copied());
        w.push_u32s(SEC_IX_ORIGENT, s, ix.origin_entity.iter().map(|e| e.0));
        w.push_u32s(SEC_IX_ORIGENTRIES, s, ix.origin_entries.iter().copied());
        // Posting entries: fields + explicit zero padding (never a memcpy of
        // the in-memory struct, whose padding bytes are unspecified).
        let mut en = Vec::with_capacity(ix.entries.len() * 8);
        for e in ix.entries {
            en.extend_from_slice(&e.derived.0.to_le_bytes());
            en.extend_from_slice(&e.pos.to_le_bytes());
            en.extend_from_slice(&[0u8; 2]);
        }
        w.push(SEC_IX_ENTRIES, s, en);
        w.push_u64s(SEC_IX_SETDATA, s, ix.set_data.iter().copied());
        w.push_u32s(SEC_IX_SETOFF, s, ix.set_offsets.iter().copied());
        w.push_u32s(SEC_IX_VARBYLEN, s, ix.variants_by_len.iter().map(|d| d.0));
        w.push_u32s(SEC_IX_ORIGOFF, s, ix.origin_offsets.iter().copied());
    }

    // Lay out: header, table, aligned sections, CRC footer.
    let s_count = w.sections.len();
    let table_end = HEADER_FIXED + s_count * ENTRY_BYTES;
    let mut buf = Vec::with_capacity(table_end + w.sections.iter().map(|(_, _, b)| b.len() + SECTION_ALIGN).sum::<usize>() + 4);
    buf.extend_from_slice(persist::MAGIC);
    persist::put_u32(&mut buf, persist::VERSION_FROZEN);
    persist::put_u64(&mut buf, src.generation);
    persist::put_u32(&mut buf, s_count as u32);
    persist::put_u32(&mut buf, 0); // reserved
                                   // Placeholder table, patched below once offsets are known.
    buf.resize(table_end, 0);
    let mut offsets = Vec::with_capacity(s_count);
    for (_, _, bytes) in &w.sections {
        let pad = (SECTION_ALIGN - buf.len() % SECTION_ALIGN) % SECTION_ALIGN;
        buf.resize(buf.len() + pad, 0);
        offsets.push((buf.len() as u64, bytes.len() as u64));
        buf.extend_from_slice(bytes);
    }
    for (i, ((kind, seg, _), (off, len))) in w.sections.iter().zip(offsets).enumerate() {
        let at = HEADER_FIXED + i * ENTRY_BYTES;
        buf[at..at + 4].copy_from_slice(&kind.to_le_bytes());
        buf[at + 4..at + 8].copy_from_slice(&seg.to_le_bytes());
        buf[at + 8..at + 16].copy_from_slice(&off.to_le_bytes());
        buf[at + 16..at + 24].copy_from_slice(&len.to_le_bytes());
    }
    let footer = crc32(&buf);
    persist::put_u32(&mut buf, footer);
    buf
}

// ---------------------------------------------------------------- opener --

struct SectionTable {
    entries: HashMap<(u32, u32), (usize, usize)>,
    segments: usize,
}

fn corrupt(msg: impl Into<String>) -> PersistError {
    PersistError::Corrupt(msg.into())
}

/// Parses and bounds-checks the header and section table of `bytes`
/// (which must already be CRC-verified). Rejects out-of-bounds, overlappingly
/// duplicated, or misaligned sections and missing kinds.
fn parse_table(bytes: &[u8]) -> Result<SectionTable, PersistError> {
    let mut r = Reader { buf: bytes };
    let magic = r.take(4, "magic")?;
    if magic != persist::MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32("version")?;
    if version != persist::VERSION_FROZEN {
        return Err(PersistError::UnsupportedVersion(version));
    }
    let generation = r.u64("generation")?;
    if generation == 0 {
        return Err(corrupt("generation 0 is invalid (generations start at 1)"));
    }
    let s_count = r.u32("section count")? as usize;
    let _reserved = r.u32("reserved")?;
    if s_count > MAX_SECTIONS {
        return Err(corrupt(format!("section count {s_count} exceeds the limit of {MAX_SECTIONS}")));
    }
    let table_end = HEADER_FIXED + s_count * ENTRY_BYTES;
    let payload_end = bytes.len() - 4; // CRC footer, length pre-checked
    if table_end > payload_end {
        return Err(PersistError::Truncated("section table"));
    }
    let mut entries = HashMap::with_capacity(s_count);
    let mut max_seg: Option<u32> = None;
    for i in 0..s_count {
        let kind = r.u32("section kind")?;
        let seg = r.u32("section segment")?;
        let off = r.u64("section offset")? as usize;
        let len = r.u64("section length")? as usize;
        if !off.is_multiple_of(SECTION_ALIGN) {
            return Err(corrupt(format!("section {i} offset {off} is not {SECTION_ALIGN}-byte aligned")));
        }
        let end = off.checked_add(len).ok_or_else(|| corrupt(format!("section {i} range overflows")))?;
        if off < table_end || end > payload_end {
            return Err(corrupt(format!("section {i} [{off}, {end}) outside payload [{table_end}, {payload_end})")));
        }
        if entries.insert((kind, seg), (off, len)).is_some() {
            return Err(corrupt(format!("duplicate section kind {kind} segment {seg}")));
        }
        if seg != GLOBAL_SEG && SEGMENT_KINDS.contains(&kind) {
            max_seg = Some(max_seg.map_or(seg, |m| m.max(seg)));
        }
    }
    for kind in GLOBAL_KINDS {
        if !entries.contains_key(&(kind, GLOBAL_SEG)) {
            return Err(corrupt(format!("missing global section {}", section_kind_name(kind))));
        }
    }
    let segments = max_seg.map_or(0, |m| m as usize + 1);
    for seg in 0..segments as u32 {
        for kind in SEGMENT_KINDS {
            if !entries.contains_key(&(kind, seg)) {
                return Err(corrupt(format!("segment {seg} is missing section {}", section_kind_name(kind))));
            }
        }
    }
    Ok(SectionTable { entries, segments })
}

impl SectionTable {
    fn slice<T: Pod>(&self, buf: &Arc<FrozenBuf>, kind: u32, seg: u32) -> Result<FrozenSlice<T>, PersistError> {
        let &(off, len) = self
            .entries
            .get(&(kind, seg))
            .ok_or_else(|| corrupt(format!("missing section {} segment {seg}", section_kind_name(kind))))?;
        FrozenSlice::new(Arc::clone(buf), off, len).map_err(|e| corrupt(format!("section {}: {e}", section_kind_name(kind))))
    }

    fn bytes<'a>(&self, buf: &'a FrozenBuf, kind: u32, seg: u32) -> Result<&'a [u8], PersistError> {
        let &(off, len) = self
            .entries
            .get(&(kind, seg))
            .ok_or_else(|| corrupt(format!("missing section {} segment {seg}", section_kind_name(kind))))?;
        Ok(&buf.as_bytes()[off..off + len])
    }
}

/// Opens a v5 artifact file, preferring a read-only memory map and falling
/// back to a heap read when mapping is unavailable. See [`open_frozen_bytes`]
/// for the byte-buffer variant; validation and results are identical.
pub fn open_frozen(path: &Path) -> Result<FrozenParts, PersistError> {
    if failpoint::hit("frozen.open.read").is_some() {
        return Err(PersistError::Io(std::io::Error::other("failpoint frozen.open.read")));
    }
    let file = std::fs::File::open(path).map_err(PersistError::Io)?;
    let buf = if failpoint::hit("frozen.open.mmap").is_some() {
        // Injected mmap failure: exercise the heap fallback path.
        let bytes = std::fs::read(path).map_err(PersistError::Io)?;
        FrozenBuf::heap_from_bytes(&bytes)
    } else {
        match FrozenBuf::mmap_file(&file) {
            Ok(m) => m,
            Err(_) => {
                let bytes = std::fs::read(path).map_err(PersistError::Io)?;
                FrozenBuf::heap_from_bytes(&bytes)
            }
        }
    };
    open_frozen_buf(Arc::new(buf))
}

/// Opens a v5 artifact from an in-memory byte buffer (the bytes are copied
/// into an aligned heap arena; no mapping is involved).
pub fn open_frozen_bytes(bytes: &[u8]) -> Result<FrozenParts, PersistError> {
    open_frozen_buf(Arc::new(FrozenBuf::heap_from_bytes(bytes)))
}

fn open_frozen_buf(buf: Arc<FrozenBuf>) -> Result<FrozenParts, PersistError> {
    if cfg!(target_endian = "big") {
        return Err(corrupt("frozen v5 artifacts require a little-endian host"));
    }
    let bytes = buf.as_bytes();
    if bytes.len() < HEADER_FIXED + 4 {
        return Err(PersistError::Truncated("frozen header"));
    }
    // Integrity first: nothing in the body is trusted before the CRC holds.
    let payload_end = bytes.len() - 4;
    let expected = u32::from_le_bytes(bytes[payload_end..].try_into().expect("4-byte footer"));
    let actual = crc32(&bytes[..payload_end]);
    if expected != actual {
        return Err(PersistError::ChecksumMismatch { expected, actual });
    }
    if failpoint::hit("frozen.open.validate").is_some() {
        return Err(corrupt("failpoint frozen.open.validate"));
    }
    let table = parse_table(bytes)?;
    let generation = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte generation"));

    // Interner: validate the frozen string table, then overlay.
    let strings = FrozenStrings::new(
        table.slice::<u8>(&buf, SEC_STR_BYTES, GLOBAL_SEG)?.into(),
        table.slice::<u32>(&buf, SEC_STR_OFF, GLOBAL_SEG)?.into(),
        table.slice::<u32>(&buf, SEC_STR_TABLE, GLOBAL_SEG)?.into(),
    )
    .map_err(|e| corrupt(format!("string table: {e}")))?;
    let interner = Interner::with_base(Arc::new(strings));
    let n_tokens = interner.len() as u32;

    // Global order.
    let order = GlobalOrder::from_raw_parts(
        table.slice::<u32>(&buf, SEC_ORD_FREQ, GLOBAL_SEG)?.into(),
        table.slice::<u32>(&buf, SEC_ORD_TIE, GLOBAL_SEG)?.into(),
        table.slice::<TokenId>(&buf, SEC_ORD_UNTIE, GLOBAL_SEG)?.into(),
    )
    .map_err(|e| corrupt(format!("global order: {e}")))?;
    let (freq, _, _) = order.raw_parts();
    if freq.len() > n_tokens as usize {
        return Err(corrupt(format!("global order covers {} tokens, interner holds {n_tokens}", freq.len())));
    }
    let order = Arc::new(order);

    // META: the small decoded structures.
    let meta = table.bytes(&buf, SEC_META, GLOBAL_SEG)?;
    let mut r = Reader { buf: meta };
    let meta_segments = r.u32("meta segment count")? as usize;
    if meta_segments != table.segments {
        return Err(corrupt(format!("meta names {meta_segments} segments, section table holds {}", table.segments)));
    }
    let meta_entities = r.u32("meta entity count")? as usize;
    let meta_rules = r.u32("meta rule count")? as usize;
    let dict = Dictionary::from_raw_arenas(
        table.bytes(&buf, SEC_DICT_RAWS, GLOBAL_SEG)?.to_vec(),
        table.slice::<u32>(&buf, SEC_DICT_RAWOFF, GLOBAL_SEG)?.to_vec(),
        table.slice::<TokenId>(&buf, SEC_DICT_TOKENS, GLOBAL_SEG)?.to_vec(),
        table.slice::<u32>(&buf, SEC_DICT_TOKOFF, GLOBAL_SEG)?.to_vec(),
        n_tokens,
    )
    .map_err(|e| corrupt(format!("dictionary: {e}")))?;
    if dict.len() != meta_entities {
        return Err(corrupt(format!("meta claims {meta_entities} entities, dictionary holds {}", dict.len())));
    }
    let n_removed = r.u32("removed size")? as usize;
    r.check_count(n_removed, 4, "removed size")?;
    let mut removed = Vec::with_capacity(n_removed);
    for _ in 0..n_removed {
        let id = r.u32("removed id")?;
        if id as usize >= dict.len() {
            return Err(corrupt(format!("removed id {id} out of range {}", dict.len())));
        }
        removed.push(EntityId(id));
    }
    r.check_count(meta_rules, 16, "rules size")?;
    let mut rules = RuleSet::new();
    rules.reserve(meta_rules);
    for _ in 0..meta_rules {
        let lhs = r.ids(n_tokens, "rule lhs")?;
        let rhs = r.ids(n_tokens, "rule rhs")?;
        let weight = r.f64("rule weight")?;
        rules.push_tokens(lhs, rhs, weight).map_err(|e| corrupt(format!("invalid persisted rule: {e}")))?;
    }
    let config = persist::read_config(&mut r)?;
    let mut stats = Vec::with_capacity(table.segments);
    for _ in 0..table.segments {
        stats.push(persist::read_stats(&mut r)?);
    }
    if !r.buf.is_empty() {
        return Err(corrupt(format!("{} trailing bytes in meta section", r.buf.len())));
    }

    // Segments: reassemble each derived dictionary + index from its arenas,
    // with full structural validation, then cross-check the pieces agree.
    // Segments are independent, and the validation scans are the bulk of a
    // large artifact's open cost, so they run on scoped threads; errors are
    // surfaced in segment order to keep failures deterministic.
    let n_rules = rules.len() as u32;
    let dict_len = dict.len();
    let parallel = table.segments > 1 && std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get) > 1;
    let seg_results: Vec<Result<FrozenSegmentParts, PersistError>> = if parallel {
        std::thread::scope(|sc| {
            let handles: Vec<_> = stats
                .into_iter()
                .enumerate()
                .map(|(s, st)| {
                    let (buf, table, order) = (&buf, &table, &order);
                    sc.spawn(move || open_segment(buf, table, order, s as u32, st, n_tokens, dict_len, n_rules))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("segment validation worker")).collect()
        })
    } else {
        stats
            .into_iter()
            .enumerate()
            .map(|(s, st)| open_segment(&buf, &table, &order, s as u32, st, n_tokens, dict_len, n_rules))
            .collect()
    };
    let mut segments = Vec::with_capacity(table.segments);
    for r in seg_results {
        segments.push(r?);
    }

    let mmapped = buf.is_mmap();
    Ok(FrozenParts { interner, dict, removed, rules, config, generation, order, segments, mmapped })
}

/// Reassembles and validates one frozen segment (see [`open_frozen_buf`]).
#[allow(clippy::too_many_arguments)]
fn open_segment(
    buf: &Arc<FrozenBuf>,
    table: &SectionTable,
    order: &Arc<GlobalOrder>,
    s: u32,
    st: DeriveStats,
    n_tokens: u32,
    dict_len: usize,
    n_rules: u32,
) -> Result<FrozenSegmentParts, PersistError> {
    let dd = DerivedDictionary::from_raw_arenas(
        table.slice::<EntityId>(buf, SEC_DD_ORIGIN, s)?.into(),
        table.slice::<f64>(buf, SEC_DD_WEIGHT, s)?.into(),
        table.slice::<TokenId>(buf, SEC_DD_TOKENS, s)?.into(),
        table.slice::<u32>(buf, SEC_DD_TOKOFF, s)?.into(),
        table.slice::<RuleId>(buf, SEC_DD_RULES, s)?.into(),
        table.slice::<u32>(buf, SEC_DD_RULEOFF, s)?.into(),
        table.slice::<u32>(buf, SEC_DD_BYORIGIN, s)?.into(),
        st,
    )
    .map_err(|e| corrupt(format!("segment {s} derived dictionary: {e}")))?;
    // A segment predating a dictionary-growing delta legitimately spans
    // a shorter origin space (origins beyond it have no variants there);
    // spanning more origins than the dictionary is always corruption.
    if dd.origins() > dict_len {
        return Err(corrupt(format!("segment {s} spans {} origins, dictionary holds only {dict_len}", dd.origins())));
    }
    // Range checks over the large arenas run branchless (fold, then one
    // test) so they vectorize; the offending element is only hunted down
    // on the already-failed path.
    let (_, weights, tokens, _, rule_ids, _, _) = dd.raw_arenas();
    if tokens.iter().map(|t| t.0).max().is_some_and(|m| m >= n_tokens) {
        let t = tokens.iter().map(|t| t.0).find(|&t| t >= n_tokens).expect("max out of range");
        return Err(corrupt(format!("segment {s} references token {t} outside the interner ({n_tokens})")));
    }
    if !weights.iter().fold(true, |ok, &w| ok & (w > 0.0) & (w <= 1.0)) {
        let (i, w) = weights.iter().enumerate().find(|(_, &w)| !(w > 0.0 && w <= 1.0)).expect("weight out of range");
        return Err(corrupt(format!("segment {s} variant {i} weight {w} outside (0, 1]")));
    }
    if rule_ids.iter().map(|r| r.0).max().is_some_and(|m| m >= n_rules) {
        let r = rule_ids.iter().map(|r| r.0).find(|&r| r >= n_rules).expect("max out of range");
        return Err(corrupt(format!("segment {s} references rule {r} outside the rule table ({n_rules})")));
    }
    let index = ClusteredIndex::from_raw_parts(
        Arc::clone(order),
        IndexArenas {
            tok_groups: table.slice::<u32>(buf, SEC_IX_TOKGROUPS, s)?.into(),
            group_len: table.slice::<u16>(buf, SEC_IX_GROUPLEN, s)?.into(),
            group_origins: table.slice::<u32>(buf, SEC_IX_GROUPORIG, s)?.into(),
            origin_entity: table.slice::<EntityId>(buf, SEC_IX_ORIGENT, s)?.into(),
            origin_entries: table.slice::<u32>(buf, SEC_IX_ORIGENTRIES, s)?.into(),
            entries: table.slice::<aeetes_index::PostingEntry>(buf, SEC_IX_ENTRIES, s)?.into(),
            set_data: table.slice::<u64>(buf, SEC_IX_SETDATA, s)?.into(),
            set_offsets: table.slice::<u32>(buf, SEC_IX_SETOFF, s)?.into(),
            variants_by_len: table.slice::<DerivedId>(buf, SEC_IX_VARBYLEN, s)?.into(),
            origin_offsets: table.slice::<u32>(buf, SEC_IX_ORIGOFF, s)?.into(),
        },
    )
    .map_err(|e| corrupt(format!("segment {s} index: {e}")))?;
    // Cross-structure agreement: the index must describe exactly this
    // segment's derived space and the dictionary's origin space.
    if index.raw_parts().set_offsets.len() != dd.len() + 1 {
        return Err(corrupt(format!(
            "segment {s} index covers {} derived entities, dictionary holds {}",
            index.raw_parts().set_offsets.len().saturating_sub(1),
            dd.len()
        )));
    }
    if index.raw_parts().origin_offsets.len() != dd.origins() + 1 {
        return Err(corrupt(format!(
            "segment {s} variant table covers {} origins, its dictionary segment spans {}",
            index.raw_parts().origin_offsets.len().saturating_sub(1),
            dd.origins()
        )));
    }
    Ok(FrozenSegmentParts { dd, index })
}

// ------------------------------------------------------------- peek info --

/// Summary of an artifact's header, readable without loading (or fully
/// validating) the body. See [`peek_info`].
#[derive(Debug, Clone)]
pub struct ArtifactInfo {
    /// Format version (1–5).
    pub version: u32,
    /// Generation number (1 for pre-v4 artifacts).
    pub generation: u64,
    /// Origin entity count.
    pub entities: usize,
    /// Synonym rule count (0 for v1/v2, which don't persist rules).
    pub rules: usize,
    /// Interned token count.
    pub tokens: usize,
    /// Shard segment count (1 for v1/v2).
    pub segments: usize,
    /// Total artifact size in bytes.
    pub file_len: usize,
    /// Per-section sizes (v5 only; empty for older formats).
    pub sections: Vec<SectionInfo>,
}

/// One v5 section's identity and size.
#[derive(Debug, Clone)]
pub struct SectionInfo {
    /// Section kind name (see [`section_kind_name`]).
    pub kind: &'static str,
    /// Owning segment (`None` for global sections).
    pub seg: Option<u32>,
    /// Section payload bytes.
    pub len: usize,
}

/// Reads an artifact's headline facts — version, generation, entity/rule/
/// token counts, section sizes — without building an engine: v5 artifacts
/// are answered from the header, section table and the META counts; v1–v4
/// artifacts are skip-scanned (lengths walked, nothing decoded). No CRC is
/// verified — this is a diagnostic peek, not a load.
pub fn peek_info(bytes: &[u8]) -> Result<ArtifactInfo, PersistError> {
    let mut r = Reader { buf: bytes };
    let magic = r.take(4, "magic")?;
    if magic != persist::MAGIC {
        return Err(PersistError::BadMagic);
    }
    let version = r.u32("version")?;
    match version {
        persist::VERSION_FROZEN => peek_info_v5(bytes),
        1..=4 => peek_info_legacy(bytes, version),
        other => Err(PersistError::UnsupportedVersion(other)),
    }
}

fn peek_info_v5(bytes: &[u8]) -> Result<ArtifactInfo, PersistError> {
    if bytes.len() < HEADER_FIXED + 4 {
        return Err(PersistError::Truncated("frozen header"));
    }
    let table = parse_table(bytes)?;
    let generation = u64::from_le_bytes(bytes[8..16].try_into().expect("8-byte generation"));
    // Leading META counts (segments, entities, rules).
    let &(off, len) = table.entries.get(&(SEC_META, GLOBAL_SEG)).expect("parse_table guarantees META");
    let mut r = Reader { buf: &bytes[off..off + len] };
    let _segments = r.u32("meta segment count")? as usize;
    let entities = r.u32("meta entity count")? as usize;
    let rules = r.u32("meta rule count")? as usize;
    // Token count: the string offset array holds n + 1 entries.
    let &(_, off_len) = table.entries.get(&(SEC_STR_OFF, GLOBAL_SEG)).expect("parse_table guarantees STR_OFF");
    let tokens = (off_len / 4).saturating_sub(1);
    let mut sections: Vec<SectionInfo> = table
        .entries
        .iter()
        .map(|(&(kind, seg), &(_, len))| SectionInfo { kind: section_kind_name(kind), seg: (seg != GLOBAL_SEG).then_some(seg), len })
        .collect();
    sections.sort_by_key(|s| (s.seg, s.kind));
    Ok(ArtifactInfo {
        version: persist::VERSION_FROZEN,
        generation,
        entities,
        rules,
        tokens,
        segments: table.segments,
        file_len: bytes.len(),
        sections,
    })
}

/// Skip-scans a v1–v4 artifact: every variable-length field is walked by
/// its length prefix; strings, variants and segments are never decoded.
fn peek_info_legacy(bytes: &[u8], version: u32) -> Result<ArtifactInfo, PersistError> {
    let mut r = Reader { buf: &bytes[8..] };
    let generation = if version >= 4 { r.u64("generation")? } else { 1 };
    let tokens = r.u32("interner size")? as usize;
    r.check_count(tokens, 4, "interner size")?;
    for _ in 0..tokens {
        let n = r.u32("interner string")? as usize;
        r.take(n, "interner string")?;
    }
    let entities = r.u32("dictionary size")? as usize;
    r.check_count(entities, 8, "dictionary size")?;
    for _ in 0..entities {
        let n = r.u32("entity raw")? as usize;
        r.take(n, "entity raw")?;
        let t = r.u32("entity tokens")? as usize;
        r.take(t.checked_mul(4).ok_or(PersistError::Truncated("entity tokens"))?, "entity tokens")?;
    }
    let (rules, segments) = if version >= 3 {
        let n_removed = r.u32("removed size")? as usize;
        r.take(n_removed.checked_mul(4).ok_or(PersistError::Truncated("removed ids"))?, "removed ids")?;
        let n_rules = r.u32("rules size")? as usize;
        r.check_count(n_rules, 16, "rules size")?;
        for _ in 0..n_rules {
            for side in ["rule lhs", "rule rhs"] {
                let n = r.u32(side)? as usize;
                r.take(n.checked_mul(4).ok_or(PersistError::Truncated("rule side"))?, side)?;
            }
            r.take(8, "rule weight")?;
        }
        r.take(10, "config")?; // u8 strategy + u8 metric + u64 max_derived
        (n_rules, r.u32("segment count")? as usize)
    } else {
        (0, 1)
    };
    Ok(ArtifactInfo {
        version,
        generation,
        entities,
        rules,
        tokens,
        segments,
        file_len: bytes.len(),
        sections: Vec::new(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::backend::extract_segment;
    use crate::limits::ExtractLimits;
    use aeetes_rules::DerivedEntity;
    use aeetes_text::{Document, Tokenizer};

    fn sample() -> (crate::Aeetes, Interner, Tokenizer, RuleSet) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("Purdue University USA", &tok, &mut int);
        dict.push("UQ AU", &tok, &mut int);
        dict.push("University of Wisconsin Madison", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap();
        rules.push_weighted_str("AU", "Australia", 0.9, &tok, &mut int).unwrap();
        rules.push_str("USA", "United States", &tok, &mut int).unwrap();
        let engine = crate::Aeetes::build(dict, &rules, &int, AeetesConfig::default());
        (engine, int, tok, rules)
    }

    fn freeze_sample(engine: &crate::Aeetes, int: &Interner, rules: &RuleSet, generation: u64) -> Vec<u8> {
        freeze_to_bytes(&FreezeSource {
            interner: int,
            dict: engine.dictionary(),
            removed: &[],
            rules,
            config: engine.config(),
            generation,
            order: engine.index().order(),
            segments: vec![FreezeSegment { dd: engine.derived(), index: engine.index() }],
        })
    }

    fn extract_frozen(parts: &FrozenParts, doc: &Document, tau: f64) -> Vec<crate::Match> {
        let seg = &parts.segments[0];
        extract_segment(&seg.index, &seg.dd, doc, tau, parts.config.strategy, parts.config.metric, false, None, &ExtractLimits::UNLIMITED, None)
            .matches
    }

    #[test]
    fn round_trip_heap_is_bit_identical() {
        let (engine, mut int, tok, rules) = sample();
        let bytes = freeze_sample(&engine, &int, &rules, 3);
        let parts = open_frozen_bytes(&bytes).expect("open");
        assert_eq!(parts.generation, 3);
        assert!(!parts.mmapped);
        assert_eq!(parts.interner.len(), int.len());
        assert_eq!(parts.dict.len(), engine.dictionary().len());
        assert_eq!(parts.rules.len(), rules.len());
        assert!(parts.segments[0].dd.is_frozen());
        assert!(parts.segments[0].index.is_frozen());
        let text = "she left UQ Australia for Purdue University United States near University of Wisconsin Madison";
        let doc_a = Document::parse(text, &tok, &mut int);
        let mut frozen_int = parts.interner.clone();
        let doc_b = Document::parse(text, &tok, &mut frozen_int);
        for tau in [0.6, 0.8, 1.0] {
            assert_eq!(extract_frozen(&parts, &doc_b, tau), engine.extract(&doc_a, tau), "tau={tau}");
        }
    }

    #[test]
    fn round_trip_mmap_matches_heap() {
        let (engine, int, tok, rules) = sample();
        let bytes = freeze_sample(&engine, &int, &rules, 1);
        let path = std::env::temp_dir().join(format!("aeetes-frozen-rt-{}.aeet", std::process::id()));
        std::fs::write(&path, &bytes).unwrap();
        let mapped = open_frozen(&path).expect("open mmap");
        let heaped = open_frozen_bytes(&bytes).expect("open heap");
        #[cfg(unix)]
        assert!(mapped.mmapped, "unix opens must map");
        let mut int_a = mapped.interner.clone();
        let mut int_b = heaped.interner.clone();
        let doc_a = Document::parse("purdue university united states and uq australia", &tok, &mut int_a);
        let doc_b = Document::parse("purdue university united states and uq australia", &tok, &mut int_b);
        assert_eq!(extract_frozen(&mapped, &doc_a, 0.7), extract_frozen(&heaped, &doc_b, 0.7));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncation_and_bitflips_never_panic() {
        let (engine, int, _, rules) = sample();
        let bytes = freeze_sample(&engine, &int, &rules, 2);
        for cut in 0..bytes.len() {
            assert!(open_frozen_bytes(&bytes[..cut]).is_err(), "prefix of {cut} bytes accepted");
        }
        for i in (0..bytes.len()).step_by(7) {
            let mut b = bytes.clone();
            b[i] ^= 0xFF;
            assert!(open_frozen_bytes(&b).is_err(), "bit flip at {i} accepted (CRC must catch everything)");
        }
    }

    #[test]
    fn misaligned_section_offset_rejected() {
        let (engine, int, _, rules) = sample();
        let mut bytes = freeze_sample(&engine, &int, &rules, 2);
        // Nudge the first section's offset off alignment, re-CRC.
        let at = HEADER_FIXED + 8;
        let off = u64::from_le_bytes(bytes[at..at + 8].try_into().unwrap());
        bytes[at..at + 8].copy_from_slice(&(off + 1).to_le_bytes());
        let len = bytes.len();
        let footer = crc32(&bytes[..len - 4]);
        bytes[len - 4..].copy_from_slice(&footer.to_le_bytes());
        let err = match open_frozen_bytes(&bytes) {
            Ok(_) => panic!("misaligned offset must be rejected"),
            Err(e) => e,
        };
        assert!(err.to_string().contains("aligned"), "unexpected error: {err}");
    }

    #[test]
    fn sharded_segments_round_trip() {
        // Two segments splitting the origin space; both span the full origin
        // id range with disjoint resident origins.
        let (engine, int, tok, rules) = sample();
        let dict = engine.dictionary();
        let config = engine.config();
        let even = DerivedDictionary::build_filtered(dict, &rules, &config.derive, |e| e.0 % 2 == 0);
        let odd = DerivedDictionary::build_filtered(dict, &rules, &config.derive, |e| e.0 % 2 == 1);
        let order = engine.index().shared_order();
        let ix_even = ClusteredIndex::build_with_order(&even, Arc::clone(&order));
        let ix_odd = ClusteredIndex::build_with_order(&odd, Arc::clone(&order));
        let bytes = freeze_to_bytes(&FreezeSource {
            interner: &int,
            dict,
            removed: &[],
            rules: &rules,
            config,
            generation: 7,
            order: order.as_ref(),
            segments: vec![FreezeSegment { dd: &even, index: &ix_even }, FreezeSegment { dd: &odd, index: &ix_odd }],
        });
        let parts = open_frozen_bytes(&bytes).expect("open two segments");
        assert_eq!(parts.segments.len(), 2);
        assert_eq!(parts.generation, 7);
        assert_eq!(parts.segments[0].dd.len(), even.len());
        assert_eq!(parts.segments[1].dd.len(), odd.len());
        // Each frozen segment extracts identically to its source.
        let mut fi = parts.interner.clone();
        let doc = Document::parse("purdue university united states and uq australia", &tok, &mut fi);
        for (seg, (src_dd, src_ix)) in parts.segments.iter().zip([(&even, &ix_even), (&odd, &ix_odd)]) {
            let a = extract_segment(&seg.index, &seg.dd, &doc, 0.7, config.strategy, config.metric, false, None, &ExtractLimits::UNLIMITED, None);
            let b = extract_segment(src_ix, src_dd, &doc, 0.7, config.strategy, config.metric, false, None, &ExtractLimits::UNLIMITED, None);
            assert_eq!(a.matches, b.matches);
        }
    }

    #[test]
    fn refreeze_of_opened_parts_is_stable() {
        // freeze → open → freeze again must produce identical bytes: the
        // opened arenas describe exactly what was written.
        let (engine, int, _, rules) = sample();
        let bytes = freeze_sample(&engine, &int, &rules, 4);
        let parts = open_frozen_bytes(&bytes).expect("open");
        let again = freeze_to_bytes(&FreezeSource {
            interner: &parts.interner,
            dict: &parts.dict,
            removed: &parts.removed,
            rules: &parts.rules,
            config: &parts.config,
            generation: parts.generation,
            order: parts.order.as_ref(),
            segments: parts.segments.iter().map(|s| FreezeSegment { dd: &s.dd, index: &s.index }).collect(),
        });
        assert_eq!(bytes, again, "refreeze must be byte-identical");
    }

    #[test]
    fn peek_info_reports_v5_and_legacy() {
        let (engine, int, _, rules) = sample();
        let v5 = freeze_sample(&engine, &int, &rules, 9);
        let info = peek_info(&v5).expect("peek v5");
        assert_eq!(info.version, 5);
        assert_eq!(info.generation, 9);
        assert_eq!(info.entities, 3);
        assert_eq!(info.rules, 3);
        assert_eq!(info.tokens, int.len());
        assert_eq!(info.segments, 1);
        assert_eq!(info.file_len, v5.len());
        assert!(!info.sections.is_empty());
        assert!(info.sections.iter().any(|s| s.kind == "ix.entries"));

        let v2 = crate::save_engine(&engine, &int);
        let info = peek_info(&v2).expect("peek v2");
        assert_eq!(info.version, 2);
        assert_eq!(info.generation, 1);
        assert_eq!(info.entities, 3);
        assert_eq!(info.rules, 0, "v2 doesn't persist rules");
        assert_eq!(info.tokens, int.len());
        assert_eq!(info.segments, 1);
        assert!(info.sections.is_empty());
    }

    #[test]
    fn peek_generation_reads_v5_header() {
        let (engine, int, _, rules) = sample();
        let bytes = freeze_sample(&engine, &int, &rules, 42);
        assert_eq!(crate::peek_generation(&bytes).unwrap(), 42);
    }

    #[test]
    fn load_sharded_rejects_v5() {
        let (engine, int, _, rules) = sample();
        let bytes = freeze_sample(&engine, &int, &rules, 1);
        assert!(matches!(crate::load_sharded(&bytes), Err(PersistError::UnsupportedVersion(5))));
    }

    #[test]
    fn updates_over_frozen_parts_copy_on_write() {
        // The derived dictionary's owned conversion is the COW seam a
        // delta path uses; a frozen dd must convert cleanly.
        let (engine, int, _, rules) = sample();
        let bytes = freeze_sample(&engine, &int, &rules, 1);
        let parts = open_frozen_bytes(&bytes).expect("open");
        let seg = &parts.segments[0];
        let owned: Vec<DerivedEntity> = seg.dd.iter().map(|(_, d)| d.to_owned()).collect();
        let rebuilt = DerivedDictionary::from_parts(owned, parts.dict.len(), seg.dd.stats().clone()).expect("rebuild");
        assert_eq!(rebuilt.len(), seg.dd.len());
        assert!(!rebuilt.is_frozen());
    }
}
