//! Crash-safe file primitives: fsync-correct atomic replace and directory
//! syncing, shared by the engine-artifact save path and the WAL.
//!
//! A bare `write` + `rename` is atomic against concurrent readers but not
//! against power loss: the rename can become durable before the file data,
//! leaving a complete-looking path with garbage (or zero-length) contents,
//! and the rename itself lives in the directory, which has its own page
//! cache. [`atomic_replace`] therefore (1) writes to a same-directory temp
//! file, (2) `sync_all`s it, (3) renames over the target, and (4) fsyncs
//! the parent directory — the sequence after which either the old or the
//! complete new contents survive any crash point.
//!
//! Every step carries a [`crate::failpoint`] hook (`durable.write`,
//! `durable.sync_file`, `durable.rename.before`, `durable.rename.after`,
//! `durable.sync_dir`) so the recovery suites can force torn writes, EIO,
//! and crash-at-rename deterministically.

use crate::failpoint::{self, FailAction};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Write};
use std::path::{Path, PathBuf};

/// Writes `buf` to `file`, honoring a `ShortWrite`/`Error` failpoint armed
/// on `site` (a short write persists its prefix, then fails — exactly the
/// artifact a crash mid-write leaves behind).
pub(crate) fn write_all_at_site(file: &mut File, buf: &[u8], site: &str) -> io::Result<()> {
    match failpoint::hit(site) {
        None => file.write_all(buf),
        Some(FailAction::ShortWrite(n)) => {
            let n = n.min(buf.len());
            file.write_all(&buf[..n])?;
            Err(io::Error::other(format!("failpoint {site}: short write of {n}/{} bytes", buf.len())))
        }
        Some(FailAction::Error) => Err(io::Error::other(format!("failpoint {site}: injected I/O error"))),
        Some(FailAction::Crash) => std::process::abort(),
    }
}

/// Fsyncs a directory so a rename or file creation inside it is durable.
/// Directories open read-only on every Unix; on platforms where that
/// fails the error propagates rather than silently skipping the sync.
pub fn fsync_dir(dir: &Path) -> io::Result<()> {
    failpoint::io_site("durable.sync_dir")?;
    File::open(dir)?.sync_all()
}

/// The parent directory of `path`, defaulting to `.` for bare file names.
fn parent_dir(path: &Path) -> PathBuf {
    match path.parent() {
        Some(p) if !p.as_os_str().is_empty() => p.to_path_buf(),
        _ => PathBuf::from("."),
    }
}

/// Atomically and durably replaces `path` with `bytes`: temp file in the
/// same directory, `sync_all`, rename over the target, parent-directory
/// fsync. After this returns, the new contents survive power loss; if it
/// fails or the process dies mid-way, the previous contents (or absence)
/// of `path` are untouched.
pub fn atomic_replace(path: &Path, bytes: &[u8]) -> io::Result<()> {
    let dir = parent_dir(path);
    let tmp = {
        let mut name = path.file_name().map(|n| n.to_os_string()).unwrap_or_else(|| "artifact".into());
        name.push(format!(".tmp.{}", std::process::id()));
        dir.join(name)
    };
    let result = (|| {
        let mut f = OpenOptions::new().write(true).create(true).truncate(true).open(&tmp)?;
        write_all_at_site(&mut f, bytes, "durable.write")?;
        failpoint::io_site("durable.sync_file")?;
        f.sync_all()?;
        drop(f);
        failpoint::io_site("durable.rename.before")?;
        fs::rename(&tmp, path)?;
        failpoint::io_site("durable.rename.after")?;
        fsync_dir(&dir)
    })();
    if result.is_err() {
        let _ = fs::remove_file(&tmp);
    }
    result
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_path(tag: &str) -> PathBuf {
        static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
        let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        std::env::temp_dir().join(format!("aeetes-durable-{tag}-{}-{n}", std::process::id()))
    }

    #[test]
    fn replace_creates_and_overwrites() {
        let path = tmp_path("basic");
        atomic_replace(&path, b"one").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"one");
        atomic_replace(&path, b"two").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"two");
        fs::remove_file(&path).unwrap();
    }

    #[cfg(feature = "failpoints")]
    #[test]
    fn injected_faults_leave_target_intact() {
        let path = tmp_path("faults");
        atomic_replace(&path, b"stable").unwrap();
        for (site, action) in [
            ("durable.write", FailAction::Error),
            ("durable.write", FailAction::ShortWrite(2)),
            ("durable.sync_file", FailAction::Error),
            ("durable.rename.before", FailAction::Error),
        ] {
            failpoint::clear();
            failpoint::set(site, action, None);
            let err = atomic_replace(&path, b"replacement").unwrap_err();
            assert!(err.to_string().contains("failpoint"), "{site}: {err}");
            assert_eq!(fs::read(&path).unwrap(), b"stable", "target damaged by {site}");
            // The temp file must not linger either.
            let dir = path.parent().unwrap();
            let leftovers = fs::read_dir(dir)
                .unwrap()
                .filter_map(|e| e.ok())
                .filter(|e| e.file_name().to_string_lossy().starts_with(&*path.file_name().unwrap().to_string_lossy()))
                .count();
            assert_eq!(leftovers, 1, "{site} leaked a temp file");
        }
        failpoint::clear();
        atomic_replace(&path, b"replacement").unwrap();
        assert_eq!(fs::read(&path).unwrap(), b"replacement");
        fs::remove_file(&path).unwrap();
    }
}
