//! Extraction results.

use aeetes_rules::DerivedId;
use aeetes_text::{EntityId, Span};

/// One extracted pair `(e, s)` with `JaccAR(e, s) ≥ τ`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Match {
    /// The origin entity from the dictionary.
    pub entity: EntityId,
    /// The matched substring of the document (token span).
    pub span: Span,
    /// The exact `JaccAR(entity, substring)` value.
    pub score: f64,
    /// The derived variant achieving the maximum in Definition 2.1.
    pub best_variant: DerivedId,
}

impl Match {
    /// Canonical result order: by span start, span length, then entity.
    pub fn sort_key(&self) -> (u32, u32, u32) {
        (self.span.start, self.span.len, self.entity.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sort_key_orders_by_position_first() {
        let a = Match {
            entity: EntityId(9),
            span: Span::new(1, 2),
            score: 1.0,
            best_variant: DerivedId(0),
        };
        let b = Match {
            entity: EntityId(0),
            span: Span::new(2, 2),
            score: 1.0,
            best_variant: DerivedId(0),
        };
        assert!(a.sort_key() < b.sort_key());
    }
}
