//! Resource governance for extraction: wall-clock and output budgets.
//!
//! Extraction cost is input-dependent (documents and dictionaries are often
//! untrusted), so callers that serve traffic need a way to bound a single
//! call. [`ExtractLimits`] declares the budget; the engine checks it at
//! window-advance boundaries inside every strategy and between candidate
//! verifications, degrading to a *partial, well-formed* result instead of
//! running away. [`ExtractOutcome`] reports whether truncation happened.
//!
//! With no limits set (the default) the checks are branch-only — no clock
//! reads — and results are bit-for-bit identical to the unbudgeted engine.

use crate::matches::Match;
use crate::stats::ExtractStats;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A shared cancellation flag.
///
/// Clones share the flag; `cancel()` from any clone (e.g. a signal-handler,
/// watchdog thread, or a draining server) stops cooperating work. Batch
/// extraction consults it between documents, and a cancellable extraction
/// ([`crate::Aeetes::extract_with_limits_cancellable`]) additionally checks
/// it at window-advance and verification boundaries — so cancellation stops
/// a long extraction *mid-document*, reporting `truncated = true` with the
/// exact matches found so far.
#[derive(Debug, Clone, Default)]
pub struct CancelToken {
    flag: Arc<AtomicBool>,
}

impl CancelToken {
    /// A fresh, un-cancelled token.
    pub fn new() -> Self {
        Self::default()
    }

    /// Requests cancellation. Idempotent; never blocks.
    pub fn cancel(&self) {
        self.flag.store(true, Ordering::Relaxed);
    }

    /// Whether cancellation has been requested.
    pub fn is_cancelled(&self) -> bool {
        self.flag.load(Ordering::Relaxed)
    }
}

/// Caps applied to one extraction run. `None` fields are unlimited.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractLimits {
    /// Wall-clock budget. Checked at window-advance and verification
    /// boundaries, so overruns are bounded by the cost of one window /
    /// one verification, not detected "eventually".
    pub deadline: Option<Duration>,
    /// Maximum candidate `(substring, entity)` pairs to generate.
    pub max_candidates: Option<usize>,
    /// Maximum matches to return from verification.
    pub max_matches: Option<usize>,
    /// Routing knob of the *sharded* engine (never truncates anything): a
    /// multi-shard request whose estimated cost — document tokens × live
    /// shards — reaches this value fans out across the worker pool;
    /// cheaper requests run shard-sequentially on the calling thread.
    /// `None` uses the engine's calibrated default, `Some(0)` always fans
    /// out, `Some(u64::MAX)` never does. Results are bit-identical either
    /// way; only the parallelism differs.
    pub fanout_threshold: Option<u64>,
}

impl ExtractLimits {
    /// No limits; extraction behaves exactly like the unbudgeted engine.
    pub const UNLIMITED: ExtractLimits = ExtractLimits { deadline: None, max_candidates: None, max_matches: None, fanout_threshold: None };

    /// Whether every field is unlimited.
    pub fn is_unlimited(&self) -> bool {
        *self == Self::UNLIMITED
    }
}

/// Result of a budgeted extraction ([`crate::Aeetes::extract_with_limits`]).
#[derive(Debug, Clone)]
pub struct ExtractOutcome {
    /// Matches found before any budget ran out, sorted by `(span, entity)`.
    /// When `truncated` is set this is a sound prefix of the work done —
    /// every reported match is exact and verified — but not exhaustive.
    pub matches: Vec<Match>,
    /// Whether any budget in [`ExtractLimits`] cut the run short.
    pub truncated: bool,
    /// Work counters for the (possibly partial) run.
    pub stats: ExtractStats,
    /// Per-stage timing slots of the run (all-zero without the `obs`
    /// feature).
    pub stages: crate::stage::StageSlots,
}

/// Live budget state threaded through candidate generation and
/// verification. Constructed once per extraction from [`ExtractLimits`]
/// (resolving the relative deadline to an absolute [`Instant`]).
#[derive(Debug, Clone)]
pub(crate) struct Budget {
    deadline: Option<Instant>,
    max_candidates: usize,
    max_matches: usize,
    cancel: Option<CancelToken>,
    truncated: bool,
}

impl Budget {
    /// A budget that never trips (test fixtures only).
    #[cfg(test)]
    pub(crate) fn unlimited() -> Self {
        Self::start(&ExtractLimits::UNLIMITED)
    }

    /// Starts the clock on `limits` now.
    pub(crate) fn start(limits: &ExtractLimits) -> Self {
        Budget {
            deadline: limits.deadline.map(|d| Instant::now() + d),
            max_candidates: limits.max_candidates.unwrap_or(usize::MAX),
            max_matches: limits.max_matches.unwrap_or(usize::MAX),
            cancel: None,
            truncated: false,
        }
    }

    /// Starts the clock on `limits` and additionally trips (permanently, as
    /// truncation) as soon as `cancel` fires — checked at the same
    /// window-advance / verification boundaries as the deadline.
    pub(crate) fn start_cancellable(limits: &ExtractLimits, cancel: &CancelToken) -> Self {
        Budget { cancel: Some(cancel.clone()), ..Self::start(limits) }
    }

    /// Budget check at a window-advance boundary (or other unit of
    /// generation work). `produced` is the number of candidates generated
    /// so far; returns `false` — permanently — once any budget is spent.
    pub(crate) fn keep_generating(&mut self, produced: usize) -> bool {
        if self.truncated {
            return false;
        }
        if produced >= self.max_candidates || self.interrupted() {
            self.truncated = true;
            return false;
        }
        true
    }

    /// Budget check between candidate verifications. `matched` is the
    /// number of matches emitted so far.
    pub(crate) fn keep_verifying(&mut self, matched: usize) -> bool {
        if self.truncated {
            return false;
        }
        if matched >= self.max_matches || self.interrupted() {
            self.truncated = true;
            return false;
        }
        true
    }

    /// Deadline expiry or cancellation — the two asynchronous trip causes.
    /// The cancellation check is one relaxed atomic load, so cancellable
    /// extraction costs nothing measurable on the hot path.
    fn interrupted(&self) -> bool {
        self.deadline.is_some_and(|d| Instant::now() >= d) || self.cancel.as_ref().is_some_and(CancelToken::is_cancelled)
    }

    /// Whether any check tripped during this run.
    pub(crate) fn truncated(&self) -> bool {
        self.truncated
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unlimited_never_trips() {
        let mut b = Budget::unlimited();
        assert!(b.keep_generating(usize::MAX - 1));
        assert!(b.keep_verifying(usize::MAX - 1));
        assert!(!b.truncated());
    }

    #[test]
    fn candidate_cap_trips_permanently() {
        let mut b = Budget::start(&ExtractLimits { max_candidates: Some(10), ..Default::default() });
        assert!(b.keep_generating(9));
        assert!(!b.keep_generating(10));
        assert!(b.truncated());
        // Once tripped, stays tripped even for a smaller count.
        assert!(!b.keep_generating(0));
        assert!(!b.keep_verifying(0));
    }

    #[test]
    fn zero_candidate_budget_trips_immediately() {
        let mut b = Budget::start(&ExtractLimits { max_candidates: Some(0), ..Default::default() });
        assert!(!b.keep_generating(0));
        assert!(b.truncated());
    }

    #[test]
    fn expired_deadline_trips() {
        let mut b = Budget::start(&ExtractLimits { deadline: Some(Duration::ZERO), ..Default::default() });
        assert!(!b.keep_generating(0));
        assert!(b.truncated());
    }

    #[test]
    fn match_cap_only_affects_verification() {
        let mut b = Budget::start(&ExtractLimits { max_matches: Some(3), ..Default::default() });
        assert!(b.keep_generating(1_000_000));
        assert!(b.keep_verifying(2));
        assert!(!b.keep_verifying(3));
        assert!(b.truncated());
    }

    #[test]
    fn cancellation_trips_mid_run() {
        let token = CancelToken::new();
        let mut b = Budget::start_cancellable(&ExtractLimits::UNLIMITED, &token);
        assert!(b.keep_generating(100));
        assert!(b.keep_verifying(100));
        token.cancel();
        assert!(!b.keep_generating(0), "cancellation must stop generation");
        assert!(b.truncated(), "cancellation reports as truncation");
    }

    #[test]
    fn uncancelled_token_changes_nothing() {
        let token = CancelToken::new();
        let mut b = Budget::start_cancellable(&ExtractLimits::UNLIMITED, &token);
        assert!(b.keep_generating(usize::MAX - 1));
        assert!(b.keep_verifying(usize::MAX - 1));
        assert!(!b.truncated());
    }

    #[test]
    fn cancel_token_clones_share_state() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!b.is_cancelled());
        a.cancel();
        assert!(b.is_cancelled());
    }

    #[test]
    fn unlimited_constant_matches_default() {
        assert_eq!(ExtractLimits::default(), ExtractLimits::UNLIMITED);
        assert!(ExtractLimits::default().is_unlimited());
        assert!(!ExtractLimits { max_matches: Some(1), ..Default::default() }.is_unlimited());
    }
}
