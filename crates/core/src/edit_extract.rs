//! Character-level (edit-distance) extraction — the paper's future-work
//! item (ii): "extend our framework to support character-based similarity
//! functions such as Edit Distance for tolerating typos in documents".
//!
//! The asymmetric design carries over directly: rules are applied to the
//! dictionary off-line, and a substring matches entity `e` when
//! `ED-AR(e, s) = min over variants eᵢ ∈ D(e) of ed(string(eᵢ), string(s))`
//! is at most `k`. Candidate generation uses the standard **q-gram count
//! filter**: `ed(a, b) ≤ k` implies the strings share at least
//! `max(|a|,|b|) − q + 1 − k·q` positional-free q-grams, so an inverted
//! index over variant q-grams prunes almost all variants before the banded
//! edit-distance verification.
//!
//! Both sides are canonicalized as the single-space join of their tokens,
//! so punctuation and whitespace differences in the raw document never
//! count as edits.

use crate::extractor::Aeetes;
use aeetes_rules::DerivedId;
use aeetes_sim::levenshtein_bounded;
use aeetes_text::{Document, EntityId, Interner, Span};
use std::collections::HashMap;

/// One edit-distance match.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EditMatch {
    /// The origin entity.
    pub entity: EntityId,
    /// The matched token span.
    pub span: Span,
    /// `ED-AR(entity, span)` — the minimum edit distance over variants.
    pub distance: usize,
    /// The variant achieving the minimum.
    pub best_variant: DerivedId,
}

/// A q-gram inverted index over the derived dictionary's variant strings.
///
/// Build once per engine ([`EditIndex::build`]), then extract from any
/// number of documents with any distance threshold `k`.
#[derive(Debug)]
pub struct EditIndex {
    q: usize,
    /// Canonical (space-joined) string per variant.
    variant_strs: Vec<String>,
    /// Character count per variant.
    variant_chars: Vec<u32>,
    /// Token count per variant.
    variant_tokens: Vec<u32>,
    /// q-gram hash → variant ids containing it (deduplicated).
    grams: HashMap<u64, Vec<u32>>,
    /// Variant ids sorted by character count (fallback candidate source
    /// when the count filter degenerates on very short strings).
    by_chars: Vec<u32>,
    min_tokens: usize,
    max_tokens: usize,
}

/// FNV-1a over the `q` characters of one gram.
fn gram_hash(chars: &[char]) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for &c in chars {
        h ^= c as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    h
}

/// All q-gram hashes of `s` (deduplicated when `dedup` is set).
fn grams_of(s: &str, q: usize, dedup: bool) -> Vec<u64> {
    let chars: Vec<char> = s.chars().collect();
    if chars.len() < q {
        return Vec::new();
    }
    let mut out: Vec<u64> = chars.windows(q).map(gram_hash).collect();
    if dedup {
        out.sort_unstable();
        out.dedup();
    }
    out
}

impl EditIndex {
    /// Builds the index over `engine`'s derived dictionary with gram size
    /// `q` (2 or 3 are the usual choices).
    ///
    /// # Panics
    /// Panics when `q == 0`.
    pub fn build(engine: &Aeetes, interner: &Interner, q: usize) -> Self {
        assert!(q >= 1, "q-gram size must be at least 1");
        let dd = engine.derived();
        let mut variant_strs = Vec::with_capacity(dd.len());
        let mut variant_chars = Vec::with_capacity(dd.len());
        let mut variant_tokens = Vec::with_capacity(dd.len());
        let mut grams: HashMap<u64, Vec<u32>> = HashMap::new();
        let mut min_tokens = usize::MAX;
        let mut max_tokens = 0usize;
        for (id, d) in dd.iter() {
            let s = interner.render(d.tokens);
            for g in grams_of(&s, q, true) {
                grams.entry(g).or_default().push(id.0);
            }
            variant_chars.push(s.chars().count() as u32);
            variant_tokens.push(d.tokens.len() as u32);
            variant_strs.push(s);
            if !d.tokens.is_empty() {
                min_tokens = min_tokens.min(d.tokens.len());
                max_tokens = max_tokens.max(d.tokens.len());
            }
        }
        let mut by_chars: Vec<u32> = (0..variant_strs.len() as u32).collect();
        by_chars.sort_unstable_by_key(|&v| variant_chars[v as usize]);
        if min_tokens == usize::MAX {
            min_tokens = 0;
        }
        Self {
            q,
            variant_strs,
            variant_chars,
            variant_tokens,
            grams,
            by_chars,
            min_tokens,
            max_tokens,
        }
    }

    /// The canonical string of a variant (for reporting).
    pub fn variant_str(&self, id: DerivedId) -> &str {
        &self.variant_strs[id.idx()]
    }

    /// Extracts all `(entity, span)` pairs with `ED-AR ≤ k`, sorted by
    /// `(span, entity)`. One best match (minimum distance) per pair.
    pub fn extract(&self, engine: &Aeetes, doc: &Document, interner: &Interner, k: usize) -> Vec<EditMatch> {
        let dd = engine.derived();
        let n = doc.len();
        if n == 0 || self.variant_strs.is_empty() || self.max_tokens == 0 {
            return Vec::new();
        }
        // Every edit changes the token count by at most one (insert/delete
        // of a separator), so |tokens(s) − tokens(v)| ≤ k.
        let l_lo = self.min_tokens.saturating_sub(k).max(1);
        let l_hi = self.max_tokens + k;

        let doc_strs: Vec<&str> = doc.tokens().iter().map(|&t| interner.resolve(t)).collect();
        let mut best: HashMap<(u32, u32, u32), (usize, DerivedId)> = HashMap::new();
        let mut counts: HashMap<u32, usize> = HashMap::new();
        for p in 0..n {
            let mut s = String::new();
            for l in 1..=l_hi.min(n - p) {
                if l > 1 {
                    s.push(' ');
                }
                s.push_str(doc_strs[p + l - 1]);
                if l < l_lo {
                    continue;
                }
                let span = Span::new(p, l);
                let s_chars = s.chars().count();
                // Candidates via the q-gram count filter (multiplicity on
                // the window side is an upper bound of the matched count —
                // sound, see module docs).
                counts.clear();
                for g in grams_of(&s, self.q, false) {
                    if let Some(list) = self.grams.get(&g) {
                        for &v in list {
                            *counts.entry(v).or_insert(0) += 1;
                        }
                    }
                }
                let verify = |v: u32, best: &mut HashMap<(u32, u32, u32), (usize, DerivedId)>| {
                    let v_chars = self.variant_chars[v as usize] as usize;
                    if v_chars.abs_diff(s_chars) > k {
                        return;
                    }
                    let v_tokens = self.variant_tokens[v as usize] as usize;
                    if v_tokens.abs_diff(l) > k {
                        return;
                    }
                    if let Some(d) = levenshtein_bounded(&self.variant_strs[v as usize], &s, k) {
                        let origin = dd.derived(DerivedId(v)).origin;
                        let key = (origin.0, span.start, span.len);
                        let entry = best.entry(key).or_insert((usize::MAX, DerivedId(v)));
                        if d < entry.0 {
                            *entry = (d, DerivedId(v));
                        }
                    }
                };
                // Count-filter threshold per variant: T(v) =
                // max(|s|,|v|) − q + 1 − k·q. The minimum over admissible
                // variants is |s| − q + 1 − k·q; when that is ≤ 0 (or the
                // window is too short to even have grams) the filter cannot
                // prune — fall back to the by-char-length window.
                let degenerate = s_chars < self.q * (k + 1);
                if degenerate {
                    let lo = s_chars.saturating_sub(k) as u32;
                    let hi = (s_chars + k) as u32;
                    let start = self.by_chars.partition_point(|&v| self.variant_chars[v as usize] < lo);
                    for &v in &self.by_chars[start..] {
                        if self.variant_chars[v as usize] > hi {
                            break;
                        }
                        verify(v, &mut best);
                    }
                } else {
                    for (&v, &c) in &counts {
                        let v_chars = self.variant_chars[v as usize] as usize;
                        let needed = v_chars.max(s_chars).saturating_sub(self.q - 1).saturating_sub(k * self.q);
                        if c >= needed.max(1) {
                            verify(v, &mut best);
                        }
                    }
                }
            }
        }
        let mut out: Vec<EditMatch> = best
            .into_iter()
            .map(|((e, p, l), (d, v))| EditMatch {
                entity: EntityId(e),
                span: Span { start: p, len: l },
                distance: d,
                best_variant: v,
            })
            .collect();
        out.sort_unstable_by_key(|m| (m.span.start, m.span.len, m.entity.0));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeetesConfig;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Dictionary, Tokenizer};

    fn setup(entries: &[&str], rules: &[(&str, &str)]) -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let engine = Aeetes::build(dict, &rs, &int, AeetesConfig::default());
        (engine, int, tok)
    }

    #[test]
    fn exact_mention_distance_zero() {
        let (engine, mut int, tok) = setup(&["university of auckland"], &[]);
        let index = EditIndex::build(&engine, &int, 2);
        let doc = Document::parse("the university of auckland campus", &tok, &mut int);
        let got = index.extract(&engine, &doc, &int, 1);
        let hit = got.iter().find(|m| m.span == Span::new(1, 3)).expect("exact mention found");
        assert_eq!(hit.distance, 0);
    }

    #[test]
    fn single_typo_found_at_k1() {
        // The paper's Figure 8 example: "Aukland" vs "Auckland" (ed = 1).
        let (engine, mut int, tok) = setup(&["university of auckland"], &[]);
        let index = EditIndex::build(&engine, &int, 2);
        let doc = Document::parse("the university of aukland campus", &tok, &mut int);
        let got = index.extract(&engine, &doc, &int, 1);
        let hit = got.iter().find(|m| m.span == Span::new(1, 3)).expect("typo'd mention found at k=1");
        assert_eq!(hit.distance, 1);
        assert!(index.extract(&engine, &doc, &int, 0).iter().all(|m| m.span != Span::new(1, 3)));
    }

    #[test]
    fn rules_apply_before_distance() {
        // ED-AR: the variant produced by the synonym rule matches with
        // distance ≤ k even though the origin string is far away.
        let (engine, mut int, tok) = setup(&["UQ AU"], &[("UQ", "University of Queensland"), ("AU", "Australia")]);
        let index = EditIndex::build(&engine, &int, 2);
        let doc = Document::parse("at the university of queensland austrelia today", &tok, &mut int);
        let got = index.extract(&engine, &doc, &int, 1);
        let hit = got
            .iter()
            .find(|m| m.span == Span::new(2, 4))
            .expect("rule-expanded variant matches the typo'd mention");
        assert_eq!(hit.distance, 1, "one substitution in 'austrelia'");
        assert_eq!(hit.entity, EntityId(0));
    }

    #[test]
    fn respects_k() {
        let (engine, mut int, tok) = setup(&["green apple pie"], &[]);
        let index = EditIndex::build(&engine, &int, 2);
        let doc = Document::parse("grean appla pie", &tok, &mut int); // 2 substitutions
        assert!(index.extract(&engine, &doc, &int, 1).is_empty());
        let got = index.extract(&engine, &doc, &int, 2);
        assert!(got.iter().any(|m| m.span == Span::new(0, 3) && m.distance == 2));
    }

    #[test]
    fn short_strings_use_fallback_path() {
        // Entities shorter than q still match (count filter degenerates).
        let (engine, mut int, tok) = setup(&["ab"], &[]);
        let index = EditIndex::build(&engine, &int, 3);
        let doc = Document::parse("xx ab yy", &tok, &mut int);
        let got = index.extract(&engine, &doc, &int, 0);
        assert!(got.iter().any(|m| m.span == Span::new(1, 1) && m.distance == 0));
    }

    #[test]
    fn empty_inputs() {
        let (engine, mut int, tok) = setup(&[], &[]);
        let index = EditIndex::build(&engine, &int, 2);
        let doc = Document::parse("anything", &tok, &mut int);
        assert!(index.extract(&engine, &doc, &int, 2).is_empty());
        let (engine2, mut int2, tok2) = setup(&["a b"], &[]);
        let index2 = EditIndex::build(&engine2, &int2, 2);
        let empty = Document::parse("", &tok2, &mut int2);
        assert!(index2.extract(&engine2, &empty, &int2, 1).is_empty());
    }

    #[test]
    fn agrees_with_brute_force() {
        use aeetes_sim::levenshtein;
        let (engine, mut int, tok) = setup(&["data base systems", "databse", "machine learning"], &[("data base", "database")]);
        let index = EditIndex::build(&engine, &int, 2);
        let doc = Document::parse("old databse systems and machne learning data base", &tok, &mut int);
        for k in 0..=2usize {
            let got = index.extract(&engine, &doc, &int, k);
            // Brute force over the same window range.
            let dd = engine.derived();
            let l_hi = dd.iter().map(|(_, d)| d.tokens.len()).max().unwrap() + k;
            let mut expected: Vec<(u32, u32, u32, usize)> = Vec::new();
            for p in 0..doc.len() {
                for l in 1..=l_hi.min(doc.len() - p) {
                    let s = int.render(doc.slice(Span::new(p, l)));
                    for e in 0..dd.origins() {
                        let e = EntityId(e as u32);
                        let mut min_d = usize::MAX;
                        for id in dd.variant_range(e) {
                            let v = int.render(dd.derived(DerivedId(id)).tokens);
                            min_d = min_d.min(levenshtein(&v, &s));
                        }
                        if min_d <= k {
                            expected.push((p as u32, l as u32, e.0, min_d));
                        }
                    }
                }
            }
            expected.sort_unstable();
            let got_tuples: Vec<(u32, u32, u32, usize)> = got.iter().map(|m| (m.span.start, m.span.len, m.entity.0, m.distance)).collect();
            assert_eq!(got_tuples, expected, "k={k}");
        }
    }
}
