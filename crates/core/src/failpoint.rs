//! Deterministic failpoint injection for the durability paths.
//!
//! The WAL and atomic-write code call [`hit`] at every write / fsync /
//! rename / read site. With the default feature set the call is a ZST
//! no-op that constant-folds to `None`; with `--features failpoints` a
//! process-wide registry (configurable programmatically via [`set`] /
//! [`configure`], or through the `AEETES_FAILPOINTS` environment variable
//! for spawned child processes) can force each site to:
//!
//! - return `EIO` ([`FailAction::Error`]),
//! - perform a short write of `n` bytes and then fail
//!   ([`FailAction::ShortWrite`]),
//! - or abort the process on the spot ([`FailAction::Crash`]), simulating
//!   a crash at exactly that point.
//!
//! The environment grammar is a semicolon-separated list of
//! `site=action` pairs, where `action` is `error`, `crash`, or `short:N`,
//! optionally suffixed `@K` to fire only on the K-th hit (1-based) of
//! that site: `wal.append.write=short:3;durable.rename.before=crash@2`.

/// What a triggered failpoint asks the call site to do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FailAction {
    /// Fail the operation with an I/O error (`EIO`-style).
    Error,
    /// Write only the first `n` bytes, then fail — a torn write.
    ShortWrite(usize),
    /// Abort the process immediately (simulated crash / power loss).
    Crash,
}

#[cfg(feature = "failpoints")]
mod imp {
    use super::FailAction;
    use std::collections::HashMap;
    use std::sync::{Mutex, OnceLock};

    struct Site {
        action: FailAction,
        /// Fire only on the `at`-th hit (1-based); 0 = every hit.
        at: u64,
        hits: u64,
    }

    fn registry() -> &'static Mutex<HashMap<String, Site>> {
        static REG: OnceLock<Mutex<HashMap<String, Site>>> = OnceLock::new();
        REG.get_or_init(|| {
            let mut map = HashMap::new();
            if let Ok(spec) = std::env::var("AEETES_FAILPOINTS") {
                // A malformed env spec in a chaos harness should fail loudly,
                // not silently disable the fault it meant to inject.
                if let Err(e) = parse_into(&spec, &mut map) {
                    eprintln!("AEETES_FAILPOINTS: {e}");
                    std::process::exit(3);
                }
            }
            Mutex::new(map)
        })
    }

    fn parse_action(s: &str) -> Result<FailAction, String> {
        if s == "error" {
            Ok(FailAction::Error)
        } else if s == "crash" {
            Ok(FailAction::Crash)
        } else if let Some(n) = s.strip_prefix("short:") {
            n.parse::<usize>()
                .map(FailAction::ShortWrite)
                .map_err(|_| format!("bad short-write length in {s:?}"))
        } else {
            Err(format!("unknown failpoint action {s:?} (want error, crash, or short:N)"))
        }
    }

    fn parse_into(spec: &str, map: &mut HashMap<String, Site>) -> Result<(), String> {
        for part in spec.split(';').map(str::trim).filter(|p| !p.is_empty()) {
            let (site, rest) = part.split_once('=').ok_or_else(|| format!("missing `=` in failpoint {part:?}"))?;
            let (action, at) = match rest.split_once('@') {
                Some((a, k)) => (a, k.parse::<u64>().map_err(|_| format!("bad hit index in {part:?}"))?),
                None => (rest, 0),
            };
            map.insert(site.trim().to_string(), Site { action: parse_action(action.trim())?, at, hits: 0 });
        }
        Ok(())
    }

    /// Configures one site programmatically. `at` = `Some(k)` fires only on
    /// the k-th hit (1-based); `None` fires on every hit.
    pub fn set(site: &str, action: FailAction, at: Option<u64>) {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        reg.insert(site.to_string(), Site { action, at: at.unwrap_or(0), hits: 0 });
    }

    /// Parses and installs a semicolon-separated `site=action` spec (the
    /// same grammar as `AEETES_FAILPOINTS`).
    pub fn configure(spec: &str) -> Result<(), String> {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        let mut staged = HashMap::new();
        parse_into(spec, &mut staged)?;
        reg.extend(staged);
        Ok(())
    }

    /// Removes every configured failpoint.
    pub fn clear() {
        registry().lock().unwrap_or_else(|p| p.into_inner()).clear();
    }

    /// Called by instrumented sites. Counts the hit and returns the action
    /// to apply, if the site is armed and due. [`FailAction::Crash`] aborts
    /// here rather than returning, so call sites can't soften it.
    pub fn hit(site: &str) -> Option<FailAction> {
        let mut reg = registry().lock().unwrap_or_else(|p| p.into_inner());
        let s = reg.get_mut(site)?;
        s.hits += 1;
        if s.at != 0 && s.hits != s.at {
            return None;
        }
        if s.action == FailAction::Crash {
            // `abort`, not `exit`: no atexit hooks, no buffered flushes —
            // the closest in-process stand-in for power loss.
            std::process::abort();
        }
        Some(s.action)
    }
}

#[cfg(not(feature = "failpoints"))]
mod imp {
    use super::FailAction;

    /// No-op stub: with the feature off every hook folds to `None`.
    #[inline(always)]
    pub fn hit(_site: &str) -> Option<FailAction> {
        None
    }

    /// No-op stub.
    #[inline(always)]
    pub fn set(_site: &str, _action: FailAction, _at: Option<u64>) {}

    /// No-op stub; always succeeds.
    #[inline(always)]
    pub fn configure(_spec: &str) -> Result<(), String> {
        Ok(())
    }

    /// No-op stub.
    #[inline(always)]
    pub fn clear() {}
}

pub use imp::{clear, configure, hit, set};

/// Maps a triggered failpoint to an `io::Error` for non-write sites
/// (fsync, rename, read), aborting on [`FailAction::Crash`].
pub(crate) fn io_site(site: &str) -> std::io::Result<()> {
    match hit(site) {
        None => Ok(()),
        // A short write makes no sense at a non-write site; treat as EIO.
        Some(FailAction::Error) | Some(FailAction::ShortWrite(_)) => Err(std::io::Error::other(format!("failpoint {site}: injected I/O error"))),
        // `hit` aborts on Crash before returning; unreachable, but keep
        // the arm so the match stays exhaustive if that ever changes.
        Some(FailAction::Crash) => std::process::abort(),
    }
}

#[cfg(all(test, feature = "failpoints"))]
mod tests {
    use super::*;

    #[test]
    fn configure_set_and_hit() {
        clear();
        configure("t.a=error;t.b=short:5@2").unwrap();
        assert_eq!(hit("t.a"), Some(FailAction::Error));
        assert_eq!(hit("t.a"), Some(FailAction::Error), "no @k means every hit");
        assert_eq!(hit("t.b"), None, "first hit skipped");
        assert_eq!(hit("t.b"), Some(FailAction::ShortWrite(5)), "second hit fires");
        assert_eq!(hit("t.b"), None, "later hits skipped");
        assert_eq!(hit("t.unset"), None);
        clear();
        assert_eq!(hit("t.a"), None);
    }

    #[test]
    fn bad_specs_rejected() {
        assert!(configure("nosign").is_err());
        assert!(configure("s=bogus").is_err());
        assert!(configure("s=short:x").is_err());
        assert!(configure("s=error@x").is_err());
    }
}
