//! Candidate collection and the two posting-list scan primitives.

use crate::stats::ExtractStats;
use aeetes_index::ClusteredIndex;
use aeetes_sim::Metric;
use aeetes_text::{EntityId, Span, TokenId};
use std::collections::HashSet;

/// Accumulates candidate `(substring, origin entity)` pairs, deduplicated.
#[derive(Debug, Default)]
pub(crate) struct CandidateSink {
    /// Unique candidate pairs in discovery order.
    pub pairs: Vec<(Span, EntityId)>,
    seen: HashSet<(u32, u32, u32)>,
}

impl CandidateSink {
    /// Whether `(span, e)` is already a candidate (drives the origin-group
    /// batch skip of §3.2).
    pub fn contains(&self, span: Span, e: EntityId) -> bool {
        self.seen.contains(&(span.start, span.len, e.0))
    }

    /// Records a candidate; returns `false` when it was already present.
    pub fn push(&mut self, span: Span, e: EntityId) -> bool {
        if self.seen.insert((span.start, span.len, e.0)) {
            self.pairs.push((span, e));
            true
        } else {
            false
        }
    }

    /// Number of unique candidates collected (used by tests and stats).
    pub fn len(&self) -> usize {
        self.pairs.len()
    }

    /// Forgets all candidates, keeping the allocated capacity.
    pub fn clear(&mut self) {
        self.pairs.clear();
        self.seen.clear();
    }
}

/// Scans the *entire* posting list of `t`, applying the length and position
/// filters per entry — the `Simple` baseline: no batch skipping, every entry
/// is accessed.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_flat(
    index: &ClusteredIndex,
    t: TokenId,
    span: Span,
    s_len: usize,
    tau: f64,
    metric: Metric,
    sink: &mut CandidateSink,
    stats: &mut ExtractStats,
) {
    let Some(tp) = index.postings(t) else { return };
    let (lo, hi) = metric.length_bounds(s_len, tau, usize::MAX);
    for g in tp.groups() {
        let len = g.len();
        let in_range = len >= lo && len <= hi;
        let plen = metric.prefix_len(len, tau);
        for og in g.origins() {
            for e in og.entries {
                stats.accessed_entries += 1;
                if in_range && (e.pos as usize) < plen {
                    sink.push(span, og.origin);
                }
            }
        }
    }
}

/// Scans the posting list of `t` with the clustered-index skips of §3.2:
/// length groups outside the length filter are skipped in batch (binary
/// search + early break) and origin groups whose origin is already a
/// candidate of this substring are skipped in batch.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_clustered(
    index: &ClusteredIndex,
    t: TokenId,
    span: Span,
    s_len: usize,
    tau: f64,
    metric: Metric,
    sink: &mut CandidateSink,
    stats: &mut ExtractStats,
) {
    let Some(tp) = index.postings(t) else { return };
    let (lo, hi) = metric.length_bounds(s_len, tau, usize::MAX);
    let start = tp.first_group_at_least(lo);
    for g in tp.groups_from(start) {
        let len = g.len();
        if len > hi {
            break;
        }
        let plen = metric.prefix_len(len, tau);
        for og in g.origins() {
            if sink.contains(span, og.origin) {
                continue; // batch skip: L_e^l[t] skipped wholesale
            }
            for e in og.entries {
                stats.accessed_entries += 1;
                if (e.pos as usize) < plen {
                    sink.push(span, og.origin);
                    break; // rest of the origin group is now skippable
                }
            }
        }
    }
}

/// Scans the posting list of `t` like [`scan_clustered`], but appends the
/// candidate origins to `arena` and returns the appended `(start, end)`
/// range. Used by the `Dynamic` strategy, which caches one scan per
/// surviving prefix token across Window Migrate steps (the result depends
/// only on `(t, s_len, tau)`, not on the substring position). `seen` is
/// scan-local dedup scratch, cleared here; both buffers retain capacity
/// across scans.
#[allow(clippy::too_many_arguments)]
pub(crate) fn scan_token_origins_into(
    index: &ClusteredIndex,
    t: TokenId,
    s_len: usize,
    tau: f64,
    metric: Metric,
    stats: &mut ExtractStats,
    arena: &mut Vec<EntityId>,
    seen: &mut HashSet<EntityId>,
) -> (u32, u32) {
    let from = arena.len() as u32;
    let Some(tp) = index.postings(t) else { return (from, from) };
    seen.clear();
    let (lo, hi) = metric.length_bounds(s_len, tau, usize::MAX);
    let start = tp.first_group_at_least(lo);
    for g in tp.groups_from(start) {
        let len = g.len();
        if len > hi {
            break;
        }
        let plen = metric.prefix_len(len, tau);
        for og in g.origins() {
            // Origin already found under this token (in an earlier length
            // group): batch-skip its entries.
            if seen.contains(&og.origin) {
                continue;
            }
            for e in og.entries {
                stats.accessed_entries += 1;
                if (e.pos as usize) < plen {
                    seen.insert(og.origin);
                    arena.push(og.origin);
                    break;
                }
            }
        }
    }
    (from, arena.len() as u32)
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, DerivedDictionary, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn index_of(entries: &[&str]) -> (ClusteredIndex, Interner) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let dd = DerivedDictionary::build(&dict, &RuleSet::new(), &DeriveConfig::default());
        (ClusteredIndex::build(&dd, &int), int)
    }

    #[test]
    fn sink_dedups() {
        let mut s = CandidateSink::default();
        let sp = Span::new(0, 2);
        assert!(s.push(sp, EntityId(1)));
        assert!(!s.push(sp, EntityId(1)));
        assert!(s.push(sp, EntityId(2)));
        assert!(s.push(Span::new(1, 2), EntityId(1)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(sp, EntityId(1)));
        assert!(!s.contains(Span::new(5, 1), EntityId(1)));
    }

    #[test]
    fn flat_scan_accesses_every_entry() {
        let (ix, mut int) = index_of(&["a b", "a c d", "a e f g h i j k"]);
        let a = int.intern("a");
        let b = int.intern("b");
        let mut sink = CandidateSink::default();
        let mut stats = ExtractStats::default();
        // "a" is the most frequent token, so it sits at the END of every
        // ordered entity — the position filter rejects all its postings,
        // but the flat scan still touches every one of them.
        scan_flat(&ix, a, Span::new(0, 2), 2, 0.9, Metric::Jaccard, &mut sink, &mut stats);
        assert_eq!(stats.accessed_entries, 3, "one posting per entity containing 'a'");
        assert_eq!(sink.len(), 0, "'a' is outside every entity prefix");
        // The rare token "b" IS the prefix of "a b" → candidate found.
        scan_flat(&ix, b, Span::new(0, 2), 2, 0.9, Metric::Jaccard, &mut sink, &mut stats);
        assert_eq!(sink.len(), 1);
    }

    #[test]
    fn clustered_scan_skips_length_groups() {
        let (ix, mut int) = index_of(&["a b", "a c d", "a e f g h i j k"]);
        let a = int.intern("a");
        let mut sink = CandidateSink::default();
        let mut stats = ExtractStats::default();
        // s_len=2, τ=0.9 → admissible entity lengths [1, 3]: the len-2 and
        // len-3 groups are touched (1 entry each), the len-8 group is
        // batch-skipped without access.
        scan_clustered(&ix, a, Span::new(0, 2), 2, 0.9, Metric::Jaccard, &mut sink, &mut stats);
        assert_eq!(stats.accessed_entries, 2, "len-8 group batch-skipped");
        assert_eq!(sink.len(), 0, "'a' is outside every entity prefix");
    }

    #[test]
    fn clustered_scan_skips_known_origins() {
        let (ix, mut int) = index_of(&["a b"]);
        let a = int.intern("a");
        let b = int.intern("b");
        let span = Span::new(0, 2);
        let mut sink = CandidateSink::default();
        let mut stats = ExtractStats::default();
        scan_clustered(&ix, a, span, 2, 0.8, Metric::Jaccard, &mut sink, &mut stats);
        let after_first = stats.accessed_entries;
        assert_eq!(sink.len(), 1);
        // Second token of the same substring: origin already a candidate →
        // its group is skipped without touching entries.
        scan_clustered(&ix, b, span, 2, 0.8, Metric::Jaccard, &mut sink, &mut stats);
        assert_eq!(stats.accessed_entries, after_first);
    }

    #[test]
    fn flat_and_clustered_agree_on_candidates() {
        let (ix, mut int) = index_of(&["x y", "x z", "w x y z", "p q r"]);
        let x = int.intern("x");
        for s_len in 1..=5 {
            for tau in [0.7, 0.8, 0.9] {
                let mut s1 = CandidateSink::default();
                let mut s2 = CandidateSink::default();
                let mut st = ExtractStats::default();
                let span = Span::new(0, s_len);
                scan_flat(&ix, x, span, s_len, tau, Metric::Jaccard, &mut s1, &mut st);
                scan_clustered(&ix, x, span, s_len, tau, Metric::Jaccard, &mut s2, &mut st);
                let mut a = s1.pairs.clone();
                let mut b = s2.pairs.clone();
                a.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
                b.sort_by_key(|(sp, e)| (sp.start, sp.len, e.0));
                assert_eq!(a, b, "s_len={s_len} tau={tau}");
            }
        }
    }

    #[test]
    fn unknown_token_scans_nothing() {
        let (ix, mut int) = index_of(&["a b"]);
        let z = int.intern("zzz");
        let mut sink = CandidateSink::default();
        let mut stats = ExtractStats::default();
        scan_flat(&ix, z, Span::new(0, 1), 1, 0.8, Metric::Jaccard, &mut sink, &mut stats);
        scan_clustered(&ix, z, Span::new(0, 1), 1, 0.8, Metric::Jaccard, &mut sink, &mut stats);
        assert_eq!(stats.accessed_entries, 0);
        assert_eq!(sink.len(), 0);
    }
}
