//! Aeetes — the sliding-window approximate entity-extraction engine
//! (paper §2.3, §4).
//!
//! The end-to-end pipeline is:
//!
//! 1. **Off-line** ([`Aeetes::build`]): apply synonym rules to every
//!    dictionary entity ([`aeetes_rules::DerivedDictionary`]), then build the
//!    clustered inverted index ([`aeetes_index::ClusteredIndex`]).
//! 2. **On-line** ([`Aeetes::extract`]): slide windows over the document,
//!    generate candidate `(substring, origin entity)` pairs with one of four
//!    filtering [`Strategy`]s, then verify each candidate's exact JaccAR
//!    score.
//!
//! The four strategies reproduce the paper's Figure 10/11 ablation:
//!
//! | Strategy | Prefix computation | Index scan |
//! |----------|--------------------|------------|
//! | [`Strategy::Simple`]  | from scratch per substring | full list, per-entry filters |
//! | [`Strategy::Skip`]    | from scratch per substring | clustered, batch skips |
//! | [`Strategy::Dynamic`] | incremental (Window Extend / Migrate) | clustered, batch skips |
//! | [`Strategy::Lazy`]    | incremental | deferred: each token's list scanned once per document |
//!
//! # Quickstart
//!
//! ```
//! use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
//! use aeetes_rules::RuleSet;
//! use aeetes_core::{Aeetes, AeetesConfig};
//!
//! let mut int = Interner::new();
//! let tok = Tokenizer::default();
//! let mut dict = Dictionary::new();
//! let uq = dict.push("UQ AU", &tok, &mut int);
//! let mut rules = RuleSet::new();
//! rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap();
//! rules.push_str("AU", "Australia", &tok, &mut int).unwrap();
//!
//! let engine = Aeetes::build(dict, &rules, &int, AeetesConfig::default());
//! let doc = Document::parse(
//!     "she studied at the University of Queensland Australia last year",
//!     &tok, &mut int);
//! let matches = engine.extract(&doc, 0.9);
//! assert_eq!(matches[0].entity, uq);
//! assert_eq!(matches[0].score, 1.0);
//! ```

mod backend;
mod batch;
mod candidates;
mod config;
pub mod durable;
mod edit_extract;
mod extractor;
pub mod failpoint;
pub mod frozen;
mod limits;
mod matches;
mod nms;
mod persist;
mod report;
mod scratch;
mod stage;
mod stats;
mod strategy;
mod topk;
mod typo;
mod verify;
pub mod wal;
mod window;

pub use backend::{extract_segment, extract_segment_scratched, ExtractBackend};
pub use batch::{panic_message, BatchOptions, DocError};
pub use config::AeetesConfig;
pub use durable::{atomic_replace, fsync_dir};
pub use edit_extract::{EditIndex, EditMatch};
pub use extractor::Aeetes;
pub use frozen::{
    freeze_to_bytes, open_frozen, open_frozen_bytes, peek_info, ArtifactInfo, FreezeSegment, FreezeSource, FrozenParts, FrozenSegmentParts,
    SectionInfo,
};
pub use limits::{CancelToken, ExtractLimits, ExtractOutcome};
pub use matches::Match;
pub use nms::suppress_overlaps;
pub use persist::{load_engine, load_sharded, peek_generation, save_engine, save_sharded, PersistError, ShardedParts};
pub use report::{mention_report, MentionReport};
pub use scratch::{ExtractScratch, ScratchOutcome, SegmentScratch};
pub use stage::{Stage, StageSlots, SAMPLE_MASK};
pub use stats::{ExtractStats, LatencyRing};
pub use strategy::{generate_candidates, Strategy};
pub use topk::{extract_top_k, extract_top_k_with, select_top_k};
pub use typo::{extract_fuzzy, FuzzyConfig};
pub use wal::{Wal, WalError, WalRecord, WalReplay};
pub use window::{DenseRemap, WindowState};
