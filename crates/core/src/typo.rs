//! Typo-tolerant extraction (paper §8 future-work item (ii)).
//!
//! Replaces exact token equality in verification with fuzzy token matching
//! (normalized edit similarity ≥ `delta`), so documents containing typos
//! like "Aukland" still match "Auckland"-derived entities. Candidate
//! generation falls back to the window/length filters only — the prefix
//! filter is unsound under fuzzy token equality — so this mode trades speed
//! for recall and is intended for small dictionaries or post-processing.

use crate::extractor::Aeetes;
use crate::matches::Match;
use aeetes_index::window_bounds;
use aeetes_rules::DerivedId;
use aeetes_sim::fuzzy_jaccard;
use aeetes_text::{Document, EntityId, Interner, Span};

/// Configuration for [`extract_fuzzy`].
#[derive(Debug, Clone, Copy)]
pub struct FuzzyConfig {
    /// Token-level edit-similarity threshold (Fast-Join convention: 0.8).
    pub delta: f64,
    /// Pair-level fuzzy-JaccAR threshold.
    pub tau: f64,
}

impl Default for FuzzyConfig {
    fn default() -> Self {
        Self { delta: 0.8, tau: 0.8 }
    }
}

/// Extracts pairs whose *fuzzy* JaccAR reaches `config.tau`:
/// `max over variants of FuzzyJaccard(variant tokens, substring tokens)`.
///
/// Requires the [`Interner`] that produced both the dictionary and the
/// document, because fuzzy matching needs the token strings back.
pub fn extract_fuzzy(engine: &Aeetes, doc: &Document, interner: &Interner, config: FuzzyConfig) -> Vec<Match> {
    assert!(config.tau > 0.0 && config.tau <= 1.0, "tau must be in (0, 1]");
    assert!(config.delta > 0.0 && config.delta <= 1.0, "delta must be in (0, 1]");
    let index = engine.index();
    let dd = engine.derived();
    let Some(bounds) = window_bounds(index.min_set_len(), index.max_set_len(), config.tau) else {
        return Vec::new();
    };
    let n = doc.len();
    let doc_strs: Vec<&str> = doc.tokens().iter().map(|&t| interner.resolve(t)).collect();

    // Pre-resolve variant token strings once.
    let variant_strs: Vec<Vec<&str>> = dd.iter().map(|(_, d)| d.tokens.iter().map(|&t| interner.resolve(t)).collect()).collect();

    let mut out = Vec::new();
    for p in 0..n {
        let lmax = bounds.max.min(n - p);
        if bounds.min > lmax {
            break;
        }
        for l in bounds.min..=lmax {
            let span = Span::new(p, l);
            let s = &doc_strs[p..p + l];
            let mut best: Option<(f64, EntityId, DerivedId)> = None;
            for e in 0..dd.origins() {
                let e = EntityId(e as u32);
                for id in dd.variant_range(e) {
                    let vs = &variant_strs[id as usize];
                    // Length filter on token counts (sound for fuzzy Jaccard:
                    // overlap ≤ min(|a|, |b|)).
                    if (vs.len() as f64) < config.tau * l as f64 || vs.len() as f64 > l as f64 / config.tau {
                        continue;
                    }
                    let score = fuzzy_jaccard(vs, s, config.delta);
                    if score >= config.tau && best.is_none_or(|(b, _, _)| score > b) {
                        best = Some((score, e, DerivedId(id)));
                    }
                }
            }
            if let Some((score, entity, variant)) = best {
                out.push(Match { entity, span, score, best_variant: variant });
            }
        }
    }
    out.sort_unstable_by_key(Match::sort_key);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::AeetesConfig;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Dictionary, Tokenizer};

    fn setup() -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("University of Auckland New Zealand", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("NZ", "New Zealand", &tok, &mut int).unwrap();
        let engine = Aeetes::build(dict, &rules, &int, AeetesConfig::default());
        (engine, int, tok)
    }

    #[test]
    fn tolerates_single_typo() {
        let (engine, mut int, tok) = setup();
        // "Aukland" — the paper's Figure 8 DBWorld example typo.
        let doc = Document::parse("the university of aukland nz campus", &tok, &mut int);
        let exact = engine.extract(&doc, 0.8);
        assert!(exact.is_empty(), "exact JaccAR misses the typo");
        let fuzzy = extract_fuzzy(&engine, &doc, &int, FuzzyConfig { delta: 0.8, tau: 0.8 });
        assert!(!fuzzy.is_empty(), "fuzzy extraction recovers the typo'd mention");
        assert!(fuzzy.iter().any(|m| m.span == Span::new(1, 4)));
    }

    #[test]
    fn exact_matches_score_one() {
        let (engine, mut int, tok) = setup();
        let doc = Document::parse("university of auckland new zealand", &tok, &mut int);
        let fuzzy = extract_fuzzy(&engine, &doc, &int, FuzzyConfig::default());
        assert!(fuzzy.iter().any(|m| m.score == 1.0));
    }

    #[test]
    fn respects_tau() {
        let (engine, mut int, tok) = setup();
        let doc = Document::parse("university college", &tok, &mut int);
        let fuzzy = extract_fuzzy(&engine, &doc, &int, FuzzyConfig { delta: 0.8, tau: 0.9 });
        assert!(fuzzy.is_empty());
    }
}
