//! The end-to-end Aeetes engine (paper Algorithm 1, Figure 2).

use crate::backend::{extract_segment, extract_segment_scratched};
use crate::config::AeetesConfig;
use crate::limits::{CancelToken, ExtractLimits, ExtractOutcome};
use crate::matches::Match;
use crate::scratch::{ExtractScratch, ScratchOutcome};
use crate::stats::ExtractStats;
use crate::strategy::Strategy;
use aeetes_index::ClusteredIndex;
use aeetes_rules::{DerivedDictionary, RuleSet};
use aeetes_sim::Metric;
use aeetes_text::{Dictionary, Document, Interner};

/// The Aeetes extraction engine.
///
/// Owns the off-line artifacts: the origin dictionary, the derived
/// dictionary (entities expanded under synonym rules) and the clustered
/// inverted index. Extraction is read-only and can be shared across threads
/// (`&self` methods; the engine is `Send + Sync`).
#[derive(Debug)]
pub struct Aeetes {
    dict: Dictionary,
    dd: DerivedDictionary,
    index: ClusteredIndex,
    config: AeetesConfig,
}

impl Aeetes {
    /// Off-line preprocessing: expands `dict` under `rules` and builds the
    /// clustered inverted index (Algorithm 1 lines 3–4 / Algorithm 2). The
    /// interner must be the one `dict` and `rules` were tokenized with; it
    /// supplies the strings for the global order's frequency tie-break.
    pub fn build(dict: Dictionary, rules: &RuleSet, interner: &Interner, config: AeetesConfig) -> Self {
        let dd = DerivedDictionary::build(&dict, rules, &config.derive);
        let index = ClusteredIndex::build(&dd, interner);
        Self { dict, dd, index, config }
    }

    /// Assembles an engine from previously built parts (used when loading a
    /// persisted engine); the clustered index is rebuilt from the derived
    /// dictionary.
    pub fn from_parts(dict: Dictionary, dd: DerivedDictionary, interner: &Interner, config: AeetesConfig) -> Self {
        let index = ClusteredIndex::build(&dd, interner);
        Self { dict, dd, index, config }
    }

    /// The origin dictionary.
    pub fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    /// The derived dictionary.
    pub fn derived(&self) -> &DerivedDictionary {
        &self.dd
    }

    /// The clustered inverted index.
    pub fn index(&self) -> &ClusteredIndex {
        &self.index
    }

    /// The engine configuration.
    pub fn config(&self) -> &AeetesConfig {
        &self.config
    }

    /// Extracts all `(entity, substring)` pairs with `JaccAR ≥ tau` using
    /// the configured strategy (and the configured limits; the default
    /// [`ExtractLimits::UNLIMITED`] never truncates). Results are sorted by
    /// `(span, entity)`.
    ///
    /// # Panics
    /// Panics when `tau` is not in `(0, 1]`.
    pub fn extract(&self, doc: &Document, tau: f64) -> Vec<Match> {
        self.extract_with(doc, tau, self.config.strategy).0
    }

    /// Extracts with an explicit strategy, returning the statistics used by
    /// the paper's ablation figures.
    pub fn extract_with(&self, doc: &Document, tau: f64, strategy: Strategy) -> (Vec<Match>, ExtractStats) {
        let out = self.run(doc, tau, strategy, self.config.metric, false, &self.config.limits, None);
        (out.matches, out.stats)
    }

    /// Extracts under an explicit token-set metric (paper §2.2 extension):
    /// `max over variants of metric(variant, substring) ≥ tau`. With
    /// [`Metric::Jaccard`] this is exactly [`Aeetes::extract`].
    pub fn extract_with_metric(&self, doc: &Document, tau: f64, metric: Metric) -> (Vec<Match>, ExtractStats) {
        let out = self.run(doc, tau, self.config.strategy, metric, false, &self.config.limits, None);
        (out.matches, out.stats)
    }

    /// Weighted-rule extraction (paper §8 extension): a variant produced by
    /// rules with weight product `w` contributes `w · Jaccard` instead of
    /// `Jaccard`. With all-1.0 weights this equals [`Aeetes::extract`].
    pub fn extract_weighted(&self, doc: &Document, tau: f64) -> (Vec<Match>, ExtractStats) {
        let out = self.run(doc, tau, self.config.strategy, self.config.metric, true, &self.config.limits, None);
        (out.matches, out.stats)
    }

    /// Extracts under explicit resource limits (overriding the configured
    /// ones), reporting whether any budget cut the run short. Every match
    /// in a truncated outcome is still exact and verified; truncation only
    /// means the result may be incomplete.
    ///
    /// # Panics
    /// Panics when `tau` is not in `(0, 1]`.
    pub fn extract_with_limits(&self, doc: &Document, tau: f64, limits: &ExtractLimits) -> ExtractOutcome {
        self.run(doc, tau, self.config.strategy, self.config.metric, false, limits, None)
    }

    /// [`Aeetes::extract_with_limits`] under an explicit token-set metric.
    pub fn extract_with_limits_metric(&self, doc: &Document, tau: f64, metric: Metric, limits: &ExtractLimits) -> ExtractOutcome {
        self.run(doc, tau, self.config.strategy, metric, false, limits, None)
    }

    /// [`Aeetes::extract_with_limits`] that additionally stops — at the
    /// same window-advance / verification boundaries the deadline uses —
    /// when `cancel` fires, reporting `truncated = true`. This is what lets
    /// a draining server or a watchdog stop a long extraction
    /// *mid-document* rather than waiting it out.
    pub fn extract_with_limits_cancellable(&self, doc: &Document, tau: f64, limits: &ExtractLimits, cancel: &CancelToken) -> ExtractOutcome {
        self.run(doc, tau, self.config.strategy, self.config.metric, false, limits, Some(cancel))
    }

    /// [`Aeetes::extract_with_limits`] running entirely inside the
    /// caller-owned `scratch`. The matches are returned as a slice borrowing
    /// the scratch; they stay valid until the scratch is used again. A
    /// caller that keeps one scratch per worker and feeds it document after
    /// document gets a steady-state hot path with zero heap allocations
    /// (every buffer retains its high-water capacity between calls).
    ///
    /// # Panics
    /// Panics when `tau` is not in `(0, 1]`.
    pub fn extract_scratched<'s>(
        &self,
        doc: &Document,
        tau: f64,
        limits: &ExtractLimits,
        cancel: Option<&CancelToken>,
        scratch: &'s mut ExtractScratch,
    ) -> ScratchOutcome<'s> {
        self.extract_scratched_metric(doc, tau, self.config.metric, limits, cancel, scratch)
    }

    /// [`Aeetes::extract_scratched`] under an explicit token-set metric.
    pub fn extract_scratched_metric<'s>(
        &self,
        doc: &Document,
        tau: f64,
        metric: Metric,
        limits: &ExtractLimits,
        cancel: Option<&CancelToken>,
        scratch: &'s mut ExtractScratch,
    ) -> ScratchOutcome<'s> {
        let seg = scratch.segment(0);
        let (truncated, stats) =
            extract_segment_scratched(&self.index, &self.dd, doc, tau, self.config.strategy, metric, false, None, limits, cancel, seg);
        ScratchOutcome { matches: seg.matches(), truncated, stats, stages: seg.stages }
    }

    #[allow(clippy::too_many_arguments)]
    fn run(
        &self,
        doc: &Document,
        tau: f64,
        strategy: Strategy,
        metric: Metric,
        weighted: bool,
        limits: &ExtractLimits,
        cancel: Option<&CancelToken>,
    ) -> ExtractOutcome {
        extract_segment(&self.index, &self.dd, doc, tau, strategy, metric, weighted, None, limits, cancel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_text::{Interner, Span, Tokenizer};

    struct Fix {
        int: Interner,
        tok: Tokenizer,
        engine: Aeetes,
    }

    /// The paper's Figure 1 scenario: institutions dictionary + rules.
    fn figure1() -> Fix {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("University of Wisconsin Madison", &tok, &mut int); // e1
        dict.push("Purdue University USA", &tok, &mut int); // e2
        dict.push("UQ AU", &tok, &mut int); // e3
        let mut rules = RuleSet::new();
        rules.push_str("UQ", "University of Queensland", &tok, &mut int).unwrap(); // r1
        rules.push_str("USA", "United States", &tok, &mut int).unwrap(); // r2
        rules.push_str("AU", "Australia", &tok, &mut int).unwrap(); // r3
        rules.push_str("UW", "University of Wisconsin", &tok, &mut int).unwrap(); // r4
        let engine = Aeetes::build(dict, &rules, &int, AeetesConfig::default());
        Fix { int, tok, engine }
    }

    #[test]
    fn figure1_extracts_all_four_mentions() {
        let mut f = figure1();
        // s1..s4 in one document, in paper order.
        let doc = Document::parse(
            "talks by UW Madison faculty then Purdue University United States \
             then Purdue University USA and finally University of Queensland Australia",
            &f.tok,
            &mut f.int,
        );
        let matches = f.engine.extract(&doc, 0.9);
        let spans: Vec<Span> = matches.iter().map(|m| m.span).collect();
        assert!(spans.contains(&Span::new(2, 2)), "s1: UW Madison via r4 — {spans:?}");
        assert!(spans.contains(&Span::new(6, 4)), "s2: Purdue University United States via r2");
        assert!(spans.contains(&Span::new(11, 3)), "s3: exact Purdue University USA");
        assert!(spans.contains(&Span::new(16, 4)), "s4: University of Queensland Australia via r1+r3");
        for m in &matches {
            assert!(m.score >= 0.9);
        }
    }

    #[test]
    fn all_strategies_agree_end_to_end() {
        let mut f = figure1();
        let doc = Document::parse(
            "the university of wisconsin madison sits near purdue university usa \
             while uq au is far away in australia with the university of queensland",
            &f.tok,
            &mut f.int,
        );
        for tau in [0.7, 0.75, 0.8, 0.85, 0.9, 1.0] {
            let baseline = f.engine.extract_with(&doc, tau, Strategy::Simple).0;
            for strategy in [Strategy::Skip, Strategy::Dynamic, Strategy::Lazy] {
                let got = f.engine.extract_with(&doc, tau, strategy).0;
                assert_eq!(baseline, got, "strategy {strategy} at tau={tau}");
            }
        }
    }

    #[test]
    fn exact_threshold_one_only_exact_or_synonym_equal() {
        let mut f = figure1();
        let doc = Document::parse("purdue university usa and purdue university", &f.tok, &mut f.int);
        let matches = f.engine.extract(&doc, 1.0);
        assert_eq!(matches.len(), 1);
        assert_eq!(matches[0].span, Span::new(0, 3));
        assert_eq!(matches[0].score, 1.0);
    }

    #[test]
    fn lower_threshold_is_monotone() {
        let mut f = figure1();
        let doc = Document::parse("purdue university usa near the university of queensland australia", &f.tok, &mut f.int);
        let hi = f.engine.extract(&doc, 0.9);
        let lo = f.engine.extract(&doc, 0.7);
        for m in &hi {
            assert!(lo.iter().any(|x| x.entity == m.entity && x.span == m.span), "match {m:?} lost at lower threshold");
        }
        assert!(lo.len() >= hi.len());
    }

    #[test]
    #[should_panic(expected = "similarity threshold")]
    fn zero_threshold_panics() {
        let mut f = figure1();
        let doc = Document::parse("anything", &f.tok, &mut f.int);
        let _ = f.engine.extract(&doc, 0.0);
    }

    #[test]
    fn stats_populated() {
        let mut f = figure1();
        let doc = Document::parse("purdue university usa visits uw madison", &f.tok, &mut f.int);
        let (matches, stats) = f.engine.extract_with(&doc, 0.8, Strategy::Lazy);
        assert!(!matches.is_empty());
        assert!(stats.substrings > 0);
        assert!(stats.accessed_entries > 0);
        assert_eq!(stats.matches as usize, matches.len());
        assert!(stats.candidates >= stats.matches);
    }

    #[test]
    fn scores_are_exact_jaccar() {
        let mut f = figure1();
        // "purdue university" vs entity "purdue university usa": J = 2/3.
        let doc = Document::parse("purdue university", &f.tok, &mut f.int);
        let matches = f.engine.extract(&doc, 0.6);
        let m = matches
            .iter()
            .find(|m| m.span == Span::new(0, 2) && (m.score - 2.0 / 3.0).abs() < 1e-12)
            .expect("partial match with score 2/3");
        assert_eq!(f.engine.dictionary().record(m.entity).raw, "Purdue University USA");
    }

    #[test]
    fn empty_document_no_matches() {
        let mut f = figure1();
        let doc = Document::parse("", &f.tok, &mut f.int);
        assert!(f.engine.extract(&doc, 0.8).is_empty());
    }

    #[test]
    fn engine_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Aeetes>();
    }

    #[test]
    fn unlimited_limits_match_plain_extract() {
        let mut f = figure1();
        let doc = Document::parse(
            "talks by UW Madison faculty then Purdue University United States \
             then Purdue University USA and finally University of Queensland Australia",
            &f.tok,
            &mut f.int,
        );
        let plain = f.engine.extract(&doc, 0.8);
        let out = f.engine.extract_with_limits(&doc, 0.8, &ExtractLimits::UNLIMITED);
        assert!(!out.truncated);
        assert_eq!(out.matches, plain);
        assert_eq!(out.stats.matches as usize, plain.len());
    }

    #[test]
    fn zero_candidate_budget_returns_immediately_truncated() {
        let mut f = figure1();
        let limits = ExtractLimits { max_candidates: Some(0), ..ExtractLimits::UNLIMITED };
        for text in ["purdue university usa and uq au", ""] {
            let doc = Document::parse(text, &f.tok, &mut f.int);
            let out = f.engine.extract_with_limits(&doc, 0.8, &limits);
            assert!(out.truncated, "zero budget must report truncation on {text:?}");
            assert!(out.matches.is_empty());
        }
    }

    #[test]
    fn match_cap_truncates_to_prefix_of_full_result() {
        let mut f = figure1();
        let doc = Document::parse("purdue university usa then purdue university usa then uq au then purdue university usa", &f.tok, &mut f.int);
        let full = f.engine.extract(&doc, 0.8);
        assert!(full.len() >= 3, "fixture should produce several matches, got {}", full.len());
        let limits = ExtractLimits { max_matches: Some(1), ..ExtractLimits::UNLIMITED };
        let out = f.engine.extract_with_limits(&doc, 0.8, &limits);
        assert!(out.truncated);
        assert_eq!(out.matches.len(), 1);
        // The surviving match is exact: it appears verbatim in the full run.
        assert!(full.contains(&out.matches[0]));
    }

    #[test]
    fn expired_deadline_still_returns_well_formed_outcome() {
        let mut f = figure1();
        let doc = Document::parse("purdue university usa and uq au", &f.tok, &mut f.int);
        let limits = ExtractLimits { deadline: Some(std::time::Duration::ZERO), ..ExtractLimits::UNLIMITED };
        let out = f.engine.extract_with_limits(&doc, 0.8, &limits);
        assert!(out.truncated);
        assert!(out.matches.is_empty());
    }

    #[test]
    fn zero_match_cap_returns_empty_truncated() {
        let mut f = figure1();
        let doc = Document::parse("purdue university usa and uq au", &f.tok, &mut f.int);
        let limits = ExtractLimits { max_matches: Some(0), ..ExtractLimits::UNLIMITED };
        let out = f.engine.extract_with_limits(&doc, 0.8, &limits);
        assert!(out.truncated, "a zero match cap on a matching document must report truncation");
        assert!(out.matches.is_empty());
    }

    #[test]
    fn degenerate_limits_never_panic_across_strategies() {
        // Every all-zero / zero-ish budget combination, on every strategy,
        // must come back empty + truncated — never panic, never hang.
        let degenerate = [
            ExtractLimits { max_matches: Some(0), ..ExtractLimits::UNLIMITED },
            ExtractLimits { max_candidates: Some(0), ..ExtractLimits::UNLIMITED },
            ExtractLimits { deadline: Some(std::time::Duration::ZERO), ..ExtractLimits::UNLIMITED },
            ExtractLimits {
                deadline: Some(std::time::Duration::ZERO),
                max_matches: Some(0),
                max_candidates: Some(0),
                ..ExtractLimits::UNLIMITED
            },
        ];
        for strategy in [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy] {
            let config = AeetesConfig { strategy, ..AeetesConfig::default() };
            let mut int = Interner::new();
            let tok = Tokenizer::default();
            let mut dict = Dictionary::new();
            dict.push("purdue university usa", &tok, &mut int);
            dict.push("uq au", &tok, &mut int);
            let engine = Aeetes::build(dict, &RuleSet::new(), &int, config);
            for text in ["purdue university usa and uq au", ""] {
                let doc = Document::parse(text, &tok, &mut int);
                for limits in &degenerate {
                    let out = engine.extract_with_limits(&doc, 0.8, limits);
                    assert!(out.matches.is_empty(), "strategy {strategy} with {limits:?} on {text:?} produced matches");
                    // Truncation must be flagged whenever results were
                    // actually withheld; an empty document legitimately
                    // completes with nothing to truncate.
                    if !text.is_empty() {
                        assert!(out.truncated, "strategy {strategy} with {limits:?} on {text:?} must flag truncation");
                    }
                }
            }
        }
    }

    #[test]
    fn generous_limits_do_not_truncate() {
        let mut f = figure1();
        let doc = Document::parse("purdue university usa and uq au", &f.tok, &mut f.int);
        let limits = ExtractLimits {
            deadline: Some(std::time::Duration::from_secs(3600)),
            max_candidates: Some(1_000_000),
            max_matches: Some(1_000_000),
            ..ExtractLimits::UNLIMITED
        };
        let out = f.engine.extract_with_limits(&doc, 0.8, &limits);
        assert!(!out.truncated);
        assert_eq!(out.matches, f.engine.extract(&doc, 0.8));
    }

    #[test]
    fn configured_limits_apply_to_plain_extract() {
        let mut f = figure1();
        let doc = Document::parse("purdue university usa and uq au", &f.tok, &mut f.int);
        assert!(!f.engine.extract(&doc, 0.8).is_empty());
        // Rebuild the engine with a zero candidate budget in its config:
        // the classic API silently degrades (no truncation flag there).
        let config = AeetesConfig {
            limits: ExtractLimits { max_candidates: Some(0), ..ExtractLimits::UNLIMITED },
            ..AeetesConfig::default()
        };
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        let engine = Aeetes::build(dict, &RuleSet::new(), &int, config);
        let doc2 = Document::parse("purdue university usa", &tok, &mut int);
        assert!(engine.extract(&doc2, 0.8).is_empty());
    }

    #[test]
    fn scratched_extraction_equals_owned_across_documents() {
        let mut f = figure1();
        let texts = [
            "talks by UW Madison faculty then Purdue University United States \
             then Purdue University USA and finally University of Queensland Australia",
            "uq au",
            "",
            "purdue university usa and uq au and purdue university usa",
        ];
        let mut scratch = ExtractScratch::new();
        for text in texts {
            let doc = Document::parse(text, &f.tok, &mut f.int);
            let owned = f.engine.extract_with_limits(&doc, 0.8, &ExtractLimits::UNLIMITED);
            let scratched = f.engine.extract_scratched(&doc, 0.8, &ExtractLimits::UNLIMITED, None, &mut scratch);
            assert_eq!(scratched.matches, owned.matches.as_slice(), "on {text:?}");
            assert_eq!(scratched.truncated, owned.truncated);
            assert_eq!(scratched.stats, owned.stats);
            assert_eq!(scratched.to_outcome().matches, owned.matches);
        }
    }

    #[test]
    fn budget_truncation_consistent_across_strategies() {
        let limits = ExtractLimits { max_candidates: Some(2), ..ExtractLimits::UNLIMITED };
        for strategy in [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy] {
            let config = AeetesConfig { strategy, ..AeetesConfig::default() };
            let mut int = Interner::new();
            let tok = Tokenizer::default();
            let mut dict = Dictionary::new();
            dict.push("purdue university usa", &tok, &mut int);
            dict.push("uq au", &tok, &mut int);
            let engine = Aeetes::build(dict, &RuleSet::new(), &int, config);
            let d = Document::parse("purdue university usa then uq au then purdue university usa", &tok, &mut int);
            let out = engine.extract_with_limits(&d, 0.8, &limits);
            assert!(out.truncated, "strategy {strategy} must hit the 2-candidate cap");
            // Partial results stay exact: every match also occurs unbudgeted.
            let full = engine.extract(&d, 0.8);
            for m in &out.matches {
                assert!(full.contains(m), "strategy {strategy} invented {m:?}");
            }
        }
    }
}
