//! The extraction backend abstraction.
//!
//! [`extract_segment`] is the single code path that runs the paper's
//! generate → verify pipeline over one clustered index + derived dictionary
//! pair. The monolithic [`Aeetes`] engine runs it over its only segment; the
//! sharded engine (crate `aeetes-shard`) runs it once per shard and merges.
//! [`ExtractBackend`] is the object-safe surface callers (batch extraction,
//! the CLI, the server) program against so either engine can sit behind
//! them.

use crate::config::AeetesConfig;
use crate::extractor::Aeetes;
use crate::limits::{Budget, CancelToken, ExtractLimits, ExtractOutcome};
use crate::matches::Match;
use crate::scratch::{ExtractScratch, ScratchOutcome, SegmentScratch};
use crate::stage::{SpanClock, Stage};
use crate::stats::ExtractStats;
use crate::strategy::{generate, Strategy};
use crate::verify::verify_candidates;
use aeetes_index::ClusteredIndex;
use aeetes_rules::DerivedDictionary;
use aeetes_sim::Metric;
use aeetes_text::{Dictionary, Document};

/// Runs one generate → verify pass over a single index segment, sorting the
/// matches into the stable `(span, entity)` order. The budget derived from
/// `limits`/`cancel` is checked at the same window-advance and verification
/// boundaries as in the monolithic engine, so deadlines and cancellation
/// land mid-document within a segment too.
///
/// `set_len_bounds` overrides the `(min, max)` distinct-set length range
/// that bounds window enumeration. A monolithic engine passes `None` (use
/// the index's own range); a sharded engine passes the dictionary-global
/// range, because a shard's local range is tighter and would skip window
/// lengths that other variants of the same dictionary admit — breaking
/// bit-identity with the single-engine result.
///
/// # Panics
/// Panics when `tau` is not in `(0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn extract_segment(
    index: &ClusteredIndex,
    dd: &DerivedDictionary,
    doc: &Document,
    tau: f64,
    strategy: Strategy,
    metric: Metric,
    weighted: bool,
    set_len_bounds: Option<(usize, usize)>,
    limits: &ExtractLimits,
    cancel: Option<&CancelToken>,
) -> ExtractOutcome {
    let mut seg = SegmentScratch::default();
    let (truncated, stats) = extract_segment_scratched(index, dd, doc, tau, strategy, metric, weighted, set_len_bounds, limits, cancel, &mut seg);
    ExtractOutcome { matches: std::mem::take(&mut seg.matches), truncated, stats, stages: seg.stages }
}

/// [`extract_segment`] running entirely inside `seg`'s reusable buffers:
/// the sorted matches land in [`SegmentScratch::matches`] and, once the
/// scratch has reached its high-water capacity, the pass performs no heap
/// allocation. This is the per-shard unit of the sharded fan-out and the
/// engine behind every `*_scratched` extraction API.
///
/// # Panics
/// Panics when `tau` is not in `(0, 1]`.
#[allow(clippy::too_many_arguments)]
pub fn extract_segment_scratched(
    index: &ClusteredIndex,
    dd: &DerivedDictionary,
    doc: &Document,
    tau: f64,
    strategy: Strategy,
    metric: Metric,
    weighted: bool,
    set_len_bounds: Option<(usize, usize)>,
    limits: &ExtractLimits,
    cancel: Option<&CancelToken>,
    seg: &mut SegmentScratch,
) -> (bool, ExtractStats) {
    assert!(tau > 0.0 && tau <= 1.0, "similarity threshold must be in (0, 1], got {tau}");
    let set_bounds = match set_len_bounds {
        Some((lo, hi)) => (Some(lo), Some(hi)),
        None => (index.min_set_len(), index.max_set_len()),
    };
    let mut stats = ExtractStats::default();
    let mut budget = match cancel {
        Some(token) => Budget::start_cancellable(limits, token),
        None => Budget::start(limits),
    };
    generate(index, doc, tau, metric, strategy, set_bounds, seg, &mut stats, &mut budget);
    // Weighted scores are ≤ unweighted scores (weights ≤ 1), so the
    // unweighted candidate filters remain sound for the weighted verify.
    let SegmentScratch { sink, s_keys, matches, stages, .. } = seg;
    let clk = SpanClock::always();
    verify_candidates(index, dd, doc, tau, metric, &mut sink.pairs, &mut stats, weighted, &mut budget, s_keys, matches);
    matches.sort_unstable_by_key(Match::sort_key);
    clk.stop(Stage::Verify, stages);
    // Mirror the outcome into the scratch so fan-out executors can read
    // per-segment results back without a result channel.
    seg.truncated = budget.truncated();
    seg.stats = stats;
    (budget.truncated(), stats)
}

/// An extraction engine: something that can answer similarity queries over
/// a fixed dictionary. Implemented by the monolithic [`Aeetes`] engine and
/// by the sharded engine's generations.
pub trait ExtractBackend: Send + Sync {
    /// The origin dictionary matches refer into.
    fn dictionary(&self) -> &Dictionary;

    /// The engine configuration.
    fn config(&self) -> &AeetesConfig;

    /// The `(min, max)` distinct token-set length range of the indexed
    /// dictionary, or `None` when it is empty. This is the range that
    /// bounds window enumeration; streaming extraction derives its tail
    /// retention from it. A sharded engine reports the dictionary-global
    /// range (not a shard-local one) for the same reason
    /// [`extract_segment`] takes the global override.
    fn set_len_range(&self) -> Option<(usize, usize)>;

    /// Extracts under explicit limits and an optional cancellation token,
    /// with the backend's configured strategy/metric. Matches are sorted by
    /// `(span, entity)`; `truncated` reports whether any budget (or the
    /// token) cut the run short.
    ///
    /// # Panics
    /// Panics when `tau` is not in `(0, 1]`.
    fn extract_limited(&self, doc: &Document, tau: f64, limits: &ExtractLimits, cancel: Option<&CancelToken>) -> ExtractOutcome;

    /// Convenience: unlimited extraction, matches only.
    fn extract_all(&self, doc: &Document, tau: f64) -> Vec<Match> {
        self.extract_limited(doc, tau, &ExtractLimits::UNLIMITED, None).matches
    }

    /// Like [`ExtractBackend::extract_limited`], but runs inside the
    /// caller-owned `scratch`, returning matches as a borrowed slice. A
    /// caller that keeps one scratch per worker and reuses it across
    /// documents gets a steady-state extraction pass with zero heap
    /// allocations. The default implementation merely copies the owned
    /// result into the scratch; real engines override it to run in place.
    fn extract_scratched<'s>(
        &self,
        doc: &Document,
        tau: f64,
        limits: &ExtractLimits,
        cancel: Option<&CancelToken>,
        scratch: &'s mut ExtractScratch,
    ) -> ScratchOutcome<'s> {
        let out = self.extract_limited(doc, tau, limits, cancel);
        scratch.merged.clear();
        scratch.merged.extend_from_slice(&out.matches);
        ScratchOutcome {
            matches: &scratch.merged,
            truncated: out.truncated,
            stats: out.stats,
            stages: out.stages,
        }
    }
}

impl ExtractBackend for Aeetes {
    fn dictionary(&self) -> &Dictionary {
        Aeetes::dictionary(self)
    }

    fn config(&self) -> &AeetesConfig {
        Aeetes::config(self)
    }

    fn set_len_range(&self) -> Option<(usize, usize)> {
        self.index().min_set_len().zip(self.index().max_set_len())
    }

    fn extract_limited(&self, doc: &Document, tau: f64, limits: &ExtractLimits, cancel: Option<&CancelToken>) -> ExtractOutcome {
        match cancel {
            Some(token) => self.extract_with_limits_cancellable(doc, tau, limits, token),
            None => self.extract_with_limits(doc, tau, limits),
        }
    }

    fn extract_scratched<'s>(
        &self,
        doc: &Document,
        tau: f64,
        limits: &ExtractLimits,
        cancel: Option<&CancelToken>,
        scratch: &'s mut ExtractScratch,
    ) -> ScratchOutcome<'s> {
        Aeetes::extract_scratched(self, doc, tau, limits, cancel, scratch)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::RuleSet;
    use aeetes_text::{Interner, Tokenizer};

    fn engine() -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        dict.push("uq au", &tok, &mut int);
        let engine = Aeetes::build(dict, &RuleSet::new(), &int, AeetesConfig::default());
        (engine, int, tok)
    }

    #[test]
    fn segment_run_equals_engine_run() {
        let (engine, mut int, tok) = engine();
        let doc = Document::parse("purdue university usa then uq au", &tok, &mut int);
        let via_engine = engine.extract(&doc, 0.8);
        let via_segment = extract_segment(
            engine.index(),
            engine.derived(),
            &doc,
            0.8,
            engine.config().strategy,
            engine.config().metric,
            false,
            None,
            &ExtractLimits::UNLIMITED,
            None,
        );
        assert_eq!(via_engine, via_segment.matches);
        assert!(!via_segment.truncated);
    }

    #[test]
    fn trait_object_dispatch_works() {
        let (engine, mut int, tok) = engine();
        let doc = Document::parse("uq au", &tok, &mut int);
        let backend: &dyn ExtractBackend = &engine;
        let got = backend.extract_all(&doc, 0.9);
        assert_eq!(got, engine.extract(&doc, 0.9));
        assert_eq!(backend.dictionary().len(), 2);
        let out = backend.extract_limited(&doc, 0.9, &ExtractLimits::UNLIMITED, None);
        assert_eq!(out.matches, got);
    }

    #[test]
    fn cancelled_token_truncates_via_trait() {
        let (engine, mut int, tok) = engine();
        let doc = Document::parse("purdue university usa", &tok, &mut int);
        let cancel = CancelToken::new();
        cancel.cancel();
        let out = engine.extract_limited(&doc, 0.8, &ExtractLimits::UNLIMITED, Some(&cancel));
        assert!(out.truncated);
        assert!(out.matches.is_empty());
    }
}
