//! Incremental window state over a per-document dense token remap
//! (paper §4.1).
//!
//! [`DenseRemap`] collects a document's distinct global-order keys once,
//! sorts them, and assigns each a dense rank in `0..universe`. Rank order
//! equals global order, so the τ-prefix of a substring is simply its first
//! `k` live ranks. [`WindowState`] then tracks the multiset of ranks under
//! a sliding substring with a flat count array indexed by rank plus an
//! incrementally maintained sorted vector of live ranks — the paper's
//! *Window Extend* (grow the substring by one token) and *Window Migrate*
//! (shift the substring right by one position) both reduce to one
//! [`WindowState::add`] and/or [`WindowState::remove`], each an O(window)
//! vector edit with no per-operation heap allocation.
//!
//! Both structures retain their buffers across documents: after a few
//! documents of warmup every rebuild runs inside previously acquired
//! capacity.

/// Per-document dense remap of global-order keys onto ranks `0..universe`.
#[derive(Debug, Clone, Default)]
pub struct DenseRemap {
    /// Sorted distinct keys of the document; the index of a key is its rank.
    ranks: Vec<u64>,
    /// Document position → rank of the token at that position.
    doc_ranks: Vec<u32>,
    /// Keys in position order (build-time staging, kept for capacity reuse).
    key_buf: Vec<u64>,
    /// Ranks below this carry invalid tokens (zero-frequency keys, which
    /// have no postings and sort before every valid key).
    first_valid: u32,
}

impl DenseRemap {
    /// Empty remap.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rebuilds the remap from the document's global-order key sequence (in
    /// position order). Previously acquired capacity is reused.
    pub fn build<I: IntoIterator<Item = u64>>(&mut self, keys: I) {
        self.key_buf.clear();
        self.key_buf.extend(keys);
        self.ranks.clear();
        self.ranks.extend_from_slice(&self.key_buf);
        self.ranks.sort_unstable();
        self.ranks.dedup();
        self.first_valid = self.ranks.partition_point(|&k| k >> 32 == 0) as u32;
        self.doc_ranks.clear();
        let ranks = &self.ranks;
        self.doc_ranks
            .extend(self.key_buf.iter().map(|k| ranks.binary_search(k).expect("key was collected above") as u32));
    }

    /// Number of distinct keys (the rank space size).
    pub fn universe(&self) -> usize {
        self.ranks.len()
    }

    /// Document tokens as ranks, in position order.
    pub fn doc_ranks(&self) -> &[u32] {
        &self.doc_ranks
    }

    /// The global-order key a rank stands for.
    pub fn key_of(&self, rank: u32) -> u64 {
        self.ranks[rank as usize]
    }

    /// Whether `rank` carries a valid (indexed) token.
    pub fn is_valid_rank(&self, rank: u32) -> bool {
        rank >= self.first_valid
    }
}

/// Multiset of dense ranks under one sliding substring, with the live ranks
/// kept sorted so the τ-prefix is a slice.
#[derive(Debug, Clone, Default)]
pub struct WindowState {
    /// rank → multiplicity under the window; length is the remap universe.
    counts: Vec<u32>,
    /// Ranks with multiplicity > 0, sorted ascending. Rank order equals
    /// global order, so `&live[..k]` *is* the τ-prefix.
    live: Vec<u32>,
    /// Total token count including duplicates.
    total: usize,
}

impl WindowState {
    /// Empty state (over an empty universe; call [`WindowState::reset`]
    /// before use).
    pub fn new() -> Self {
        Self::default()
    }

    /// Empties the window and sizes the count array for `universe` ranks.
    pub fn reset(&mut self, universe: usize) {
        self.counts.clear();
        self.counts.resize(universe, 0);
        self.live.clear();
        self.total = 0;
    }

    /// Builds a state over `universe` ranks from an iterator of ranks.
    pub fn from_ranks<I: IntoIterator<Item = u32>>(universe: usize, ranks: I) -> Self {
        let mut s = Self::new();
        s.reset(universe);
        for r in ranks {
            s.add(r);
        }
        s
    }

    /// Becomes a copy of `other`, reusing this state's buffers.
    pub fn copy_from(&mut self, other: &WindowState) {
        self.counts.clone_from(&other.counts);
        self.live.clone_from(&other.live);
        self.total = other.total;
    }

    /// Adds one occurrence of `rank` (Window Extend / the incoming edge of
    /// a Window Migrate).
    pub fn add(&mut self, rank: u32) {
        let c = &mut self.counts[rank as usize];
        if *c == 0 {
            let pos = self.live.partition_point(|&r| r < rank);
            self.live.insert(pos, rank);
        }
        *c += 1;
        self.total += 1;
    }

    /// Removes one occurrence of `rank` (the outgoing edge of a Window
    /// Migrate).
    ///
    /// # Panics
    /// Panics in debug builds when `rank` is not present.
    pub fn remove(&mut self, rank: u32) {
        let c = &mut self.counts[rank as usize];
        if *c == 0 {
            debug_assert!(false, "removing absent rank {rank}");
            return;
        }
        *c -= 1;
        self.total -= 1;
        if *c == 0 {
            let pos = self.live.partition_point(|&r| r < rank);
            self.live.remove(pos);
        }
    }

    /// Number of distinct tokens (`|s|` under set semantics).
    pub fn distinct_len(&self) -> usize {
        self.live.len()
    }

    /// Total token count including duplicates (tracked, not recomputed).
    pub fn total_len(&self) -> usize {
        self.total
    }

    /// The first `k` distinct ranks in global order (the τ-prefix when `k`
    /// = `prefix_len(distinct_len, τ)`); clamped to the live count.
    pub fn prefix(&self, k: usize) -> &[u32] {
        &self.live[..k.min(self.live.len())]
    }

    /// All live ranks in global order (for verification and tests).
    pub fn live_ranks(&self) -> &[u32] {
        &self.live
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut w = WindowState::new();
        w.reset(8);
        w.add(5);
        w.add(5);
        w.add(3);
        assert_eq!(w.distinct_len(), 2);
        assert_eq!(w.total_len(), 3);
        w.remove(5);
        assert_eq!(w.distinct_len(), 2, "one copy of 5 remains");
        assert_eq!(w.total_len(), 2);
        w.remove(5);
        assert_eq!(w.distinct_len(), 1);
        assert_eq!(w.prefix(5), &[3]);
    }

    #[test]
    fn prefix_is_smallest_ranks() {
        let w = WindowState::from_ranks(10, [9, 1, 7, 3]);
        assert_eq!(w.prefix(2), &[1, 3]);
        assert_eq!(w.prefix(10).len(), 4);
    }

    #[test]
    fn migrate_equals_rebuild() {
        // Sliding [a b c] -> [b c d] via remove/add matches a fresh build.
        let ranks = [1u32, 2, 3, 4, 2, 1];
        let l = 3;
        let mut w = WindowState::from_ranks(5, ranks[0..l].iter().copied());
        for p in 1..=ranks.len() - l {
            w.remove(ranks[p - 1]);
            w.add(ranks[p + l - 1]);
            let fresh = WindowState::from_ranks(5, ranks[p..p + l].iter().copied());
            assert_eq!(w.live_ranks(), fresh.live_ranks(), "window at p={p}");
            assert_eq!(w.total_len(), fresh.total_len(), "total at p={p}");
        }
    }

    #[test]
    fn copy_from_reuses_buffers() {
        let src = WindowState::from_ranks(6, [2, 4, 4]);
        let mut dst = WindowState::from_ranks(6, [0, 1, 2, 3]);
        dst.copy_from(&src);
        assert_eq!(dst.live_ranks(), src.live_ranks());
        assert_eq!(dst.total_len(), 3);
    }

    #[test]
    fn reset_clears_previous_contents() {
        let mut w = WindowState::from_ranks(4, [0, 1, 2]);
        w.reset(6);
        assert!(w.is_empty());
        assert_eq!(w.distinct_len(), 0);
        assert_eq!(w.total_len(), 0);
        w.add(5);
        assert_eq!(w.prefix(3), &[5]);
    }

    #[test]
    fn empty_state() {
        let w = WindowState::new();
        assert!(w.is_empty());
        assert_eq!(w.distinct_len(), 0);
        assert_eq!(w.total_len(), 0);
        assert_eq!(w.prefix(3).len(), 0);
    }

    #[test]
    fn remap_assigns_dense_sorted_ranks() {
        let mut r = DenseRemap::new();
        // Two invalid keys (< 1<<32) and three valid ones, with repeats.
        let k = |f: u64, s: u64| (f << 32) | s;
        r.build([k(2, 7), 5, k(1, 3), 9, k(2, 7), 5]);
        assert_eq!(r.universe(), 4);
        // Sorted order: 5, 9 (invalid), then k(1,3), k(2,7).
        assert_eq!(r.doc_ranks(), &[3, 0, 2, 1, 3, 0]);
        assert!(!r.is_valid_rank(0));
        assert!(!r.is_valid_rank(1));
        assert!(r.is_valid_rank(2));
        assert!(r.is_valid_rank(3));
        assert_eq!(r.key_of(2), k(1, 3));
        // Rebuild with different content reuses the buffers.
        r.build([k(4, 1), k(4, 1)]);
        assert_eq!(r.universe(), 1);
        assert_eq!(r.doc_ranks(), &[0, 0]);
        assert!(r.is_valid_rank(0));
    }

    #[test]
    fn remap_of_empty_document() {
        let mut r = DenseRemap::new();
        r.build([]);
        assert_eq!(r.universe(), 0);
        assert!(r.doc_ranks().is_empty());
    }
}
