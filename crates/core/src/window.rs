//! Incremental window state: the multiset of tokens under a sliding
//! substring, ordered by the global token order (paper §4.1).
//!
//! The paper's *Window Extend* (grow the substring by one token) and
//! *Window Migrate* (shift the substring right by one position) both reduce
//! to one [`WindowState::add`] and/or [`WindowState::remove`], after which
//! the τ-prefix is the first `⌊(1−τ)|s|⌋+1` distinct keys — maintained here
//! by an ordered map instead of re-sorting from scratch.

use std::collections::BTreeMap;

/// Ordered multiset of global-order keys for one substring.
#[derive(Debug, Clone, Default)]
pub struct WindowState {
    counts: BTreeMap<u64, u32>,
}

impl WindowState {
    /// Empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a state from an iterator of keys.
    pub fn from_keys<I: IntoIterator<Item = u64>>(keys: I) -> Self {
        let mut s = Self::new();
        for k in keys {
            s.add(k);
        }
        s
    }

    /// Adds one occurrence of `key` (Window Extend / the incoming edge of a
    /// Window Migrate).
    pub fn add(&mut self, key: u64) {
        *self.counts.entry(key).or_insert(0) += 1;
    }

    /// Removes one occurrence of `key` (the outgoing edge of a Window
    /// Migrate).
    ///
    /// # Panics
    /// Panics in debug builds when `key` is not present.
    pub fn remove(&mut self, key: u64) {
        match self.counts.get_mut(&key) {
            Some(c) if *c > 1 => *c -= 1,
            Some(_) => {
                self.counts.remove(&key);
            }
            None => debug_assert!(false, "removing absent key {key}"),
        }
    }

    /// Number of distinct tokens (`|s|` under set semantics).
    pub fn distinct_len(&self) -> usize {
        self.counts.len()
    }

    /// Total token count including duplicates.
    pub fn total_len(&self) -> usize {
        self.counts.values().map(|&c| c as usize).sum()
    }

    /// The first `k` distinct keys in global order (the τ-prefix when `k` =
    /// `prefix_len(distinct_len, τ)`).
    pub fn prefix(&self, k: usize) -> impl Iterator<Item = u64> + '_ {
        self.counts.keys().copied().take(k)
    }

    /// All distinct keys in global order (for verification).
    pub fn distinct_keys(&self) -> impl Iterator<Item = u64> + '_ {
        self.counts.keys().copied()
    }

    /// Collects the distinct keys into `buf` (cleared first).
    pub fn fill_distinct(&self, buf: &mut Vec<u64>) {
        buf.clear();
        buf.extend(self.counts.keys().copied());
    }

    /// Whether the window is empty.
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_remove_round_trip() {
        let mut w = WindowState::new();
        w.add(5);
        w.add(5);
        w.add(3);
        assert_eq!(w.distinct_len(), 2);
        assert_eq!(w.total_len(), 3);
        w.remove(5);
        assert_eq!(w.distinct_len(), 2, "one copy of 5 remains");
        w.remove(5);
        assert_eq!(w.distinct_len(), 1);
        assert_eq!(w.prefix(5).collect::<Vec<_>>(), vec![3]);
    }

    #[test]
    fn prefix_is_smallest_keys() {
        let w = WindowState::from_keys([9, 1, 7, 3]);
        assert_eq!(w.prefix(2).collect::<Vec<_>>(), vec![1, 3]);
        assert_eq!(w.prefix(10).count(), 4);
    }

    #[test]
    fn migrate_equals_rebuild() {
        // Sliding [a b c] -> [b c d] via remove/add matches a fresh build.
        let keys = [10u64, 20, 30, 40, 20, 10];
        let l = 3;
        let mut w = WindowState::from_keys(keys[0..l].iter().copied());
        for p in 1..=keys.len() - l {
            w.remove(keys[p - 1]);
            w.add(keys[p + l - 1]);
            let fresh = WindowState::from_keys(keys[p..p + l].iter().copied());
            assert_eq!(w.distinct_keys().collect::<Vec<_>>(), fresh.distinct_keys().collect::<Vec<_>>(), "window at p={p}");
        }
    }

    #[test]
    fn fill_distinct_reuses_buffer() {
        let w = WindowState::from_keys([2, 1, 2]);
        let mut buf = vec![99];
        w.fill_distinct(&mut buf);
        assert_eq!(buf, vec![1, 2]);
    }

    #[test]
    fn empty_state() {
        let w = WindowState::new();
        assert!(w.is_empty());
        assert_eq!(w.distinct_len(), 0);
        assert_eq!(w.prefix(3).count(), 0);
    }
}
