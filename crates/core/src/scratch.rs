//! Reusable extraction scratch: every buffer the generate → verify hot
//! path needs, retained across documents.
//!
//! One [`ExtractScratch`] per worker thread makes steady-state extraction
//! allocation-free: all vectors and hash tables are `clear()`ed (keeping
//! capacity) rather than dropped, window states are pooled per candidate
//! length and migrated in place, and the per-document [`DenseRemap`] reuses
//! its staging buffers. After a few documents of warmup every run fits in
//! previously acquired capacity — the property asserted by the
//! counting-allocator test `zero_alloc.rs`.
//!
//! Invariants callers rely on:
//! - A scratch may be reused across engines, strategies, taus and metrics;
//!   nothing semantic persists between runs, only capacity.
//! - The [`ScratchOutcome`] returned by a scratched extraction borrows the
//!   scratch-resident match buffer; it is valid until the scratch is used
//!   again.
//! - A scratch is not `Sync`: share one per thread, never across threads.

use crate::candidates::CandidateSink;
use crate::limits::ExtractOutcome;
use crate::matches::Match;
use crate::stage::StageSlots;
use crate::stats::ExtractStats;
use crate::window::{DenseRemap, WindowState};
use aeetes_text::{EntityId, Span, TokenId};
use std::collections::{HashMap, HashSet};

/// One substring that carries a given valid token in its prefix, with its
/// precomputed admissible entity-length interval `[lo, hi]` (Lazy pass 1).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Pending {
    pub span: Span,
    pub lo: u32,
    pub hi: u32,
}

/// Scratch of the `Dynamic` strategy's scan cache.
#[derive(Debug, Default)]
pub(crate) struct DynScratch {
    /// Per window-length cache: `(prefix rank, distinct size)` → range of
    /// `arena` holding that scan's candidate origins.
    pub caches: Vec<HashMap<(u32, u32), (u32, u32)>>,
    /// Scan results, appended per cache miss, cleared per document.
    pub arena: Vec<EntityId>,
    /// Scan-local origin dedup set.
    pub seen: HashSet<EntityId>,
}

/// Scratch of the `Lazy` strategy's two passes.
#[derive(Debug, Default)]
pub(crate) struct LazyScratch {
    /// rank → substrings carrying that token in their prefix (the paper's
    /// substring inverted index `I[t]`, rank-indexed and pooled: entries
    /// keep their capacity across documents).
    pub inv: Vec<Vec<Pending>>,
    /// Ranks with a nonempty `inv` entry, in discovery order.
    pub touched: Vec<u32>,
    /// `(token, rank)` of every touched rank, sorted by token id (pass 2
    /// processes tokens in id order for determinism).
    pub tokens: Vec<(TokenId, u32)>,
    /// Pass-2 per-token machinery: pending indices sorted by `hi` (expiry
    /// order), expiry tombstones, and the active list.
    pub hi_order: Vec<u32>,
    pub expired: Vec<bool>,
    pub active: Vec<u32>,
}

/// All buffers one generate → verify pass over a single index segment
/// needs. The sharded engine holds one per shard.
#[derive(Debug, Default)]
pub struct SegmentScratch {
    pub(crate) remap: DenseRemap,
    /// Window-state pool, one per candidate length; grown, never shrunk.
    pub(crate) states: Vec<WindowState>,
    pub(crate) sink: CandidateSink,
    pub(crate) dynamic: DynScratch,
    pub(crate) lazy: LazyScratch,
    /// Naive per-substring sorted-rank buffer.
    pub(crate) buf: Vec<u32>,
    /// Verification: sorted distinct key set of the current span.
    pub(crate) s_keys: Vec<u64>,
    /// Sorted matches of the most recent run.
    pub(crate) matches: Vec<Match>,
    /// Per-stage timing slots of the most recent run: scratch-resident so
    /// recording stays allocation-free (zero-sized without the `obs`
    /// feature).
    pub(crate) stages: StageSlots,
    /// Whether the most recent run was cut short by a budget.
    pub(crate) truncated: bool,
    /// Work counters of the most recent run. Kept in the scratch so a
    /// fan-out executor needs no per-shard result channel: every outcome
    /// of segment `i` is read back from segment scratch `i`.
    pub(crate) stats: ExtractStats,
}

impl SegmentScratch {
    /// Matches of the most recent extraction into this scratch, sorted by
    /// `(span, entity)`.
    pub fn matches(&self) -> &[Match] {
        &self.matches
    }

    /// Stage timing slots of the most recent extraction into this scratch.
    pub fn stages(&self) -> &StageSlots {
        &self.stages
    }

    /// Whether the most recent extraction into this scratch was truncated.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Work counters of the most recent extraction into this scratch.
    pub fn stats(&self) -> ExtractStats {
        self.stats
    }
}

/// Per-worker extraction scratch: a pool of [`SegmentScratch`]es (one per
/// index segment — a monolithic engine uses one, a sharded engine one per
/// shard) plus a merge buffer for the fan-out path.
#[derive(Debug, Default)]
pub struct ExtractScratch {
    pub(crate) segments: Vec<SegmentScratch>,
    pub(crate) merged: Vec<Match>,
}

impl ExtractScratch {
    /// Empty scratch; buffers grow to their high-water mark on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The per-segment scratch at `i`, growing the pool on demand.
    pub fn segment(&mut self, i: usize) -> &mut SegmentScratch {
        if self.segments.len() <= i {
            self.segments.resize_with(i + 1, SegmentScratch::default);
        }
        &mut self.segments[i]
    }

    /// Splits into `n` per-segment scratches plus the merge buffer — the
    /// sharded fan-out hands each shard thread its own segment and merges
    /// the remapped results into the second half.
    pub fn split(&mut self, n: usize) -> (&mut [SegmentScratch], &mut Vec<Match>) {
        if self.segments.len() < n {
            self.segments.resize_with(n, SegmentScratch::default);
        }
        (&mut self.segments[..n], &mut self.merged)
    }
}

/// A borrowed extraction outcome: the scratched counterpart of
/// [`ExtractOutcome`], viewing the scratch-resident match buffer instead of
/// owning a fresh allocation. Valid until the scratch is used again.
#[derive(Debug)]
pub struct ScratchOutcome<'a> {
    /// Matches sorted by `(span, entity)`; a sound (exact, verified) prefix
    /// of the full result when `truncated` is set.
    pub matches: &'a [Match],
    /// Whether any budget cut the run short.
    pub truncated: bool,
    /// Work counters for the (possibly partial) run.
    pub stats: ExtractStats,
    /// Per-stage timing slots (merged across shards on the fan-out path;
    /// all-zero without the `obs` feature).
    pub stages: StageSlots,
}

impl ScratchOutcome<'_> {
    /// Copies into an owned [`ExtractOutcome`].
    pub fn to_outcome(&self) -> ExtractOutcome {
        ExtractOutcome {
            matches: self.matches.to_vec(),
            truncated: self.truncated,
            stats: self.stats,
            stages: self.stages,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_pool_grows_on_demand() {
        let mut s = ExtractScratch::new();
        s.segment(2).buf.push(7);
        assert_eq!(s.segments.len(), 3);
        assert_eq!(s.segment(2).buf, vec![7]);
        let (segs, merged) = s.split(5);
        assert_eq!(segs.len(), 5);
        assert!(merged.is_empty());
        assert_eq!(segs[2].buf, vec![7], "existing segments survive a split");
    }

    #[test]
    fn split_is_stable_for_smaller_n() {
        let mut s = ExtractScratch::new();
        s.split(4);
        let (segs, _) = s.split(2);
        assert_eq!(segs.len(), 2);
        assert_eq!(s.segments.len(), 4, "pool never shrinks");
    }
}
