//! Exact JaccAR verification of candidate pairs (paper Algorithm 1, lines
//! 6–9).

use crate::limits::Budget;
use crate::matches::Match;
use crate::stats::ExtractStats;
use aeetes_index::ClusteredIndex;
use aeetes_rules::{DerivedDictionary, DerivedId};
use aeetes_sim::Metric;
use aeetes_text::{Document, EntityId, Span};

/// Intersection size of two sorted distinct `u64` key slices, aborting as
/// soon as the remaining elements cannot reach `required` overlaps.
/// Returns `None` on abort (the overlap is `< required`).
fn intersect_keys_at_least(a: &[u64], b: &[u64], required: usize) -> Option<usize> {
    let mut i = 0;
    let mut j = 0;
    let mut n = 0;
    while i < a.len() && j < b.len() {
        if n + (a.len() - i).min(b.len() - j) < required {
            return None;
        }
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                n += 1;
                i += 1;
                j += 1;
            }
        }
    }
    (n >= required).then_some(n)
}

/// Whether two short sorted slices share an element (prefix-filter check).
fn prefixes_overlap(a: &[u64], b: &[u64]) -> bool {
    let mut i = 0;
    let mut j = 0;
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// Verifies each candidate pair into `out` (cleared first): the matches
/// with `JaccAR ≥ τ` (or weighted JaccAR when `weighted` is set), sorted by
/// `(span, entity)` because `pairs` is sorted in place first. The budget is
/// consulted between candidates: an exhausted deadline or match cap stops
/// verification with the (exact, verified) matches found so far. `s_keys`
/// is span-local scratch; both buffers retain capacity across calls.
#[allow(clippy::too_many_arguments)]
pub(crate) fn verify_candidates(
    index: &ClusteredIndex,
    dd: &DerivedDictionary,
    doc: &Document,
    tau: f64,
    metric: Metric,
    pairs: &mut [(Span, EntityId)],
    stats: &mut ExtractStats,
    weighted: bool,
    budget: &mut Budget,
    s_keys: &mut Vec<u64>,
    out: &mut Vec<Match>,
) {
    out.clear();
    // Group by span so the substring key set — and the length bounds that
    // depend only on it — are built once per span.
    pairs.sort_unstable_by_key(|(sp, e)| (sp.start, sp.len, e.0));
    let order = index.order();
    let mut s_prefix = 0usize;
    let mut lo = 0usize;
    let mut hi = 0usize;
    let mut cur: Option<Span> = None;
    for &(span, e) in pairs.iter() {
        if !budget.keep_verifying(out.len()) {
            break;
        }
        if cur != Some(span) {
            s_keys.clear();
            s_keys.extend(doc.slice(span).iter().map(|&t| order.key(t)));
            s_keys.sort_unstable();
            s_keys.dedup();
            s_prefix = metric.prefix_len(s_keys.len(), tau);
            (lo, hi) = metric.length_bounds(s_keys.len(), tau, usize::MAX);
            cur = Some(span);
        }
        stats.candidates += 1;
        let mut best_score = 0.0f64;
        let mut best_variant: Option<DerivedId> = None;
        // Variants are pre-sorted by set length: binary-search to the first
        // admitted length, stop at the first beyond it (§8 future-work (i)).
        let variants = index.variants_sorted(e);
        let start = variants.partition_point(|&id| index.set_len(id) < lo);
        for &id in &variants[start..] {
            let set = index.derived_set(id);
            if set.len() > hi {
                break;
            }
            // Per-variant prefix filter (Lemma 3.1): a variant similar to
            // the substring must share a token inside both τ-prefixes.
            let v_prefix = metric.prefix_len(set.len(), tau);
            if !prefixes_overlap(&set[..v_prefix], &s_keys[..s_prefix]) {
                continue;
            }
            stats.verifications += 1;
            // Only variants that can reach τ matter for the output; the
            // merge aborts once the required overlap is unreachable.
            let required = metric.required_overlap(set.len(), s_keys.len(), tau);
            let Some(inter) = intersect_keys_at_least(set, s_keys, required) else {
                continue;
            };
            let mut score = metric.score(set.len(), s_keys.len(), inter);
            if weighted {
                score *= dd.derived(id).weight;
            }
            if score > best_score {
                best_score = score;
                best_variant = Some(id);
                if score >= 1.0 {
                    break;
                }
            }
        }
        if best_score >= tau {
            if let Some(best_variant) = best_variant {
                stats.matches += 1;
                out.push(Match { entity: e, span, score: best_score, best_variant });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    struct Fix {
        int: Interner,
        tok: Tokenizer,
        dict: Dictionary,
        rules: RuleSet,
    }

    impl Fix {
        fn new() -> Self {
            Self {
                int: Interner::new(),
                tok: Tokenizer::default(),
                dict: Dictionary::new(),
                rules: RuleSet::new(),
            }
        }
        fn built(&self) -> (DerivedDictionary, ClusteredIndex) {
            let dd = DerivedDictionary::build(&self.dict, &self.rules, &DeriveConfig::default());
            let ix = ClusteredIndex::build(&dd, &self.int);
            (dd, ix)
        }
    }

    /// Owned-result wrapper over the buffer-reusing signature.
    #[allow(clippy::too_many_arguments)]
    fn run_verify(
        index: &ClusteredIndex,
        dd: &DerivedDictionary,
        doc: &Document,
        tau: f64,
        metric: Metric,
        mut pairs: Vec<(Span, EntityId)>,
        stats: &mut ExtractStats,
        weighted: bool,
        budget: &mut Budget,
    ) -> Vec<Match> {
        let mut s_keys = Vec::new();
        let mut out = Vec::new();
        verify_candidates(index, dd, doc, tau, metric, &mut pairs, stats, weighted, budget, &mut s_keys, &mut out);
        out
    }

    #[test]
    fn intersect_keys_at_least_basics() {
        assert_eq!(intersect_keys_at_least(&[1, 3, 5], &[2, 3, 5, 7], 1), Some(2));
        assert_eq!(intersect_keys_at_least(&[1, 3, 5], &[2, 3, 5, 7], 2), Some(2));
        assert_eq!(intersect_keys_at_least(&[1, 3, 5], &[2, 3, 5, 7], 3), None, "only 2 overlaps exist");
        assert_eq!(intersect_keys_at_least(&[], &[1], 1), None);
        assert_eq!(intersect_keys_at_least(&[4], &[4], 1), Some(1));
        assert_eq!(intersect_keys_at_least(&[1, 9], &[2, 8], 1), None, "aborts with zero overlap");
    }

    #[test]
    fn required_overlap_matches_formula() {
        // τ=0.8, |a|=|b|=5 → o ≥ ⌈0.8·10/1.8⌉ = ⌈4.44⌉ = 5.
        assert_eq!(Metric::Jaccard.required_overlap(5, 5, 0.8), 5);
        // τ=0.7, 3+4 → ⌈0.7·7/1.7⌉ = ⌈2.88⌉ = 3.
        assert_eq!(Metric::Jaccard.required_overlap(3, 4, 0.7), 3);
        assert_eq!(Metric::Jaccard.required_overlap(1, 1, 1.0), 1);
    }

    #[test]
    fn prefixes_overlap_basics() {
        assert!(prefixes_overlap(&[1, 5], &[5, 9]));
        assert!(!prefixes_overlap(&[1, 5], &[2, 9]));
        assert!(!prefixes_overlap(&[], &[1]));
    }

    #[test]
    fn verifies_true_match_and_rejects_false() {
        let mut f = Fix::new();
        let e = f.dict.push("uq au", &f.tok, &mut f.int);
        f.rules.push_str("uq", "university of queensland", &f.tok, &mut f.int).unwrap();
        let (dd, ix) = f.built();
        let doc = Document::parse("university of queensland au versus something else", &f.tok, &mut f.int);
        let good = (Span::new(0, 4), e);
        let bad = (Span::new(4, 3), e);
        let mut stats = ExtractStats::default();
        let out = run_verify(&ix, &dd, &doc, 0.9, Metric::Jaccard, vec![good, bad], &mut stats, false, &mut Budget::unlimited());
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].span, Span::new(0, 4));
        assert_eq!(out[0].score, 1.0);
        assert_eq!(stats.candidates, 2);
        assert_eq!(stats.matches, 1);
    }

    #[test]
    fn weighted_verification_scales() {
        let mut f = Fix::new();
        let e = f.dict.push("nyc marathon", &f.tok, &mut f.int);
        f.rules.push_weighted_str("nyc", "new york city", 0.5, &f.tok, &mut f.int).unwrap();
        let (dd, ix) = f.built();
        let doc = Document::parse("new york city marathon", &f.tok, &mut f.int);
        let pair = vec![(Span::new(0, 4), e)];
        let mut stats = ExtractStats::default();
        let plain = run_verify(&ix, &dd, &doc, 0.9, Metric::Jaccard, pair.clone(), &mut stats, false, &mut Budget::unlimited());
        assert_eq!(plain.len(), 1);
        let weighted = run_verify(&ix, &dd, &doc, 0.9, Metric::Jaccard, pair.clone(), &mut stats, true, &mut Budget::unlimited());
        assert!(weighted.is_empty(), "0.5-weighted score falls below 0.9");
        let weighted_low = run_verify(&ix, &dd, &doc, 0.4, Metric::Jaccard, pair, &mut stats, true, &mut Budget::unlimited());
        assert_eq!(weighted_low.len(), 1);
        assert!((weighted_low[0].score - 0.5).abs() < 1e-12);
    }

    #[test]
    fn results_sorted_by_span_then_entity() {
        let mut f = Fix::new();
        let a = f.dict.push("alpha beta", &f.tok, &mut f.int);
        let b = f.dict.push("beta gamma", &f.tok, &mut f.int);
        let (dd, ix) = f.built();
        let doc = Document::parse("alpha beta gamma", &f.tok, &mut f.int);
        let pairs = vec![(Span::new(1, 2), b), (Span::new(0, 2), a)];
        let mut stats = ExtractStats::default();
        let out = run_verify(&ix, &dd, &doc, 0.9, Metric::Jaccard, pairs, &mut stats, false, &mut Budget::unlimited());
        assert_eq!(out.len(), 2);
        assert!(out[0].sort_key() < out[1].sort_key());
    }

    #[test]
    fn length_filter_skips_impossible_variants() {
        let mut f = Fix::new();
        let e = f.dict.push("a b c d e f g h", &f.tok, &mut f.int);
        let (dd, ix) = f.built();
        let doc = Document::parse("a b", &f.tok, &mut f.int);
        let mut stats = ExtractStats::default();
        let out = run_verify(&ix, &dd, &doc, 0.9, Metric::Jaccard, vec![(Span::new(0, 2), e)], &mut stats, false, &mut Budget::unlimited());
        assert!(out.is_empty());
        assert_eq!(stats.verifications, 0, "variant skipped by length filter");
    }
}
