//! Stage-timing glue between the hot path and `aeetes-obs`.
//!
//! With the `obs` feature on (the default), [`Stage`] and [`StageSlots`]
//! are the real `aeetes-obs` types and [`SpanClock`] reads the monotonic
//! clock. With the feature off, all three compile to zero-sized no-ops with
//! the same API, so the strategies contain **no** `cfg` noise and the
//! instrumented code paths vanish entirely from the build — the property
//! `cargo test --no-default-features -p aeetes-core` guards.
//!
//! Inner-loop stages are sampled: [`SpanClock::sampled`] only arms the
//! clock on one window position in [`SAMPLE_MASK`]` + 1`. Un-armed laps do
//! **nothing** — not even a counter bump, so sampled-out positions pay only
//! the arming mask test — and each strategy accounts the total span count
//! in bulk after its loop via [`StageSlots::account_spans`], which is what
//! lets [`StageSlots::estimated_nanos`] scale the measured time back up.

#[cfg(feature = "obs")]
pub use aeetes_obs::{Stage, StageSlots, SAMPLE_MASK};

#[cfg(feature = "obs")]
use std::time::Instant;

/// A possibly-armed span clock. `lap` records the time since the previous
/// lap into a stage slot and re-arms; on an un-armed clock it does nothing
/// at all (callers bulk-account untimed spans after their loops). All
/// methods compile to nothing without the `obs` feature.
#[cfg(feature = "obs")]
#[derive(Debug)]
pub(crate) struct SpanClock(Option<Instant>);

#[cfg(feature = "obs")]
impl SpanClock {
    /// An armed clock: every lap is timed.
    #[inline]
    pub fn always() -> Self {
        SpanClock(Some(Instant::now()))
    }

    /// Armed only when `i` lands on the sampling grid (`i & SAMPLE_MASK == 0`).
    #[inline]
    pub fn sampled(i: usize) -> Self {
        if i & SAMPLE_MASK == 0 {
            Self::always()
        } else {
            SpanClock(None)
        }
    }

    /// Records the span since start/previous lap and re-arms; free when
    /// un-armed.
    #[inline]
    pub fn lap(&mut self, stage: Stage, slots: &mut StageSlots) {
        if let Some(t) = self.0 {
            let now = Instant::now();
            slots.record(stage, (now - t).as_nanos() as u64);
            self.0 = Some(now);
        }
    }

    /// Records the final span and consumes the clock; free when un-armed.
    #[inline]
    pub fn stop(self, stage: Stage, slots: &mut StageSlots) {
        if let Some(t) = self.0 {
            slots.record(stage, t.elapsed().as_nanos() as u64);
        }
    }
}

// ---- feature-off stand-ins: same API, zero size, no clock reads ----

/// Sampling mask (mirrors `aeetes_obs::SAMPLE_MASK`).
#[cfg(not(feature = "obs"))]
pub const SAMPLE_MASK: usize = 63;

/// One stage of the extraction pipeline (no-op stand-in; see `aeetes-obs`
/// for the instrumented version's documentation).
#[cfg(not(feature = "obs"))]
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[allow(missing_docs)]
pub enum Stage {
    Tokenize,
    Remap,
    PrefixBuild,
    PrefixUpdate,
    WindowSlide,
    CandidateGen,
    Verify,
}

#[cfg(not(feature = "obs"))]
impl Stage {
    /// Number of stages.
    pub const COUNT: usize = 7;
    /// All stages, in execution order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Tokenize,
        Stage::Remap,
        Stage::PrefixBuild,
        Stage::PrefixUpdate,
        Stage::WindowSlide,
        Stage::CandidateGen,
        Stage::Verify,
    ];

    /// The stable stage label.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Tokenize => "tokenize",
            Stage::Remap => "remap",
            Stage::PrefixBuild => "prefix_build",
            Stage::PrefixUpdate => "prefix_update",
            Stage::WindowSlide => "window_slide",
            Stage::CandidateGen => "candidate_gen",
            Stage::Verify => "verify",
        }
    }
}

/// Zero-sized stand-in for `aeetes_obs::StageSlots`: every recording method
/// is a no-op and every read returns zero.
#[cfg(not(feature = "obs"))]
#[derive(Debug, Clone, Copy, Default)]
pub struct StageSlots;

#[cfg(not(feature = "obs"))]
#[allow(missing_docs)]
impl StageSlots {
    #[inline]
    pub fn clear(&mut self) {}
    #[inline]
    pub fn record(&mut self, _stage: Stage, _nanos: u64) {}
    #[inline]
    pub fn skip(&mut self, _stage: Stage) {}
    #[inline]
    pub fn account_spans(&mut self, _stage: Stage, _total: u64) {}
    #[inline]
    pub fn merge(&mut self, _other: &StageSlots) {}
    #[inline]
    pub fn nanos(&self, _stage: Stage) -> u64 {
        0
    }
    #[inline]
    pub fn timed(&self, _stage: Stage) -> u64 {
        0
    }
    #[inline]
    pub fn spans(&self, _stage: Stage) -> u64 {
        0
    }
    #[inline]
    pub fn estimated_nanos(&self, _stage: Stage) -> u64 {
        0
    }
}

/// Zero-sized stand-in for the span clock: no `Instant` reads at all.
#[cfg(not(feature = "obs"))]
#[derive(Debug)]
pub(crate) struct SpanClock;

#[cfg(not(feature = "obs"))]
impl SpanClock {
    #[inline]
    pub fn always() -> Self {
        SpanClock
    }
    #[inline]
    pub fn sampled(_i: usize) -> Self {
        SpanClock
    }
    #[inline]
    pub fn lap(&mut self, _stage: Stage, _slots: &mut StageSlots) {}
    #[inline]
    pub fn stop(self, _stage: Stage, _slots: &mut StageSlots) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_clock_sampling_grid() {
        let mut slots = StageSlots::default();
        for p in 0..128usize {
            let mut clk = SpanClock::sampled(p);
            clk.lap(Stage::PrefixUpdate, &mut slots);
        }
        // Sampled-out positions touch nothing; the loop's span total is
        // accounted in bulk afterwards, exactly like the strategies do.
        slots.account_spans(Stage::PrefixUpdate, 128);
        #[cfg(feature = "obs")]
        {
            assert_eq!(slots.spans(Stage::PrefixUpdate), 128);
            assert_eq!(slots.timed(Stage::PrefixUpdate), 2, "positions 0 and 64 are on the grid");
        }
        #[cfg(not(feature = "obs"))]
        {
            assert_eq!(slots.spans(Stage::PrefixUpdate), 0, "no-op stand-in records nothing");
        }
    }

    #[test]
    fn stage_names_are_stable() {
        let names: Vec<&str> = Stage::ALL.iter().map(|s| s.name()).collect();
        assert_eq!(names, ["tokenize", "remap", "prefix_build", "prefix_update", "window_slide", "candidate_gen", "verify"]);
    }
}
