//! Fault-injection coverage for the durability layer, driven through the
//! `failpoints` feature: every write / fsync / rename / read site can be
//! forced to fail or tear, and the WAL / atomic-replace invariants must
//! hold at each one. Crash (`abort`) actions are exercised from the CLI's
//! child-process recovery suite; this file covers the error and
//! short-write actions in-process.
//!
//! The failpoint registry is process-wide, so every test takes the same
//! lock and clears the registry on entry and exit.

#![cfg(feature = "failpoints")]

use aeetes_core::failpoint::{self, FailAction};
use aeetes_core::{atomic_replace, Wal, WalError};
use std::fs;
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner());
    failpoint::clear();
    guard
}

fn tmp_path(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("aeetes-fp-{tag}-{}-{n}", std::process::id()))
}

/// A failed append rolls the file back to the committed prefix: the log
/// stays appendable and a replay never sees the aborted record.
#[test]
fn append_write_error_rolls_back_and_log_stays_appendable() {
    let _g = serial();
    let path = tmp_path("append-eio");
    let mut wal = Wal::create(&path, 0).unwrap();
    wal.append(1, b"committed").unwrap();
    wal.sync().unwrap();
    let committed = wal.len_bytes();

    failpoint::set("wal.append.write", FailAction::Error, None);
    assert!(matches!(wal.append(2, b"doomed"), Err(WalError::Io(_))));
    failpoint::clear();

    assert_eq!(wal.len_bytes(), committed, "failed append must not advance the committed length");
    assert_eq!(wal.last_generation(), 1);
    wal.append(2, b"retry").unwrap();
    wal.sync().unwrap();
    drop(wal);

    let (_, replay) = Wal::open(&path).unwrap();
    let got: Vec<(u64, Vec<u8>)> = replay.records.iter().map(|r| (r.generation, r.payload.clone())).collect();
    assert_eq!(got, vec![(1, b"committed".to_vec()), (2, b"retry".to_vec())]);
    fs::remove_file(&path).unwrap();
}

/// A short (torn) append is erased on the spot; if the rollback itself
/// were to fail the log marks itself broken — here rollback succeeds, so
/// replay after the tear sees only the committed prefix.
#[test]
fn short_append_write_is_erased_not_replayed() {
    let _g = serial();
    let path = tmp_path("append-short");
    let mut wal = Wal::create(&path, 5).unwrap();
    wal.append(6, b"keep-me").unwrap();
    wal.sync().unwrap();
    let committed = wal.len_bytes();

    for torn_len in [0, 1, 7, 15] {
        failpoint::set("wal.append.write", FailAction::ShortWrite(torn_len), None);
        assert!(wal.append(7, b"torn-payload-torn-payload").is_err(), "short:{torn_len} must fail the append");
        failpoint::clear();
        assert_eq!(fs::metadata(&path).unwrap().len(), committed, "short:{torn_len} debris must be truncated away");
    }

    wal.append(7, b"after-tears").unwrap();
    wal.sync().unwrap();
    drop(wal);
    let (_, replay) = Wal::open(&path).unwrap();
    let gens: Vec<u64> = replay.records.iter().map(|r| r.generation).collect();
    assert_eq!(gens, vec![6, 7]);
    fs::remove_file(&path).unwrap();
}

/// A failed fsync surfaces to the caller (who must then *not* ack). The
/// record bytes may or may not be durable — either is correct, because
/// nothing was acknowledged — and the log keeps working once fsync heals.
#[test]
fn sync_failure_is_surfaced_and_recoverable() {
    let _g = serial();
    let path = tmp_path("sync-eio");
    let mut wal = Wal::create(&path, 0).unwrap();
    wal.append(1, b"x").unwrap();
    failpoint::set("wal.append.sync", FailAction::Error, None);
    assert!(matches!(wal.sync(), Err(WalError::Io(_))));
    failpoint::clear();
    wal.sync().unwrap();
    drop(wal);
    let (_, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.records.len(), 1);
    fs::remove_file(&path).unwrap();
}

/// Create failures (header write or its fsync) leave no usable log behind
/// and are reported; `open_or_create` then treats the debris as a torn
/// create and recreates cleanly once the fault clears.
#[test]
fn create_failures_leave_recreatable_debris() {
    let _g = serial();
    for site in ["wal.create.write", "wal.create.sync"] {
        let path = tmp_path("create-eio");
        failpoint::set(site, FailAction::Error, None);
        assert!(Wal::create(&path, 3).is_err(), "{site} must fail the create");
        failpoint::clear();
        let (wal, replay) = Wal::open_or_create(&path, 3).unwrap();
        assert_eq!(wal.base_generation(), 3, "{site}: recreate must succeed after the fault clears");
        assert!(replay.records.is_empty());
        fs::remove_file(&path).unwrap();
    }
}

/// A torn header write (short write mid-header) is exactly the
/// `HeaderTorn` case `open_or_create` recreates.
#[test]
fn torn_header_write_is_recreated() {
    let _g = serial();
    let path = tmp_path("create-short");
    failpoint::set("wal.create.write", FailAction::ShortWrite(7), None);
    assert!(Wal::create(&path, 9).is_err());
    failpoint::clear();
    assert_eq!(fs::metadata(&path).unwrap().len(), 7, "exactly the short prefix must be on disk");
    assert!(matches!(Wal::open(&path), Err(WalError::HeaderTorn)));
    let (wal, _) = Wal::open_or_create(&path, 9).unwrap();
    assert_eq!(wal.base_generation(), 9);
    fs::remove_file(&path).unwrap();
}

/// Read failure during open surfaces as an I/O error, never a panic.
#[test]
fn open_read_error_is_an_error() {
    let _g = serial();
    let path = tmp_path("open-eio");
    let mut wal = Wal::create(&path, 0).unwrap();
    wal.append(1, b"x").unwrap();
    wal.sync().unwrap();
    drop(wal);
    failpoint::set("wal.open.read", FailAction::Error, None);
    assert!(matches!(Wal::open(&path), Err(WalError::Io(_))));
    failpoint::clear();
    assert!(Wal::open(&path).is_ok());
    fs::remove_file(&path).unwrap();
}

/// `atomic_replace` failures at every pre-rename site leave the target
/// byte-identical; only a completed rename exposes the new content.
#[test]
fn atomic_replace_failures_never_damage_the_target() {
    let _g = serial();
    let dir = tmp_path("ar");
    fs::create_dir_all(&dir).unwrap();
    let target = dir.join("engine.bin");
    fs::write(&target, b"old-content").unwrap();

    for (site, action) in [
        ("durable.write", FailAction::Error),
        ("durable.write", FailAction::ShortWrite(3)),
        ("durable.sync_file", FailAction::Error),
        ("durable.rename.before", FailAction::Error),
    ] {
        failpoint::set(site, action, None);
        assert!(atomic_replace(&target, b"new-content").is_err(), "{site} {action:?} must fail the replace");
        failpoint::clear();
        assert_eq!(fs::read(&target).unwrap(), b"old-content", "{site} {action:?} must leave the target untouched");
    }

    // Failure *after* the rename means the data is already in place; the
    // caller sees an error (directory entry durability is unproven) but
    // the content is the new one — the "either old or new, never neither"
    // contract.
    failpoint::set("durable.rename.after", FailAction::Error, None);
    assert!(atomic_replace(&target, b"new-content").is_err());
    failpoint::clear();
    assert_eq!(fs::read(&target).unwrap(), b"new-content");

    fs::remove_dir_all(&dir).unwrap();
}

/// `Wal::reset` (compaction) rides on `atomic_replace`: a failed reset
/// leaves the old log fully intact and appendable.
#[test]
fn failed_reset_preserves_the_old_log() {
    let _g = serial();
    let path = tmp_path("reset-eio");
    let mut wal = Wal::create(&path, 0).unwrap();
    for g in 1..=3 {
        wal.append(g, format!("d{g}").as_bytes()).unwrap();
    }
    wal.sync().unwrap();

    failpoint::set("durable.rename.before", FailAction::Error, None);
    assert!(wal.reset(3).is_err());
    failpoint::clear();
    drop(wal);

    let (mut wal, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.records.len(), 3, "failed compaction must not lose the log");
    wal.append(4, b"still-appendable").unwrap();
    wal.sync().unwrap();
    drop(wal);
    fs::remove_file(&path).unwrap();
}

/// The `@K` hit-count selector works end-to-end: only the K-th append
/// fails, everything before and after commits.
#[test]
fn hit_count_selector_targets_one_append() {
    let _g = serial();
    let path = tmp_path("at-k");
    let mut wal = Wal::create(&path, 0).unwrap();
    failpoint::set("wal.append.write", FailAction::Error, Some(2));
    wal.append(1, b"first").unwrap();
    assert!(wal.append(2, b"second").is_err(), "second append hits @2");
    wal.append(2, b"second-retry").unwrap();
    wal.sync().unwrap();
    failpoint::clear();
    drop(wal);
    let (_, replay) = Wal::open(&path).unwrap();
    let got: Vec<Vec<u8>> = replay.records.iter().map(|r| r.payload.clone()).collect();
    assert_eq!(got, vec![b"first".to_vec(), b"second-retry".to_vec()]);
    fs::remove_file(&path).unwrap();
}
