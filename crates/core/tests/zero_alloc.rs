//! Proves the zero-allocation hot-path claim: once an [`ExtractScratch`]
//! has warmed up to its high-water capacity, repeat extraction over the
//! same document mix performs **zero** heap allocations per document, for
//! both incremental strategies (`Dynamic` and `Lazy`).
//!
//! The proof is a counting `#[global_allocator]`: every `alloc` /
//! `realloc` / `alloc_zeroed` bumps an atomic counter, and the steady-state
//! rounds assert the counter does not move. This file holds exactly one
//! test so no concurrent test can perturb the counter.
//!
//! With the `obs` feature on (the default), every steady-state outcome is
//! additionally flushed into a registered [`aeetes_obs::ExtractMetrics`]
//! bundle — stage histograms and work counters — proving the observability
//! layer rides the hot path without adding a single allocation. Handle
//! registration happens before the warm-up, exactly like a long-running
//! server does it.
//!
//! The document-parallel batch path has the same guarantee over the
//! persistent pool; see `aeetes-pool/tests/zero_alloc_batch.rs` (its own
//! binary, for the same one-test-per-allocator reason).

use aeetes_core::{Aeetes, AeetesConfig, ExtractLimits, ExtractScratch, Strategy};
use aeetes_rules::RuleSet;
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Flushes an outcome's stats and stage slots into the metric bundle the
/// way serve/batch workers do; must stay allocation-free.
#[cfg(feature = "obs")]
fn flush_obs(metrics: &aeetes_obs::ExtractMetrics, out: &aeetes_core::ScratchOutcome<'_>) {
    let counts = aeetes_obs::ExtractCounts {
        accessed_entries: out.stats.accessed_entries,
        candidates: out.stats.candidates,
        verifications: out.stats.verifications,
        matches: out.stats.matches,
    };
    metrics.observe(&out.stages, &counts, out.truncated);
}

#[test]
fn steady_state_extraction_allocates_nothing() {
    #[cfg(feature = "obs")]
    let registry = aeetes_obs::MetricRegistry::new();
    #[cfg(feature = "obs")]
    let metrics = aeetes_obs::ExtractMetrics::register(&registry);
    for strategy in [Strategy::Dynamic, Strategy::Lazy] {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        dict.push("uq au", &tok, &mut int);
        dict.push("university of wisconsin madison", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
        rules.push_str("usa", "united states", &tok, &mut int).unwrap();
        let config = AeetesConfig { strategy, ..AeetesConfig::default() };
        let engine = Aeetes::build(dict, &rules, &int, config);
        // A mix of matching, partially-matching and irrelevant documents of
        // different lengths, parsed up front (parsing may intern).
        let docs: Vec<Document> = [
            "a visit to purdue university usa was scheduled after the university of queensland au talks",
            "nothing relevant in this one at all just plain words",
            "purdue university united states and the university of wisconsin madison and uq au",
            "uq au",
            "",
        ]
        .iter()
        .map(|t| Document::parse(t, &tok, &mut int))
        .collect();
        let mut scratch = ExtractScratch::new();
        let mut warm_matches = 0usize;
        for _ in 0..3 {
            warm_matches = 0;
            for doc in &docs {
                let out = engine.extract_scratched(doc, 0.8, &ExtractLimits::UNLIMITED, None, &mut scratch);
                warm_matches += out.matches.len();
                #[cfg(feature = "obs")]
                flush_obs(&metrics, &out);
            }
        }
        assert!(warm_matches > 0, "fixture must produce matches for the test to mean anything");
        let before = ALLOCS.load(Ordering::Relaxed);
        let mut steady_matches = 0usize;
        for _ in 0..5 {
            steady_matches = 0;
            for doc in &docs {
                let out = engine.extract_scratched(doc, 0.8, &ExtractLimits::UNLIMITED, None, &mut scratch);
                steady_matches += out.matches.len();
                #[cfg(feature = "obs")]
                flush_obs(&metrics, &out);
            }
        }
        let delta = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(steady_matches, warm_matches, "steady-state rounds must reproduce the warmed-up result");
        assert_eq!(delta, 0, "strategy {strategy} allocated {delta} time(s) across 5 steady-state rounds");
    }
}
