//! Fault-injection tests for the robustness layer: corrupt engine files
//! must fail with errors (never panic or over-allocate) and exhausted
//! budgets must return immediately with `truncated = true`. (Batch panic
//! isolation is tested in the `aeetes-pool` crate with the executor.)

use aeetes_core::{load_engine, save_engine, Aeetes, AeetesConfig, ExtractLimits, Strategy};
use aeetes_rules::RuleSet;
use aeetes_sim::Metric;
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use proptest::prelude::*;

fn sample_engine(config: AeetesConfig) -> (Aeetes, Interner) {
    let mut int = Interner::new();
    let tok = Tokenizer::default();
    let mut dict = Dictionary::new();
    dict.push("purdue university usa", &tok, &mut int);
    dict.push("uq au", &tok, &mut int);
    dict.push("university of wisconsin madison", &tok, &mut int);
    let mut rules = RuleSet::new();
    rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
    rules.push_str("usa", "united states", &tok, &mut int).unwrap();
    rules.push_weighted_str("au", "australia", 0.9, &tok, &mut int).unwrap();
    (Aeetes::build(dict, &rules, &int, config), int)
}

fn saved_bytes() -> Vec<u8> {
    let (engine, int) = sample_engine(AeetesConfig::default());
    save_engine(&engine, &int)
}

/// Every strict prefix of a valid engine file is rejected with an error.
/// This walks through *every* field boundary of the format — magic,
/// version, counts, string payloads, id lists, weights, config, checksum.
#[test]
fn truncation_at_every_byte_is_an_error_not_a_panic() {
    let bytes = saved_bytes();
    for len in 0..bytes.len() {
        let r = load_engine(&bytes[..len]);
        assert!(r.is_err(), "prefix of {len}/{} bytes must not load", bytes.len());
    }
}

/// Every single-bit flip anywhere in the file is caught: CRC-32 detects all
/// single-bit payload errors, and flips in the header or footer fail their
/// own validation. No flip may panic or abort.
#[test]
fn every_single_bit_flip_is_detected() {
    let bytes = saved_bytes();
    for i in 0..bytes.len() {
        for bit in 0..8u8 {
            let mut corrupt = bytes.clone();
            corrupt[i] ^= 1 << bit;
            let r = load_engine(&corrupt);
            assert!(r.is_err(), "flip byte {i} bit {bit} must be rejected");
        }
    }
}

/// Appending garbage after a valid file is rejected (the v2 checksum is
/// computed over everything before the footer, so extra bytes shift it).
#[test]
fn appended_garbage_is_rejected() {
    let mut bytes = saved_bytes();
    bytes.extend_from_slice(b"\0\0\0\0trailing");
    assert!(load_engine(&bytes).is_err());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary byte soup up to 64 KiB never panics and never makes
    /// `load_engine` allocate past the input (forged counts are capped by
    /// the per-element minimum sizes before any `Vec::with_capacity`).
    #[test]
    fn byte_soup_never_panics(bytes in proptest::collection::vec(0u8..=255, 0..65536)) {
        let _ = load_engine(&bytes);
    }

    /// Byte soup that starts with a valid header is the adversarial case:
    /// it reaches the count/length parsing instead of dying on the magic.
    #[test]
    fn byte_soup_with_valid_header_never_panics(tail in proptest::collection::vec(0u8..=255, 0..4096)) {
        let mut bytes = b"AEET\x02\x00\x00\x00".to_vec();
        bytes.extend_from_slice(&tail);
        let _ = load_engine(&bytes);
    }
}

/// Engines round-trip across every `Strategy` × `Metric` configuration:
/// the config survives and extraction results are identical.
#[test]
fn round_trip_across_every_strategy_and_metric() {
    for strategy in [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy] {
        for metric in [Metric::Jaccard, Metric::Dice, Metric::Cosine, Metric::Overlap] {
            let config = AeetesConfig { strategy, metric, ..AeetesConfig::default() };
            let (engine, int) = sample_engine(config);
            let bytes = save_engine(&engine, &int);
            let (loaded, mut loaded_int) = load_engine(&bytes).unwrap_or_else(|e| panic!("{strategy} × {metric}: {e}"));
            assert_eq!(loaded.config().strategy, strategy);
            assert_eq!(loaded.config().metric, metric);
            let tok = Tokenizer::default();
            let doc = Document::parse("purdue university united states met the university of queensland australia", &tok, &mut loaded_int);
            let mut int2 = int.clone();
            let doc2 = Document::parse("purdue university united states met the university of queensland australia", &tok, &mut int2);
            let original = engine.extract(&doc2, 0.7);
            let reloaded = loaded.extract(&doc, 0.7);
            assert_eq!(original.len(), reloaded.len(), "{strategy} × {metric}");
            for (a, b) in original.iter().zip(&reloaded) {
                assert_eq!(a.span, b.span);
                assert_eq!(a.entity, b.entity);
                assert!((a.score - b.score).abs() < 1e-12);
            }
        }
    }
}

/// A zero-candidate budget returns immediately with `truncated = true` and
/// no matches — even for empty documents — for every strategy.
#[test]
fn zero_budget_returns_immediately_truncated() {
    let limits = ExtractLimits { max_candidates: Some(0), ..ExtractLimits::UNLIMITED };
    for strategy in [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy] {
        let (engine, mut int) = sample_engine(AeetesConfig { strategy, ..AeetesConfig::default() });
        let tok = Tokenizer::default();
        for text in ["purdue university usa and uq au", ""] {
            let doc = Document::parse(text, &tok, &mut int);
            let out = engine.extract_with_limits(&doc, 0.8, &limits);
            assert!(out.truncated, "{strategy} on {text:?}");
            assert!(out.matches.is_empty());
        }
    }
}

/// Partial results under a tight budget are a subset of the full results
/// for every strategy (budgets may drop matches, never invent them).
#[test]
fn budgeted_results_are_subsets_of_full_results() {
    for strategy in [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy] {
        let (engine, mut int) = sample_engine(AeetesConfig { strategy, ..AeetesConfig::default() });
        let tok = Tokenizer::default();
        let doc =
            Document::parse("purdue university usa then uq au then university of wisconsin madison again purdue university usa", &tok, &mut int);
        let full = engine.extract(&doc, 0.8);
        for cap in 0..=full.len() + 1 {
            let limits = ExtractLimits { max_matches: Some(cap), ..ExtractLimits::UNLIMITED };
            let out = engine.extract_with_limits(&doc, 0.8, &limits);
            assert!(out.matches.len() <= cap.max(full.len()), "{strategy} cap={cap}");
            for m in &out.matches {
                assert!(full.contains(m), "{strategy} cap={cap} invented {m:?}");
            }
        }
    }
}
