//! Torn-tail recovery, exhaustively: a WAL truncated at *every* byte
//! offset — simulating a crash at any point during an append — must never
//! panic, and must always recover exactly the longest committed record
//! prefix. This is the acceptance criterion for the durability layer: the
//! set of acknowledged deltas (those whose full record made it to disk
//! before the crash) is recovered bit-identically, and nothing else.

use aeetes_core::{Wal, WalError};
use proptest::prelude::*;
use std::fs;
use std::path::PathBuf;

fn tmp_path(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("aeetes-torn-{tag}-{}-{n}.wal", std::process::id()))
}

const HEADER_LEN: u64 = 20;
const RECORD_HEADER_LEN: u64 = 16;

/// Builds a log with the given payloads (record i carries generation
/// base+i+1) and returns its full on-disk bytes plus the end offset of
/// each committed record.
fn build_log(tag: &str, base: u64, payloads: &[&[u8]]) -> (Vec<u8>, Vec<u64>) {
    let path = tmp_path(tag);
    let mut wal = Wal::create(&path, base).unwrap();
    let mut ends = Vec::with_capacity(payloads.len());
    for (i, p) in payloads.iter().enumerate() {
        wal.append(base + i as u64 + 1, p).unwrap();
        ends.push(wal.len_bytes());
    }
    wal.sync().unwrap();
    drop(wal);
    let bytes = fs::read(&path).unwrap();
    fs::remove_file(&path).unwrap();
    (bytes, ends)
}

/// How many full records fit in a `len`-byte prefix of the log.
fn committed_in_prefix(ends: &[u64], len: u64) -> usize {
    ends.iter().take_while(|&&e| e <= len).count()
}

/// Crash-at-every-byte: for each strict prefix of a multi-record log,
/// opening the truncated file either reports a torn create (prefix shorter
/// than one header) or recovers exactly the records whose bytes fully fit.
#[test]
fn truncation_at_every_byte_recovers_longest_committed_prefix() {
    let payloads: [&[u8]; 4] = [b"alpha", b"", b"a longer third payload with some girth", b"d"];
    let (bytes, ends) = build_log("everybyte", 3, &payloads);
    for len in 0..=bytes.len() {
        let path = tmp_path("cut");
        fs::write(&path, &bytes[..len]).unwrap();
        match Wal::open(&path) {
            Ok((wal, replay)) => {
                assert!(len as u64 >= HEADER_LEN, "prefix of {len} bytes has no complete header");
                let expect = committed_in_prefix(&ends, len as u64);
                assert_eq!(replay.records.len(), expect, "prefix of {len}/{} bytes", bytes.len());
                assert_eq!(wal.base_generation(), 3);
                assert_eq!(wal.last_generation(), 3 + expect as u64);
                for (i, r) in replay.records.iter().enumerate() {
                    assert_eq!(r.generation, 3 + i as u64 + 1);
                    assert_eq!(r.payload, payloads[i], "record {i} must survive bit-identically");
                }
                // The torn tail is physically gone: a second open is clean.
                let expected_end = if expect == 0 { HEADER_LEN } else { ends[expect - 1] };
                assert_eq!(fs::metadata(&path).unwrap().len(), expected_end);
                let (_, again) = Wal::open(&path).unwrap();
                assert_eq!(again.truncated_bytes, 0, "prefix of {len} bytes: recovery must be idempotent");
            }
            Err(WalError::HeaderTorn) => {
                assert!((len as u64) < HEADER_LEN, "prefix of {len} bytes holds a full header; must not report HeaderTorn");
            }
            Err(e) => panic!("prefix of {len} bytes: unexpected error {e}"),
        }
        fs::remove_file(&path).unwrap();
    }
}

/// Recovery is still appendable: after truncating mid-record, the reopened
/// log accepts the next generation and a further replay sees old + new.
#[test]
fn recovered_log_accepts_the_next_generation() {
    let payloads: [&[u8]; 2] = [b"first", b"second"];
    let (bytes, ends) = build_log("appendable", 0, &payloads);
    // Cut inside the second record: one byte short of its end.
    let cut = (ends[1] - 1) as usize;
    let path = tmp_path("appendcut");
    fs::write(&path, &bytes[..cut]).unwrap();
    let (mut wal, replay) = Wal::open(&path).unwrap();
    assert_eq!(replay.records.len(), 1);
    assert_eq!(wal.last_generation(), 1);
    wal.append(2, b"replacement-second").unwrap();
    wal.sync().unwrap();
    drop(wal);
    let (_, replay) = Wal::open(&path).unwrap();
    let got: Vec<(u64, Vec<u8>)> = replay.records.iter().map(|r| (r.generation, r.payload.clone())).collect();
    assert_eq!(got, vec![(1, b"first".to_vec()), (2, b"replacement-second".to_vec())]);
    fs::remove_file(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Random logs (random base, record count, payload sizes) truncated at
    /// a random offset never panic and always recover exactly the records
    /// that fully fit in the surviving prefix.
    #[test]
    fn random_log_random_cut_never_panics(
        base in 0u64..1000,
        sizes in proptest::collection::vec(0usize..200, 0..8),
        cut_seed in 0u64..u64::MAX,
    ) {
        let payloads: Vec<Vec<u8>> = sizes.iter().enumerate().map(|(i, &n)| vec![(i as u8).wrapping_mul(37); n]).collect();
        let refs: Vec<&[u8]> = payloads.iter().map(Vec::as_slice).collect();
        let (bytes, ends) = build_log("prop", base, &refs);
        let cut = (cut_seed % (bytes.len() as u64 + 1)) as usize;
        let path = tmp_path("propcut");
        fs::write(&path, &bytes[..cut]).unwrap();
        match Wal::open(&path) {
            Ok((wal, replay)) => {
                let expect = committed_in_prefix(&ends, cut as u64);
                prop_assert_eq!(replay.records.len(), expect);
                prop_assert_eq!(wal.last_generation(), base + expect as u64);
                for (i, r) in replay.records.iter().enumerate() {
                    prop_assert_eq!(&r.payload, &payloads[i]);
                }
            }
            Err(WalError::HeaderTorn) => prop_assert!((cut as u64) < HEADER_LEN),
            Err(e) => prop_assert!(false, "cut {cut}: unexpected error {e}"),
        }
        fs::remove_file(&path).unwrap();
    }

    /// Arbitrary garbage appended after the committed prefix (not just
    /// zero-truncation) is detected and truncated away — record CRCs and
    /// the monotonic generation check leave no window for tail soup to be
    /// accepted as a record.
    #[test]
    fn tail_garbage_never_yields_extra_records(
        garbage in proptest::collection::vec(0u8..=255, 1..256),
    ) {
        let payloads: [&[u8]; 2] = [b"one", b"two"];
        let (bytes, ends) = build_log("soup", 10, &payloads);
        let mut soup = bytes.clone();
        soup.extend_from_slice(&garbage);
        let path = tmp_path("soupcut");
        fs::write(&path, &soup).unwrap();
        let (wal, replay) = Wal::open(&path).unwrap();
        // A garbage tail can *only* masquerade as committed records if it
        // forges a valid length, CRC, and the exact next generation — the
        // CRC makes that a 2^-32 event per record; anything else truncates.
        if replay.records.len() > 2 {
            for extra in &replay.records[2..] {
                prop_assert_eq!(crc_of(&extra.payload), extra_crc(&soup, &ends, extra), "forged record must carry a valid CRC");
            }
        } else {
            prop_assert_eq!(replay.records.len(), 2);
            prop_assert_eq!(wal.last_generation(), 12);
            prop_assert_eq!(fs::metadata(&path).unwrap().len(), ends[1]);
        }
        fs::remove_file(&path).unwrap();
    }
}

// Helpers for the (astronomically unlikely) forged-record branch above:
// recompute the CRC the record claims so the assertion documents what a
// "valid forgery" would have required.
fn crc_of(payload: &[u8]) -> u32 {
    // CRC-32 (IEEE), matching the WAL's record checksum.
    let mut table = [0u32; 256];
    for (i, t) in table.iter_mut().enumerate() {
        let mut c = i as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
        }
        *t = c;
    }
    let mut c = !0u32;
    for &b in payload {
        c = table[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

fn extra_crc(soup: &[u8], ends: &[u64], record: &aeetes_core::WalRecord) -> u32 {
    // Walk the raw bytes to the forged record and read its stored CRC.
    let mut pos = *ends.last().unwrap() as usize;
    loop {
        let len = u32::from_le_bytes(soup[pos..pos + 4].try_into().unwrap()) as usize;
        let gen = u64::from_le_bytes(soup[pos + 4..pos + 12].try_into().unwrap());
        let crc = u32::from_le_bytes(soup[pos + 12..pos + 16].try_into().unwrap());
        if gen == record.generation {
            return crc;
        }
        pos += RECORD_HEADER_LEN as usize + len;
    }
}
