//! Property tests for the extraction engine's supporting machinery:
//! window maintenance, overlap suppression and persistence. (Batch
//! extraction properties live in the `aeetes-pool` crate with the
//! executor.)

use aeetes_core::{load_engine, save_engine, suppress_overlaps, Aeetes, AeetesConfig, WindowState};
use aeetes_rules::RuleSet;
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use proptest::prelude::*;

proptest! {
    /// Sliding a window via remove/add matches rebuilding it from scratch,
    /// for every position and length.
    #[test]
    fn window_migrate_equals_rebuild(ranks in proptest::collection::vec(0u32..12, 1..30), l in 1usize..6) {
        prop_assume!(ranks.len() >= l);
        const UNIVERSE: usize = 12;
        let mut w = WindowState::from_ranks(UNIVERSE, ranks[0..l].iter().copied());
        for p in 1..=ranks.len() - l {
            w.remove(ranks[p - 1]);
            w.add(ranks[p + l - 1]);
            let fresh = WindowState::from_ranks(UNIVERSE, ranks[p..p + l].iter().copied());
            prop_assert_eq!(w.live_ranks(), fresh.live_ranks());
            prop_assert_eq!(w.total_len(), l);
        }
    }

    /// The flat count-array window state agrees with a `BTreeMap<rank,
    /// count>` reference model (the pre-dense-remap representation) on any
    /// randomized add/remove/prefix sequence.
    #[test]
    fn window_state_matches_btreemap_model(ops in proptest::collection::vec((0u8..2, 0u32..16, 0usize..20), 0..200)) {
        use std::collections::BTreeMap;
        const UNIVERSE: usize = 16;
        let mut w = WindowState::new();
        w.reset(UNIVERSE);
        let mut model: BTreeMap<u32, u32> = BTreeMap::new();
        let mut total = 0usize;
        for &(op, rank, k) in &ops {
            if op == 1 {
                w.add(rank);
                *model.entry(rank).or_insert(0) += 1;
                total += 1;
            } else if model.contains_key(&rank) {
                // Only remove what the model holds: WindowState::remove on
                // an absent rank is a contract violation, not a no-op.
                w.remove(rank);
                let c = model.get_mut(&rank).unwrap();
                *c -= 1;
                if *c == 0 {
                    model.remove(&rank);
                }
                total -= 1;
            }
            let distinct: Vec<u32> = model.keys().copied().collect();
            prop_assert_eq!(w.live_ranks(), distinct.as_slice());
            prop_assert_eq!(w.distinct_len(), distinct.len());
            prop_assert_eq!(w.total_len(), total);
            prop_assert_eq!(w.is_empty(), total == 0);
            prop_assert_eq!(w.prefix(k), &distinct[..k.min(distinct.len())]);
        }
    }

    /// Overlap suppression returns a subset of its input whose spans are
    /// pairwise disjoint, and every dropped match overlaps a kept match
    /// with a score at least as high.
    #[test]
    fn suppression_invariants(raw in proptest::collection::vec((0u32..20, 1u32..5, 0u32..4, 0u32..100), 0..20)) {
        use aeetes_core::Match;
        use aeetes_rules::DerivedId;
        use aeetes_text::{EntityId, Span};
        let input: Vec<Match> = raw
            .iter()
            .map(|&(start, len, e, score)| Match {
                entity: EntityId(e),
                span: Span { start, len },
                score: score as f64 / 100.0,
                best_variant: DerivedId(0),
            })
            .collect();
        let kept = suppress_overlaps(input.clone());
        for k in &kept {
            prop_assert!(input.iter().any(|m| m == k), "kept match not from input");
        }
        for (i, a) in kept.iter().enumerate() {
            for b in kept.iter().skip(i + 1) {
                prop_assert!(!a.span.overlaps(&b.span), "kept matches overlap");
            }
        }
        for m in &input {
            if !kept.iter().any(|k| k == m) {
                prop_assert!(
                    kept.iter().any(|k| k.span.overlaps(&m.span) && k.score >= m.score - 1e-12),
                    "dropped match {m:?} has no dominating overlap in {kept:?}"
                );
            }
        }
    }

    /// Persistence round-trips arbitrary dictionaries and rules: the loaded
    /// engine extracts identically on arbitrary documents.
    #[test]
    fn persistence_round_trip(entities in proptest::collection::vec("[a-d]( [a-d]){0,3}", 1..5),
                              rule_pairs in proptest::collection::vec(("[a-d]", "[e-h]( [e-h]){0,2}"), 0..4),
                              doc_text in "[a-h]( [a-h]){0,25}") {
        let mut interner = Interner::new();
        let tokenizer = Tokenizer::default();
        let mut dict = Dictionary::new();
        for e in &entities {
            dict.push(e, &tokenizer, &mut interner);
        }
        let mut rules = RuleSet::new();
        for (l, r) in &rule_pairs {
            let _ = rules.push_str(l, r, &tokenizer, &mut interner);
        }
        let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
        let bytes = save_engine(&engine, &interner);
        let (loaded, mut loaded_interner) = load_engine(&bytes).expect("round trip");
        let doc_a = Document::parse(&doc_text, &tokenizer, &mut interner);
        let doc_b = Document::parse(&doc_text, &tokenizer, &mut loaded_interner);
        for tau in [0.7, 0.9, 1.0] {
            prop_assert_eq!(engine.extract(&doc_a, tau), loaded.extract(&doc_b, tau), "tau={}", tau);
        }
    }
}
