//! Filter arithmetic: prefix lengths and window bounds (paper §3.1, §4).

use aeetes_sim::Metric;

/// Rounding guard: `(1−τ)·n` and friends are mathematically integral at
/// common thresholds (e.g. τ=0.8, n=5) but land just below the integer in
/// floating point; nudging up before `floor` keeps the formulas exact.
const EPS: f64 = 1e-9;

/// τ-prefix length for a set of `n` distinct tokens: `⌊(1−τ)·n⌋ + 1`
/// (Lemma 3.1). Zero for an empty set.
#[inline]
pub fn prefix_len(n: usize, tau: f64) -> usize {
    if n == 0 {
        return 0;
    }
    ((((1.0 - tau) * n as f64 + EPS).floor()) as usize + 1).min(n)
}

/// Substring-length bounds for a document given the derived dictionary's
/// minimum/maximum entity lengths (paper §3.1): only substrings with
/// `|s| ∈ [E⊥, E⊤]` can be similar to any entity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowBounds {
    /// Minimum candidate substring token length (`E⊥`, ≥ 1).
    pub min: usize,
    /// Maximum candidate substring token length (`E⊤`).
    pub max: usize,
}

/// Computes `E⊥ = max(1, ⌊|e|⊥·τ⌋)` and `E⊤ = ⌈|e|⊤/τ⌉`.
///
/// Returns `None` when the dictionary is empty (no window can match).
pub fn window_bounds(min_entity_len: Option<usize>, max_entity_len: Option<usize>, tau: f64) -> Option<WindowBounds> {
    metric_window_bounds(min_entity_len, max_entity_len, tau, Metric::Jaccard)
}

/// Metric-generic window bounds: the substring token-length range that can
/// reach `tau` under `metric` against any entity with distinct size in
/// `[|e|⊥, |e|⊤]`. For Overlap (whose admissible partner size is unbounded
/// above) the range is clamped by the mention-length cap `⌈|e|⊤/τ⌉` — the
/// same cap every metric's window enumeration uses.
pub fn metric_window_bounds(min_entity_len: Option<usize>, max_entity_len: Option<usize>, tau: f64, metric: Metric) -> Option<WindowBounds> {
    let lo = min_entity_len?;
    let hi = max_entity_len?;
    debug_assert!(lo <= hi);
    let cap = (hi as f64 / tau - EPS).ceil() as usize;
    let min = metric.length_bounds(lo, tau, cap).0;
    let max = metric.length_bounds(hi, tau, cap).1;
    Some(WindowBounds { min, max })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prefix_len_examples_from_paper() {
        // §4.1 Example 4.1: τ=0.8, |s|=3 → 1; |s|=4 → 1; |s|=5 → 2.
        assert_eq!(prefix_len(3, 0.8), 1);
        assert_eq!(prefix_len(4, 0.8), 1);
        assert_eq!(prefix_len(5, 0.8), 2);
    }

    #[test]
    fn prefix_len_never_exceeds_set_size() {
        for n in 0..20 {
            for tau in [0.1, 0.5, 0.7, 0.9, 1.0] {
                let p = prefix_len(n, tau);
                assert!(p <= n);
                if n > 0 {
                    assert!(p >= 1);
                }
            }
        }
    }

    #[test]
    fn prefix_len_zero_for_empty() {
        assert_eq!(prefix_len(0, 0.8), 0);
    }

    #[test]
    fn window_bounds_basic() {
        let b = window_bounds(Some(1), Some(5), 0.8).unwrap();
        assert_eq!(b, WindowBounds { min: 1, max: 7 });
        let b = window_bounds(Some(2), Some(4), 0.9).unwrap();
        assert_eq!(b, WindowBounds { min: 1, max: 5 });
    }

    #[test]
    fn window_bounds_empty_dictionary() {
        assert!(window_bounds(None, None, 0.8).is_none());
    }

    #[test]
    fn window_min_clamped_to_one() {
        let b = window_bounds(Some(1), Some(1), 0.7).unwrap();
        assert_eq!(b.min, 1);
        assert_eq!(b.max, 2);
    }
}
