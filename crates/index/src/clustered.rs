//! The clustered inverted index (paper §3.2, Algorithm 2, Figures 3–4).
//!
//! For every token `t` the index stores the postings `(derived entity,
//! position of t in the entity's globally-ordered distinct token set)`.
//! Postings are clustered twice:
//!
//! 1. by derived-entity **length** — so a scan can batch-skip whole groups
//!    that violate the length filter, and
//! 2. within a length group by **origin entity** — so once an origin is
//!    already a candidate for the current substring, the rest of its
//!    variants' postings can be skipped in batch.
//!
//! Storage is *globally* flattened (PR 8): because tokens are laid out one
//! after another, their length groups tile the group arrays and the groups'
//! origin clusters tile the origin arrays, so the whole index is six flat
//! prefix-linked arrays (`tok_groups → group_* → origin_* → entries`) held
//! in [`Arena`]s. Built in memory they are plain vectors; opened from a
//! frozen v5 artifact they are zero-copy windows into the file image, and
//! every lookup below works identically on both.

use crate::order::GlobalOrder;
use aeetes_frozen::Arena;
use aeetes_rules::{DerivedDictionary, DerivedId};
use aeetes_text::{EntityId, Interner, TokenId};
use std::sync::Arc;

/// One posting: a derived entity containing the token, and the token's
/// position inside the entity's globally-ordered distinct token set.
///
/// `repr(C)` pins the serialized layout: `derived` at byte 0, `pos` at
/// byte 4, two trailing padding bytes (zeroed by the v5 writer).
#[repr(C)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostingEntry {
    /// The derived entity.
    pub derived: DerivedId,
    /// Position of the token in the ordered entity (0-based); the prefix
    /// filter discards entries with `pos ≥ prefix_len(len, τ)`.
    pub pos: u16,
}

// SAFETY: repr(C) with Pod fields; every bit pattern is valid and the
// trailing padding is never read as typed data.
unsafe impl aeetes_frozen::Pod for PostingEntry {}

/// The inverted list of one token (the paper's `L[t]`): a borrowed window
/// over the index's group range for that token.
#[derive(Clone, Copy)]
pub struct TokenPostings<'a> {
    ix: &'a ClusteredIndex,
    /// Global group-index range `[gs, ge)` of this token's length groups.
    gs: u32,
    ge: u32,
}

/// Borrowed view of one length group (the paper's `Lₗ[t]`).
#[derive(Clone, Copy)]
pub struct LengthGroup<'a> {
    ix: &'a ClusteredIndex,
    /// Global group index.
    g: u32,
}

/// Borrowed view of one origin cluster (the paper's `Lₑˡ[t]`).
#[derive(Clone, Copy)]
pub struct OriginGroup<'a> {
    /// The origin entity all these derived entities stem from.
    pub origin: EntityId,
    /// Postings of this origin's variants with the group's length.
    pub entries: &'a [PostingEntry],
}

impl<'a> TokenPostings<'a> {
    /// Total number of postings under this token.
    pub fn entry_count(&self) -> usize {
        let os = self.ix.group_origins[self.gs as usize] as usize;
        let oe = self.ix.group_origins[self.ge as usize] as usize;
        (self.ix.origin_entries[oe] - self.ix.origin_entries[os]) as usize
    }

    /// Length groups in ascending `len` order.
    pub fn groups(&self) -> impl Iterator<Item = LengthGroup<'a>> + 'a {
        let ix = self.ix;
        (self.gs..self.ge).map(move |g| LengthGroup { ix, g })
    }

    /// Length groups starting from index `i` (see
    /// [`TokenPostings::first_group_at_least`]).
    pub fn groups_from(&self, i: usize) -> impl Iterator<Item = LengthGroup<'a>> + 'a {
        let ix = self.ix;
        let start = (self.gs as usize + i).min(self.ge as usize) as u32;
        (start..self.ge).map(move |g| LengthGroup { ix, g })
    }

    /// Number of length groups.
    pub fn group_count(&self) -> usize {
        (self.ge - self.gs) as usize
    }

    /// Index of the first group with `len ≥ lo` (binary search), relative
    /// to this token's first group.
    pub fn first_group_at_least(&self, lo: usize) -> usize {
        self.ix.group_len[self.gs as usize..self.ge as usize].partition_point(|&len| (len as usize) < lo)
    }
}

impl<'a> LengthGroup<'a> {
    /// Distinct-token-set size of every derived entity in this group.
    /// (This is the group's *key*, not a container size — a group always
    /// holds at least one posting.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.ix.group_len[self.g as usize] as usize
    }

    /// Total postings across the group's origin clusters.
    pub fn entry_count(&self) -> usize {
        let os = self.ix.group_origins[self.g as usize] as usize;
        let oe = self.ix.group_origins[self.g as usize + 1] as usize;
        (self.ix.origin_entries[oe] - self.ix.origin_entries[os]) as usize
    }

    /// Iterates the origin clusters, in ascending origin order.
    pub fn origins(&self) -> impl Iterator<Item = OriginGroup<'a>> + 'a {
        let ix = self.ix;
        let os = ix.group_origins[self.g as usize];
        let oe = ix.group_origins[self.g as usize + 1];
        (os..oe).map(move |o| OriginGroup {
            origin: ix.origin_entity[o as usize],
            entries: &ix.entries[ix.origin_entries[o as usize] as usize..ix.origin_entries[o as usize + 1] as usize],
        })
    }

    /// Number of origin clusters in this group.
    pub fn origin_count(&self) -> usize {
        (self.ix.group_origins[self.g as usize + 1] - self.ix.group_origins[self.g as usize]) as usize
    }
}

/// The raw flat arrays of a [`ClusteredIndex`], for the v5 writer.
#[derive(Debug, Clone, Copy)]
pub struct IndexArenasRef<'a> {
    /// Token → first global group index (`T+1` prefix entries).
    pub tok_groups: &'a [u32],
    /// Group → distinct-set length (`G` entries).
    pub group_len: &'a [u16],
    /// Group → first global origin-cluster index (`G+1` prefix entries).
    pub group_origins: &'a [u32],
    /// Origin cluster → origin entity (`O` entries).
    pub origin_entity: &'a [EntityId],
    /// Origin cluster → first entry index (`O+1` prefix entries).
    pub origin_entries: &'a [u32],
    /// All postings (`E` entries).
    pub entries: &'a [PostingEntry],
    /// Rank-key arena of all derived entities' distinct sets.
    pub set_data: &'a [u64],
    /// Derived entity → set range (`D+1` prefix entries).
    pub set_offsets: &'a [u32],
    /// Derived ids grouped by origin, sorted by ascending set length.
    pub variants_by_len: &'a [DerivedId],
    /// Origin → variants range (`origins+1` prefix entries).
    pub origin_offsets: &'a [u32],
}

/// Owned (or frozen) arenas to reassemble a [`ClusteredIndex`] from; see
/// [`IndexArenasRef`] for field semantics.
#[derive(Debug, Clone, Default)]
pub struct IndexArenas {
    pub tok_groups: Arena<u32>,
    pub group_len: Arena<u16>,
    pub group_origins: Arena<u32>,
    pub origin_entity: Arena<EntityId>,
    pub origin_entries: Arena<u32>,
    pub entries: Arena<PostingEntry>,
    pub set_data: Arena<u64>,
    pub set_offsets: Arena<u32>,
    pub variants_by_len: Arena<DerivedId>,
    pub origin_offsets: Arena<u32>,
}

/// The clustered inverted index over a derived dictionary.
///
/// Also owns the [`GlobalOrder`] and, for verification, the globally-ordered
/// distinct token-key set of every derived entity.
#[derive(Debug, Clone)]
pub struct ClusteredIndex {
    /// Shared so sharded builds can point every per-shard index at one
    /// global order (the shared-order invariant, DESIGN.md §10).
    order: Arc<GlobalOrder>,
    /// `tok_groups[t]..tok_groups[t+1]` is token `t`'s group range.
    tok_groups: Arena<u32>,
    group_len: Arena<u16>,
    group_origins: Arena<u32>,
    origin_entity: Arena<EntityId>,
    origin_entries: Arena<u32>,
    entries: Arena<PostingEntry>,
    /// Rank-key-sorted distinct token sets of all derived entities,
    /// flattened into one arena (`set_offsets[i]..set_offsets[i+1]` is the
    /// set of derived entity `i`). One contiguous allocation keeps the
    /// verification loop cache-friendly across hundreds of thousands of
    /// variants.
    set_data: Arena<u64>,
    set_offsets: Arena<u32>,
    /// Derived ids grouped by origin, each group sorted by ascending
    /// distinct-set length — so verification can binary-search the variants
    /// admitted by the length filter (paper §8 future-work item (i)).
    variants_by_len: Arena<DerivedId>,
    origin_offsets: Arena<u32>,
    min_len: Option<usize>,
    max_len: Option<usize>,
}

impl ClusteredIndex {
    /// Builds the index (paper Algorithm 2). The interner supplies the
    /// strings for the global order's frequency tie-break.
    pub fn build(dd: &DerivedDictionary, interner: &Interner) -> Self {
        let order = Arc::new(GlobalOrder::build(dd, interner));
        Self::build_with_order(dd, order)
    }

    /// Builds the index against an externally constructed [`GlobalOrder`]
    /// (the shard build path: one order shared by every shard's index).
    /// Every token occurring in `dd` must be valid in `order`.
    pub fn build_with_order(dd: &DerivedDictionary, order: Arc<GlobalOrder>) -> Self {
        // Globally-ordered distinct key set per derived entity, flattened.
        let mut set_data: Vec<u64> = Vec::new();
        let mut set_offsets: Vec<u32> = Vec::with_capacity(dd.len() + 1);
        set_offsets.push(0);
        let mut keys: Vec<u64> = Vec::new();
        let mut min_len: Option<usize> = None;
        let mut max_len: Option<usize> = None;
        for (_, d) in dd.iter() {
            keys.clear();
            keys.extend(d.tokens.iter().map(|&t| order.key(t)));
            keys.sort_unstable();
            keys.dedup();
            if !keys.is_empty() {
                min_len = Some(min_len.map_or(keys.len(), |m| m.min(keys.len())));
                max_len = Some(max_len.map_or(keys.len(), |m| m.max(keys.len())));
            }
            set_data.extend_from_slice(&keys);
            set_offsets.push(set_data.len() as u32);
        }

        // Raw postings per token: (len, origin, derived, pos).
        let num_tokens = dd.iter().flat_map(|(_, d)| d.tokens.iter()).map(|t| t.idx() + 1).max().unwrap_or(0);
        let mut raw: Vec<Vec<(u16, EntityId, DerivedId, u16)>> = vec![Vec::new(); num_tokens];
        for (id, d) in dd.iter() {
            let set = &set_data[set_offsets[id.idx()] as usize..set_offsets[id.idx() + 1] as usize];
            // Posting entries address positions with u16, so a variant of
            // more than 65 535 distinct tokens cannot be indexed. Dictionary
            // entities are short phrases (the paper's datasets average 2–7
            // tokens), so this is a build-time assertion on absurd input,
            // not a runtime error path; engines loaded from disk are
            // additionally capped by `persist::MAX_VARIANT_TOKENS` before
            // they reach this code.
            let len = u16::try_from(set.len()).expect("entity set larger than u16::MAX tokens");
            for (pos, &key) in set.iter().enumerate() {
                let t = order.token_of(key);
                raw[t.idx()].push((len, d.origin, id, pos as u16));
            }
        }

        // Cluster: sort each token's postings by (len, origin, derived),
        // then flatten the whole forest into the global prefix-linked
        // arrays — tokens tile the group arrays, groups tile the origin
        // arrays, origins tile the entry arena.
        let mut tok_groups: Vec<u32> = Vec::with_capacity(num_tokens + 1);
        let mut group_len: Vec<u16> = Vec::new();
        let mut group_origins: Vec<u32> = Vec::new();
        let mut origin_entity: Vec<EntityId> = Vec::new();
        let mut origin_entries: Vec<u32> = Vec::new();
        let mut entries: Vec<PostingEntry> = Vec::new();
        for mut raw_entries in raw {
            raw_entries.sort_unstable_by_key(|&(len, origin, derived, _)| (len, origin, derived));
            tok_groups.push(group_len.len() as u32);
            let mut cur_len: Option<u16> = None;
            let mut cur_origin: Option<EntityId> = None;
            for (len, origin, derived, pos) in raw_entries {
                if cur_len != Some(len) {
                    group_len.push(len);
                    group_origins.push(origin_entity.len() as u32);
                    cur_len = Some(len);
                    cur_origin = None;
                }
                if cur_origin != Some(origin) {
                    origin_entity.push(origin);
                    origin_entries.push(entries.len() as u32);
                    cur_origin = Some(origin);
                }
                entries.push(PostingEntry { derived, pos });
            }
        }
        // Close the prefix arrays with their final sentinels.
        tok_groups.push(group_len.len() as u32);
        group_origins.push(origin_entity.len() as u32);
        origin_entries.push(entries.len() as u32);

        // Per-origin variant ids sorted by set length (stable within equal
        // lengths, preserving derivation order).
        let mut variants_by_len: Vec<DerivedId> = Vec::with_capacity(dd.len());
        let mut origin_offsets: Vec<u32> = Vec::with_capacity(dd.origins() + 1);
        origin_offsets.push(0);
        for e in 0..dd.origins() {
            let range = dd.variant_range(EntityId(e as u32));
            let start = variants_by_len.len();
            variants_by_len.extend(range.map(DerivedId));
            let set_len = |id: &DerivedId| set_offsets[id.idx() + 1] - set_offsets[id.idx()];
            variants_by_len[start..].sort_by_key(set_len);
            origin_offsets.push(variants_by_len.len() as u32);
        }

        Self {
            order,
            tok_groups: tok_groups.into(),
            group_len: group_len.into(),
            group_origins: group_origins.into(),
            origin_entity: origin_entity.into(),
            origin_entries: origin_entries.into(),
            entries: entries.into(),
            set_data: set_data.into(),
            set_offsets: set_offsets.into(),
            variants_by_len: variants_by_len.into(),
            origin_offsets: origin_offsets.into(),
            min_len,
            max_len,
        }
    }

    /// Reassembles an index from raw (possibly frozen) arenas, validating
    /// every structural invariant so corrupted artifacts are rejected with
    /// a clean error and no later lookup can read out of bounds:
    ///
    /// - all prefix arrays start at 0, are monotonic and end at their
    ///   target arena's length;
    /// - group lengths are strictly ascending within each token and origin
    ///   entities strictly ascending within each group (the batch-skip
    ///   scans rely on both);
    /// - every posting references an in-range derived id with an in-range
    ///   set position; every variant id in the by-length table is in range
    ///   and sorted by ascending set length within its origin.
    pub fn from_raw_parts(order: Arc<GlobalOrder>, a: IndexArenas) -> Result<Self, String> {
        let groups = a.group_len.len();
        let origins = a.origin_entity.len();
        check_prefix("token group offsets", &a.tok_groups, groups)?;
        if a.group_origins.len() != groups + 1 {
            return Err(format!("group origin offsets hold {} entries, expected {}", a.group_origins.len(), groups + 1));
        }
        check_prefix("group origin offsets", &a.group_origins, origins)?;
        if a.origin_entries.len() != origins + 1 {
            return Err(format!("origin entry offsets hold {} entries, expected {}", a.origin_entries.len(), origins + 1));
        }
        check_prefix("origin entry offsets", &a.origin_entries, a.entries.len())?;
        check_prefix("set offsets", &a.set_offsets, a.set_data.len())?;
        let num_derived = a.set_offsets.len() - 1;
        check_prefix("variant offsets", &a.origin_offsets, a.variants_by_len.len())?;
        if a.variants_by_len.len() != num_derived {
            return Err(format!("variants-by-length table holds {} ids for {} derived entities", a.variants_by_len.len(), num_derived));
        }
        // These scans run on the frozen-open critical path, so hoist plain
        // slices out of the arenas (an Arena deref is a match plus a
        // pointer rebuild) and derive the per-entity set lengths once.
        let tok_groups: &[u32] = &a.tok_groups;
        let group_len: &[u16] = &a.group_len;
        let group_origins: &[u32] = &a.group_origins;
        let origin_entity: &[EntityId] = &a.origin_entity;
        let entries: &[PostingEntry] = &a.entries;
        let set_offsets: &[u32] = &a.set_offsets;
        let variants_by_len: &[DerivedId] = &a.variants_by_len;
        let origin_offsets: &[u32] = &a.origin_offsets;
        // Both "strictly ascending within each range" checks run as one
        // sequential pass over the value array with a boundary bitmap
        // (range starts come from the prefix array) — slicing per range
        // costs more than the comparisons for tens of thousands of tiny
        // ranges. The offending range is only hunted down on failure.
        fn ascending_within(mut values_ok: impl FnMut(usize) -> bool, starts: &[u32], len: usize) -> bool {
            let mut boundary = vec![false; len];
            for &b in starts {
                if (b as usize) < len {
                    boundary[b as usize] = true;
                }
            }
            (1..len).fold(true, |ok, i| ok & (boundary[i] | values_ok(i)))
        }
        if !ascending_within(|i| group_len[i - 1] < group_len[i], tok_groups, groups) {
            let t = (0..tok_groups.len() - 1)
                .find(|&t| group_len[tok_groups[t] as usize..tok_groups[t + 1] as usize].windows(2).any(|w| w[0] >= w[1]))
                .expect("pass found a non-ascending group range");
            return Err(format!("token {t}'s group lengths are not strictly ascending"));
        }
        if !ascending_within(|i| origin_entity[i - 1] < origin_entity[i], group_origins, origins) {
            let g = (0..groups)
                .find(|&g| {
                    origin_entity[group_origins[g] as usize..group_origins[g + 1] as usize]
                        .windows(2)
                        .any(|w| w[0] >= w[1])
                })
                .expect("pass found a non-ascending origin range");
            return Err(format!("group {g}'s origin clusters are not strictly ascending"));
        }
        // `set_len` is kept as u32 (not usize) so the posting and variant
        // scans below gather from a table half the size — these two loops
        // are the hottest part of a frozen open.
        let mut set_len: Vec<u32> = Vec::with_capacity(num_derived);
        let mut min_len: Option<usize> = None;
        let mut max_len: Option<usize> = None;
        for w in set_offsets.windows(2) {
            let l = w[1] - w[0];
            if l > 0 {
                let l = l as usize;
                min_len = Some(min_len.map_or(l, |m| m.min(l)));
                max_len = Some(max_len.map_or(l, |m| m.max(l)));
            }
            set_len.push(l);
        }
        let posting_ok = |e: &PostingEntry| set_len.get(e.derived.idx()).is_some_and(|&l| (e.pos as u32) < l);
        if !entries.iter().fold(true, |ok, e| ok & posting_ok(e)) {
            let (i, e) = entries.iter().enumerate().find(|(_, e)| !posting_ok(e)).expect("fold found a bad posting");
            if e.derived.idx() >= num_derived {
                return Err(format!("posting {i} references derived id {:?} out of {num_derived}", e.derived));
            }
            return Err(format!("posting {i} position {} outside its entity's set of {}", e.pos, set_len[e.derived.idx()]));
        }
        if variants_by_len.iter().map(|d| d.idx()).max().is_some_and(|m| m >= num_derived) {
            let id = variants_by_len.iter().find(|d| d.idx() >= num_derived).expect("max out of range");
            return Err(format!("variant table references derived id {id:?} out of {num_derived}"));
        }
        // Per-origin sortedness by set length, as one sequential pass with
        // a boundary bitmap: each variant's length is gathered exactly once
        // and compared to its predecessor unless an origin starts here.
        let sorted_by_len = {
            let n = variants_by_len.len();
            let mut boundary = vec![false; n];
            for &b in origin_offsets {
                if (b as usize) < n {
                    boundary[b as usize] = true;
                }
            }
            let mut prev = 0u32;
            (0..n).fold(true, |ok, i| {
                let l = set_len[variants_by_len[i].idx()];
                let ok = ok & (boundary[i] | (prev <= l));
                prev = l;
                ok
            })
        };
        if !sorted_by_len {
            let e = (0..origin_offsets.len() - 1)
                .find(|&e| {
                    let ids = &variants_by_len[origin_offsets[e] as usize..origin_offsets[e + 1] as usize];
                    ids.windows(2).any(|w| set_len[w[0].idx()] > set_len[w[1].idx()])
                })
                .expect("pass found an unsorted origin");
            return Err(format!("origin {e}'s variants are not sorted by set length"));
        }
        Ok(Self {
            order,
            tok_groups: a.tok_groups,
            group_len: a.group_len,
            group_origins: a.group_origins,
            origin_entity: a.origin_entity,
            origin_entries: a.origin_entries,
            entries: a.entries,
            set_data: a.set_data,
            set_offsets: a.set_offsets,
            variants_by_len: a.variants_by_len,
            origin_offsets: a.origin_offsets,
            min_len,
            max_len,
        })
    }

    /// Raw views of the flat arrays (the v5 writer serializes these).
    pub fn raw_parts(&self) -> IndexArenasRef<'_> {
        IndexArenasRef {
            tok_groups: &self.tok_groups,
            group_len: &self.group_len,
            group_origins: &self.group_origins,
            origin_entity: &self.origin_entity,
            origin_entries: &self.origin_entries,
            entries: &self.entries,
            set_data: &self.set_data,
            set_offsets: &self.set_offsets,
            variants_by_len: &self.variants_by_len,
            origin_offsets: &self.origin_offsets,
        }
    }

    /// Whether the storage borrows a frozen artifact (zero-copy).
    pub fn is_frozen(&self) -> bool {
        self.entries.is_frozen()
    }

    /// The variants of origin `e`, sorted by ascending distinct-set length.
    /// Together with [`ClusteredIndex::set_len`] this lets verification
    /// binary-search the window admitted by the length filter instead of
    /// scanning every variant.
    pub fn variants_sorted(&self, e: EntityId) -> &[DerivedId] {
        &self.variants_by_len[self.origin_offsets[e.idx()] as usize..self.origin_offsets[e.idx() + 1] as usize]
    }

    /// The global token order used by this index.
    pub fn order(&self) -> &GlobalOrder {
        &self.order
    }

    /// The shared handle to the global order (for building further shard
    /// indexes against the same order).
    pub fn shared_order(&self) -> Arc<GlobalOrder> {
        Arc::clone(&self.order)
    }

    /// The inverted list of `t`, or `None` when `t` occurs in no entity.
    pub fn postings(&self, t: TokenId) -> Option<TokenPostings<'_>> {
        let i = t.idx();
        if i + 1 >= self.tok_groups.len() {
            return None;
        }
        let (gs, ge) = (self.tok_groups[i], self.tok_groups[i + 1]);
        if gs == ge {
            return None;
        }
        Some(TokenPostings { ix: self, gs, ge })
    }

    /// The globally-ordered distinct key set of a derived entity.
    #[inline]
    pub fn derived_set(&self, id: DerivedId) -> &[u64] {
        &self.set_data[self.set_offsets[id.idx()] as usize..self.set_offsets[id.idx() + 1] as usize]
    }

    /// Distinct-set size of a derived entity.
    #[inline]
    pub fn set_len(&self, id: DerivedId) -> usize {
        (self.set_offsets[id.idx() + 1] - self.set_offsets[id.idx()]) as usize
    }

    /// Minimum non-empty distinct-set length over derived entities (`|e|⊥`).
    pub fn min_set_len(&self) -> Option<usize> {
        self.min_len
    }

    /// Maximum distinct-set length over derived entities (`|e|⊤`).
    pub fn max_set_len(&self) -> Option<usize> {
        self.max_len
    }

    /// Total postings across all tokens.
    pub fn total_entries(&self) -> usize {
        self.entries.len()
    }

    /// Approximate size of the index in bytes (for the paper's §6.3
    /// index-size comparison). For a frozen index this is the footprint of
    /// the borrowed file sections, not per-process heap.
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        self.tok_groups.len() * size_of::<u32>()
            + self.group_len.len() * size_of::<u16>()
            + self.group_origins.len() * size_of::<u32>()
            + self.origin_entity.len() * size_of::<EntityId>()
            + self.origin_entries.len() * size_of::<u32>()
            + self.entries.len() * size_of::<PostingEntry>()
            + self.set_data.len() * size_of::<u64>()
            + self.set_offsets.len() * size_of::<u32>()
            + self.variants_by_len.len() * size_of::<DerivedId>()
            + self.origin_offsets.len() * size_of::<u32>()
    }
}

/// Validates a prefix array: non-empty, starts at 0, monotonic, ends at
/// `total`.
fn check_prefix(what: &str, off: &[u32], total: usize) -> Result<(), String> {
    if off.is_empty() {
        return Err(format!("{what} empty"));
    }
    if off[0] != 0 {
        return Err(format!("{what} does not start at 0"));
    }
    // Branchless fold so the monotonicity scan vectorizes (this runs on
    // the frozen-open critical path).
    if !off.windows(2).fold(true, |ok, w| ok & (w[0] <= w[1])) {
        return Err(format!("{what} not monotonic"));
    }
    if off[off.len() - 1] as usize != total {
        return Err(format!("{what} ends at {} but the target holds {total}", off[off.len() - 1]));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    struct Fixture {
        int: Interner,
        dd: DerivedDictionary,
        index: ClusteredIndex,
    }

    fn fixture(entries: &[&str], rules: &[(&str, &str)]) -> Fixture {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        let index = ClusteredIndex::build(&dd, &int);
        Fixture { int, dd, index }
    }

    /// Paper Example 3.2: "University" appears in five derived entities, in
    /// one length-4 group, clustered by origin into three origin groups.
    #[test]
    fn paper_example_3_2_clustering() {
        let mut f = fixture(
            &[
                "Purdue University USA",        // e1
                "Purdue University in Indiana", // e2
                "UQ AU",                        // e3
                "UW Madison",                   // e4
            ],
            &[
                ("UQ", "University of Queensland"),
                ("USA", "United States"),
                ("AU", "Australia"),
                ("UW", "University of Wisconsin"),
                ("UW", "University of Washington"),
            ],
        );
        let uni = f.int.intern("university");
        let tp = f.index.postings(uni).expect("postings for 'university'");
        let total = tp.entry_count();
        assert!(total >= 5, "at least five postings, got {total}");
        // Length-4 group must exist and contain ≥ 2 distinct origins.
        let g4 = tp.groups().find(|g| g.len() == 4).expect("length-4 group");
        assert!(g4.origin_count() >= 2);
        // Origin groups are ordered and non-empty.
        let origins: Vec<EntityId> = g4.origins().map(|o| o.origin).collect();
        for w in origins.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(g4.entry_count(), g4.origins().map(|o| o.entries.len()).sum::<usize>());
    }

    #[test]
    fn groups_sorted_by_length() {
        let f = fixture(&["a", "a b", "a b c", "a b c d"], &[]);
        let mut int2 = f.int.clone();
        let a = int2.intern("a");
        let tp = f.index.postings(a).unwrap();
        let lens: Vec<usize> = tp.groups().map(|g| g.len()).collect();
        assert_eq!(lens, vec![1, 2, 3, 4]);
        assert_eq!(tp.first_group_at_least(3), 2);
        assert_eq!(tp.first_group_at_least(5), 4);
        assert_eq!(tp.first_group_at_least(0), 0);
        assert_eq!(tp.groups_from(2).count(), 2);
        assert_eq!(tp.group_count(), 4);
    }

    #[test]
    fn positions_follow_global_order() {
        // "of" appears in both entities (freq 2), the others once each →
        // rare tokens come first in the ordered entity.
        let mut f = fixture(&["university of washington", "school of rock"], &[]);
        let of = f.int.intern("of");
        let tp = f.index.postings(of).unwrap();
        for g in tp.groups() {
            for og in g.origins() {
                for e in og.entries {
                    // "of" is the most frequent token → last position (2 of 0..3).
                    assert_eq!(e.pos, 2);
                    // cross-check against the stored set
                    let set = f.index.derived_set(e.derived);
                    assert_eq!(f.index.order().token_of(set[e.pos as usize]), of);
                }
            }
        }
    }

    #[test]
    fn duplicate_tokens_index_once() {
        let mut f = fixture(&["ny ny ny"], &[]);
        let ny = f.int.intern("ny");
        let tp = f.index.postings(ny).unwrap();
        assert_eq!(tp.entry_count(), 1);
        assert_eq!(tp.groups().next().unwrap().len(), 1, "distinct-set length is 1");
    }

    #[test]
    fn unknown_token_has_no_postings() {
        let mut f = fixture(&["alpha beta"], &[]);
        let z = f.int.intern("zzz");
        assert!(f.index.postings(z).is_none());
    }

    #[test]
    fn min_max_set_len() {
        let f = fixture(&["a", "b c d e f"], &[]);
        assert_eq!(f.index.min_set_len(), Some(1));
        assert_eq!(f.index.max_set_len(), Some(5));
    }

    #[test]
    fn empty_dictionary() {
        let f = fixture(&[], &[]);
        assert_eq!(f.index.min_set_len(), None);
        assert_eq!(f.index.max_set_len(), None);
        assert_eq!(f.index.total_entries(), 0);
    }

    #[test]
    fn total_entries_counts_all_sets() {
        let f = fixture(&["a b", "c d"], &[]);
        assert_eq!(f.index.total_entries(), 4);
        assert_eq!(f.dd.len(), 2);
    }

    #[test]
    fn size_bytes_positive_and_grows() {
        let small = fixture(&["a b"], &[]);
        let big = fixture(&["a b c d e", "f g h i j", "k l m n o"], &[]);
        assert!(small.index.size_bytes() > 0);
        assert!(big.index.size_bytes() > small.index.size_bytes());
    }

    fn owned_arenas(ix: &ClusteredIndex) -> IndexArenas {
        let r = ix.raw_parts();
        IndexArenas {
            tok_groups: r.tok_groups.to_vec().into(),
            group_len: r.group_len.to_vec().into(),
            group_origins: r.group_origins.to_vec().into(),
            origin_entity: r.origin_entity.to_vec().into(),
            origin_entries: r.origin_entries.to_vec().into(),
            entries: r.entries.to_vec().into(),
            set_data: r.set_data.to_vec().into(),
            set_offsets: r.set_offsets.to_vec().into(),
            variants_by_len: r.variants_by_len.to_vec().into(),
            origin_offsets: r.origin_offsets.to_vec().into(),
        }
    }

    #[test]
    fn raw_round_trip_preserves_lookups() {
        let mut f = fixture(
            &["Purdue University USA", "UQ AU", "UW Madison"],
            &[("UQ", "University of Queensland"), ("UW", "University of Wisconsin")],
        );
        let re = ClusteredIndex::from_raw_parts(f.index.shared_order(), owned_arenas(&f.index)).unwrap();
        assert_eq!(re.min_set_len(), f.index.min_set_len());
        assert_eq!(re.max_set_len(), f.index.max_set_len());
        assert_eq!(re.total_entries(), f.index.total_entries());
        for t in 0..f.int.len() as u32 {
            let t = TokenId(t);
            match (f.index.postings(t), re.postings(t)) {
                (None, None) => {}
                (Some(a), Some(b)) => {
                    assert_eq!(a.entry_count(), b.entry_count());
                    assert_eq!(a.group_count(), b.group_count());
                    for (ga, gb) in a.groups().zip(b.groups()) {
                        assert_eq!(ga.len(), gb.len());
                        let oa: Vec<_> = ga.origins().map(|o| (o.origin, o.entries.to_vec())).collect();
                        let ob: Vec<_> = gb.origins().map(|o| (o.origin, o.entries.to_vec())).collect();
                        assert_eq!(oa, ob);
                    }
                }
                (a, b) => panic!("postings presence diverged for {t:?}: {:?} vs {:?}", a.is_some(), b.is_some()),
            }
        }
        let _ = f.int.intern("anything");
    }

    #[test]
    fn raw_validation_rejects_corruption() {
        let f = fixture(&["a b c", "a d"], &[]);
        let ok = owned_arenas(&f.index);
        assert!(ClusteredIndex::from_raw_parts(f.index.shared_order(), ok.clone()).is_ok());

        let mut bad = ok.clone();
        bad.tok_groups.as_mut_vec()[0] = 7;
        assert!(ClusteredIndex::from_raw_parts(f.index.shared_order(), bad).is_err(), "prefix not starting at 0");

        let mut bad = ok.clone();
        let n = bad.origin_entries.len();
        bad.origin_entries.as_mut_vec()[n - 1] += 1;
        assert!(ClusteredIndex::from_raw_parts(f.index.shared_order(), bad).is_err(), "prefix past arena");

        let mut bad = ok.clone();
        if let Some(e) = bad.entries.as_mut_vec().first_mut() {
            e.derived = DerivedId(u32::MAX);
        }
        assert!(ClusteredIndex::from_raw_parts(f.index.shared_order(), bad).is_err(), "derived id out of range");

        let mut bad = ok.clone();
        if let Some(e) = bad.entries.as_mut_vec().first_mut() {
            e.pos = u16::MAX;
        }
        assert!(ClusteredIndex::from_raw_parts(f.index.shared_order(), bad).is_err(), "position outside set");

        let mut bad = ok.clone();
        // Token "a" occurs in both entities → its two groups sit first.
        bad.group_len.as_mut_vec().swap(0, 1);
        assert!(ClusteredIndex::from_raw_parts(f.index.shared_order(), bad).is_err(), "group lengths unsorted");
    }
}
