//! The clustered inverted index (paper §3.2, Algorithm 2, Figures 3–4).
//!
//! For every token `t` the index stores the postings `(derived entity,
//! position of t in the entity's globally-ordered distinct token set)`.
//! Postings are clustered twice:
//!
//! 1. by derived-entity **length** — so a scan can batch-skip whole groups
//!    that violate the length filter, and
//! 2. within a length group by **origin entity** — so once an origin is
//!    already a candidate for the current substring, the rest of its
//!    variants' postings can be skipped in batch.
//!
//! Storage is flattened: one token's postings live in three parallel
//! arrays (`groups` → `origins` → `entries`, linked by offset ranges), so a
//! scan walks contiguous memory and the per-group overhead stays at a few
//! words — the paper reports its clustered index at roughly 2× the flat
//! FaerieR index, which nested per-group `Vec`s would far exceed.

use crate::order::GlobalOrder;
use aeetes_rules::{DerivedDictionary, DerivedId};
use aeetes_text::{EntityId, Interner, TokenId};
use std::sync::Arc;

/// One posting: a derived entity containing the token, and the token's
/// position inside the entity's globally-ordered distinct token set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PostingEntry {
    /// The derived entity.
    pub derived: DerivedId,
    /// Position of the token in the ordered entity (0-based); the prefix
    /// filter discards entries with `pos ≥ prefix_len(len, τ)`.
    pub pos: u16,
}

/// Descriptor of one length group: derived-entity length plus the range of
/// origin groups under it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct LengthGroupRef {
    len: u16,
    origins_start: u32,
    origins_end: u32,
}

/// Descriptor of one origin cluster: the origin entity plus its entry range.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct OriginGroupRef {
    origin: EntityId,
    entries_start: u32,
    entries_end: u32,
}

/// The inverted list of one token (the paper's `L[t]`), flattened.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TokenPostings {
    groups: Vec<LengthGroupRef>,
    origins: Vec<OriginGroupRef>,
    entries: Vec<PostingEntry>,
}

/// Borrowed view of one length group (the paper's `Lₗ[t]`).
#[derive(Clone, Copy)]
pub struct LengthGroup<'a> {
    tp: &'a TokenPostings,
    group: LengthGroupRef,
}

impl<'a> LengthGroup<'a> {
    /// Distinct-token-set size of every derived entity in this group.
    /// (This is the group's *key*, not a container size — a group always
    /// holds at least one posting.)
    #[inline]
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.group.len as usize
    }

    /// Total postings across the group's origin clusters.
    pub fn entry_count(&self) -> usize {
        let s = self.tp.origins[self.group.origins_start as usize].entries_start;
        let e = self.tp.origins[self.group.origins_end as usize - 1].entries_end;
        (e - s) as usize
    }

    /// Iterates the origin clusters, in ascending origin order.
    pub fn origins(&self) -> impl Iterator<Item = OriginGroup<'a>> + 'a {
        let tp = self.tp;
        tp.origins[self.group.origins_start as usize..self.group.origins_end as usize]
            .iter()
            .map(move |og| OriginGroup {
                origin: og.origin,
                entries: &tp.entries[og.entries_start as usize..og.entries_end as usize],
            })
    }

    /// Number of origin clusters in this group.
    pub fn origin_count(&self) -> usize {
        (self.group.origins_end - self.group.origins_start) as usize
    }
}

/// Borrowed view of one origin cluster (the paper's `Lₑˡ[t]`).
#[derive(Clone, Copy)]
pub struct OriginGroup<'a> {
    /// The origin entity all these derived entities stem from.
    pub origin: EntityId,
    /// Postings of this origin's variants with the group's length.
    pub entries: &'a [PostingEntry],
}

impl TokenPostings {
    /// Total number of postings under this token.
    pub fn entry_count(&self) -> usize {
        self.entries.len()
    }

    /// Length groups in ascending `len` order.
    pub fn groups(&self) -> impl Iterator<Item = LengthGroup<'_>> {
        self.groups.iter().map(move |&group| LengthGroup { tp: self, group })
    }

    /// Length groups starting from index `i` (see
    /// [`TokenPostings::first_group_at_least`]).
    pub fn groups_from(&self, i: usize) -> impl Iterator<Item = LengthGroup<'_>> {
        self.groups[i.min(self.groups.len())..].iter().map(move |&group| LengthGroup { tp: self, group })
    }

    /// Number of length groups.
    pub fn group_count(&self) -> usize {
        self.groups.len()
    }

    /// Index of the first group with `len ≥ lo` (binary search).
    pub fn first_group_at_least(&self, lo: usize) -> usize {
        self.groups.partition_point(|g| (g.len as usize) < lo)
    }
}

/// The clustered inverted index over a derived dictionary.
///
/// Also owns the [`GlobalOrder`] and, for verification, the globally-ordered
/// distinct token-key set of every derived entity.
#[derive(Debug, Clone)]
pub struct ClusteredIndex {
    /// Shared so sharded builds can point every per-shard index at one
    /// global order (the shared-order invariant, DESIGN.md §10).
    order: Arc<GlobalOrder>,
    postings: Vec<TokenPostings>,
    /// Rank-key-sorted distinct token sets of all derived entities,
    /// flattened into one arena (`set_offsets[i]..set_offsets[i+1]` is the
    /// set of derived entity `i`). One contiguous allocation keeps the
    /// verification loop cache-friendly across hundreds of thousands of
    /// variants.
    set_data: Vec<u64>,
    set_offsets: Vec<u32>,
    /// Derived ids grouped by origin, each group sorted by ascending
    /// distinct-set length — so verification can binary-search the variants
    /// admitted by the length filter (paper §8 future-work item (i)).
    variants_by_len: Vec<DerivedId>,
    origin_offsets: Vec<u32>,
    min_len: Option<usize>,
    max_len: Option<usize>,
}

impl ClusteredIndex {
    /// Builds the index (paper Algorithm 2). The interner supplies the
    /// strings for the global order's frequency tie-break.
    pub fn build(dd: &DerivedDictionary, interner: &Interner) -> Self {
        let order = Arc::new(GlobalOrder::build(dd, interner));
        Self::build_with_order(dd, order)
    }

    /// Builds the index against an externally constructed [`GlobalOrder`]
    /// (the shard build path: one order shared by every shard's index).
    /// Every token occurring in `dd` must be valid in `order`.
    pub fn build_with_order(dd: &DerivedDictionary, order: Arc<GlobalOrder>) -> Self {
        // Globally-ordered distinct key set per derived entity, flattened.
        let mut set_data: Vec<u64> = Vec::new();
        let mut set_offsets: Vec<u32> = Vec::with_capacity(dd.len() + 1);
        set_offsets.push(0);
        let mut keys: Vec<u64> = Vec::new();
        let mut min_len: Option<usize> = None;
        let mut max_len: Option<usize> = None;
        for (_, d) in dd.iter() {
            keys.clear();
            keys.extend(d.tokens.iter().map(|&t| order.key(t)));
            keys.sort_unstable();
            keys.dedup();
            if !keys.is_empty() {
                min_len = Some(min_len.map_or(keys.len(), |m| m.min(keys.len())));
                max_len = Some(max_len.map_or(keys.len(), |m| m.max(keys.len())));
            }
            set_data.extend_from_slice(&keys);
            set_offsets.push(set_data.len() as u32);
        }

        // Raw postings per token: (len, origin, derived, pos).
        let num_tokens = dd.iter().flat_map(|(_, d)| d.tokens.iter()).map(|t| t.idx() + 1).max().unwrap_or(0);
        let mut raw: Vec<Vec<(u16, EntityId, DerivedId, u16)>> = vec![Vec::new(); num_tokens];
        for (id, d) in dd.iter() {
            let set = &set_data[set_offsets[id.idx()] as usize..set_offsets[id.idx() + 1] as usize];
            // Posting entries address positions with u16, so a variant of
            // more than 65 535 distinct tokens cannot be indexed. Dictionary
            // entities are short phrases (the paper's datasets average 2–7
            // tokens), so this is a build-time assertion on absurd input,
            // not a runtime error path; engines loaded from disk are
            // additionally capped by `persist::MAX_VARIANT_TOKENS` before
            // they reach this code.
            let len = u16::try_from(set.len()).expect("entity set larger than u16::MAX tokens");
            for (pos, &key) in set.iter().enumerate() {
                let t = order.token_of(key);
                raw[t.idx()].push((len, d.origin, id, pos as u16));
            }
        }

        // Cluster: sort by (len, origin, derived), then flatten the group
        // tree into the three parallel arrays.
        let mut postings = Vec::with_capacity(num_tokens);
        for mut raw_entries in raw {
            raw_entries.sort_unstable_by_key(|&(len, origin, derived, _)| (len, origin, derived));
            let mut tp = TokenPostings::default();
            for (len, origin, derived, pos) in raw_entries {
                let entry_at = tp.entries.len() as u32;
                let new_group = tp.groups.last().is_none_or(|g| g.len != len);
                if new_group {
                    tp.groups.push(LengthGroupRef {
                        len,
                        origins_start: tp.origins.len() as u32,
                        origins_end: tp.origins.len() as u32,
                    });
                }
                // Unreachable expect: when `new_group` a group was pushed
                // two lines up; otherwise `is_none_or` returning false
                // proves `groups.last()` exists.
                let group = tp.groups.last_mut().expect("just ensured");
                let new_origin = new_group || tp.origins.get(group.origins_end as usize - 1).is_none_or(|og| og.origin != origin);
                if new_origin {
                    tp.origins.push(OriginGroupRef { origin, entries_start: entry_at, entries_end: entry_at });
                    group.origins_end += 1;
                }
                tp.entries.push(PostingEntry { derived, pos });
                // Unreachable expect: `new_origin` is true on the first
                // iteration (new_group forces it), so an origin group was
                // pushed before any entry lands here.
                tp.origins.last_mut().expect("just ensured").entries_end += 1;
            }
            tp.groups.shrink_to_fit();
            tp.origins.shrink_to_fit();
            tp.entries.shrink_to_fit();
            postings.push(tp);
        }

        // Per-origin variant ids sorted by set length (stable within equal
        // lengths, preserving derivation order).
        let mut variants_by_len: Vec<DerivedId> = Vec::with_capacity(dd.len());
        let mut origin_offsets: Vec<u32> = Vec::with_capacity(dd.origins() + 1);
        origin_offsets.push(0);
        for e in 0..dd.origins() {
            let range = dd.variant_range(EntityId(e as u32));
            let start = variants_by_len.len();
            variants_by_len.extend(range.map(DerivedId));
            let set_len = |id: &DerivedId| set_offsets[id.idx() + 1] - set_offsets[id.idx()];
            variants_by_len[start..].sort_by_key(set_len);
            origin_offsets.push(variants_by_len.len() as u32);
        }

        Self {
            order,
            postings,
            set_data,
            set_offsets,
            variants_by_len,
            origin_offsets,
            min_len,
            max_len,
        }
    }

    /// The variants of origin `e`, sorted by ascending distinct-set length.
    /// Together with [`ClusteredIndex::set_len`] this lets verification
    /// binary-search the window admitted by the length filter instead of
    /// scanning every variant.
    pub fn variants_sorted(&self, e: EntityId) -> &[DerivedId] {
        &self.variants_by_len[self.origin_offsets[e.idx()] as usize..self.origin_offsets[e.idx() + 1] as usize]
    }

    /// The global token order used by this index.
    pub fn order(&self) -> &GlobalOrder {
        &self.order
    }

    /// The shared handle to the global order (for building further shard
    /// indexes against the same order).
    pub fn shared_order(&self) -> Arc<GlobalOrder> {
        Arc::clone(&self.order)
    }

    /// The inverted list of `t`, or `None` when `t` occurs in no entity.
    pub fn postings(&self, t: TokenId) -> Option<&TokenPostings> {
        self.postings.get(t.idx()).filter(|p| !p.groups.is_empty())
    }

    /// The globally-ordered distinct key set of a derived entity.
    #[inline]
    pub fn derived_set(&self, id: DerivedId) -> &[u64] {
        &self.set_data[self.set_offsets[id.idx()] as usize..self.set_offsets[id.idx() + 1] as usize]
    }

    /// Distinct-set size of a derived entity.
    #[inline]
    pub fn set_len(&self, id: DerivedId) -> usize {
        (self.set_offsets[id.idx() + 1] - self.set_offsets[id.idx()]) as usize
    }

    /// Minimum non-empty distinct-set length over derived entities (`|e|⊥`).
    pub fn min_set_len(&self) -> Option<usize> {
        self.min_len
    }

    /// Maximum distinct-set length over derived entities (`|e|⊤`).
    pub fn max_set_len(&self) -> Option<usize> {
        self.max_len
    }

    /// Total postings across all tokens.
    pub fn total_entries(&self) -> usize {
        self.postings.iter().map(TokenPostings::entry_count).sum()
    }

    /// Approximate heap size of the index in bytes (for the paper's §6.3
    /// index-size comparison).
    pub fn size_bytes(&self) -> usize {
        use std::mem::size_of;
        let mut n = self.postings.capacity() * size_of::<TokenPostings>();
        for tp in &self.postings {
            n += tp.groups.capacity() * size_of::<LengthGroupRef>();
            n += tp.origins.capacity() * size_of::<OriginGroupRef>();
            n += tp.entries.capacity() * size_of::<PostingEntry>();
        }
        n += self.set_data.capacity() * size_of::<u64>();
        n += self.set_offsets.capacity() * size_of::<u32>();
        n += self.variants_by_len.capacity() * size_of::<DerivedId>();
        n += self.origin_offsets.capacity() * size_of::<u32>();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    struct Fixture {
        int: Interner,
        dd: DerivedDictionary,
        index: ClusteredIndex,
    }

    fn fixture(entries: &[&str], rules: &[(&str, &str)]) -> Fixture {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        let index = ClusteredIndex::build(&dd, &int);
        Fixture { int, dd, index }
    }

    /// Paper Example 3.2: "University" appears in five derived entities, in
    /// one length-4 group, clustered by origin into three origin groups.
    #[test]
    fn paper_example_3_2_clustering() {
        let mut f = fixture(
            &[
                "Purdue University USA",        // e1
                "Purdue University in Indiana", // e2
                "UQ AU",                        // e3
                "UW Madison",                   // e4
            ],
            &[
                ("UQ", "University of Queensland"),
                ("USA", "United States"),
                ("AU", "Australia"),
                ("UW", "University of Wisconsin"),
                ("UW", "University of Washington"),
            ],
        );
        let uni = f.int.intern("university");
        let tp = f.index.postings(uni).expect("postings for 'university'");
        let total = tp.entry_count();
        assert!(total >= 5, "at least five postings, got {total}");
        // Length-4 group must exist and contain ≥ 2 distinct origins.
        let g4 = tp.groups().find(|g| g.len() == 4).expect("length-4 group");
        assert!(g4.origin_count() >= 2);
        // Origin groups are ordered and non-empty.
        let origins: Vec<EntityId> = g4.origins().map(|o| o.origin).collect();
        for w in origins.windows(2) {
            assert!(w[0] < w[1]);
        }
        assert_eq!(g4.entry_count(), g4.origins().map(|o| o.entries.len()).sum::<usize>());
    }

    #[test]
    fn groups_sorted_by_length() {
        let f = fixture(&["a", "a b", "a b c", "a b c d"], &[]);
        let mut int2 = f.int.clone();
        let a = int2.intern("a");
        let tp = f.index.postings(a).unwrap();
        let lens: Vec<usize> = tp.groups().map(|g| g.len()).collect();
        assert_eq!(lens, vec![1, 2, 3, 4]);
        assert_eq!(tp.first_group_at_least(3), 2);
        assert_eq!(tp.first_group_at_least(5), 4);
        assert_eq!(tp.first_group_at_least(0), 0);
        assert_eq!(tp.groups_from(2).count(), 2);
        assert_eq!(tp.group_count(), 4);
    }

    #[test]
    fn positions_follow_global_order() {
        // "of" appears in both entities (freq 2), the others once each →
        // rare tokens come first in the ordered entity.
        let mut f = fixture(&["university of washington", "school of rock"], &[]);
        let of = f.int.intern("of");
        let tp = f.index.postings(of).unwrap();
        for g in tp.groups() {
            for og in g.origins() {
                for e in og.entries {
                    // "of" is the most frequent token → last position (2 of 0..3).
                    assert_eq!(e.pos, 2);
                    // cross-check against the stored set
                    let set = f.index.derived_set(e.derived);
                    assert_eq!(f.index.order().token_of(set[e.pos as usize]), of);
                }
            }
        }
    }

    #[test]
    fn duplicate_tokens_index_once() {
        let mut f = fixture(&["ny ny ny"], &[]);
        let ny = f.int.intern("ny");
        let tp = f.index.postings(ny).unwrap();
        assert_eq!(tp.entry_count(), 1);
        assert_eq!(tp.groups().next().unwrap().len(), 1, "distinct-set length is 1");
    }

    #[test]
    fn unknown_token_has_no_postings() {
        let mut f = fixture(&["alpha beta"], &[]);
        let z = f.int.intern("zzz");
        assert!(f.index.postings(z).is_none());
    }

    #[test]
    fn min_max_set_len() {
        let f = fixture(&["a", "b c d e f"], &[]);
        assert_eq!(f.index.min_set_len(), Some(1));
        assert_eq!(f.index.max_set_len(), Some(5));
    }

    #[test]
    fn empty_dictionary() {
        let f = fixture(&[], &[]);
        assert_eq!(f.index.min_set_len(), None);
        assert_eq!(f.index.max_set_len(), None);
        assert_eq!(f.index.total_entries(), 0);
    }

    #[test]
    fn total_entries_counts_all_sets() {
        let f = fixture(&["a b", "c d"], &[]);
        assert_eq!(f.index.total_entries(), 4);
        assert_eq!(f.dd.len(), 2);
    }

    #[test]
    fn size_bytes_positive_and_grows() {
        let small = fixture(&["a b"], &[]);
        let big = fixture(&["a b c d e", "f g h i j", "k l m n o"], &[]);
        assert!(small.index.size_bytes() > 0);
        assert!(big.index.size_bytes() > small.index.size_bytes());
    }
}
