//! Indexing substrate for Aeetes (paper §3).
//!
//! * [`GlobalOrder`] — the token order `O`: ascending frequency over the
//!   derived dictionary; document tokens unknown to the dictionary
//!   ("invalid" tokens) are treated as frequency 0 (§3.2).
//! * [`prefix_len`] / window bound helpers — the length- and prefix-filter
//!   arithmetic of §3.1.
//! * [`ClusteredIndex`] — the clustered inverted index: for each token, the
//!   postings `(derived entity, position)` grouped first by derived-entity
//!   length and, inside each length group, by origin entity, enabling the
//!   batch skips of §3.2.

mod clustered;
mod filters;
mod order;

pub use clustered::{ClusteredIndex, IndexArenas, IndexArenasRef, LengthGroup, OriginGroup, PostingEntry, TokenPostings};
pub use filters::{metric_window_bounds, prefix_len, window_bounds, WindowBounds};
pub use order::GlobalOrder;
