//! The global token order `O` (paper §3.2).

use aeetes_frozen::Arena;
use aeetes_rules::DerivedDictionary;
use aeetes_text::{Interner, TokenId};

/// Ascending-frequency global order over tokens.
///
/// A token's *frequency* is the number of derived entities whose distinct
/// token set contains it. Tokens are compared by `(frequency, token string)`,
/// packed into a single `u64` key: smaller key ⇒ rarer ⇒ earlier in every
/// sorted prefix. Equal-frequency tokens tie-break by their *string* rather
/// than their interner id, so two builds that intern the same vocabulary in
/// different insertion orders (e.g. a single-engine build vs. per-shard
/// builds) still produce identical prefixes. Tokens that appear in no derived
/// entity (the paper's *invalid* tokens, including tokens interned after the
/// index was built) get frequency 0 and therefore sort before all valid
/// tokens — harmless, because their posting lists are empty.
///
/// The three arrays live in [`Arena`]s: heap vectors when built in memory,
/// zero-copy windows into the file image when opened from a frozen artifact.
#[derive(Debug, Clone, Default)]
pub struct GlobalOrder {
    /// token idx → number of derived entities containing it (0 = invalid).
    freq: Arena<u32>,
    /// token idx → rank of the token's string among all valid tokens.
    /// Only meaningful where `freq > 0`.
    tie: Arena<u32>,
    /// string rank → token, inverse of `tie` (valid tokens only).
    untie: Arena<TokenId>,
}

impl GlobalOrder {
    /// Builds the order from a derived dictionary. The interner must be the
    /// one the dictionary was tokenized with; it supplies the tie-break
    /// strings.
    pub fn build(dd: &DerivedDictionary, interner: &Interner) -> Self {
        Self::build_many(&[dd], interner)
    }

    /// Builds one order shared by several derived dictionaries (the shard
    /// build path): frequencies are summed across all parts, so every part
    /// sees the same key for the same token regardless of how the entity
    /// space was partitioned.
    pub fn build_many(parts: &[&DerivedDictionary], interner: &Interner) -> Self {
        let max_id = parts
            .iter()
            .flat_map(|dd| dd.iter())
            .flat_map(|(_, d)| d.tokens.iter())
            .map(|t| t.idx())
            .max()
            .map_or(0, |m| m + 1);
        let mut freq = vec![0u32; max_id];
        let mut seen: Vec<TokenId> = Vec::new();
        for dd in parts {
            for (_, d) in dd.iter() {
                seen.clear();
                seen.extend_from_slice(d.tokens);
                seen.sort_unstable();
                seen.dedup();
                for t in &seen {
                    freq[t.idx()] += 1;
                }
            }
        }
        let fresh: Vec<TokenId> = (0..max_id as u32).map(TokenId).filter(|t| freq[t.idx()] > 0).collect();
        let mut tie = vec![0u32; max_id];
        let mut untie = Vec::new();
        assign_ranks(&mut tie, &mut untie, fresh, interner);
        Self { freq: freq.into(), tie: tie.into(), untie: untie.into() }
    }

    /// Extends the order with tokens that first appear in `parts`, keeping
    /// every existing key frozen (append-only).
    ///
    /// This is the delta path: a generation update must not re-key tokens
    /// that unaffected shards already indexed, so existing frequencies and
    /// tie ranks are left untouched and only previously-invalid tokens are
    /// admitted (with their frequency counted over `parts` and string ranks
    /// appended after all existing ranks). The resulting order can drift
    /// from the true corpus frequencies — that affects prefix sizes
    /// (performance), never correctness; a full rebuild re-keys everything.
    /// The result is always heap-owned, even when `self` is frozen —
    /// this is the copy-on-write step of a frozen deployment's update path.
    pub fn extend(&self, parts: &[&DerivedDictionary], interner: &Interner) -> Self {
        let max_id = parts
            .iter()
            .flat_map(|dd| dd.iter())
            .flat_map(|(_, d)| d.tokens.iter())
            .map(|t| t.idx())
            .max()
            .map_or(0, |m| m + 1)
            .max(self.freq.len());
        let mut freq = self.freq.to_vec();
        let mut tie = self.tie.to_vec();
        let mut untie = self.untie.to_vec();
        freq.resize(max_id, 0);
        tie.resize(max_id, 0);
        let mut delta = vec![0u32; max_id];
        let mut seen: Vec<TokenId> = Vec::new();
        for dd in parts {
            for (_, d) in dd.iter() {
                seen.clear();
                seen.extend_from_slice(d.tokens);
                seen.sort_unstable();
                seen.dedup();
                for t in &seen {
                    delta[t.idx()] += 1;
                }
            }
        }
        let mut fresh: Vec<TokenId> = Vec::new();
        for (i, &d) in delta.iter().enumerate() {
            if d > 0 && freq[i] == 0 {
                freq[i] = d;
                fresh.push(TokenId(i as u32));
            }
        }
        assign_ranks(&mut tie, &mut untie, fresh, interner);
        Self { freq: freq.into(), tie: tie.into(), untie: untie.into() }
    }

    /// Reassembles an order from raw (possibly frozen) arenas, validating
    /// the rank permutation: `untie` must hold exactly the valid tokens,
    /// each in range, with `tie` as its inverse.
    ///
    /// # Errors
    /// Returns a message describing the first violated invariant.
    pub fn from_raw_parts(freq: Arena<u32>, tie: Arena<u32>, untie: Arena<TokenId>) -> Result<Self, String> {
        if tie.len() != freq.len() {
            return Err(format!("tie array holds {} entries, freq holds {}", tie.len(), freq.len()));
        }
        let valid = freq.iter().filter(|&&f| f > 0).count();
        if untie.len() != valid {
            return Err(format!("untie array holds {} ranks but {} tokens are valid", untie.len(), valid));
        }
        for (rank, &t) in untie.iter().enumerate() {
            if t.idx() >= freq.len() {
                return Err(format!("untie rank {rank} names token {t:?} out of range {}", freq.len()));
            }
            if freq[t.idx()] == 0 {
                return Err(format!("untie rank {rank} names invalid token {t:?}"));
            }
            if tie[t.idx()] as usize != rank {
                return Err(format!("tie/untie disagree at rank {rank}: tie[{t:?}] = {}", tie[t.idx()]));
            }
        }
        Ok(Self { freq, tie, untie })
    }

    /// Raw arena views in [`GlobalOrder::from_raw_parts`] order (the v5
    /// writer serializes exactly these three arrays).
    pub fn raw_parts(&self) -> (&[u32], &[u32], &[TokenId]) {
        (&self.freq, &self.tie, &self.untie)
    }

    /// The frequency of `t` in the derived dictionary (0 for invalid tokens).
    #[inline]
    pub fn freq(&self, t: TokenId) -> u32 {
        self.freq.get(t.idx()).copied().unwrap_or(0)
    }

    /// Whether `t` occurs in at least one derived entity.
    #[inline]
    pub fn is_valid(&self, t: TokenId) -> bool {
        self.freq(t) > 0
    }

    /// The total-order key of `t`: `(frequency, string rank)` packed as
    /// `freq << 32 | rank`. Smaller key = rarer token = earlier in prefixes.
    /// Invalid tokens key as their raw id below `1 << 32`, i.e. before every
    /// valid token.
    #[inline]
    pub fn key(&self, t: TokenId) -> u64 {
        let f = self.freq(t);
        if f == 0 {
            t.0 as u64
        } else {
            ((f as u64) << 32) | self.tie[t.idx()] as u64
        }
    }

    /// Recovers the token id from a key produced by [`GlobalOrder::key`].
    #[inline]
    pub fn token_of(&self, key: u64) -> TokenId {
        if key >> 32 == 0 {
            TokenId(key as u32)
        } else {
            self.untie[(key & 0xFFFF_FFFF) as usize]
        }
    }

    /// Sorts `tokens` in place by the global order and removes duplicates.
    pub fn sort_distinct(&self, tokens: &mut Vec<TokenId>) {
        tokens.sort_unstable_by_key(|&t| self.key(t));
        tokens.dedup();
    }
}

/// Sorts `fresh` tokens by string and appends their tie ranks after all
/// existing ones. The interner never stores the same string twice, so
/// the string order is total and rank assignment is deterministic.
fn assign_ranks(tie: &mut [u32], untie: &mut Vec<TokenId>, mut fresh: Vec<TokenId>, interner: &Interner) {
    fresh.sort_unstable_by_key(|&t| interner.resolve(t));
    for t in fresh {
        tie[t.idx()] = untie.len() as u32;
        untie.push(t);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, RuleSet};
    use aeetes_text::{Dictionary, Tokenizer};

    fn build(entries: &[&str], rules: &[(&str, &str)]) -> (GlobalOrder, Interner) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        (GlobalOrder::build(&dd, &int), int)
    }

    #[test]
    fn frequency_counts_derived_entities() {
        let (o, mut i) = build(&["university of washington", "university of queensland"], &[]);
        let uni = i.intern("university");
        let wash = i.intern("washington");
        assert_eq!(o.freq(uni), 2);
        assert_eq!(o.freq(wash), 1);
    }

    #[test]
    fn rarer_tokens_have_smaller_keys() {
        let (o, mut i) = build(&["a b", "a c"], &[]);
        let a = i.intern("a");
        let b = i.intern("b");
        assert!(o.key(b) < o.key(a));
    }

    #[test]
    fn invalid_tokens_rank_first_with_empty_semantics() {
        let (o, mut i) = build(&["alpha beta"], &[]);
        let unknown = i.intern("zzz-unknown");
        let alpha = i.intern("alpha");
        assert!(!o.is_valid(unknown));
        assert!(o.is_valid(alpha));
        assert!(o.key(unknown) < o.key(alpha));
    }

    #[test]
    fn duplicate_tokens_in_one_entity_count_once() {
        let (o, mut i) = build(&["ny ny ny"], &[]);
        assert_eq!(o.freq(i.intern("ny")), 1);
    }

    #[test]
    fn derived_variants_contribute() {
        let (o, mut i) = build(&["uq au"], &[("uq", "university of queensland")]);
        // variants: "uq au", "university of queensland au" → au appears in 2.
        assert_eq!(o.freq(i.intern("au")), 2);
        assert_eq!(o.freq(i.intern("university")), 1);
    }

    #[test]
    fn sort_distinct_orders_and_dedups() {
        let (o, mut i) = build(&["a b", "a c", "a d"], &[]);
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        let mut v = vec![a, b, a, c];
        o.sort_distinct(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], a, "most frequent token sorts last");
    }

    #[test]
    fn key_round_trips_token() {
        let (o, mut i) = build(&["x y"], &[]);
        let x = i.intern("x");
        assert_eq!(o.token_of(o.key(x)), x);
        let unknown = i.intern("unseen");
        assert_eq!(o.token_of(o.key(unknown)), unknown, "invalid tokens round-trip through raw-id keys");
    }

    #[test]
    fn equal_frequency_ties_break_by_string_not_insertion_order() {
        // Same vocabulary, opposite interner insertion orders.
        let tok = Tokenizer::default();
        let mut i1 = Interner::new();
        let d1 = Dictionary::from_strings(["zebra", "apple"], &tok, &mut i1);
        let o1 = GlobalOrder::build(&DerivedDictionary::build(&d1, &RuleSet::new(), &DeriveConfig::default()), &i1);
        let mut i2 = Interner::new();
        let d2 = Dictionary::from_strings(["apple", "zebra"], &tok, &mut i2);
        let o2 = GlobalOrder::build(&DerivedDictionary::build(&d2, &RuleSet::new(), &DeriveConfig::default()), &i2);
        // Both tokens have frequency 1; "apple" must sort before "zebra" in
        // both builds even though the interner ids are swapped.
        assert!(o1.key(i1.intern("apple")) < o1.key(i1.intern("zebra")));
        assert!(o2.key(i2.intern("apple")) < o2.key(i2.intern("zebra")));
    }

    #[test]
    fn build_many_matches_union_build() {
        let tok = Tokenizer::default();
        let mut int = Interner::new();
        let dict = Dictionary::from_strings(["a b", "a c", "d e"], &tok, &mut int);
        let rs = RuleSet::new();
        let cfg = DeriveConfig::default();
        let whole = DerivedDictionary::build(&dict, &rs, &cfg);
        let even = DerivedDictionary::build_filtered(&dict, &rs, &cfg, |e| e.0 % 2 == 0);
        let odd = DerivedDictionary::build_filtered(&dict, &rs, &cfg, |e| e.0 % 2 == 1);
        let o_whole = GlobalOrder::build(&whole, &int);
        let o_parts = GlobalOrder::build_many(&[&even, &odd], &int);
        for t in 0..int.len() as u32 {
            assert_eq!(o_whole.key(TokenId(t)), o_parts.key(TokenId(t)), "token {t}");
        }
    }

    #[test]
    fn extend_freezes_existing_keys_and_appends_new_tokens() {
        let tok = Tokenizer::default();
        let mut int = Interner::new();
        let dict = Dictionary::from_strings(["a b", "a c"], &tok, &mut int);
        let rs = RuleSet::new();
        let cfg = DeriveConfig::default();
        let base = GlobalOrder::build(&DerivedDictionary::build(&dict, &rs, &cfg), &int);
        let a = int.intern("a");
        let b = int.intern("b");
        let key_a = base.key(a);
        let key_b = base.key(b);
        // Delta introduces "a z": `a` gains real frequency, `z` is new.
        let mut dict2 = dict.clone();
        dict2.push_tokens("a z".to_string(), vec![a, int.intern("z")]);
        let delta = DerivedDictionary::build_filtered(&dict2, &rs, &cfg, |e| e.0 == 2);
        let ext = base.extend(&[&delta], &int);
        assert_eq!(ext.key(a), key_a, "existing keys are frozen");
        assert_eq!(ext.key(b), key_b);
        let z = int.intern("z");
        assert!(ext.is_valid(z), "new token becomes valid");
        assert_eq!(ext.token_of(ext.key(z)), z);
    }

    #[test]
    fn raw_round_trip_and_validation() {
        let (o, _) = build(&["university of washington", "school of rock"], &[]);
        let (freq, tie, untie) = o.raw_parts();
        let re = GlobalOrder::from_raw_parts(freq.to_vec().into(), tie.to_vec().into(), untie.to_vec().into()).unwrap();
        for t in 0..freq.len() as u32 {
            assert_eq!(re.key(TokenId(t)), o.key(TokenId(t)));
        }
        // Corruptions must be rejected.
        assert!(
            GlobalOrder::from_raw_parts(freq.to_vec().into(), tie[1..].to_vec().into(), untie.to_vec().into()).is_err(),
            "length mismatch"
        );
        assert!(
            GlobalOrder::from_raw_parts(freq.to_vec().into(), tie.to_vec().into(), untie[1..].to_vec().into()).is_err(),
            "missing rank"
        );
        let mut bad = untie.to_vec();
        bad[0] = TokenId(u32::MAX);
        assert!(GlobalOrder::from_raw_parts(freq.to_vec().into(), tie.to_vec().into(), bad.into()).is_err(), "rank out of range");
        let mut bad_tie = tie.to_vec();
        if let Some(&t) = untie.first() {
            bad_tie[t.idx()] ^= 1;
            assert!(GlobalOrder::from_raw_parts(freq.to_vec().into(), bad_tie.into(), untie.to_vec().into()).is_err(), "inverse broken");
        }
    }
}
