//! The global token order `O` (paper §3.2).

use aeetes_rules::DerivedDictionary;
use aeetes_text::TokenId;

/// Ascending-frequency global order over tokens.
///
/// A token's *frequency* is the number of derived entities whose distinct
/// token set contains it. Tokens are compared by `(frequency, token id)`,
/// packed into a single `u64` key: smaller key ⇒ rarer ⇒ earlier in every
/// sorted prefix. Tokens that appear in no derived entity (the paper's
/// *invalid* tokens, including tokens interned after the index was built)
/// get frequency 0 and therefore sort before all valid tokens — harmless,
/// because their posting lists are empty.
#[derive(Debug, Clone, Default)]
pub struct GlobalOrder {
    freq: Vec<u32>,
}

impl GlobalOrder {
    /// Builds the order from a derived dictionary.
    pub fn build(dd: &DerivedDictionary) -> Self {
        let max_id = dd.iter().flat_map(|(_, d)| d.tokens.iter()).map(|t| t.idx()).max().map_or(0, |m| m + 1);
        let mut freq = vec![0u32; max_id];
        let mut seen: Vec<TokenId> = Vec::new();
        for (_, d) in dd.iter() {
            seen.clear();
            seen.extend_from_slice(&d.tokens);
            seen.sort_unstable();
            seen.dedup();
            for t in &seen {
                freq[t.idx()] += 1;
            }
        }
        Self { freq }
    }

    /// The frequency of `t` in the derived dictionary (0 for invalid tokens).
    #[inline]
    pub fn freq(&self, t: TokenId) -> u32 {
        self.freq.get(t.idx()).copied().unwrap_or(0)
    }

    /// Whether `t` occurs in at least one derived entity.
    #[inline]
    pub fn is_valid(&self, t: TokenId) -> bool {
        self.freq(t) > 0
    }

    /// The total-order key of `t`: `(frequency, token id)` packed as
    /// `freq << 32 | id`. Smaller key = rarer token = earlier in prefixes.
    #[inline]
    pub fn key(&self, t: TokenId) -> u64 {
        ((self.freq(t) as u64) << 32) | t.0 as u64
    }

    /// Recovers the token id from a key produced by [`GlobalOrder::key`].
    #[inline]
    pub fn token_of(key: u64) -> TokenId {
        TokenId(key as u32)
    }

    /// Sorts `tokens` in place by the global order and removes duplicates.
    pub fn sort_distinct(&self, tokens: &mut Vec<TokenId>) {
        tokens.sort_unstable_by_key(|&t| self.key(t));
        tokens.dedup();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_rules::{DeriveConfig, RuleSet};
    use aeetes_text::{Dictionary, Interner, Tokenizer};

    fn build(entries: &[&str], rules: &[(&str, &str)]) -> (GlobalOrder, Interner) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let dict = Dictionary::from_strings(entries.iter().copied(), &tok, &mut int);
        let mut rs = RuleSet::new();
        for (l, r) in rules {
            rs.push_str(l, r, &tok, &mut int).unwrap();
        }
        let dd = DerivedDictionary::build(&dict, &rs, &DeriveConfig::default());
        (GlobalOrder::build(&dd), int)
    }

    #[test]
    fn frequency_counts_derived_entities() {
        let (o, mut i) = build(&["university of washington", "university of queensland"], &[]);
        let uni = i.intern("university");
        let wash = i.intern("washington");
        assert_eq!(o.freq(uni), 2);
        assert_eq!(o.freq(wash), 1);
    }

    #[test]
    fn rarer_tokens_have_smaller_keys() {
        let (o, mut i) = build(&["a b", "a c"], &[]);
        let a = i.intern("a");
        let b = i.intern("b");
        assert!(o.key(b) < o.key(a));
    }

    #[test]
    fn invalid_tokens_rank_first_with_empty_semantics() {
        let (o, mut i) = build(&["alpha beta"], &[]);
        let unknown = i.intern("zzz-unknown");
        let alpha = i.intern("alpha");
        assert!(!o.is_valid(unknown));
        assert!(o.is_valid(alpha));
        assert!(o.key(unknown) < o.key(alpha));
    }

    #[test]
    fn duplicate_tokens_in_one_entity_count_once() {
        let (o, mut i) = build(&["ny ny ny"], &[]);
        assert_eq!(o.freq(i.intern("ny")), 1);
    }

    #[test]
    fn derived_variants_contribute() {
        let (o, mut i) = build(&["uq au"], &[("uq", "university of queensland")]);
        // variants: "uq au", "university of queensland au" → au appears in 2.
        assert_eq!(o.freq(i.intern("au")), 2);
        assert_eq!(o.freq(i.intern("university")), 1);
    }

    #[test]
    fn sort_distinct_orders_and_dedups() {
        let (o, mut i) = build(&["a b", "a c", "a d"], &[]);
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        let mut v = vec![a, b, a, c];
        o.sort_distinct(&mut v);
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], a, "most frequent token sorts last");
    }

    #[test]
    fn key_round_trips_token() {
        let (o, mut i) = build(&["x y"], &[]);
        let x = i.intern("x");
        assert_eq!(GlobalOrder::token_of(o.key(x)), x);
    }
}
