//! Property tests: the clustered index is a faithful, well-clustered view
//! of the derived dictionary.

use aeetes_index::ClusteredIndex;
use aeetes_rules::{DeriveConfig, DerivedDictionary, DerivedId, RuleSet};
use aeetes_text::{Dictionary, Interner, TokenId};
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
struct Instance {
    entities: Vec<Vec<u8>>,
    rules: Vec<(Vec<u8>, Vec<u8>)>,
}

fn instance() -> impl Strategy<Value = Instance> {
    let tok = 0u8..12;
    let seq = |lo: usize, hi: usize| proptest::collection::vec(tok.clone(), lo..=hi);
    (proptest::collection::vec(seq(1, 5), 1..6), proptest::collection::vec((seq(1, 2), seq(1, 3)), 0..4))
        .prop_map(|(entities, rules)| Instance { entities, rules })
}

fn build(inst: &Instance) -> (DerivedDictionary, ClusteredIndex) {
    let mut interner = Interner::new();
    let ids: Vec<TokenId> = (0..12).map(|i| interner.intern(&format!("tok{i:02}"))).collect();
    let mut dict = Dictionary::new();
    for e in &inst.entities {
        dict.push_tokens(format!("{e:?}"), e.iter().map(|&i| ids[i as usize]).collect());
    }
    let mut rules = RuleSet::new();
    for (l, r) in &inst.rules {
        let lt: Vec<TokenId> = l.iter().map(|&i| ids[i as usize]).collect();
        let rt: Vec<TokenId> = r.iter().map(|&i| ids[i as usize]).collect();
        let _ = rules.push_tokens(lt, rt, 1.0);
    }
    let dd = DerivedDictionary::build(&dict, &rules, &DeriveConfig::default());
    let index = ClusteredIndex::build(&dd, &interner);
    (dd, index)
}

proptest! {
    /// Every token of every derived set appears exactly once in the index,
    /// under the right token, length group and origin group, with the
    /// position matching the globally-ordered set.
    #[test]
    fn postings_cover_derived_sets_exactly(inst in instance()) {
        let (dd, index) = build(&inst);
        // Count postings per (token, derived).
        let mut found: HashMap<(u32, u32), u32> = HashMap::new();
        let max_token = 64u32;
        for t in 0..max_token {
            let Some(tp) = index.postings(TokenId(t)) else { continue };
            for g in tp.groups() {
                for og in g.origins() {
                    for e in og.entries {
                        *found.entry((t, e.derived.0)).or_insert(0) += 1;
                        // cross-checks
                        prop_assert_eq!(index.set_len(e.derived), g.len());
                        prop_assert_eq!(dd.derived(e.derived).origin, og.origin);
                        let set = index.derived_set(e.derived);
                        prop_assert_eq!(index.order().token_of(set[e.pos as usize]), TokenId(t));
                    }
                }
            }
        }
        let mut expected = 0usize;
        for (id, _) in dd.iter() {
            let set = index.derived_set(id);
            expected += set.len();
            for &key in set {
                let t = index.order().token_of(key);
                prop_assert_eq!(found.get(&(t.0, id.0)).copied(), Some(1),
                    "token {:?} of derived {:?} indexed wrong number of times", t, id);
            }
        }
        prop_assert_eq!(index.total_entries(), expected);
    }

    /// Structural invariants: length groups ascending, origins ascending
    /// within a group, entry counts consistent, derived sets sorted
    /// strictly ascending by key.
    #[test]
    fn index_structure_invariants(inst in instance()) {
        let (dd, index) = build(&inst);
        for t in 0..64u32 {
            let Some(tp) = index.postings(TokenId(t)) else { continue };
            prop_assert!(tp.group_count() > 0);
            let lens: Vec<usize> = tp.groups().map(|g| g.len()).collect();
            for w in lens.windows(2) {
                prop_assert!(w[0] < w[1], "length groups must strictly ascend");
            }
            for g in tp.groups() {
                prop_assert!(g.entry_count() > 0);
                let n: usize = g.origins().map(|o| o.entries.len()).sum();
                prop_assert_eq!(n, g.entry_count());
                let origins: Vec<_> = g.origins().map(|o| o.origin).collect();
                for w in origins.windows(2) {
                    prop_assert!(w[0] < w[1]);
                }
                for og in g.origins() {
                    prop_assert!(!og.entries.is_empty());
                }
            }
            // binary search helper consistency
            for lo in 0..10usize {
                let i = tp.first_group_at_least(lo);
                for (gi, g) in tp.groups().enumerate() {
                    if gi < i {
                        prop_assert!(g.len() < lo);
                    } else {
                        prop_assert!(g.len() >= lo);
                    }
                }
            }
        }
        for (id, _) in dd.iter() {
            let set = index.derived_set(id);
            for w in set.windows(2) {
                prop_assert!(w[0] < w[1], "derived set must be strictly ascending");
            }
        }
    }

    /// The global order really is ascending-frequency with id tie-breaks,
    /// and `min/max_set_len` bracket every derived set.
    #[test]
    fn global_order_and_length_extremes(inst in instance()) {
        let (dd, index) = build(&inst);
        let order = index.order();
        // Frequency = number of derived entities whose set contains t.
        let mut freq: HashMap<u32, u32> = HashMap::new();
        for (id, _) in dd.iter() {
            for &key in index.derived_set(id) {
                *freq.entry(index.order().token_of(key).0).or_insert(0) += 1;
            }
        }
        for (&t, &f) in &freq {
            prop_assert_eq!(order.freq(TokenId(t)), f);
            prop_assert!(order.is_valid(TokenId(t)));
        }
        for (&a, &fa) in &freq {
            for (&b, &fb) in &freq {
                if fa < fb || (fa == fb && a < b) {
                    prop_assert!(order.key(TokenId(a)) < order.key(TokenId(b)));
                }
            }
        }
        let lens: Vec<usize> = dd.iter().map(|(id, _)| index.set_len(id)).filter(|&l| l > 0).collect();
        prop_assert_eq!(index.min_set_len(), lens.iter().min().copied());
        prop_assert_eq!(index.max_set_len(), lens.iter().max().copied());
        let _ = DerivedId(0);
    }
}
