//! Persistent work-stealing executor for extraction work.
//!
//! Before this crate, every parallel path in the workspace paid thread
//! startup on the request path: batch extraction spawned a
//! `std::thread::scope` per call, the sharded engine spawned one thread per
//! shard per *request*, and the server ran its own pump threads. At
//! realistic document sizes the spawn + join cost swamps the extraction
//! work itself (the old `bench_shard_scaling` measured *negative* scaling).
//!
//! A [`Pool`] owns N persistent worker threads, created once per
//! engine/fleet lifetime. Each worker owns a long-lived
//! [`ExtractScratch`], so steady-state extraction through the pool
//! allocates nothing (guarded by the counting-allocator test in
//! `aeetes-core`). Tasks flow through a global injector queue plus one
//! deque per worker; an idle worker drains its own deque first, then the
//! injector, then steals from a sibling's deque back-to-front.
//!
//! Three execution shapes sit on top:
//!
//! - [`Pool::spawn`]: fire-and-forget jobs (the server's request path).
//! - [`batch`](crate::extract_batch_into): document-parallel batches with
//!   claim-counter work distribution — results land in input order, one
//!   panic isolates to its document.
//! - [`Pool::fan_out`]: intra-request shard fan-out where the *submitting*
//!   thread participates, so a pool worker can fan out its own request
//!   without risking deadlock even when every other worker is busy.
//!
//! Borrowed-task safety: batches and fan-outs keep their state on the
//! submitter's stack and enqueue raw-pointer stubs. The submitter returns
//! only after every stub has *retired* — executed to exhaustion or swept
//! back out of the queues — so no queue ever holds a pointer into a dead
//! stack frame.

use aeetes_core::ExtractScratch;
use aeetes_obs::{MetricRegistry, PoolMetrics};
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Barrier, Condvar, Mutex, OnceLock};
use std::time::{Duration, Instant};

mod batch;

pub use batch::{extract_batch, extract_batch_into, extract_batch_on, extract_batch_with, extract_batch_with_on, run_batch, BatchBuf, BatchSlot};

thread_local! {
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Whether the current thread is a pool worker. Batch submission from a
/// worker falls back to inline execution (the worker cannot wait on the
/// pool it is part of without risking deadlock).
pub(crate) fn on_pool_worker() -> bool {
    IS_POOL_WORKER.with(std::cell::Cell::get)
}

/// A queued unit of work: either an owned fire-and-forget job or a
/// borrowed stub pointing into a live `run_indexed` call frame.
enum Task {
    Job(Box<dyn FnOnce(&mut ExtractScratch) + Send>),
    Stub(Stub),
}

/// Type-erased pointer to a [`RunState`] (or [`EachState`]) living on a
/// submitter's stack. The submitter guarantees the pointee outlives the
/// stub (see the retire protocol on [`RunState`]).
struct Stub {
    data: *const (),
    run: unsafe fn(*const (), usize, Option<&mut ExtractScratch>),
}

// SAFETY: the pointee is Sync (shared by every executor) and the submitter
// keeps it alive until every stub retires.
unsafe impl Send for Stub {}

/// One cache line of per-worker counter state.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

struct Inner {
    injector: Mutex<VecDeque<Task>>,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Tasks currently sitting in any queue (not yet executing).
    pending: AtomicUsize,
    /// Round-robin cursor for stub placement across worker deques.
    place: AtomicUsize,
    park: Mutex<()>,
    wake: Condvar,
    shutdown: AtomicBool,
    steals: AtomicU64,
    executed: AtomicU64,
    busy_nanos: Vec<PaddedU64>,
    tasks_run: Vec<PaddedU64>,
    obs: OnceLock<PoolMetrics>,
}

impl Inner {
    fn push(&self, task: Task, target: Option<usize>) {
        match target {
            Some(i) => self.deques[i].lock().expect("pool deque poisoned").push_back(task),
            None => self.injector.lock().expect("pool injector poisoned").push_back(task),
        }
        self.pending.fetch_add(1, Ordering::SeqCst);
        if let Some(m) = self.obs.get() {
            m.queue_depth.add(1);
        }
        // Notify under the park lock: a worker checks `pending` under the
        // same lock before waiting, so this wake-up cannot be lost.
        let _g = self.park.lock().expect("pool park lock poisoned");
        self.wake.notify_one();
    }

    fn note_pop(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        if let Some(m) = self.obs.get() {
            m.queue_depth.add(-1);
        }
    }

    /// Own deque front → injector front → steal a sibling's back.
    fn find_task(&self, id: usize) -> Option<Task> {
        if let Some(t) = self.deques[id].lock().expect("pool deque poisoned").pop_front() {
            self.note_pop();
            return Some(t);
        }
        if let Some(t) = self.injector.lock().expect("pool injector poisoned").pop_front() {
            self.note_pop();
            return Some(t);
        }
        for k in 1..self.deques.len() {
            let j = (id + k) % self.deques.len();
            if let Some(t) = self.deques[j].lock().expect("pool deque poisoned").pop_back() {
                self.note_pop();
                self.steals.fetch_add(1, Ordering::Relaxed);
                if let Some(m) = self.obs.get() {
                    m.steals.inc(1);
                }
                return Some(t);
            }
        }
        None
    }

    fn execute(&self, id: usize, task: Task, scratch: &mut ExtractScratch) {
        let start = Instant::now();
        match task {
            // A panic escaping a job must not take the worker down; the
            // job's own error handling (e.g. the server's per-request
            // catch_unwind) is responsible for reporting it.
            Task::Job(job) => {
                let _ = catch_unwind(AssertUnwindSafe(move || job(scratch)));
            }
            Task::Stub(stub) => unsafe { (stub.run)(stub.data, id, Some(scratch)) },
        }
        let nanos = start.elapsed().as_nanos() as u64;
        self.busy_nanos[id].0.fetch_add(nanos, Ordering::Relaxed);
        self.tasks_run[id].0.fetch_add(1, Ordering::Relaxed);
        self.executed.fetch_add(1, Ordering::Relaxed);
        if let Some(m) = self.obs.get() {
            m.busy_nanos[id].observe_nanos(nanos);
            m.tasks.inc(1);
        }
    }

    /// Removes every queued stub whose state pointer equals `data`,
    /// returning how many were removed. Called by a `run_indexed` submitter
    /// once all indices are claimed: the leftover stubs would find no work
    /// and must not outlive the submitter's stack frame.
    fn sweep(&self, data: *const ()) -> usize {
        let mut removed = 0usize;
        let matches_state = |t: &Task| matches!(t, Task::Stub(s) if std::ptr::eq(s.data, data));
        {
            let mut q = self.injector.lock().expect("pool injector poisoned");
            let before = q.len();
            q.retain(|t| !matches_state(t));
            removed += before - q.len();
        }
        for d in &self.deques {
            let mut q = d.lock().expect("pool deque poisoned");
            let before = q.len();
            q.retain(|t| !matches_state(t));
            removed += before - q.len();
        }
        if removed > 0 {
            self.pending.fetch_sub(removed, Ordering::SeqCst);
            if let Some(m) = self.obs.get() {
                m.queue_depth.add(-(removed as i64));
            }
        }
        removed
    }
}

fn worker_main(inner: &Inner, id: usize) {
    IS_POOL_WORKER.with(|f| f.set(true));
    let mut scratch = ExtractScratch::new();
    loop {
        match inner.find_task(id) {
            Some(task) => inner.execute(id, task, &mut scratch),
            None => {
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                let guard = inner.park.lock().expect("pool park lock poisoned");
                if inner.pending.load(Ordering::SeqCst) == 0 && !inner.shutdown.load(Ordering::SeqCst) {
                    // The timeout is a safety net only: pushes notify under
                    // this lock, so a task cannot slip past a parked worker.
                    let _ = inner.wake.wait_timeout(guard, Duration::from_millis(100)).expect("pool park lock poisoned");
                }
            }
        }
    }
}

/// Shared state of one `run_indexed` call, living on the submitter's stack.
///
/// Retire protocol: `created` stubs are enqueued; each either runs its
/// claim loop to exhaustion and then retires, or is swept out of the
/// queues by the submitter (counted as retired on its behalf). The
/// `retired` increment happens *inside* the `lock` critical section and is
/// the stub's final touch of this state, so once the submitter observes
/// `retired == created` while holding the lock, no other thread can hold
/// or be blocked on any part of this struct — it is safe to return.
struct RunState<'f, F: ?Sized> {
    f: &'f F,
    len: usize,
    next: AtomicUsize,
    panicked: AtomicBool,
    created: usize,
    retired: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl<F> RunState<'_, F>
where
    F: Fn(usize, Option<&mut ExtractScratch>) + Sync + ?Sized,
{
    /// Claims indices until exhaustion, running `f` on each. Item-level
    /// panics are recorded and do not stop the remaining items.
    fn claim_loop(&self, mut scratch: Option<&mut ExtractScratch>) {
        loop {
            let i = self.next.fetch_add(1, Ordering::SeqCst);
            if i >= self.len {
                return;
            }
            // AssertUnwindSafe: extraction engines are immutable (`&self`)
            // and scratches reset at the start of every pass, so a caught
            // panic cannot corrupt state observed by other items.
            let r = catch_unwind(AssertUnwindSafe(|| (self.f)(i, scratch.as_deref_mut())));
            if r.is_err() {
                self.panicked.store(true, Ordering::SeqCst);
            }
        }
    }

    fn retire(&self, by: usize) {
        let _g = self.lock.lock().expect("run state lock poisoned");
        self.retired.fetch_add(by, Ordering::SeqCst);
        self.cv.notify_all();
    }
}

unsafe fn run_stub<F>(data: *const (), _worker: usize, scratch: Option<&mut ExtractScratch>)
where
    F: Fn(usize, Option<&mut ExtractScratch>) + Sync,
{
    let state = unsafe { &*(data as *const RunState<'_, F>) };
    state.claim_loop(scratch);
    state.retire(1);
}

/// Shared state of one `on_each_worker` call. The barrier guarantees the
/// `workers` stubs are held by `workers` distinct threads simultaneously —
/// which, since only workers execute stubs, pins one stub to each worker.
struct EachState<'f, F: ?Sized> {
    barrier: Barrier,
    f: &'f F,
    total: usize,
    done: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

unsafe fn run_each<F>(data: *const (), worker: usize, scratch: Option<&mut ExtractScratch>)
where
    F: Fn(usize, &mut ExtractScratch) + Sync,
{
    let state = unsafe { &*(data as *const EachState<'_, F>) };
    state.barrier.wait();
    let scratch = scratch.expect("pin stubs only execute on pool workers");
    // A panicking warm-up closure must not take the worker down; the
    // payload is dropped (warm-up is best-effort by contract).
    let _ = catch_unwind(AssertUnwindSafe(|| (state.f)(worker, scratch)));
    // Same final-touch discipline as RunState::retire.
    let _g = state.lock.lock().expect("each state lock poisoned");
    state.done.fetch_add(1, Ordering::SeqCst);
    state.cv.notify_all();
}

/// Point-in-time scheduling statistics of a [`Pool`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PoolStats {
    /// Persistent worker threads.
    pub workers: usize,
    /// Tasks currently queued (injector + deques), excluding executing.
    pub queued: usize,
    /// Tasks taken from a sibling worker's deque.
    pub steals: u64,
    /// Tasks executed to completion.
    pub executed: u64,
    /// Cumulative busy nanoseconds per worker.
    pub busy_nanos: Vec<u64>,
    /// Tasks executed per worker.
    pub tasks: Vec<u64>,
}

/// A persistent pool of extraction workers. See the crate docs.
///
/// Dropping an explicit pool drains every queued task, then joins the
/// workers. The process-wide [`Pool::global`] pool is never dropped.
pub struct Pool {
    inner: Arc<Inner>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl Pool {
    /// Creates a pool of `workers.max(1)` persistent threads, each owning
    /// a long-lived [`ExtractScratch`].
    pub fn new(workers: usize) -> Pool {
        let workers = workers.max(1);
        let inner = Arc::new(Inner {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers).map(|_| Mutex::new(VecDeque::new())).collect(),
            pending: AtomicUsize::new(0),
            place: AtomicUsize::new(0),
            park: Mutex::new(()),
            wake: Condvar::new(),
            shutdown: AtomicBool::new(false),
            steals: AtomicU64::new(0),
            executed: AtomicU64::new(0),
            busy_nanos: (0..workers).map(|_| PaddedU64::default()).collect(),
            tasks_run: (0..workers).map(|_| PaddedU64::default()).collect(),
            obs: OnceLock::new(),
        });
        let handles = (0..workers)
            .map(|id| {
                let inner = Arc::clone(&inner);
                std::thread::Builder::new()
                    .name(format!("aeetes-pool-{id}"))
                    .spawn(move || worker_main(&inner, id))
                    .expect("spawn pool worker")
            })
            .collect();
        Pool { inner, handles }
    }

    /// The process-wide pool, created on first use. Sized by (first match
    /// wins): the `AEETES_POOL_THREADS` environment variable, the last
    /// [`Pool::configure_global`] call, or `available_parallelism`.
    pub fn global() -> &'static Pool {
        GLOBAL.get_or_init(|| {
            let n = std::env::var("AEETES_POOL_THREADS")
                .ok()
                .and_then(|v| v.parse::<usize>().ok())
                .filter(|&n| n > 0)
                .or_else(|| {
                    let r = REQUESTED.load(Ordering::SeqCst);
                    (r > 0).then_some(r)
                })
                .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get));
            Pool::new(n)
        })
    }

    /// Requests `threads` workers for the global pool and returns it. Only
    /// effective before the global pool's first use — a pool never resizes
    /// once its workers exist (callers that need a specific size later
    /// should build an explicit [`Pool::new`]).
    pub fn configure_global(threads: usize) -> &'static Pool {
        if threads > 0 {
            REQUESTED.store(threads, Ordering::SeqCst);
        }
        Pool::global()
    }

    /// Number of worker threads.
    pub fn workers(&self) -> usize {
        self.inner.deques.len()
    }

    /// Submits a fire-and-forget job; some worker runs it with its
    /// resident scratch. Jobs still queued when an explicit pool is
    /// dropped are executed during the drop's drain.
    pub fn spawn(&self, job: impl FnOnce(&mut ExtractScratch) + Send + 'static) {
        self.inner.push(Task::Job(Box::new(job)), None);
    }

    /// Runs `f(i, scratch)` for every `i < len`, distributing indices over
    /// `stubs` queued executors (plus the calling thread when `help`).
    /// Indices are claimed from a shared atomic counter — item-granularity
    /// work stealing — so one long item never serializes the rest behind a
    /// static partition. Returns whether any item panicked (payloads are
    /// dropped; item-level isolation is the caller's job via its own
    /// `catch_unwind` inside `f`).
    ///
    /// `scratch` is `Some` exactly when the executing thread is a pool
    /// worker. With `help == false` at least one stub must be given,
    /// and the call must not come from a pool worker (it would wait on
    /// queues only it can drain); [`extract_batch_into`] guards this by
    /// falling back to inline execution.
    pub fn run_indexed<F>(&self, len: usize, stubs: usize, help: bool, f: F) -> bool
    where
        F: Fn(usize, Option<&mut ExtractScratch>) + Sync,
    {
        if len == 0 {
            return false;
        }
        debug_assert!(help || stubs > 0, "run_indexed needs an executor");
        debug_assert!(help || !on_pool_worker(), "a pool worker must participate in its own fan-out");
        let state = RunState {
            f: &f,
            len,
            next: AtomicUsize::new(0),
            panicked: AtomicBool::new(false),
            created: stubs,
            retired: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        };
        let data = &state as *const RunState<'_, F> as *const ();
        for _ in 0..stubs {
            let w = self.inner.place.fetch_add(1, Ordering::Relaxed) % self.inner.deques.len();
            self.inner.push(Task::Stub(Stub { data, run: run_stub::<F> }), Some(w));
        }
        if help {
            state.claim_loop(None);
        }
        // Wait for every stub to retire. `retired == created` implies all
        // indices were claimed and completed: a stub only exits its claim
        // loop at exhaustion, and sweeping only happens past exhaustion.
        let mut swept = false;
        let mut guard = state.lock.lock().expect("run state lock poisoned");
        while state.retired.load(Ordering::SeqCst) < state.created {
            if !swept && state.next.load(Ordering::SeqCst) >= len {
                // All indices claimed: stubs still queued would find no
                // work — remove them before their pointee goes away.
                swept = true;
                drop(guard);
                let n = self.inner.sweep(data);
                if n > 0 {
                    state.retire(n);
                }
                guard = state.lock.lock().expect("run state lock poisoned");
                continue;
            }
            // Timeout only to re-check the sweep condition; retires notify.
            guard = state.cv.wait_timeout(guard, Duration::from_millis(10)).expect("run state lock poisoned").0;
        }
        drop(guard);
        state.panicked.load(Ordering::SeqCst)
    }

    /// Fans one request out across `n` work items with the calling thread
    /// participating: used by the sharded engine past its cost threshold.
    /// Safe to call from a pool worker (the worker claims items itself, so
    /// progress never depends on a free sibling). Panics in `f` are
    /// reported in the return value, first-come.
    pub fn fan_out<F>(&self, n: usize, f: F) -> bool
    where
        F: Fn(usize) + Sync,
    {
        if n == 0 {
            return false;
        }
        let stubs = (n - 1).min(self.workers());
        self.run_indexed(n, stubs, true, |i, _scratch| f(i))
    }

    /// Runs `f(worker_id, scratch)` exactly once on *every* worker thread,
    /// blocking until all have finished. A barrier holds early finishers
    /// until every worker has picked up its pin task, so the same worker
    /// can never run two of them. Intended for warming worker scratches to
    /// their steady-state capacity (benches, the zero-allocation gate) —
    /// not for request-path use. Must be called from outside the pool.
    pub fn on_each_worker<F>(&self, f: F)
    where
        F: Fn(usize, &mut ExtractScratch) + Sync,
    {
        assert!(!on_pool_worker(), "on_each_worker must be called from outside the pool");
        let total = self.workers();
        let state = EachState {
            barrier: Barrier::new(total),
            f: &f,
            total,
            done: AtomicUsize::new(0),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        };
        let data = &state as *const EachState<'_, F> as *const ();
        for i in 0..total {
            self.inner.push(Task::Stub(Stub { data, run: run_each::<F> }), Some(i));
        }
        let mut guard = state.lock.lock().expect("each state lock poisoned");
        while state.done.load(Ordering::SeqCst) < state.total {
            guard = state.cv.wait_timeout(guard, Duration::from_millis(10)).expect("each state lock poisoned").0;
        }
    }

    /// Attaches observability handles: from here on the pool records queue
    /// depth, steals, task counts and per-worker busy histograms into
    /// `registry`. Idempotent; the first attach wins.
    pub fn attach_metrics(&self, registry: &Arc<MetricRegistry>) {
        let m = PoolMetrics::register(registry, self.workers());
        m.workers.set(self.workers() as i64);
        let _ = self.inner.obs.set(m);
    }

    /// Point-in-time scheduling statistics.
    pub fn stats(&self) -> PoolStats {
        PoolStats {
            workers: self.workers(),
            queued: self.inner.pending.load(Ordering::SeqCst),
            steals: self.inner.steals.load(Ordering::Relaxed),
            executed: self.inner.executed.load(Ordering::Relaxed),
            busy_nanos: self.inner.busy_nanos.iter().map(|c| c.0.load(Ordering::Relaxed)).collect(),
            tasks: self.inner.tasks_run.iter().map(|c| c.0.load(Ordering::Relaxed)).collect(),
        }
    }
}

impl Drop for Pool {
    fn drop(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        {
            let _g = self.inner.park.lock().expect("pool park lock poisoned");
            self.inner.wake.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

static GLOBAL: OnceLock<Pool> = OnceLock::new();
static REQUESTED: AtomicUsize = AtomicUsize::new(0);

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU32;

    #[test]
    fn spawn_runs_jobs_on_workers() {
        let pool = Pool::new(2);
        let hits = Arc::new(AtomicU32::new(0));
        for _ in 0..16 {
            let hits = Arc::clone(&hits);
            pool.spawn(move |_scratch| {
                assert!(on_pool_worker());
                hits.fetch_add(1, Ordering::SeqCst);
            });
        }
        drop(pool); // drains the queue, joins workers
        assert_eq!(hits.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn run_indexed_covers_every_index_exactly_once() {
        let pool = Pool::new(3);
        for len in [0usize, 1, 2, 7, 64] {
            let counts: Vec<AtomicU32> = (0..len).map(|_| AtomicU32::new(0)).collect();
            let panicked = pool.run_indexed(len, 3.min(len.max(1)), false, |i, scratch| {
                assert!(scratch.is_some(), "stubs run on workers");
                counts[i].fetch_add(1, Ordering::SeqCst);
            });
            assert!(!panicked);
            assert!(counts.iter().all(|c| c.load(Ordering::SeqCst) == 1), "len={len}");
        }
    }

    #[test]
    fn fan_out_from_inside_a_worker_makes_progress() {
        // One worker: the outer job occupies it, so the nested fan-out can
        // only finish because the submitting worker claims items itself.
        let pool = Arc::new(Pool::new(1));
        let (tx, rx) = std::sync::mpsc::channel::<u32>();
        let p2 = Arc::clone(&pool);
        pool.spawn(move |_scratch| {
            let sum = AtomicU32::new(0);
            let panicked = p2.fan_out(5, |i| {
                sum.fetch_add(i as u32, Ordering::SeqCst);
            });
            assert!(!panicked);
            tx.send(sum.load(Ordering::SeqCst)).unwrap();
        });
        assert_eq!(rx.recv_timeout(Duration::from_secs(10)).unwrap(), 10);
    }

    #[test]
    fn fan_out_reports_item_panics() {
        let pool = Pool::new(2);
        assert!(pool.fan_out(4, |i| assert!(i != 2, "boom")));
        // The pool stays usable afterwards.
        assert!(!pool.fan_out(4, |_| {}));
    }

    #[test]
    fn on_each_worker_pins_one_task_per_worker() {
        let pool = Pool::new(3);
        let seen: Vec<AtomicU32> = (0..3).map(|_| AtomicU32::new(0)).collect();
        pool.on_each_worker(|worker, _scratch| {
            seen[worker].fetch_add(1, Ordering::SeqCst);
        });
        assert!(seen.iter().all(|c| c.load(Ordering::SeqCst) == 1), "{seen:?}");
    }

    #[test]
    fn stats_count_executed_tasks() {
        let pool = Pool::new(2);
        pool.run_indexed(8, 2, false, |_, _| {});
        let stats = pool.stats();
        assert_eq!(stats.workers, 2);
        assert_eq!(stats.queued, 0);
        // 2 stubs were queued; both either executed or got swept, and the
        // executed count only grows.
        assert!(stats.executed <= 2);
        assert_eq!(stats.busy_nanos.len(), 2);
    }

    #[test]
    fn global_pool_is_a_singleton() {
        let a = Pool::global() as *const Pool;
        let b = Pool::configure_global(7) as *const Pool;
        assert_eq!(a, b, "configure after first use must not rebuild the pool");
    }
}
