//! Document-parallel batch extraction over the persistent pool.
//!
//! This replaces the old per-call `std::thread::scope` batch in
//! `aeetes-core`: the same claim-counter work distribution, the same
//! per-document panic isolation and cancellation semantics, but the
//! workers — and their warm [`ExtractScratch`]es — already exist.
//!
//! Results land in per-document [`BatchSlot`]s whose buffers survive
//! across calls ([`extract_batch_into`]), so a steady-state batch over a
//! warmed pool performs *zero* heap allocations end to end — queue
//! capacity, worker scratches and result vectors are all at their
//! high-water mark. The owning convenience wrappers ([`extract_batch`],
//! [`extract_batch_with`]) keep the exact signatures the core crate used
//! to export.

use crate::{on_pool_worker, Pool};
use aeetes_core::{panic_message, BatchOptions, CancelToken, DocError, ExtractBackend, ExtractOutcome, ExtractScratch, ExtractStats, Match};
use aeetes_text::Document;
use std::cell::RefCell;
use std::panic::{catch_unwind, AssertUnwindSafe};

thread_local! {
    /// Scratch for inline (single-threaded or worker-reentrant) batches.
    static INLINE_SCRATCH: RefCell<ExtractScratch> = RefCell::new(ExtractScratch::new());
}

/// Raw slot array shared with the workers; index `i` is written exactly
/// once, by whichever executor claims document `i`.
struct SlotsPtr<T>(*mut T);
// SAFETY: disjoint indices, claimed through an atomic counter.
unsafe impl<T: Send> Send for SlotsPtr<T> {}
unsafe impl<T: Send> Sync for SlotsPtr<T> {}

impl<T> SlotsPtr<T> {
    /// The slot at `i`. Going through a method (rather than the raw field)
    /// makes closures capture the whole `Sync` wrapper, not the bare
    /// pointer, under disjoint field capture.
    ///
    /// # Safety
    /// `i` must be in bounds; dereference only while the backing buffer is
    /// alive and the index is claimed by exactly one executor.
    unsafe fn slot(&self, i: usize) -> *mut T {
        self.0.add(i)
    }
}

/// Per-document result buffer, reused across batches.
#[derive(Debug, Default)]
pub struct BatchSlot {
    /// Matches of the document, sorted by `(span, entity)`; empty when
    /// `error` is set.
    pub matches: Vec<Match>,
    /// Whether any budget cut the document short.
    pub truncated: bool,
    /// Work counters of the (possibly partial) run.
    pub stats: ExtractStats,
    /// Per-stage timing slots (all-zero without the `obs` feature).
    pub stages: aeetes_core::StageSlots,
    /// Why the document produced no result, if it didn't.
    pub error: Option<DocError>,
}

/// Reusable result buffers for [`extract_batch_into`]. Slots keep their
/// match-vector capacity across batches; slot `i` always serves document
/// `i`, so capacities converge to the per-position high-water mark.
#[derive(Debug, Default)]
pub struct BatchBuf {
    slots: Vec<BatchSlot>,
    live: usize,
}

impl BatchBuf {
    /// An empty buffer; slots are created on first use.
    pub fn new() -> Self {
        Self::default()
    }

    /// The slots of the most recent batch, one per document in input order.
    pub fn slots(&self) -> &[BatchSlot] {
        &self.slots[..self.live]
    }
}

fn run_one<E>(engine: &E, doc: &Document, tau: f64, opts: &BatchOptions, scratch: &mut ExtractScratch, slot: &mut BatchSlot)
where
    E: ExtractBackend + ?Sized,
{
    slot.error = None;
    slot.matches.clear();
    slot.truncated = false;
    slot.stats = ExtractStats::default();
    slot.stages = aeetes_core::StageSlots::default();
    if opts.cancel.is_cancelled() {
        slot.error = Some(DocError::Cancelled);
        return;
    }
    // AssertUnwindSafe: the engine is immutable (`&self`) and the scratch
    // resets at the start of every pass — a caught panic cannot leak
    // broken state into the worker's next document.
    let r = catch_unwind(AssertUnwindSafe(|| {
        let out = engine.extract_scratched(doc, tau, &opts.limits, Some(&opts.cancel), scratch);
        slot.matches.extend_from_slice(out.matches);
        slot.truncated = out.truncated;
        slot.stats = out.stats;
        slot.stages = out.stages;
    }));
    if let Err(payload) = r {
        slot.matches.clear();
        slot.error = Some(DocError::Panicked(panic_message(payload)));
    }
}

/// Batch extraction into reusable buffers: `buf.slots()[i]` is the outcome
/// of `docs[i]`. Documents are distributed over up to `opts.threads` pool
/// workers by a shared claim counter; `opts.threads <= 1` (or a call from
/// inside a pool worker) runs inline on the calling thread. Per-document
/// panic isolation, mid-document cancellation and [`ExtractLimits`]
/// semantics match [`extract_batch_with`] exactly.
///
/// Once `buf`, the pool's worker scratches (see [`Pool::on_each_worker`])
/// and the queues are warm, a batch performs no heap allocation.
///
/// [`ExtractLimits`]: aeetes_core::ExtractLimits
pub fn extract_batch_into<E>(pool: &Pool, engine: &E, docs: &[Document], tau: f64, opts: &BatchOptions, buf: &mut BatchBuf)
where
    E: ExtractBackend + ?Sized,
{
    let len = docs.len();
    buf.live = len;
    if buf.slots.len() < len {
        buf.slots.resize_with(len, BatchSlot::default);
    }
    let threads = opts.threads.clamp(1, len.max(1));
    if threads <= 1 || len <= 1 || on_pool_worker() {
        INLINE_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            for (doc, slot) in docs.iter().zip(&mut buf.slots) {
                run_one(engine, doc, tau, opts, &mut scratch, slot);
            }
        });
        return;
    }
    let slots = SlotsPtr(buf.slots.as_mut_ptr());
    let stubs = threads.min(pool.workers()).min(len);
    // Item panics are caught inside run_one, so the pool-level flag stays
    // clear; no submitter participation keeps every document on a worker
    // with a pool-resident scratch.
    pool.run_indexed(len, stubs, false, |i, scratch| {
        let scratch = scratch.expect("batch stubs run on pool workers");
        // SAFETY: `i` is claimed exactly once; the buffer outlives
        // run_indexed, which returns only after every stub retired.
        let slot = unsafe { &mut *slots.slot(i) };
        run_one(engine, &docs[i], tau, opts, scratch, slot);
    });
}

/// Fault-isolated batch extraction on an explicit pool: `results[i]` is
/// the outcome of `docs[i]`, or a [`DocError`] if that document panicked
/// or the batch was cancelled before it started. `opts.cancel` is
/// honoured *mid-document*: a document in flight when the token fires
/// stops at the next window boundary with a truncated (partial but exact)
/// outcome.
pub fn extract_batch_with_on<E>(pool: &Pool, engine: &E, docs: &[Document], tau: f64, opts: &BatchOptions) -> Vec<Result<ExtractOutcome, DocError>>
where
    E: ExtractBackend + ?Sized,
{
    let mut buf = BatchBuf::new();
    extract_batch_into(pool, engine, docs, tau, opts, &mut buf);
    buf.slots
        .into_iter()
        .take(docs.len())
        .map(|slot| match slot.error {
            Some(e) => Err(e),
            None => Ok(ExtractOutcome {
                matches: slot.matches,
                truncated: slot.truncated,
                stats: slot.stats,
                stages: slot.stages,
            }),
        })
        .collect()
}

/// Batch extraction on an explicit pool: `results[i]` = matches of
/// `docs[i]`, with the engine's configured limits. If any document
/// panics, the rest of the batch still completes and the first panic (in
/// input order) is then re-raised on the caller's thread — the
/// pre-fault-isolation contract. Use [`extract_batch_with_on`] for
/// per-document errors instead.
pub fn extract_batch_on<E>(pool: &Pool, engine: &E, docs: &[Document], tau: f64, threads: usize) -> Vec<Vec<Match>>
where
    E: ExtractBackend + ?Sized,
{
    let opts = BatchOptions { threads, limits: engine.config().limits, ..BatchOptions::default() };
    extract_batch_with_on(pool, engine, docs, tau, &opts)
        .into_iter()
        .map(|r| match r {
            Ok(out) => out.matches,
            Err(e) => panic!("{e}"),
        })
        .collect()
}

/// [`extract_batch_on`] over the process-wide [`Pool::global`] pool —
/// the drop-in replacement for the scoped-thread `extract_batch` the core
/// crate used to export.
pub fn extract_batch<E>(engine: &E, docs: &[Document], tau: f64, threads: usize) -> Vec<Vec<Match>>
where
    E: ExtractBackend + ?Sized,
{
    extract_batch_on(Pool::global(), engine, docs, tau, threads)
}

/// [`extract_batch_with_on`] over the process-wide [`Pool::global`] pool.
pub fn extract_batch_with<E>(engine: &E, docs: &[Document], tau: f64, opts: &BatchOptions) -> Vec<Result<ExtractOutcome, DocError>>
where
    E: ExtractBackend + ?Sized,
{
    extract_batch_with_on(Pool::global(), engine, docs, tau, opts)
}

/// Runs `f(i, scratch)` for every `i < len` on up to `threads` pool
/// workers, catching per-item panics and honouring `cancel` between
/// items — the generic building block behind the batch APIs, exposed for
/// tests that need to inject failures at arbitrary items.
pub fn run_batch<R, F>(pool: &Pool, len: usize, threads: usize, cancel: &CancelToken, f: F) -> Vec<Result<R, DocError>>
where
    R: Send,
    F: Fn(usize, &mut ExtractScratch) -> R + Sync,
{
    let run_one = |i: usize, scratch: &mut ExtractScratch| -> Result<R, DocError> {
        if cancel.is_cancelled() {
            return Err(DocError::Cancelled);
        }
        catch_unwind(AssertUnwindSafe(|| f(i, scratch))).map_err(|payload| DocError::Panicked(panic_message(payload)))
    };
    let threads = threads.clamp(1, len.max(1));
    if threads <= 1 || len <= 1 || on_pool_worker() {
        return INLINE_SCRATCH.with(|s| {
            let mut scratch = s.borrow_mut();
            (0..len).map(|i| run_one(i, &mut scratch)).collect()
        });
    }
    let mut results: Vec<Option<Result<R, DocError>>> = (0..len).map(|_| None).collect();
    let slots = SlotsPtr(results.as_mut_ptr());
    let stubs = threads.min(pool.workers()).min(len);
    pool.run_indexed(len, stubs, false, |i, scratch| {
        let scratch = scratch.expect("batch stubs run on pool workers");
        // SAFETY: `i` is claimed exactly once; `results` outlives
        // run_indexed, which returns only after every stub retired.
        unsafe { slots.slot(i).write(Some(run_one(i, scratch))) };
    });
    // Every index is claimed exactly once, so empty slots are impossible;
    // map them to Cancelled rather than panicking just in case.
    results.into_iter().map(|s| s.unwrap_or(Err(DocError::Cancelled))).collect()
}
