//! Batch-extraction correctness over the persistent pool: bit-identity
//! with the sequential oracle, input ordering, panic isolation and
//! cancellation. These tests migrated here from `aeetes-core` when the
//! executor moved out of that crate.

use aeetes_core::{Aeetes, AeetesConfig, BatchOptions, CancelToken, DocError, ExtractLimits, Strategy};
use aeetes_pool::{extract_batch, extract_batch_with, run_batch, Pool};
use aeetes_rules::RuleSet;
use aeetes_text::{Dictionary, Document, Interner, TokenId, Tokenizer};
use proptest::prelude::*;

fn sample_engine(config: AeetesConfig) -> (Aeetes, Interner, Tokenizer) {
    let mut int = Interner::new();
    let tok = Tokenizer::default();
    let mut dict = Dictionary::new();
    dict.push("purdue university usa", &tok, &mut int);
    dict.push("uq au", &tok, &mut int);
    dict.push("university of wisconsin madison", &tok, &mut int);
    let mut rules = RuleSet::new();
    rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
    let engine = Aeetes::build(dict, &rules, &int, config);
    (engine, int, tok)
}

fn sample_docs(int: &mut Interner, tok: &Tokenizer) -> Vec<Document> {
    [
        "purdue university usa hosts a workshop",
        "she studied at uq au last year",
        "nothing relevant here at all",
        "university of wisconsin madison and purdue university usa",
        "",
    ]
    .iter()
    .map(|t| Document::parse(t, tok, int))
    .collect()
}

#[test]
fn parallel_matches_serial() {
    let (engine, mut int, tok) = sample_engine(AeetesConfig::default());
    let docs = sample_docs(&mut int, &tok);
    let serial: Vec<_> = docs.iter().map(|d| engine.extract(d, 0.8)).collect();
    for threads in [1, 2, 4, 7] {
        let batched = extract_batch(&engine, &docs, 0.8, threads);
        assert_eq!(serial, batched, "threads={threads}");
    }
}

#[test]
fn empty_docs() {
    let (engine, _, _) = sample_engine(AeetesConfig::default());
    assert!(extract_batch(&engine, &[], 0.8, 4).is_empty());
}

#[test]
fn zero_threads_runs_inline() {
    let (engine, mut int, tok) = sample_engine(AeetesConfig::default());
    let docs = sample_docs(&mut int, &tok);
    let serial: Vec<_> = docs.iter().map(|d| engine.extract(d, 0.8)).collect();
    assert_eq!(serial, extract_batch(&engine, &docs, 0.8, 0));
}

#[test]
fn extract_batch_with_matches_plain_extract() {
    let (engine, mut int, tok) = sample_engine(AeetesConfig::default());
    let docs = sample_docs(&mut int, &tok);
    let opts = BatchOptions { threads: 3, ..BatchOptions::default() };
    let results = extract_batch_with(&engine, &docs, 0.8, &opts);
    assert_eq!(results.len(), docs.len());
    for (doc, r) in docs.iter().zip(&results) {
        let out = r.as_ref().expect("healthy batch");
        assert!(!out.truncated);
        assert_eq!(out.matches, engine.extract(doc, 0.8));
    }
}

/// tau outside (0, 1] panics the extractor per document; fault isolation
/// reports every document instead of aborting, the batch path stays usable
/// afterwards, and the pool's workers survive.
#[test]
fn panicking_document_in_a_batch_is_isolated() {
    let (engine, mut int, tok) = sample_engine(AeetesConfig::default());
    let docs = sample_docs(&mut int, &tok);
    for threads in [1, 2, 4] {
        let opts = BatchOptions { threads, ..BatchOptions::default() };
        let results = extract_batch_with(&engine, &docs, 2.0, &opts);
        assert_eq!(results.len(), docs.len());
        for r in &results {
            assert!(matches!(r, Err(DocError::Panicked(msg)) if msg.contains("similarity threshold")), "{r:?}");
        }
    }
    // A healthy batch through the same path (and the same workers) still
    // works afterwards.
    let opts = BatchOptions { threads: 2, ..BatchOptions::default() };
    let ok = extract_batch_with(&engine, &docs, 0.8, &opts);
    assert!(ok.iter().all(|r| r.is_ok()));
    assert!(!ok[0].as_ref().unwrap().matches.is_empty());
}

#[test]
fn cancelled_batch_reports_every_document() {
    let (engine, mut int, tok) = sample_engine(AeetesConfig::default());
    let docs = sample_docs(&mut int, &tok);
    let cancel = CancelToken::new();
    cancel.cancel();
    let opts = BatchOptions { threads: 4, cancel, ..BatchOptions::default() };
    let results = extract_batch_with(&engine, &docs, 0.8, &opts);
    assert_eq!(results.len(), docs.len());
    for r in &results {
        assert_eq!(r.as_ref().unwrap_err(), &DocError::Cancelled);
    }
}

#[test]
fn zero_candidate_budget_truncates_every_document() {
    let (engine, mut int, tok) = sample_engine(AeetesConfig::default());
    let docs = sample_docs(&mut int, &tok);
    let limits = ExtractLimits { max_candidates: Some(0), ..ExtractLimits::UNLIMITED };
    let opts = BatchOptions { threads: 2, limits, ..BatchOptions::default() };
    for r in extract_batch_with(&engine, &docs, 0.8, &opts) {
        let out = r.expect("budget truncation is not an error");
        assert!(out.truncated);
        assert!(out.matches.is_empty());
    }
}

/// `run_batch` failure injection: one panicking item neither poisons the
/// batch nor kills the worker that ran it.
#[test]
fn one_panicking_item_does_not_poison_the_batch() {
    let pool = Pool::new(3);
    let results = run_batch(&pool, 16, 3, &CancelToken::new(), |i, _scratch| {
        assert!(i != 7, "injected failure at item 7");
        i * 2
    });
    assert_eq!(results.len(), 16);
    for (i, r) in results.iter().enumerate() {
        if i == 7 {
            assert!(matches!(r, Err(DocError::Panicked(msg)) if msg.contains("injected failure")), "{r:?}");
        } else {
            assert_eq!(*r.as_ref().unwrap(), i * 2);
        }
    }
    // The pool still has all three workers executing afterwards.
    let again = run_batch(&pool, 8, 3, &CancelToken::new(), |i, _| i);
    assert!(again.iter().enumerate().all(|(i, r)| *r.as_ref().unwrap() == i));
}

/// A fired token cancels items not yet started while items already done
/// keep their results (input-order reporting).
#[test]
fn fired_token_cancels_remaining_items() {
    let pool = Pool::new(2);
    let cancel = CancelToken::new();
    let trip = cancel.clone();
    let results = run_batch(&pool, 12, 2, &cancel, move |i, _| {
        if i == 0 {
            trip.cancel();
        }
        i
    });
    assert_eq!(results.len(), 12);
    // At least one item ran (whichever claimed before the trip) and at
    // least one was cancelled; every slot is one or the other.
    assert!(results.iter().any(|r| r.is_ok()));
    assert!(results.iter().any(|r| matches!(r, Err(DocError::Cancelled))));
    for r in &results {
        assert!(matches!(r, Ok(_) | Err(DocError::Cancelled)));
    }
}

const THREAD_COUNTS: [usize; 3] = [1, 2, 7];
const STRATEGIES: [Strategy; 4] = [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy];

fn strategy_engine(strategy: Strategy) -> (Aeetes, Interner, Vec<TokenId>) {
    let mut interner = Interner::new();
    let ids: Vec<TokenId> = (0..8).map(|i| interner.intern(&format!("tok{i}"))).collect();
    let mut dict = Dictionary::new();
    dict.push_tokens("e0".into(), vec![ids[0], ids[1]]);
    dict.push_tokens("e1".into(), vec![ids[2], ids[3], ids[4]]);
    let config = AeetesConfig { strategy, ..AeetesConfig::default() };
    let engine = Aeetes::build(dict, &RuleSet::new(), &interner, config);
    (engine, interner, ids)
}

proptest! {
    /// Pooled batch output is bit-identical to the sequential oracle and
    /// input-ordered, across thread counts and strategies.
    #[test]
    fn pooled_batch_matches_sequential_oracle(
        doc_tokens in proptest::collection::vec(proptest::collection::vec(0u8..8, 0..20), 0..5),
        threads_idx in 0usize..3,
        strategy_idx in 0usize..4,
    ) {
        let threads = THREAD_COUNTS[threads_idx];
        let (engine, _, ids) = strategy_engine(STRATEGIES[strategy_idx]);
        let docs: Vec<Document> = doc_tokens
            .iter()
            .map(|t| Document::from_tokens(t.iter().map(|&i| ids[i as usize]).collect()))
            .collect();
        let serial: Vec<_> = docs.iter().map(|d| engine.extract(d, 0.7)).collect();
        let batched = extract_batch(&engine, &docs, 0.7, threads);
        prop_assert_eq!(serial, batched);
    }

    /// A worker panicking mid-batch (on an arbitrary document) never
    /// perturbs any other document's result, for any thread count.
    #[test]
    fn worker_panic_mid_batch_is_isolated_and_ordered(
        doc_tokens in proptest::collection::vec(proptest::collection::vec(0u8..8, 0..12), 1..6),
        threads_idx in 0usize..3,
        panic_at in 0usize..6,
    ) {
        let threads = THREAD_COUNTS[threads_idx];
        let (engine, _, ids) = strategy_engine(Strategy::Lazy);
        let docs: Vec<Document> = doc_tokens
            .iter()
            .map(|t| Document::from_tokens(t.iter().map(|&i| ids[i as usize]).collect()))
            .collect();
        let panic_at = panic_at % docs.len();
        let pool = Pool::new(threads.max(1));
        let results = run_batch(&pool, docs.len(), threads, &CancelToken::new(), |i, scratch| {
            assert!(i != panic_at, "injected panic at document {i}");
            engine.extract_scratched(&docs[i], 0.7, &ExtractLimits::UNLIMITED, None, scratch).matches.to_vec()
        });
        prop_assert_eq!(results.len(), docs.len());
        for (i, r) in results.iter().enumerate() {
            if i == panic_at {
                prop_assert!(matches!(r, Err(DocError::Panicked(_))), "{:?}", r);
            } else {
                prop_assert_eq!(r.as_ref().unwrap(), &engine.extract(&docs[i], 0.7), "document {}", i);
            }
        }
    }
}
