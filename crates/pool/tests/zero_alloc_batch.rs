//! The pooled twin of `aeetes-core/tests/zero_alloc.rs`: once the pool's
//! worker scratches, the result buffer ([`BatchBuf`]) and the task queues
//! have warmed to their high-water capacity, a document-parallel batch
//! over the persistent pool performs **zero** heap allocations end to
//! end — submission, claim-counter distribution, extraction, result
//! copy-out and retirement included.
//!
//! Work distribution is nondeterministic (whichever worker claims a
//! document first wins), so warm-up runs *every* document on *every*
//! worker's resident scratch via [`Pool::on_each_worker`]; after that no
//! claim order can touch a cold buffer. This file holds exactly one test
//! so no concurrent test can perturb the counting allocator.

use aeetes_core::{Aeetes, AeetesConfig, BatchOptions, ExtractLimits, Strategy};
use aeetes_pool::{extract_batch_into, BatchBuf, Pool};
use aeetes_rules::RuleSet;
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_pooled_batch_allocates_nothing() {
    let pool = Pool::new(2);
    for strategy in [Strategy::Dynamic, Strategy::Lazy] {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        dict.push("uq au", &tok, &mut int);
        dict.push("university of wisconsin madison", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
        rules.push_str("usa", "united states", &tok, &mut int).unwrap();
        let config = AeetesConfig { strategy, ..AeetesConfig::default() };
        let engine = Aeetes::build(dict, &rules, &int, config);
        let docs: Vec<Document> = [
            "a visit to purdue university usa was scheduled after the university of queensland au talks",
            "nothing relevant in this one at all just plain words",
            "purdue university united states and the university of wisconsin madison and uq au",
            "uq au",
            "",
        ]
        .iter()
        .map(|t| Document::parse(t, &tok, &mut int))
        .collect();
        // One options value for the whole run: `BatchOptions::default()`
        // mints a fresh CancelToken (an Arc — an allocation).
        let opts = BatchOptions { threads: 2, ..BatchOptions::default() };
        let mut buf = BatchBuf::new();

        // Warm-up: every worker's resident scratch sees every document, so
        // no later claim order can hit a cold buffer; then full batches warm
        // the result slots and the task queues to their high-water marks.
        pool.on_each_worker(|_, scratch| {
            for doc in &docs {
                engine.extract_scratched(doc, 0.8, &ExtractLimits::UNLIMITED, None, scratch);
            }
        });
        let mut warm_matches = 0usize;
        for _ in 0..3 {
            extract_batch_into(&pool, &engine, &docs, 0.8, &opts, &mut buf);
            warm_matches = buf.slots().iter().map(|s| s.matches.len()).sum();
        }
        assert!(warm_matches > 0, "fixture must produce matches for the test to mean anything");

        let before = ALLOCS.load(Ordering::Relaxed);
        let mut steady_matches = 0usize;
        for _ in 0..5 {
            extract_batch_into(&pool, &engine, &docs, 0.8, &opts, &mut buf);
            steady_matches = buf.slots().iter().map(|s| s.matches.len()).sum();
            assert!(buf.slots().iter().all(|s| s.error.is_none()));
        }
        let delta = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(steady_matches, warm_matches, "steady-state rounds must reproduce the warmed-up result");
        assert_eq!(delta, 0, "strategy {strategy} allocated {delta} time(s) across 5 steady-state pooled batches");
    }
}
