//! Fault injection through the frozen-open path, driven by the same
//! `failpoints` registry the durability layer uses (PR 7): the file read,
//! the mmap, and the post-checksum validation can each be forced to fail,
//! and every failure must surface as a clean error — except the mmap
//! failpoint, which must fall back to the heap buffer and serve
//! bit-identical results.
//!
//! The failpoint registry is process-wide, so every test takes the same
//! lock and clears the registry on entry and exit.

#![cfg(feature = "failpoints")]

use aeetes_core::failpoint::{self, FailAction};
use aeetes_core::{open_frozen, AeetesConfig, ExtractBackend};
use aeetes_rules::RuleSet;
use aeetes_shard::ShardedEngine;
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use std::path::PathBuf;
use std::sync::{Mutex, MutexGuard, OnceLock};

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    let guard = LOCK.get_or_init(|| Mutex::new(())).lock().unwrap_or_else(|p| p.into_inner());
    failpoint::clear();
    guard
}

fn tmp_path(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("aeetes-frozen-fp-{tag}-{}-{n}.aeet", std::process::id()))
}

fn frozen_file(tag: &str) -> (PathBuf, ShardedEngine, Interner, Tokenizer) {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    dict.push("Purdue University USA", &tokenizer, &mut interner);
    dict.push("UQ AU", &tokenizer, &mut interner);
    let mut rules = RuleSet::new();
    rules.push_str("UQ", "University of Queensland", &tokenizer, &mut interner).unwrap();
    rules.push_str("AU", "Australia", &tokenizer, &mut interner).unwrap();
    let engine = ShardedEngine::build(dict, &rules, &interner, AeetesConfig::default(), 2);
    let path = tmp_path(tag);
    std::fs::write(&path, engine.freeze()).unwrap();
    (path, engine, interner, tokenizer)
}

/// A failed artifact read surfaces as an I/O error, not a panic.
#[test]
fn open_read_failure_is_a_clean_io_error() {
    let _g = serial();
    let (path, ..) = frozen_file("read");
    failpoint::set("frozen.open.read", FailAction::Error, None);
    let err = match open_frozen(&path) {
        Ok(_) => panic!("injected read failure must fail the open"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("frozen.open.read"), "unexpected error: {err}");
    failpoint::clear();
    open_frozen(&path).expect("open succeeds once the failpoint clears");
    std::fs::remove_file(&path).ok();
}

/// A failed mmap degrades to the heap buffer: the open still succeeds,
/// reports `mmapped == false`, and extraction is bit-identical to the
/// mapped engine.
#[test]
fn mmap_failure_falls_back_to_heap_with_identical_results() {
    let _g = serial();
    let (path, engine, _, tokenizer) = frozen_file("mmap");

    failpoint::set("frozen.open.mmap", FailAction::Error, None);
    let heap_parts = open_frozen(&path).expect("heap fallback must succeed");
    assert!(!heap_parts.mmapped, "mmap failpoint must force the heap path");
    failpoint::clear();

    let heap = ShardedEngine::from_frozen(heap_parts, None).expect("adopt heap");
    let source_gen = engine.snapshot();
    let heap_gen = heap.snapshot();
    let text = "purdue university usa and the university of queensland australia";
    let mut src_int = source_gen.interner().clone();
    let src_doc = Document::parse(text, &tokenizer, &mut src_int);
    let mut heap_int = heap_gen.interner().clone();
    let heap_doc = Document::parse(text, &tokenizer, &mut heap_int);
    for tau in [0.6, 0.8, 1.0] {
        assert_eq!(heap_gen.extract_all(&heap_doc, tau), source_gen.extract_all(&src_doc, tau), "tau={tau}");
    }
    std::fs::remove_file(&path).ok();
}

/// An injected validation failure (after the checksum passes) is reported
/// as corruption, and clears cleanly.
#[test]
fn validate_failure_reports_corruption() {
    let _g = serial();
    let (path, ..) = frozen_file("validate");
    failpoint::set("frozen.open.validate", FailAction::Error, None);
    let err = match open_frozen(&path) {
        Ok(_) => panic!("injected validation failure must fail the open"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("frozen.open.validate"), "unexpected error: {err}");
    failpoint::clear();
    open_frozen(&path).expect("open succeeds once the failpoint clears");
    std::fs::remove_file(&path).ok();
}

/// The `@K`-style one-shot spec works on frozen sites too: the first open
/// fails, the retry succeeds — the shape a transient read error takes in
/// production.
#[test]
fn one_shot_read_failure_then_retry_succeeds() {
    let _g = serial();
    let (path, ..) = frozen_file("oneshot");
    failpoint::configure("frozen.open.read=error@1").expect("valid spec");
    assert!(open_frozen(&path).is_err(), "first open must hit the failpoint");
    open_frozen(&path).expect("second open must succeed after the one-shot fires");
    failpoint::clear();
    std::fs::remove_file(&path).ok();
}
