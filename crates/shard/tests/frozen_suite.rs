//! Frozen (v5) artifact suite: the mmap-able format is observationally
//! identical to the monolithic heap engine across all four strategies and
//! all four similarity metrics, on both the mmap and heap-fallback open
//! paths; every legacy format (v2 single, v4 sharded) migrates to v5 and
//! the migrated artifact refreezes bit-identically; and the corruption
//! matrix — truncation at every section boundary, bit-flips through
//! header/table/payload/footer, misaligned section offsets — always yields
//! a clean error, never a panic or out-of-bounds access.

use aeetes_core::{load_sharded, open_frozen, open_frozen_bytes, save_engine, save_sharded, Aeetes, AeetesConfig, ExtractBackend, Strategy};
use aeetes_rules::RuleSet;
use aeetes_shard::ShardedEngine;
use aeetes_sim::Metric;
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use std::path::PathBuf;

const STRATEGIES: [Strategy; 4] = [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy];
const METRICS: [Metric; 4] = [Metric::Jaccard, Metric::Dice, Metric::Cosine, Metric::Overlap];

const DOCS: [&str; 3] = [
    "she left uq australia for purdue university united states",
    "the university of queensland australia and the university of wisconsin madison",
    "purdue university usa mit and uq au all appear here verbatim",
];

fn corpus() -> (Dictionary, RuleSet, Interner, Tokenizer) {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for e in [
        "Purdue University USA",
        "UQ AU",
        "University of Wisconsin Madison",
        "MIT",
        "United States",
        "Australia Day",
    ] {
        dict.push(e, &tokenizer, &mut interner);
    }
    let mut rules = RuleSet::new();
    for (l, r, w) in [
        ("UQ", "University of Queensland", 1.0),
        ("AU", "Australia", 0.9),
        ("USA", "United States", 1.0),
        ("MIT", "Massachusetts Institute of Technology", 0.95),
        ("UW", "University of Wisconsin", 1.0),
    ] {
        rules.push_weighted_str(l, r, w, &tokenizer, &mut interner).unwrap();
    }
    (dict, rules, interner, tokenizer)
}

fn tmp_path(tag: &str) -> PathBuf {
    static N: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let n = N.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    std::env::temp_dir().join(format!("aeetes-frozen-suite-{tag}-{}-{n}.aeet", std::process::id()))
}

/// Extraction over a frozen engine — opened from bytes (heap) and from a
/// file (mmap on unix) — is bit-identical to the monolithic oracle for
/// every strategy × metric combination.
#[test]
fn frozen_equals_monolithic_across_strategies_and_metrics() {
    let (dict, rules, interner, tokenizer) = corpus();
    for strategy in STRATEGIES {
        for metric in METRICS {
            let config = AeetesConfig { strategy, metric, ..AeetesConfig::default() };
            let mono = Aeetes::build(dict.clone(), &rules, &interner, config.clone());
            let engine = ShardedEngine::build(dict.clone(), &rules, &interner, config.clone(), 3);
            let bytes = engine.freeze();

            let heap = ShardedEngine::from_frozen(open_frozen_bytes(&bytes).expect("open heap"), None).expect("adopt heap");
            let path = tmp_path("eq");
            std::fs::write(&path, &bytes).unwrap();
            let mapped_parts = open_frozen(&path).expect("open mmap");
            #[cfg(unix)]
            assert!(mapped_parts.mmapped, "unix opens must map");
            let mapped = ShardedEngine::from_frozen(mapped_parts, None).expect("adopt mmap");
            std::fs::remove_file(&path).ok();

            for text in DOCS {
                let mut mono_int = interner.clone();
                let mono_doc = Document::parse(text, &tokenizer, &mut mono_int);
                for tau in [0.6, 0.8, 1.0] {
                    let expected = mono.extract(&mono_doc, tau);
                    for (label, frozen) in [("heap", &heap), ("mmap", &mapped)] {
                        let generation = frozen.snapshot();
                        let mut doc_int = generation.interner().clone();
                        let doc = Document::parse(text, &tokenizer, &mut doc_int);
                        assert_eq!(
                            generation.extract_all(&doc, tau),
                            expected,
                            "{label} strategy={strategy:?} metric={metric:?} tau={tau} doc={text:?}"
                        );
                    }
                }
            }
        }
    }
}

/// A legacy artifact (v2 single-engine, v4 sharded) migrates to v5:
/// load → freeze → open → refreeze is bit-identical, and the migrated
/// engine extracts exactly what the legacy engine did.
#[test]
fn legacy_artifacts_migrate_to_v5_bit_identically() {
    let (dict, rules, interner, tokenizer) = corpus();
    let config = AeetesConfig::default();
    let mono = Aeetes::build(dict.clone(), &rules, &interner, config.clone());

    let v2 = save_engine(&mono, &interner);
    let sharded = ShardedEngine::build(dict.clone(), &rules, &interner, config, 4);
    let v4 = save_sharded(&sharded.to_parts());

    for (label, legacy_bytes) in [("v2", v2), ("v4", v4)] {
        let parts = load_sharded(&legacy_bytes).expect("load legacy");
        let engine = ShardedEngine::from_parts(parts, None).expect("legacy engine");
        let legacy_gen = engine.snapshot();

        let v5 = engine.freeze();
        let reopened = ShardedEngine::from_frozen(open_frozen_bytes(&v5).expect("open v5"), None).expect("adopt v5");
        let refrozen = reopened.freeze();
        assert_eq!(v5, refrozen, "{label}: migrated artifact must refreeze bit-identically");

        let frozen_gen = reopened.snapshot();
        for text in DOCS {
            let mut legacy_int = legacy_gen.interner().clone();
            let legacy_doc = Document::parse(text, &tokenizer, &mut legacy_int);
            let mut frozen_int = frozen_gen.interner().clone();
            let frozen_doc = Document::parse(text, &tokenizer, &mut frozen_int);
            for tau in [0.6, 0.8, 1.0] {
                assert_eq!(frozen_gen.extract_all(&frozen_doc, tau), legacy_gen.extract_all(&legacy_doc, tau), "{label} tau={tau} doc={text:?}");
            }
        }
    }
}

/// Parses the v5 section table straight from the bytes: `(offset, len)` per
/// section, in table order. Kept independent of the library's parser so the
/// corruption matrix targets the format, not the implementation.
fn section_spans(bytes: &[u8]) -> Vec<(usize, usize)> {
    let s = u32::from_le_bytes(bytes[16..20].try_into().unwrap()) as usize;
    (0..s)
        .map(|i| {
            let at = 24 + i * 24;
            let off = u64::from_le_bytes(bytes[at + 8..at + 16].try_into().unwrap()) as usize;
            let len = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap()) as usize;
            (off, len)
        })
        .collect()
}

fn recrc(bytes: &mut [u8]) {
    // Mirrors the on-disk CRC-32/ISO-HDLC over everything before the
    // 4-byte footer.
    let mut crc = !0u32;
    let len = bytes.len();
    for &b in &bytes[..len - 4] {
        crc ^= b as u32;
        for _ in 0..8 {
            crc = if crc & 1 != 0 { 0xEDB8_8320 ^ (crc >> 1) } else { crc >> 1 };
        }
    }
    bytes[len - 4..].copy_from_slice(&(!crc).to_le_bytes());
}

/// Truncation at (and one byte around) every section boundary is a clean
/// error on both open paths — bytes and mmap — never a panic or OOB read.
#[test]
fn truncation_at_every_section_boundary_is_a_clean_error() {
    let (dict, rules, interner, _) = corpus();
    let engine = ShardedEngine::build(dict, &rules, &interner, AeetesConfig::default(), 2);
    let bytes = engine.freeze();

    let mut cuts: Vec<usize> = vec![0, 4, 8, 16, 20, 24];
    for (off, len) in section_spans(&bytes) {
        cuts.extend([off.saturating_sub(1), off, off + 1, off + len.saturating_sub(1), off + len, off + len + 1]);
    }
    cuts.extend([bytes.len() - 5, bytes.len() - 4, bytes.len() - 1]);
    cuts.retain(|&c| c < bytes.len());
    cuts.sort_unstable();
    cuts.dedup();

    for &cut in &cuts {
        assert!(open_frozen_bytes(&bytes[..cut]).is_err(), "heap open accepted a {cut}-byte prefix of {}", bytes.len());
    }
    // The mmap path validates the same way; spot-check a spread of cuts
    // through real files rather than writing one file per boundary.
    for &cut in cuts.iter().step_by(cuts.len().div_ceil(8).max(1)) {
        let path = tmp_path("trunc");
        std::fs::write(&path, &bytes[..cut]).unwrap();
        assert!(open_frozen(&path).is_err(), "mmap open accepted a {cut}-byte prefix");
        std::fs::remove_file(&path).ok();
    }
}

/// Bit-flips anywhere — header, section table, payload, CRC footer — are
/// rejected. The whole-file checksum is verified before any decoding, so a
/// flipped length or offset can never steer a read out of bounds.
#[test]
fn bitflips_everywhere_are_rejected() {
    let (dict, rules, interner, _) = corpus();
    let engine = ShardedEngine::build(dict, &rules, &interner, AeetesConfig::default(), 2);
    let bytes = engine.freeze();
    let table_end = 24 + section_spans(&bytes).len() * 24;

    // Exhaustive over header + section table (the bytes that steer all
    // later reads), sampled through the payload, exhaustive over footer.
    let mut targets: Vec<usize> = (0..table_end).collect();
    targets.extend((table_end..bytes.len() - 4).step_by(13));
    targets.extend(bytes.len() - 4..bytes.len());
    for i in targets {
        let mut b = bytes.clone();
        b[i] ^= 0x40;
        assert!(open_frozen_bytes(&b).is_err(), "bit flip at byte {i} accepted");
    }
}

/// A misaligned section offset is rejected even when the CRC is patched to
/// match — alignment is validated structurally, not just checksummed.
#[test]
fn misaligned_section_offsets_rejected_with_valid_crc() {
    let (dict, rules, interner, _) = corpus();
    let engine = ShardedEngine::build(dict, &rules, &interner, AeetesConfig::default(), 2);
    let bytes = engine.freeze();
    let n_sections = section_spans(&bytes).len();
    for i in 0..n_sections {
        let at = 24 + i * 24 + 8;
        let mut b = bytes.clone();
        let off = u64::from_le_bytes(b[at..at + 8].try_into().unwrap());
        b[at..at + 8].copy_from_slice(&(off + 1).to_le_bytes());
        recrc(&mut b);
        assert!(open_frozen_bytes(&b).is_err(), "misaligned offset for section {i} accepted");
    }
}
