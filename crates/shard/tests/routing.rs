//! Cost-threshold routing: the sharded engine's choice between the
//! shard-sequential path and pool fan-out is routing-only — results are
//! bit-identical to the monolithic engine either way — and the routing
//! counters record which path ran and survive generation turnover.
//!
//! Every test requests a 4-worker global pool up front so the fan-out
//! branch is reachable even on a single-core runner (first use wins, so
//! all tests in this binary must agree on the count).

use aeetes_core::{Aeetes, AeetesConfig, ExtractBackend, ExtractLimits, Strategy};
use aeetes_pool::Pool;
use aeetes_rules::RuleSet;
use aeetes_shard::{DictDelta, ShardedEngine};
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use proptest::prelude::*;

const STRATEGIES: [Strategy; 4] = [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy];

/// Always fan out / never fan out / default cost threshold.
const THRESHOLDS: [Option<u64>; 3] = [Some(0), Some(u64::MAX), None];

fn pool() -> &'static Pool {
    Pool::configure_global(4);
    Pool::global()
}

fn corpus(entities: &[String], rule_pairs: &[(String, String)]) -> (Dictionary, RuleSet, Interner, Tokenizer) {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for e in entities {
        dict.push(e, &tokenizer, &mut interner);
    }
    let mut rules = RuleSet::new();
    for (l, r) in rule_pairs {
        let _ = rules.push_str(l, r, &tokenizer, &mut interner);
    }
    (dict, rules, interner, tokenizer)
}

#[test]
fn threshold_routes_by_cost_and_counts() {
    assert!(pool().workers() > 1, "fan-out branch must be reachable");
    let (dict, rules, mut interner, tokenizer) = corpus(&["a b".into(), "c d e".into(), "b c".into()], &[("a".into(), "f g".into())]);
    let doc = Document::parse("a b c d e f g a b c", &tokenizer, &mut interner);
    let engine = ShardedEngine::build(dict, &rules, &interner, AeetesConfig::default(), 4);
    let generation = engine.snapshot();
    let expected = generation.extract_all(&doc, 0.7);

    let fan_out = ExtractLimits { fanout_threshold: Some(0), ..ExtractLimits::UNLIMITED };
    let sequential = ExtractLimits { fanout_threshold: Some(u64::MAX), ..ExtractLimits::UNLIMITED };

    let (seq0, fan0) = generation.routing_stats();
    assert_eq!(generation.extract_limited(&doc, 0.7, &fan_out, None).matches, expected);
    let (seq1, fan1) = generation.routing_stats();
    assert_eq!((seq1, fan1), (seq0, fan0 + 1), "threshold 0 must fan out");

    assert_eq!(generation.extract_limited(&doc, 0.7, &sequential, None).matches, expected);
    let (seq2, fan2) = generation.routing_stats();
    assert_eq!((seq2, fan2), (seq1 + 1, fan1), "threshold MAX must stay sequential");
}

#[test]
fn routing_counters_survive_generation_turnover() {
    let _ = pool();
    let (dict, rules, mut interner, tokenizer) = corpus(&["a b".into(), "c d".into()], &[]);
    let doc = Document::parse("a b c d", &tokenizer, &mut interner);
    let engine = ShardedEngine::build(dict, &rules, &interner, AeetesConfig::default(), 3);

    let limits = ExtractLimits { fanout_threshold: Some(u64::MAX), ..ExtractLimits::UNLIMITED };
    let before = engine.snapshot();
    before.extract_limited(&doc, 0.7, &limits, None);
    let (seq_before, _) = before.routing_stats();
    assert!(seq_before >= 1);

    let delta = DictDelta { add_entities: vec!["e f".into()], remove_entities: vec![], add_rules: vec![] };
    let after = engine.apply_update(&delta, &tokenizer).expect("delta applies");
    let (seq_after, _) = after.routing_stats();
    assert_eq!(seq_after, seq_before, "new generation adopts the running counters");
}

proptest! {
    /// Routing is invisible in the output: for every threshold (always
    /// fan out, never, default cost rule) the sharded result is
    /// bit-identical to the monolithic engine across strategies.
    #[test]
    fn routing_is_bit_identical(entities in proptest::collection::vec("[a-d]( [a-d]){0,3}", 1..8),
                                rule_pairs in proptest::collection::vec(("[a-d]", "[e-h]( [e-h]){0,2}"), 0..4),
                                doc_text in "[a-h]( [a-h]){0,25}",
                                strategy_idx in 0usize..4,
                                shards_idx in 0usize..3) {
        let _ = pool();
        let shards = [2, 4, 7][shards_idx];
        let strategy = STRATEGIES[strategy_idx];
        let (dict, rules, mut interner, tokenizer) = corpus(&entities, &rule_pairs);
        let doc = Document::parse(&doc_text, &tokenizer, &mut interner);
        let config = AeetesConfig { strategy, ..AeetesConfig::default() };
        let mono = Aeetes::build(dict.clone(), &rules, &interner, config.clone());
        let sharded = ShardedEngine::build(dict, &rules, &interner, config, shards);
        let generation = sharded.snapshot();
        for tau in [0.6, 0.8, 1.0] {
            let expected = mono.extract_limited(&doc, tau, &ExtractLimits::UNLIMITED, None);
            for threshold in THRESHOLDS {
                let limits = ExtractLimits { fanout_threshold: threshold, ..ExtractLimits::UNLIMITED };
                let got = generation.extract_limited(&doc, tau, &limits, None);
                prop_assert_eq!(
                    &got.matches, &expected.matches,
                    "strategy={:?} shards={} tau={} threshold={:?}", strategy, shards, tau, threshold
                );
                prop_assert_eq!(got.truncated, expected.truncated);
            }
        }
    }
}
