//! Property tests: the sharded engine is observationally identical to the
//! monolithic engine — same matches, same scores, same variant ids — for
//! random dictionaries, rules and documents, across all four filtering
//! strategies and shard counts {1, 2, 7, 16}; updates applied as deltas
//! equal a fresh rebuild of the updated dictionary; persistence through the
//! v3 sharded format round-trips.

use aeetes_core::{load_sharded, save_sharded, Aeetes, AeetesConfig, ExtractBackend, Strategy};
use aeetes_rules::{DerivedDictionary, RuleSet};
use aeetes_shard::{DictDelta, RuleDelta, ShardedEngine};
use aeetes_text::{Dictionary, Document, EntityId, Interner, Tokenizer};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 4] = [1, 2, 7, 16];
const STRATEGIES: [Strategy; 4] = [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy];

fn corpus(entities: &[String], rule_pairs: &[(String, String)]) -> (Dictionary, RuleSet, Interner, Tokenizer) {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for e in entities {
        dict.push(e, &tokenizer, &mut interner);
    }
    let mut rules = RuleSet::new();
    for (l, r) in rule_pairs {
        let _ = rules.push_str(l, r, &tokenizer, &mut interner);
    }
    (dict, rules, interner, tokenizer)
}

proptest! {
    /// The sharded engine returns bit-identical match sets to the single
    /// engine for every strategy and shard count.
    #[test]
    fn sharded_equals_monolithic(entities in proptest::collection::vec("[a-d]( [a-d]){0,3}", 1..8),
                                 rule_pairs in proptest::collection::vec(("[a-d]", "[e-h]( [e-h]){0,2}"), 0..4),
                                 doc_text in "[a-h]( [a-h]){0,25}") {
        let (dict, rules, mut interner, tokenizer) = corpus(&entities, &rule_pairs);
        let doc = Document::parse(&doc_text, &tokenizer, &mut interner);
        for strategy in STRATEGIES {
            let config = AeetesConfig { strategy, ..AeetesConfig::default() };
            let mono = Aeetes::build(dict.clone(), &rules, &interner, config.clone());
            for n in SHARD_COUNTS {
                let sharded = ShardedEngine::build(dict.clone(), &rules, &interner, config.clone(), n);
                let generation = sharded.snapshot();
                for tau in [0.6, 0.8, 1.0] {
                    prop_assert_eq!(
                        generation.extract_all(&doc, tau),
                        mono.extract(&doc, tau),
                        "strategy={:?} shards={} tau={}", strategy, n, tau
                    );
                }
            }
        }
    }

    /// Applying a delta (add entities + rules, remove an entity) equals
    /// rebuilding a fresh engine over the post-delta dictionary.
    #[test]
    fn delta_equals_fresh_rebuild(entities in proptest::collection::vec("[a-d]( [a-d]){0,3}", 2..6),
                                  added in proptest::collection::vec("[a-f]( [a-f]){0,3}", 0..3),
                                  new_rule in ("[a-d]", "[e-h]( [e-h]){0,2}"),
                                  remove_idx in 0usize..2,
                                  doc_text in "[a-h]( [a-h]){0,25}") {
        let (dict, rules, interner, tokenizer) = corpus(&entities, &[]);
        for n in [1, 3, 16] {
            let engine = ShardedEngine::build(dict.clone(), &rules, &interner, AeetesConfig::default(), n);
            let delta = DictDelta {
                add_entities: added.clone(),
                remove_entities: vec![EntityId(remove_idx as u32)],
                add_rules: vec![RuleDelta { lhs: new_rule.0.clone(), rhs: new_rule.1.clone(), weight: 1.0 }],
            };
            let generation = engine.apply_update(&delta, &tokenizer).expect("delta applies");

            // The oracle: a monolithic engine over the post-delta dictionary,
            // derived with the same tombstone filter the delta applies (the
            // removed origin keeps its id slot but contributes no variants).
            let mut fresh_interner = interner.clone();
            let mut fresh_dict = dict.clone();
            for e in &added {
                fresh_dict.push(e, &tokenizer, &mut fresh_interner);
            }
            let mut fresh_rules = rules.clone();
            let _ = fresh_rules.push_str(&new_rule.0, &new_rule.1, &tokenizer, &mut fresh_interner);
            let config = AeetesConfig::default();
            let removed_id = EntityId(remove_idx as u32);
            let dd = DerivedDictionary::build_filtered(&fresh_dict, &fresh_rules, &config.derive, |e| e != removed_id);
            let mono = Aeetes::from_parts(fresh_dict, dd, &fresh_interner, config);

            // The two interners assign different ids to the same strings
            // (different intern order), so each engine parses its own copy.
            let mut doc_int = generation.interner().clone();
            let doc = Document::parse(&doc_text, &tokenizer, &mut doc_int);
            let mut mono_doc_int = fresh_interner.clone();
            let mono_doc = Document::parse(&doc_text, &tokenizer, &mut mono_doc_int);
            for tau in [0.6, 0.9] {
                prop_assert_eq!(
                    generation.extract_all(&doc, tau),
                    mono.extract(&mono_doc, tau),
                    "shards={} tau={}", n, tau
                );
            }
        }
    }

    /// save_sharded/load_sharded round-trips the engine: reloading at the
    /// stored shard count, resharded, and collapsed to a single engine all
    /// extract identically.
    #[test]
    fn sharded_persistence_round_trip(entities in proptest::collection::vec("[a-d]( [a-d]){0,3}", 1..6),
                                      rule_pairs in proptest::collection::vec(("[a-d]", "[e-h]( [e-h]){0,2}"), 0..3),
                                      doc_text in "[a-h]( [a-h]){0,25}") {
        let (dict, rules, interner, tokenizer) = corpus(&entities, &rule_pairs);
        let engine = ShardedEngine::build(dict, &rules, &interner, AeetesConfig::default(), 4);
        let bytes = save_sharded(&engine.to_parts());
        let parts = load_sharded(&bytes).expect("load");
        let generation = engine.snapshot();
        let mut doc_int = generation.interner().clone();
        let doc = Document::parse(&doc_text, &tokenizer, &mut doc_int);
        let expected = generation.extract_all(&doc, 0.7);

        let same = ShardedEngine::from_parts(parts.clone(), None).expect("same count");
        prop_assert_eq!(same.snapshot().extract_all(&doc, 0.7), expected.clone());

        let resharded = ShardedEngine::from_parts(parts.clone(), Some(9)).expect("resharded");
        prop_assert_eq!(resharded.snapshot().extract_all(&doc, 0.7), expected.clone());

        let (single, mut single_int) = parts.into_single().expect("collapse");
        let doc2 = Document::parse(&doc_text, &tokenizer, &mut single_int);
        prop_assert_eq!(single.extract(&doc2, 0.7), expected);
    }
}
