//! Property tests: the obs metric bundle reconciles *exactly* with the
//! engine's own [`ExtractStats`] — every candidate the engine counts shows up
//! as one `aeetes_candidates_total` increment, every verified match as one
//! `aeetes_matches_total` increment, and so on — across all four filtering
//! strategies and shard counts {1, 4}. The counters are the monitoring
//! surface of the paper's Table 4 work measures, so drift between the two
//! bookkeeping paths is a correctness bug, not a display nit.

use aeetes_core::{AeetesConfig, ExtractBackend, ExtractLimits, ExtractScratch, ExtractStats, Strategy};
use aeetes_obs::{ExtractCounts, ExtractMetrics, MetricRegistry};
use aeetes_rules::RuleSet;
use aeetes_shard::ShardedEngine;
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use proptest::prelude::*;

const SHARD_COUNTS: [usize; 2] = [1, 4];
const STRATEGIES: [Strategy; 4] = [Strategy::Simple, Strategy::Skip, Strategy::Dynamic, Strategy::Lazy];

fn corpus(entities: &[String], rule_pairs: &[(String, String)]) -> (Dictionary, RuleSet, Interner, Tokenizer) {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for e in entities {
        dict.push(e, &tokenizer, &mut interner);
    }
    let mut rules = RuleSet::new();
    for (l, r) in rule_pairs {
        let _ = rules.push_str(l, r, &tokenizer, &mut interner);
    }
    (dict, rules, interner, tokenizer)
}

/// Flushes one extraction outcome into `metrics`, mirroring what the serve
/// and batch layers do, and returns the engine-side stats for comparison.
fn observe_doc(
    generation: &aeetes_shard::Generation,
    doc: &Document,
    tau: f64,
    scratch: &mut ExtractScratch,
    metrics: &ExtractMetrics,
) -> (ExtractStats, bool) {
    let out = generation.extract_scratched(doc, tau, &ExtractLimits::UNLIMITED, None, scratch);
    let counts = ExtractCounts {
        accessed_entries: out.stats.accessed_entries,
        candidates: out.stats.candidates,
        verifications: out.stats.verifications,
        matches: out.stats.matches,
    };
    let (stats, truncated, stages) = (out.stats, out.truncated, out.stages);
    metrics.observe(&stages, &counts, truncated);
    (stats, truncated)
}

proptest! {
    /// Counter values equal the summed engine stats, exactly, for every
    /// strategy × shard count; and because the sharded engine is
    /// observationally deterministic, candidates/matches also agree between
    /// shard counts 1 and 4.
    #[test]
    fn counters_reconcile_with_extract_stats(
        entities in proptest::collection::vec("[a-d]( [a-d]){0,3}", 1..6),
        rule_pairs in proptest::collection::vec(("[a-d]", "[e-h]( [e-h]){0,2}"), 0..3),
        doc_texts in proptest::collection::vec("[a-h]( [a-h]){0,20}", 1..4),
        ) {
        let (dict, rules, mut interner, tokenizer) = corpus(&entities, &rule_pairs);
        let docs: Vec<Document> = doc_texts.iter().map(|t| Document::parse(t, &tokenizer, &mut interner)).collect();
        for strategy in STRATEGIES {
            let config = AeetesConfig { strategy, ..AeetesConfig::default() };
            let mut across_shards: Vec<(u64, u64)> = Vec::new();
            for n in SHARD_COUNTS {
                let engine = ShardedEngine::build(dict.clone(), &rules, &interner, config.clone(), n);
                let generation = engine.snapshot();
                let registry = MetricRegistry::new();
                let metrics = ExtractMetrics::register(&registry);
                let mut scratch = ExtractScratch::new();
                let mut expected = ExtractStats::default();
                let mut expected_truncated = 0u64;
                for doc in &docs {
                    let (stats, truncated) = observe_doc(&generation, doc, 0.7, &mut scratch, &metrics);
                    expected += stats;
                    expected_truncated += u64::from(truncated);
                }
                prop_assert_eq!(metrics.docs.value(), docs.len() as u64, "strategy={:?} shards={}", strategy, n);
                prop_assert_eq!(metrics.accessed_entries.value(), expected.accessed_entries, "strategy={:?} shards={}", strategy, n);
                prop_assert_eq!(metrics.candidates.value(), expected.candidates, "strategy={:?} shards={}", strategy, n);
                prop_assert_eq!(metrics.verifications.value(), expected.verifications, "strategy={:?} shards={}", strategy, n);
                prop_assert_eq!(metrics.matches.value(), expected.matches, "strategy={:?} shards={}", strategy, n);
                prop_assert_eq!(metrics.truncated.value(), expected_truncated, "strategy={:?} shards={}", strategy, n);
                across_shards.push((expected.candidates, expected.matches));
            }
            // Candidate generation and match sets don't depend on sharding.
            prop_assert_eq!(across_shards[0].0, across_shards[1].0, "candidates diverge across shard counts, strategy={:?}", strategy);
            prop_assert_eq!(across_shards[0].1, across_shards[1].1, "matches diverge across shard counts, strategy={:?}", strategy);
        }
    }
}

/// A deterministic truncated run: with `max_matches = 1` and two mentions in
/// the document, the outcome is truncated and the obs bundle records exactly
/// one truncation alongside the partial counters.
#[test]
fn truncation_increments_truncated_counter() {
    let (dict, rules, mut interner, tokenizer) = corpus(&["a".into(), "b".into()], &[]);
    let doc = Document::parse("a b a b", &tokenizer, &mut interner);
    for n in SHARD_COUNTS {
        let engine = ShardedEngine::build(dict.clone(), &rules, &interner, AeetesConfig::default(), n);
        let generation = engine.snapshot();
        let registry = MetricRegistry::new();
        let metrics = ExtractMetrics::register(&registry);
        let limits = ExtractLimits { max_matches: Some(1), ..ExtractLimits::UNLIMITED };
        let mut scratch = ExtractScratch::new();
        let out = generation.extract_scratched(&doc, 1.0, &limits, None, &mut scratch);
        assert!(out.truncated, "shards={n}: two exact mentions against max_matches=1 must truncate");
        let counts = ExtractCounts {
            accessed_entries: out.stats.accessed_entries,
            candidates: out.stats.candidates,
            verifications: out.stats.verifications,
            matches: out.stats.matches,
        };
        let (stats, truncated, stages) = (out.stats, out.truncated, out.stages);
        metrics.observe(&stages, &counts, truncated);
        assert_eq!(metrics.truncated.value(), 1, "shards={n}");
        assert_eq!(metrics.matches.value(), stats.matches, "shards={n}");
        assert_eq!(metrics.matches.value(), 1, "shards={n}");
    }
}
