//! Immutable generations: one fully-built sharded engine state.

use aeetes_core::{
    extract_segment_scratched, AeetesConfig, CancelToken, ExtractBackend, ExtractLimits, ExtractOutcome, ExtractScratch, ExtractStats, Match,
    ScratchOutcome, SegmentScratch,
};
use aeetes_index::{ClusteredIndex, GlobalOrder};
use aeetes_pool::Pool;
use aeetes_rules::{DerivedDictionary, DerivedId, RuleSet};
use aeetes_text::{Dictionary, Document, EntityId, Interner};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Default fan-out cost threshold: a multi-shard request whose estimated
/// cost — document tokens × live shards — reaches this value is worth the
/// cross-thread handoff of a pool fan-out; anything cheaper runs
/// shard-sequentially on the calling thread. Calibrated so short serve
/// requests (tens of tokens) stay on one thread even at high shard counts,
/// while analytics-sized documents parallelize.
const DEFAULT_FANOUT_THRESHOLD: u64 = 4096;

/// Cumulative sequential-vs-fanout routing decisions. Shared (via `Arc`)
/// across the generations of one engine lineage so the counters survive
/// dictionary-delta swaps.
#[derive(Debug, Default)]
pub(crate) struct RoutingCounters {
    pub(crate) sequential: AtomicU64,
    pub(crate) fanout: AtomicU64,
}

/// Deterministic origin-entity → shard routing: a bit-mixed hash of the id
/// modulo the shard count. Mixing (rather than `id % n`) keeps shards
/// balanced when entity ids carry structure (e.g. sorted-by-source blocks).
pub fn shard_of(e: EntityId, shards: usize) -> usize {
    debug_assert!(shards > 0, "shard count must be positive");
    (splitmix64(u64::from(e.0)) % shards as u64) as usize
}

fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// One shard: the derived variants of its resident origins plus their
/// clustered index, built against the generation's shared global order.
/// Serving counters are cumulative and carried forward when a generation
/// update reuses the shard unchanged.
pub struct Shard {
    pub(crate) dd: DerivedDictionary,
    pub(crate) index: ClusteredIndex,
    /// Resident origins (those with at least one variant here).
    resident: usize,
    served: AtomicU64,
    candidates: AtomicU64,
    /// Wall time this shard's index build took (set once at build).
    build_nanos: u64,
    /// Cumulative wall time spent extracting in this shard.
    extract_nanos: AtomicU64,
}

impl Shard {
    pub(crate) fn build(dd: DerivedDictionary, order: Arc<GlobalOrder>) -> Self {
        let start = std::time::Instant::now();
        let index = ClusteredIndex::build_with_order(&dd, order);
        // Count populated origin buckets off the prefix array — walking
        // `dd.iter()` would materialize a DerivedRef per variant.
        let by_origin = dd.raw_arenas().6;
        let resident = by_origin.windows(2).filter(|w| w[0] < w[1]).count();
        Shard {
            dd,
            index,
            resident,
            served: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            build_nanos: start.elapsed().as_nanos() as u64,
            extract_nanos: AtomicU64::new(0),
        }
    }

    /// Wraps an already-built derived dictionary + index pair (the frozen
    /// open path, where the index comes off the artifact instead of a
    /// build). Counters start at zero; `build_nanos` is 0 by definition —
    /// nothing was built.
    pub(crate) fn from_prebuilt(dd: DerivedDictionary, index: ClusteredIndex) -> Self {
        // Count populated origin buckets off the prefix array — walking
        // `dd.iter()` would materialize a DerivedRef per variant.
        let by_origin = dd.raw_arenas().6;
        let resident = by_origin.windows(2).filter(|w| w[0] < w[1]).count();
        Shard {
            dd,
            index,
            resident,
            served: AtomicU64::new(0),
            candidates: AtomicU64::new(0),
            build_nanos: 0,
            extract_nanos: AtomicU64::new(0),
        }
    }

    /// Carries the cumulative counters of the shard this one replaces, so
    /// per-shard serving totals survive a rebuild. The build time is not
    /// inherited: it describes this shard's own build.
    pub(crate) fn inherit_counters(&self, old: &Shard) {
        self.served.store(old.served.load(Ordering::Relaxed), Ordering::Relaxed);
        self.candidates.store(old.candidates.load(Ordering::Relaxed), Ordering::Relaxed);
        self.extract_nanos.store(old.extract_nanos.load(Ordering::Relaxed), Ordering::Relaxed);
    }

    /// Number of derived variants resident in this shard.
    pub fn variants(&self) -> usize {
        self.dd.len()
    }
}

/// Point-in-time serving statistics of one shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardStats {
    /// Origins with at least one variant in the shard.
    pub entities: usize,
    /// Derived variants indexed by the shard.
    pub variants: usize,
    /// Extractions this shard has answered (cumulative across generations
    /// while the shard survives rebuilds).
    pub served: u64,
    /// Candidate pairs this shard has generated.
    pub candidates: u64,
    /// Wall time the shard's index build took, in nanoseconds (per build —
    /// not carried across rebuilds).
    pub build_nanos: u64,
    /// Cumulative wall time spent extracting in this shard, in nanoseconds
    /// (carried across rebuilds like `served`).
    pub extract_nanos: u64,
}

/// One immutable sharded engine state. All shards share a single global
/// token order (or an append-only extension of it), one interner snapshot,
/// and the full origin dictionary; extraction fans out to every shard and
/// merges. Cheap to share: [`crate::ShardedEngine`] hands out
/// `Arc<Generation>` snapshots.
pub struct Generation {
    pub(crate) id: u64,
    pub(crate) interner: Interner,
    pub(crate) dict: Dictionary,
    /// Sorted tombstoned origin ids (slots kept, variants dropped).
    pub(crate) removed: Vec<EntityId>,
    pub(crate) rules: RuleSet,
    pub(crate) config: AeetesConfig,
    pub(crate) order: Arc<GlobalOrder>,
    pub(crate) shards: Vec<Arc<Shard>>,
    /// Per-origin base of the *global* derived-id space: the id a variant
    /// would have in a monolithic engine over the same dictionary. Used to
    /// remap per-shard `best_variant` ids during the merge, keeping results
    /// bit-identical to the single-engine build.
    global_base: Vec<u32>,
    /// Dictionary-global `(min, max)` distinct-set length range, passed to
    /// every shard extraction: a shard's local range is tighter and would
    /// skip window lengths the whole dictionary admits, breaking
    /// bit-identity with the monolithic engine.
    set_len_bounds: Option<(usize, usize)>,
    /// Shards with at least one resident variant — the parallelism factor
    /// of the fan-out cost model (empty shards contribute no work).
    live_shards: usize,
    /// Sequential-vs-fanout routing tallies, inherited across generations.
    pub(crate) routing: Arc<RoutingCounters>,
}

impl Generation {
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn assemble(
        id: u64,
        interner: Interner,
        dict: Dictionary,
        removed: Vec<EntityId>,
        rules: RuleSet,
        config: AeetesConfig,
        order: Arc<GlobalOrder>,
        shards: Vec<Arc<Shard>>,
    ) -> Self {
        let n = shards.len();
        // Hoist each shard's origin prefix array once — the loop below runs
        // per dictionary entity on the frozen open path.
        let prefixes: Vec<&[u32]> = shards.iter().map(|s| s.dd.raw_arenas().6).collect();
        let mut global_base = vec![0u32; dict.len()];
        let mut cum = 0u32;
        for (i, base) in global_base.iter_mut().enumerate() {
            *base = cum;
            let by_origin = prefixes[shard_of(EntityId(i as u32), n)];
            // A shard predating a dictionary-growing delta covers a shorter
            // origin space; origins beyond it have no variants there.
            if i + 1 < by_origin.len() {
                cum += by_origin[i + 1] - by_origin[i];
            }
        }
        let mut set_len_bounds: Option<(usize, usize)> = None;
        for shard in &shards {
            if let (Some(lo), Some(hi)) = (shard.index.min_set_len(), shard.index.max_set_len()) {
                set_len_bounds = Some(match set_len_bounds {
                    Some((a, b)) => (a.min(lo), b.max(hi)),
                    None => (lo, hi),
                });
            }
        }
        let live_shards = shards.iter().filter(|s| !s.dd.is_empty()).count();
        Generation {
            id,
            interner,
            dict,
            removed,
            rules,
            config,
            order,
            shards,
            global_base,
            set_len_bounds,
            live_shards,
            routing: Arc::new(RoutingCounters::default()),
        }
    }

    /// Shares `prev`'s routing counters so sequential/fan-out tallies are
    /// cumulative across generation swaps, like the per-shard counters.
    pub(crate) fn adopt_routing(&mut self, prev: &Generation) {
        self.routing = Arc::clone(&prev.routing);
    }

    /// Cumulative `(sequential, fanout)` routing decisions of this engine
    /// lineage: how many multi-shard extractions ran shard-sequentially on
    /// the calling thread vs fanned out across the worker pool.
    pub fn routing_stats(&self) -> (u64, u64) {
        (self.routing.sequential.load(Ordering::Relaxed), self.routing.fanout.load(Ordering::Relaxed))
    }

    /// Monotonic generation number (1 for a fresh build).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Serializes this generation as a frozen (format v5) artifact: every
    /// shard's derived dictionary and clustered index laid out as flat
    /// arenas a future engine can mmap and serve without rebuilding. The
    /// shared global order is written once; shards predating an append-only
    /// order extension stay valid against it (extension never changes an
    /// existing key).
    pub fn freeze(&self) -> Vec<u8> {
        aeetes_core::freeze_to_bytes(&aeetes_core::FreezeSource {
            interner: &self.interner,
            dict: &self.dict,
            removed: &self.removed,
            rules: &self.rules,
            config: &self.config,
            generation: self.id,
            order: &self.order,
            segments: self.shards.iter().map(|s| aeetes_core::FreezeSegment { dd: &s.dd, index: &s.index }).collect(),
        })
    }

    /// The interner snapshot documents must be tokenized against.
    pub fn interner(&self) -> &Interner {
        &self.interner
    }

    /// The rule table this generation was derived with.
    pub fn rules(&self) -> &RuleSet {
        &self.rules
    }

    /// Tombstoned origin ids, ascending.
    pub fn removed(&self) -> &[EntityId] {
        &self.removed
    }

    /// The shared global token order.
    pub fn order(&self) -> &GlobalOrder {
        &self.order
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Dictionary-global `(min, max)` distinct-set length range — the same
    /// range every shard extraction is bounded by, so streaming callers
    /// derive the same tail retention a monolithic engine would.
    pub fn set_len_range(&self) -> Option<(usize, usize)> {
        self.set_len_bounds
    }

    /// Total derived variants across all shards.
    pub fn variants(&self) -> usize {
        self.shards.iter().map(|s| s.dd.len()).sum()
    }

    /// Per-shard serving statistics, indexed by shard id.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .map(|s| ShardStats {
                entities: s.resident,
                variants: s.dd.len(),
                served: s.served.load(Ordering::Relaxed),
                candidates: s.candidates.load(Ordering::Relaxed),
                build_nanos: s.build_nanos,
                extract_nanos: s.extract_nanos.load(Ordering::Relaxed),
            })
            .collect()
    }

    fn run_shard_into(
        &self,
        shard: &Shard,
        doc: &Document,
        tau: f64,
        limits: &ExtractLimits,
        cancel: Option<&CancelToken>,
        seg: &mut SegmentScratch,
    ) -> (bool, ExtractStats) {
        let start = std::time::Instant::now();
        let (truncated, stats) = extract_segment_scratched(
            &shard.index,
            &shard.dd,
            doc,
            tau,
            self.config.strategy,
            self.config.metric,
            false,
            self.set_len_bounds,
            limits,
            cancel,
            seg,
        );
        shard.extract_nanos.fetch_add(start.elapsed().as_nanos() as u64, Ordering::Relaxed);
        shard.served.fetch_add(1, Ordering::Relaxed);
        shard.candidates.fetch_add(stats.candidates, Ordering::Relaxed);
        (truncated, stats)
    }
}

impl ExtractBackend for Generation {
    fn dictionary(&self) -> &Dictionary {
        &self.dict
    }

    fn config(&self) -> &AeetesConfig {
        &self.config
    }

    fn set_len_range(&self) -> Option<(usize, usize)> {
        self.set_len_bounds
    }

    fn extract_limited(&self, doc: &Document, tau: f64, limits: &ExtractLimits, cancel: Option<&CancelToken>) -> ExtractOutcome {
        self.extract_scratched(doc, tau, limits, cancel, &mut ExtractScratch::new()).to_outcome()
    }

    fn extract_scratched<'s>(
        &self,
        doc: &Document,
        tau: f64,
        limits: &ExtractLimits,
        cancel: Option<&CancelToken>,
        scratch: &'s mut ExtractScratch,
    ) -> ScratchOutcome<'s> {
        if self.shards.len() == 1 {
            // A single shard carries the full derivation: local variant ids
            // coincide with global ones, so no merge pass is needed.
            let seg = scratch.segment(0);
            let (truncated, stats) = self.run_shard_into(&self.shards[0], doc, tau, limits, cancel, seg);
            return ScratchOutcome { matches: seg.matches(), truncated, stats, stages: *seg.stages() };
        }
        let n = self.shards.len();
        let (segs, merged) = scratch.split(n);
        // Route by estimated cost: tokens × live shards. Cheap requests run
        // shard-sequentially on the calling thread — no cross-thread
        // handoff, no wakeups — and only past the threshold does the
        // request fan out across the persistent pool. Results are
        // bit-identical either way (the shard property suite is the
        // oracle); only the parallelism differs.
        let cost = doc.tokens().len() as u64 * self.live_shards as u64;
        let threshold = limits.fanout_threshold.unwrap_or(DEFAULT_FANOUT_THRESHOLD);
        let pool = Pool::global();
        if pool.workers() <= 1 || cost < threshold {
            self.routing.sequential.fetch_add(1, Ordering::Relaxed);
            for (shard, seg) in self.shards.iter().zip(segs.iter_mut()) {
                self.run_shard_into(shard, doc, tau, limits, cancel, seg);
            }
        } else {
            self.routing.fanout.fetch_add(1, Ordering::Relaxed);
            // Each item touches only its own disjoint segment scratch; the
            // raw pointer carries the `&mut` across the `Fn` closure.
            struct SegPtr(*mut SegmentScratch);
            unsafe impl Send for SegPtr {}
            unsafe impl Sync for SegPtr {}
            impl SegPtr {
                /// # Safety
                /// `i` in bounds; dereference only while claimed by exactly
                /// one executor. A method (not the raw field) so the closure
                /// captures the `Sync` wrapper under disjoint field capture.
                unsafe fn seg(&self, i: usize) -> *mut SegmentScratch {
                    self.0.add(i)
                }
            }
            let base = SegPtr(segs.as_mut_ptr());
            let panicked = pool.fan_out(n, |i| {
                let seg = unsafe { &mut *base.seg(i) };
                self.run_shard_into(&self.shards[i], doc, tau, limits, cancel, seg);
            });
            assert!(!panicked, "shard extraction panicked");
        }
        // Merge per-shard results: remap variant ids into the global derived
        // space, restore the stable `(span, entity)` order, re-apply the
        // match cap across the union (each shard only capped its own
        // stream). Origins are disjoint across shards, so no deduplication
        // is needed and sort keys never tie across shards. Each shard's
        // outcome is read back from its segment scratch — no result
        // channel on either routing path.
        merged.clear();
        let mut truncated = false;
        let mut stats = ExtractStats::default();
        let mut stages = aeetes_core::StageSlots::default();
        for (shard, seg) in self.shards.iter().zip(segs.iter()) {
            truncated |= seg.truncated();
            stats += seg.stats();
            stages.merge(seg.stages());
            for &m in seg.matches() {
                let local = shard.dd.variant_range(m.entity).start;
                let mut m = m;
                m.best_variant = DerivedId(self.global_base[m.entity.idx()] + (m.best_variant.0 - local));
                merged.push(m);
            }
        }
        merged.sort_unstable_by_key(Match::sort_key);
        if let Some(cap) = limits.max_matches {
            if merged.len() > cap {
                merged.truncate(cap);
                truncated = true;
            }
        }
        stats.matches = merged.len() as u64;
        ScratchOutcome { matches: merged, truncated, stats, stages }
    }
}
