//! The mutable shell around immutable generations: parallel build, delta
//! updates with affected-shard rebuild, atomic epoch swap, persistence.

use crate::generation::{shard_of, Generation, Shard};
use aeetes_core::{AeetesConfig, ShardedParts};
use aeetes_index::GlobalOrder;
use aeetes_rules::{find_applications, DeriveStats, DerivedDictionary, DerivedEntity, RuleError, RuleSet};
use aeetes_text::{Dictionary, EntityId, Interner, Tokenizer};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, Mutex, RwLock};

/// Upper bound on the shard count: the fan-out spawns one thread per shard
/// per extraction, so an absurd count must not be able to exhaust threads.
const MAX_SHARDS: usize = 64;

/// A batch of dictionary/rule changes applied as one new generation.
#[derive(Debug, Clone, Default)]
pub struct DictDelta {
    /// Raw entity strings to append (ids continue after the current table).
    pub add_entities: Vec<String>,
    /// Origin ids to tombstone: their variants leave the index, their id
    /// slots stay reserved so surviving ids never shift.
    pub remove_entities: Vec<EntityId>,
    /// Synonym rules to append. Existing derivations only change where a
    /// new rule is applicable (those origins' shards are rebuilt).
    pub add_rules: Vec<RuleDelta>,
}

impl DictDelta {
    /// Whether the delta changes anything.
    pub fn is_empty(&self) -> bool {
        self.add_entities.is_empty() && self.remove_entities.is_empty() && self.add_rules.is_empty()
    }
}

/// One rule in a [`DictDelta`].
#[derive(Debug, Clone)]
pub struct RuleDelta {
    /// Left-hand side (tokenized on application).
    pub lhs: String,
    /// Right-hand side.
    pub rhs: String,
    /// Confidence weight in `(0, 1]`; use `1.0` for classic rules.
    pub weight: f64,
}

/// Errors applying a [`DictDelta`]. The update is all-or-nothing: on error
/// the current generation stays in place untouched.
#[derive(Debug)]
pub enum UpdateError {
    /// A removal names an origin id outside the dictionary.
    UnknownEntity(u32),
    /// A new rule is invalid (empty side, trivial, bad weight).
    Rule(RuleError),
}

impl fmt::Display for UpdateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UpdateError::UnknownEntity(id) => write!(f, "delta removes unknown entity id {id}"),
            UpdateError::Rule(e) => write!(f, "delta contains an invalid rule: {e}"),
        }
    }
}

impl std::error::Error for UpdateError {}

/// Errors activating a prepared generation (the commit half of the
/// two-phase delta protocol used by fleet coordinators).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ActivateError {
    /// No generation is prepared (never prepared, already activated, or
    /// invalidated by a direct [`ShardedEngine::apply_update`]).
    NothingPrepared,
    /// A generation is prepared, but under a different id than requested.
    WrongGeneration {
        /// Id of the generation currently prepared.
        prepared: u64,
        /// Id the caller asked to activate.
        requested: u64,
    },
}

impl fmt::Display for ActivateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ActivateError::NothingPrepared => write!(f, "no prepared generation to activate"),
            ActivateError::WrongGeneration { prepared, requested } => {
                write!(f, "prepared generation is {prepared}, not {requested}")
            }
        }
    }
}

impl std::error::Error for ActivateError {}

/// The sharded extraction engine: an atomically swappable current
/// [`Generation`] plus an update lock serializing writers.
///
/// Readers call [`ShardedEngine::snapshot`] and extract against the
/// returned `Arc<Generation>`; they are never blocked by an update (the
/// epoch pointer swap is the only write they can observe). Updates build
/// the next generation off to the side — rebuilding only affected shards —
/// and swap when fully constructed.
///
/// Updates come in two flavors: [`ShardedEngine::apply_update`] builds and
/// swaps in one step, and the [`ShardedEngine::prepare_update`] /
/// [`ShardedEngine::activate`] pair splits build from swap so a fleet
/// coordinator can prepare a delta on every replica before any of them
/// starts serving it (no mixed-generation window across a fleet).
pub struct ShardedEngine {
    current: RwLock<Arc<Generation>>,
    /// Serializes `apply_update`/`prepare_update`/`activate` calls; never
    /// held while readers extract.
    update_lock: Mutex<()>,
    /// A generation built by `prepare_update` awaiting `activate`. Always
    /// exactly one ahead of `current` when present: a direct `apply_update`
    /// clears it, so a prepared generation can never go stale silently.
    pending: Mutex<Option<Arc<Generation>>>,
}

/// Resolves a requested shard count: `0` means the machine's available
/// parallelism; anything is clamped into `1..=MAX_SHARDS`.
fn resolve_shards(requested: usize) -> usize {
    let n = if requested == 0 {
        std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get)
    } else {
        requested
    };
    n.clamp(1, MAX_SHARDS)
}

/// Derives each shard's slice of the dictionary in parallel. `keep` further
/// filters origins (tombstones); the slices keep the full origin id space.
fn derive_shards(
    dict: &Dictionary,
    rules: &RuleSet,
    config: &AeetesConfig,
    n: usize,
    keep: &(impl Fn(EntityId) -> bool + Sync),
) -> Vec<DerivedDictionary> {
    std::thread::scope(|s| {
        let handles: Vec<_> = (0..n)
            .map(|i| s.spawn(move || DerivedDictionary::build_filtered(dict, rules, &config.derive, |e| shard_of(e, n) == i && keep(e))))
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard derivation panicked")).collect()
    })
}

/// Builds clustered indexes for `dds` in parallel against one shared order.
fn index_shards(dds: Vec<DerivedDictionary>, order: &Arc<GlobalOrder>) -> Vec<Arc<Shard>> {
    std::thread::scope(|s| {
        let handles: Vec<_> = dds
            .into_iter()
            .map(|dd| {
                let order = Arc::clone(order);
                s.spawn(move || Arc::new(Shard::build(dd, order)))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard index build panicked")).collect()
    })
}

impl ShardedEngine {
    /// Builds generation 1 from scratch: per-shard derivation in parallel,
    /// one global order over the union, per-shard indexes in parallel.
    /// `shards == 0` uses the machine's available parallelism.
    pub fn build(dict: Dictionary, rules: &RuleSet, interner: &Interner, config: AeetesConfig, shards: usize) -> Self {
        let n = resolve_shards(shards);
        let dds = derive_shards(&dict, rules, &config, n, &|_| true);
        let refs: Vec<&DerivedDictionary> = dds.iter().collect();
        let order = Arc::new(GlobalOrder::build_many(&refs, interner));
        let shards = index_shards(dds, &order);
        let generation = Generation::assemble(1, interner.clone(), dict, Vec::new(), rules.clone(), config, order, shards);
        ShardedEngine {
            current: RwLock::new(Arc::new(generation)),
            update_lock: Mutex::new(()),
            pending: Mutex::new(None),
        }
    }

    /// The current generation. The returned snapshot stays fully usable
    /// (and its shards resident) for as long as the caller holds it, even
    /// across any number of subsequent updates.
    pub fn snapshot(&self) -> Arc<Generation> {
        Arc::clone(&self.current.read().unwrap_or_else(|p| p.into_inner()))
    }

    /// The current generation number.
    pub fn generation_id(&self) -> u64 {
        self.snapshot().id()
    }

    /// The shard count (fixed for the engine's lifetime).
    pub fn shard_count(&self) -> usize {
        self.snapshot().shard_count()
    }

    /// Applies a delta as a new generation and returns it.
    ///
    /// Only the shards owning an added, removed, or rule-affected origin
    /// are re-derived and re-indexed; the rest are reused by reference. The
    /// global order is extended append-only (existing keys frozen), so the
    /// reused indexes remain correct next to the rebuilt ones. The swap is
    /// atomic; concurrent extractions see either the old or the new
    /// generation, never a mixture.
    pub fn apply_update(&self, delta: &DictDelta, tokenizer: &Tokenizer) -> Result<Arc<Generation>, UpdateError> {
        let _guard = self.update_lock.lock().unwrap_or_else(|p| p.into_inner());
        let cur = self.snapshot();
        let next = build_next(&cur, delta, tokenizer)?;
        // A direct apply invalidates any prepared-but-unactivated generation:
        // it was built against a current that no longer exists.
        *self.pending.lock().unwrap_or_else(|p| p.into_inner()) = None;
        *self.current.write().unwrap_or_else(|p| p.into_inner()) = Arc::clone(&next);
        Ok(next)
    }

    /// Builds the next generation from `delta` without swapping it in
    /// (phase one of two-phase delta shipping). The prepared generation is
    /// returned and retained until [`ShardedEngine::activate`] commits it,
    /// a later `prepare_update` replaces it, or [`ShardedEngine::apply_update`]
    /// invalidates it. Serving is untouched: readers keep extracting the
    /// current generation.
    pub fn prepare_update(&self, delta: &DictDelta, tokenizer: &Tokenizer) -> Result<Arc<Generation>, UpdateError> {
        let _guard = self.update_lock.lock().unwrap_or_else(|p| p.into_inner());
        let cur = self.snapshot();
        let next = build_next(&cur, delta, tokenizer)?;
        *self.pending.lock().unwrap_or_else(|p| p.into_inner()) = Some(Arc::clone(&next));
        Ok(next)
    }

    /// Swaps in the generation previously built by
    /// [`ShardedEngine::prepare_update`] (phase two). `generation_id` must
    /// name the prepared generation exactly — a coordinator that prepared
    /// id `N` on every replica activates `N` everywhere, and a replica
    /// whose prepared id diverged fails loudly instead of serving a
    /// mismatched dictionary.
    pub fn activate(&self, generation_id: u64) -> Result<Arc<Generation>, ActivateError> {
        let _guard = self.update_lock.lock().unwrap_or_else(|p| p.into_inner());
        let mut pending = self.pending.lock().unwrap_or_else(|p| p.into_inner());
        match pending.as_ref() {
            None => Err(ActivateError::NothingPrepared),
            Some(next) if next.id() != generation_id => Err(ActivateError::WrongGeneration { prepared: next.id(), requested: generation_id }),
            Some(next) => {
                let next = Arc::clone(next);
                *pending = None;
                *self.current.write().unwrap_or_else(|p| p.into_inner()) = Arc::clone(&next);
                Ok(next)
            }
        }
    }

    /// Id of the prepared-but-unactivated generation, if any.
    pub fn pending_generation(&self) -> Option<u64> {
        self.pending.lock().unwrap_or_else(|p| p.into_inner()).as_ref().map(|g| g.id())
    }

    /// Discards a prepared generation without activating it. Returns the
    /// discarded id, or `None` when nothing was prepared.
    pub fn abort_prepare(&self) -> Option<u64> {
        let _guard = self.update_lock.lock().unwrap_or_else(|p| p.into_inner());
        self.pending.lock().unwrap_or_else(|p| p.into_inner()).take().map(|g| g.id())
    }

    /// Snapshots the current generation into persistable parts
    /// (`AEET` format v4 via [`aeetes_core::save_sharded`]). The snapshot
    /// carries the generation number, so an engine restored from it (or a
    /// WAL replayed over it) continues the same generation sequence.
    pub fn to_parts(&self) -> ShardedParts {
        let g = self.snapshot();
        ShardedParts {
            interner: g.interner.clone(),
            dict: g.dict.clone(),
            removed: g.removed.clone(),
            rules: g.rules.clone(),
            config: g.config.clone(),
            segments: g.shards.iter().map(|s| s.dd.clone()).collect(),
            generation: g.id(),
        }
    }

    /// Serializes the current generation as a frozen (format v5) artifact —
    /// see [`Generation::freeze`]. Unlike [`ShardedEngine::to_parts`] +
    /// `save_sharded` (v4), the artifact carries the built indexes, so an
    /// engine opened from it ([`ShardedEngine::from_frozen`]) serves without
    /// any derive or index work.
    pub fn freeze(&self) -> Vec<u8> {
        self.snapshot().freeze()
    }
}

/// Builds `cur + delta` as a fully-assembled next generation, rebuilding
/// only the shards owning an added, removed, or rule-affected origin; the
/// rest are reused by reference. The global order is extended append-only
/// (existing keys frozen), so the reused indexes remain correct next to
/// the rebuilt ones. Pure with respect to the engine: callers decide
/// whether (and when) the result becomes current.
fn build_next(cur: &Generation, delta: &DictDelta, tokenizer: &Tokenizer) -> Result<Arc<Generation>, UpdateError> {
    let n = cur.shard_count();

    for e in &delta.remove_entities {
        if e.idx() >= cur.dict.len() {
            return Err(UpdateError::UnknownEntity(e.0));
        }
    }

    let mut interner = cur.interner.clone();
    let mut dict = cur.dict.clone();
    let mut rules = cur.rules.clone();
    let mut removed: BTreeSet<u32> = cur.removed.iter().map(|e| e.0).collect();

    // New rules go into the full table and (as token copies) into a
    // fresh table used only to test which existing origins they touch.
    let mut fresh_rules = RuleSet::new();
    for r in &delta.add_rules {
        let id = rules
            .push_weighted_str(&r.lhs, &r.rhs, r.weight, tokenizer, &mut interner)
            .map_err(UpdateError::Rule)?;
        let rule = rules.rule(id);
        fresh_rules
            .push_tokens(rule.lhs.clone(), rule.rhs.clone(), rule.weight)
            .map_err(UpdateError::Rule)?;
    }

    let first_new = dict.len() as u32;
    for raw in &delta.add_entities {
        dict.push(raw, tokenizer, &mut interner);
    }

    let mut affected = vec![false; n];
    for e in &delta.remove_entities {
        if removed.insert(e.0) {
            affected[shard_of(*e, n)] = true;
        }
    }
    for id in first_new..dict.len() as u32 {
        affected[shard_of(EntityId(id), n)] = true;
    }
    if !fresh_rules.is_empty() {
        for (e, ent) in dict.iter() {
            if removed.contains(&e.0) || affected[shard_of(e, n)] {
                continue;
            }
            if !find_applications(ent.tokens, &fresh_rules).is_empty() {
                affected[shard_of(e, n)] = true;
            }
        }
    }

    let affected_ids: Vec<usize> = (0..n).filter(|&i| affected[i]).collect();
    let keep = |e: EntityId| !removed.contains(&e.0);
    let new_dds: Vec<DerivedDictionary> = std::thread::scope(|s| {
        let dict = &dict;
        let rules = &rules;
        let config = &cur.config;
        let keep = &keep;
        let handles: Vec<_> = affected_ids
            .iter()
            .map(|&i| s.spawn(move || DerivedDictionary::build_filtered(dict, rules, &config.derive, |e| shard_of(e, n) == i && keep(e))))
            .collect();
        handles.into_iter().map(|h| h.join().expect("shard derivation panicked")).collect()
    });

    // Freeze existing token keys; only genuinely new tokens get keys,
    // placed after every existing one. Unaffected shards' indexes keep
    // their old `Arc<GlobalOrder>`, which agrees on every key they can
    // ever look up.
    let refs: Vec<&DerivedDictionary> = new_dds.iter().collect();
    let order = Arc::new(cur.order.extend(&refs, &interner));

    let rebuilt = index_shards(new_dds, &order);
    let mut shards = cur.shards.clone();
    for (&i, shard) in affected_ids.iter().zip(rebuilt) {
        shard.inherit_counters(&cur.shards[i]);
        shards[i] = shard;
    }

    let removed: Vec<EntityId> = removed.into_iter().map(EntityId).collect();
    let mut next = Generation::assemble(cur.id() + 1, interner, dict, removed, rules, cur.config.clone(), order, shards);
    next.adopt_routing(cur);
    Ok(Arc::new(next))
}

impl ShardedEngine {
    /// Reconstructs an engine from persisted parts, resuming at the
    /// artifact's recorded generation number (1 for pre-v4 artifacts).
    ///
    /// `shards` overrides the shard count (`None` keeps the artifact's
    /// segment count, `Some(0)` means available parallelism). When the
    /// stored segments already match this engine's routing they are adopted
    /// as-is; otherwise the variants are re-partitioned — no re-derivation
    /// either way, so loading stays cheap.
    pub fn from_parts(parts: ShardedParts, shards: Option<usize>) -> Result<Self, String> {
        let ShardedParts { interner, dict, removed, rules, config, segments, generation } = parts;
        let generation = generation.max(1);
        let n = match shards {
            None => resolve_shards(segments.len()),
            Some(req) => resolve_shards(req),
        };
        let tombstoned: BTreeSet<u32> = removed.iter().map(|e| e.0).collect();
        let routed = n == segments.len()
            && segments
                .iter()
                .enumerate()
                .all(|(i, dd)| dd.iter().all(|(_, d)| shard_of(d.origin, n) == i && !tombstoned.contains(&d.origin.0)));
        let dds: Vec<DerivedDictionary> = if routed {
            segments
        } else {
            // Merge every segment, then split the variant stream along this
            // engine's routing. Stable sort keeps intra-origin variant order.
            let mut all: Vec<DerivedEntity> = segments
                .into_iter()
                .flat_map(|dd| dd.iter().map(|(_, d)| d.to_owned()).collect::<Vec<_>>())
                .collect();
            all.sort_by_key(|d| d.origin.0);
            let mut buckets: Vec<Vec<DerivedEntity>> = (0..n).map(|_| Vec::new()).collect();
            for d in all {
                if tombstoned.contains(&d.origin.0) {
                    continue;
                }
                buckets[shard_of(d.origin, n)].push(d);
            }
            buckets
                .into_iter()
                .map(|b| DerivedDictionary::from_parts(b, dict.len(), DeriveStats::default()))
                .collect::<Result<_, _>>()?
        };
        let refs: Vec<&DerivedDictionary> = dds.iter().collect();
        let order = Arc::new(GlobalOrder::build_many(&refs, &interner));
        let built = index_shards(dds, &order);
        let generation = Generation::assemble(generation, interner, dict, removed, rules, config, order, built);
        Ok(ShardedEngine {
            current: RwLock::new(Arc::new(generation)),
            update_lock: Mutex::new(()),
            pending: Mutex::new(None),
        })
    }

    /// Builds an engine from an opened frozen (v5) artifact.
    ///
    /// The fast path — `shards` is `None` or names the artifact's own
    /// segment count, and every segment's origins route to its slot under
    /// this engine's hashing — adopts the frozen derived dictionaries and
    /// indexes as-is: zero derive work, zero index builds, arenas still
    /// backed by the mapped file. Any mismatch (shard-count override,
    /// foreign routing, un-dropped tombstones) falls back to re-bucketing
    /// the variants onto the heap and rebuilding the indexes — correct for
    /// any artifact, just not zero-copy.
    ///
    /// Later updates copy-on-write: `apply_update` rebuilds only the
    /// affected shards, onto the heap, while untouched shards keep serving
    /// straight from the mapping.
    pub fn from_frozen(parts: aeetes_core::FrozenParts, shards: Option<usize>) -> Result<Self, String> {
        let aeetes_core::FrozenParts { interner, dict, removed, rules, config, generation, order, segments, .. } = parts;
        let generation = generation.max(1);
        let n = match shards {
            None => segments.len().clamp(1, MAX_SHARDS),
            Some(req) => resolve_shards(req),
        };
        let tombstoned: BTreeSet<u32> = removed.iter().map(|e| e.0).collect();
        // The `by_origin` prefix array alone decides adoptability: frozen
        // validation already proved every variant sits in its origin's
        // bucket, so it suffices to check each *populated* bucket's entity —
        // one hash per origin rather than one per variant.
        let adoptable = n == segments.len()
            && segments.iter().enumerate().all(|(i, s)| {
                let (_, _, _, _, _, _, by_origin) = s.dd.raw_arenas();
                by_origin
                    .windows(2)
                    .enumerate()
                    .all(|(e, w)| w[0] == w[1] || (shard_of(EntityId(e as u32), n) == i && !tombstoned.contains(&(e as u32))))
            });
        if adoptable {
            let built: Vec<Arc<Shard>> = segments.into_iter().map(|s| Arc::new(Shard::from_prebuilt(s.dd, s.index))).collect();
            let generation = Generation::assemble(generation, interner, dict, removed, rules, config, order, built);
            return Ok(ShardedEngine {
                current: RwLock::new(Arc::new(generation)),
                update_lock: Mutex::new(()),
                pending: Mutex::new(None),
            });
        }
        // Re-bucket through the ShardedParts path: the frozen derived
        // dictionaries are merged (copied to the heap) and indexes rebuilt.
        Self::from_parts(
            ShardedParts {
                interner,
                dict,
                removed,
                rules,
                config,
                segments: segments.into_iter().map(|s| s.dd).collect(),
                generation,
            },
            Some(n),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_core::{save_sharded, Aeetes, ExtractBackend, ExtractLimits};
    use aeetes_text::Document;

    fn fixture() -> (Dictionary, RuleSet, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        for raw in ["purdue university usa", "uq au", "university of wisconsin madison", "rmit au", "nyu ny usa"] {
            dict.push(raw, &tok, &mut int);
        }
        let mut rules = RuleSet::new();
        rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
        rules.push_str("au", "australia", &tok, &mut int).unwrap();
        rules.push_str("usa", "united states", &tok, &mut int).unwrap();
        (dict, rules, int, tok)
    }

    fn docs(int: &mut Interner, tok: &Tokenizer) -> Vec<Document> {
        [
            "she left uq australia for purdue university united states",
            "rmit australia and nyu ny united states",
            "university of wisconsin madison",
            "no entities here at all",
        ]
        .iter()
        .map(|t| Document::parse(t, tok, int))
        .collect()
    }

    #[test]
    fn sharded_matches_monolithic_for_all_shard_counts() {
        let (dict, rules, int, tok) = fixture();
        let mono = Aeetes::build(dict.clone(), &rules, &int, AeetesConfig::default());
        for n in [1, 2, 3, 7, 16] {
            let engine = ShardedEngine::build(dict.clone(), &rules, &int, AeetesConfig::default(), n);
            assert_eq!(engine.shard_count(), n);
            let generation = engine.snapshot();
            let mut int2 = int.clone();
            for doc in docs(&mut int2, &tok) {
                for tau in [0.6, 0.8, 1.0] {
                    assert_eq!(generation.extract_all(&doc, tau), mono.extract(&doc, tau), "n={n} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn zero_shards_resolves_to_available_parallelism() {
        let (dict, rules, int, _) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 0);
        assert!(engine.shard_count() >= 1);
        assert!(engine.shard_count() <= MAX_SHARDS);
    }

    #[test]
    fn update_adds_entities_and_rules_incrementally() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict.clone(), &rules, &int, AeetesConfig::default(), 4);
        assert_eq!(engine.generation_id(), 1);
        let delta = DictDelta {
            add_entities: vec!["eth zurich ch".into()],
            remove_entities: vec![EntityId(1)], // "uq au"
            add_rules: vec![RuleDelta { lhs: "ch".into(), rhs: "switzerland".into(), weight: 1.0 }],
        };
        let generation = engine.apply_update(&delta, &tok).expect("update");
        assert_eq!(generation.id(), 2);
        assert_eq!(engine.generation_id(), 2);
        assert_eq!(generation.removed(), &[EntityId(1)]);

        // The updated engine equals a monolithic engine over the updated
        // dictionary (removed origin filtered out at derive time).
        let mut int2 = generation.interner().clone();
        let mut dict2 = dict;
        dict2.push("eth zurich ch", &tok, &mut int2);
        let mut rules2 = rules;
        rules2.push_str("ch", "switzerland", &tok, &mut int2).unwrap();
        let dd = DerivedDictionary::build_filtered(&dict2, &rules2, &AeetesConfig::default().derive, |e| e != EntityId(1));
        let mono = Aeetes::from_parts(dict2, dd, &int2, AeetesConfig::default());
        for text in ["eth zurich switzerland", "uq australia", "purdue university united states"] {
            let doc = Document::parse(text, &tok, &mut int2);
            for tau in [0.6, 0.9] {
                assert_eq!(generation.extract_all(&doc, tau), mono.extract(&doc, tau), "doc={text} tau={tau}");
            }
        }
        // The tombstoned entity no longer matches anything.
        let doc = Document::parse("uq au", &tok, &mut int2);
        assert!(generation.extract_all(&doc, 1.0).iter().all(|m| m.entity != EntityId(1)));
    }

    #[test]
    fn update_reuses_unaffected_shards() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 8);
        let before = engine.snapshot();
        let delta = DictDelta { add_entities: vec!["brand new entity".into()], ..Default::default() };
        let after = engine.apply_update(&delta, &tok).expect("update");
        let new_shard = shard_of(EntityId(5), 8);
        let mut reused = 0;
        for i in 0..8 {
            if Arc::ptr_eq(&before.shards[i], &after.shards[i]) {
                reused += 1;
            } else {
                assert_eq!(i, new_shard, "only the shard owning the new entity may rebuild");
            }
        }
        assert_eq!(reused, 7);
    }

    #[test]
    fn old_snapshot_survives_update() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 2);
        let old = engine.snapshot();
        let mut int2 = old.interner().clone();
        let doc = Document::parse("uq australia", &tok, &mut int2);
        let before = old.extract_all(&doc, 0.8);
        engine
            .apply_update(&DictDelta { remove_entities: vec![EntityId(1)], ..Default::default() }, &tok)
            .expect("update");
        // The old epoch still answers identically.
        assert_eq!(old.extract_all(&doc, 0.8), before);
        // The new epoch no longer reports the removed entity.
        assert!(engine.snapshot().extract_all(&doc, 0.8).iter().all(|m| m.entity != EntityId(1)));
    }

    #[test]
    fn invalid_delta_is_rejected_and_leaves_generation_unchanged() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 2);
        let bad_remove = DictDelta { remove_entities: vec![EntityId(99)], ..Default::default() };
        assert!(matches!(engine.apply_update(&bad_remove, &tok), Err(UpdateError::UnknownEntity(99))));
        let bad_rule = DictDelta {
            add_rules: vec![RuleDelta { lhs: "x".into(), rhs: "x".into(), weight: 1.0 }],
            ..Default::default()
        };
        assert!(matches!(engine.apply_update(&bad_rule, &tok), Err(UpdateError::Rule(_))));
        assert_eq!(engine.generation_id(), 1, "failed updates must not consume a generation");
    }

    #[test]
    fn persistence_round_trips_through_v3() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 3);
        engine
            .apply_update(
                &DictDelta {
                    add_entities: vec!["eth zurich".into()],
                    remove_entities: vec![EntityId(0)],
                    ..Default::default()
                },
                &tok,
            )
            .expect("update");
        let bytes = save_sharded(&engine.to_parts());
        let loaded = aeetes_core::load_sharded(&bytes).expect("load");
        for &override_n in &[None, Some(1), Some(5)] {
            let restored = ShardedEngine::from_parts(loaded.clone(), override_n).expect("from_parts");
            let g1 = engine.snapshot();
            let g2 = restored.snapshot();
            assert_eq!(g2.removed(), g1.removed());
            assert_eq!(g2.variants(), g1.variants());
            let mut int2 = g1.interner().clone();
            for text in ["eth zurich", "uq australia", "purdue university usa"] {
                let doc = Document::parse(text, &tok, &mut int2);
                assert_eq!(g2.extract_all(&doc, 0.7), g1.extract_all(&doc, 0.7), "shards={override_n:?} doc={text}");
            }
        }
    }

    #[test]
    fn shard_stats_track_serving() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 4);
        let generation = engine.snapshot();
        let mut int2 = generation.interner().clone();
        let doc = Document::parse("purdue university united states", &tok, &mut int2);
        let _ = generation.extract_limited(&doc, 0.8, &ExtractLimits::UNLIMITED, None);
        let stats = generation.shard_stats();
        assert_eq!(stats.len(), 4);
        assert!(stats.iter().all(|s| s.served == 1), "every shard answers every request: {stats:?}");
        assert_eq!(stats.iter().map(|s| s.entities).sum::<usize>(), 5);
    }

    #[test]
    fn prepare_then_activate_equals_direct_apply() {
        let (dict, rules, int, tok) = fixture();
        let delta = DictDelta {
            add_entities: vec!["eth zurich ch".into()],
            remove_entities: vec![EntityId(1)],
            add_rules: vec![RuleDelta { lhs: "ch".into(), rhs: "switzerland".into(), weight: 1.0 }],
        };
        let direct = ShardedEngine::build(dict.clone(), &rules, &int, AeetesConfig::default(), 4);
        direct.apply_update(&delta, &tok).expect("direct update");

        let two_phase = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 4);
        let prepared = two_phase.prepare_update(&delta, &tok).expect("prepare");
        assert_eq!(prepared.id(), 2);
        assert_eq!(two_phase.pending_generation(), Some(2));
        // Prepared but not activated: serving still answers generation 1.
        assert_eq!(two_phase.generation_id(), 1);
        let mut int2 = prepared.interner().clone();
        let doc = Document::parse("eth zurich switzerland", &tok, &mut int2);
        assert!(two_phase.snapshot().extract_all(&doc, 0.7).is_empty(), "new entity invisible before activate");

        let activated = two_phase.activate(2).expect("activate");
        assert_eq!(activated.id(), 2);
        assert_eq!(two_phase.generation_id(), 2);
        assert_eq!(two_phase.pending_generation(), None);
        for text in ["eth zurich switzerland", "purdue university united states", "uq au"] {
            let doc = Document::parse(text, &tok, &mut int2);
            for tau in [0.6, 0.9] {
                assert_eq!(
                    two_phase.snapshot().extract_all(&doc, tau),
                    direct.snapshot().extract_all(&doc, tau),
                    "two-phase must serve exactly what a direct apply serves: doc={text} tau={tau}"
                );
            }
        }
    }

    #[test]
    fn activate_without_or_with_wrong_prepare_fails() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 2);
        assert_eq!(engine.activate(2).err(), Some(ActivateError::NothingPrepared));
        engine
            .prepare_update(&DictDelta { add_entities: vec!["x y z".into()], ..Default::default() }, &tok)
            .expect("prepare");
        assert_eq!(engine.activate(7).err(), Some(ActivateError::WrongGeneration { prepared: 2, requested: 7 }));
        assert_eq!(engine.generation_id(), 1, "failed activations must not swap");
        assert_eq!(engine.activate(2).expect("activate").id(), 2);
        assert_eq!(engine.activate(2).err(), Some(ActivateError::NothingPrepared), "activation is one-shot");
    }

    #[test]
    fn direct_apply_invalidates_prepared_generation() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 2);
        engine
            .prepare_update(&DictDelta { add_entities: vec!["stale pending".into()], ..Default::default() }, &tok)
            .expect("prepare");
        engine
            .apply_update(&DictDelta { add_entities: vec!["direct".into()], ..Default::default() }, &tok)
            .expect("apply");
        assert_eq!(engine.pending_generation(), None, "apply_update must clear a stale prepare");
        assert_eq!(engine.activate(2).err(), Some(ActivateError::NothingPrepared));
        assert_eq!(engine.generation_id(), 2);
    }

    #[test]
    fn reprepare_replaces_and_abort_discards() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 2);
        assert_eq!(engine.abort_prepare(), None);
        engine
            .prepare_update(&DictDelta { add_entities: vec!["first".into()], ..Default::default() }, &tok)
            .expect("prepare");
        let second = engine
            .prepare_update(&DictDelta { add_entities: vec!["second".into()], ..Default::default() }, &tok)
            .expect("re-prepare");
        assert_eq!(second.id(), 2, "both prepares build against generation 1");
        assert_eq!(engine.abort_prepare(), Some(2));
        assert_eq!(engine.pending_generation(), None);
        assert_eq!(engine.generation_id(), 1);
        // The second prepare's content is what was parked: re-prepare and
        // activate to confirm the replacement delta (not the first) wins.
        engine
            .prepare_update(&DictDelta { add_entities: vec!["second".into()], ..Default::default() }, &tok)
            .expect("prepare again");
        let generation = engine.activate(2).expect("activate");
        let mut int2 = generation.interner().clone();
        let doc = Document::parse("second", &tok, &mut int2);
        assert!(!generation.extract_all(&doc, 1.0).is_empty());
        let doc = Document::parse("first", &tok, &mut int2);
        assert!(generation.extract_all(&doc, 1.0).is_empty());
    }

    #[test]
    fn frozen_round_trip_adopts_shards_zero_copy() {
        let (dict, rules, int, tok) = fixture();
        for n in [1, 3, 8] {
            let engine = ShardedEngine::build(dict.clone(), &rules, &int, AeetesConfig::default(), n);
            let bytes = engine.freeze();
            let parts = aeetes_core::open_frozen_bytes(&bytes).expect("open frozen");
            let restored = ShardedEngine::from_frozen(parts, None).expect("from_frozen");
            assert_eq!(restored.shard_count(), n, "adoption keeps the artifact's shard count");
            assert_eq!(restored.generation_id(), engine.generation_id());
            let g = restored.snapshot();
            assert!(
                g.shards.iter().all(|s| s.dd.is_frozen() && s.index.is_frozen()),
                "adopted shards must stay arena-backed (zero-copy), n={n}"
            );
            let mut int2 = g.interner().clone();
            for doc in docs(&mut int2, &tok) {
                for tau in [0.6, 0.8, 1.0] {
                    assert_eq!(g.extract_all(&doc, tau), engine.snapshot().extract_all(&doc, tau), "n={n} tau={tau}");
                }
            }
        }
    }

    #[test]
    fn frozen_with_shard_override_rebuckets() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict.clone(), &rules, &int, AeetesConfig::default(), 4);
        let bytes = engine.freeze();
        let parts = aeetes_core::open_frozen_bytes(&bytes).expect("open frozen");
        let restored = ShardedEngine::from_frozen(parts, Some(2)).expect("from_frozen override");
        assert_eq!(restored.shard_count(), 2);
        let g = restored.snapshot();
        assert!(g.shards.iter().all(|s| !s.dd.is_frozen()), "re-bucketed shards live on the heap");
        let mut int2 = g.interner().clone();
        for doc in docs(&mut int2, &tok) {
            assert_eq!(g.extract_all(&doc, 0.7), engine.snapshot().extract_all(&doc, 0.7));
        }
    }

    #[test]
    fn update_over_frozen_engine_copies_only_affected_shards() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict.clone(), &rules, &int, AeetesConfig::default(), 8);
        let bytes = engine.freeze();
        let parts = aeetes_core::open_frozen_bytes(&bytes).expect("open frozen");
        let restored = ShardedEngine::from_frozen(parts, None).expect("from_frozen");
        let before = restored.snapshot();
        let delta = DictDelta { add_entities: vec!["brand new entity".into()], ..Default::default() };
        let after = restored.apply_update(&delta, &tok).expect("update over frozen");
        let new_shard = shard_of(EntityId(5), 8);
        for i in 0..8 {
            if i == new_shard {
                assert!(!after.shards[i].dd.is_frozen(), "the rebuilt shard is heap-owned");
            } else {
                assert!(Arc::ptr_eq(&before.shards[i], &after.shards[i]), "untouched shards keep serving from the mapping");
                assert!(after.shards[i].dd.is_frozen());
            }
        }
        // And the updated engine equals a from-scratch build over the same state.
        let mut dict2 = dict;
        let mut int2 = after.interner().clone();
        dict2.push("brand new entity", &tok, &mut int2);
        let fresh = ShardedEngine::build(dict2, &rules, &int2, AeetesConfig::default(), 8);
        for text in ["brand new entity", "uq australia", "purdue university united states"] {
            let doc = Document::parse(text, &tok, &mut int2);
            assert_eq!(after.extract_all(&doc, 0.7), fresh.snapshot().extract_all(&doc, 0.7), "doc={text}");
        }
    }

    #[test]
    fn refrozen_updated_engine_round_trips() {
        // freeze → open → update → freeze again → open: the second artifact
        // must carry the updated state (mixed frozen/heap shards re-frozen).
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 4);
        let parts = aeetes_core::open_frozen_bytes(&engine.freeze()).expect("open");
        let restored = ShardedEngine::from_frozen(parts, None).expect("from_frozen");
        restored
            .apply_update(&DictDelta { add_entities: vec!["eth zurich".into()], ..Default::default() }, &tok)
            .expect("update");
        let parts2 = aeetes_core::open_frozen_bytes(&restored.freeze()).expect("reopen");
        assert_eq!(parts2.generation, 2);
        let again = ShardedEngine::from_frozen(parts2, None).expect("from_frozen again");
        let g = again.snapshot();
        let mut int2 = g.interner().clone();
        let doc = Document::parse("eth zurich", &tok, &mut int2);
        assert!(!g.extract_all(&doc, 1.0).is_empty(), "the re-frozen artifact carries the delta");
    }

    #[test]
    fn counters_survive_shard_rebuilds() {
        let (dict, rules, int, tok) = fixture();
        let engine = ShardedEngine::build(dict, &rules, &int, AeetesConfig::default(), 1);
        let g1 = engine.snapshot();
        let mut int2 = g1.interner().clone();
        let doc = Document::parse("uq australia", &tok, &mut int2);
        let _ = g1.extract_all(&doc, 0.8);
        let g2 = engine
            .apply_update(&DictDelta { add_entities: vec!["new one".into()], ..Default::default() }, &tok)
            .expect("update");
        assert_eq!(g2.shard_stats()[0].served, 1, "rebuilt shard inherits cumulative counters");
    }
}
