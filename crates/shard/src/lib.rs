//! Sharded extraction engine.
//!
//! [`ShardedEngine`] partitions the derived-entity dictionary into `N`
//! shards by a hash of the origin entity id, builds one clustered index per
//! shard **against a single shared global token order** (so every shard
//! sorts token sets identically — the invariant that makes per-shard prefix
//! filtering equivalent to whole-dictionary prefix filtering), and answers
//! `extract` by fanning the document out to all shards on a scoped thread
//! pool and merging the per-shard match streams into the engine's stable
//! `(span, entity)` order.
//!
//! Because the entity partition is disjoint, every `(entity, span)` match
//! is produced by exactly one shard; the merged result is *bit-identical*
//! to the monolithic [`aeetes_core::Aeetes`] engine over the same
//! dictionary (per-shard variant ids are remapped back to the global
//! derived-id space during the merge).
//!
//! # Generations
//!
//! A fully-built sharded state is an immutable [`Generation`] behind an
//! epoch pointer. [`ShardedEngine::apply_update`] takes a [`DictDelta`]
//! (add/remove entities, add rules), rebuilds only the affected shards —
//! extending the frozen global order append-only, so unaffected shards'
//! indexes stay valid — and atomically swaps the pointer. Readers that
//! already hold a [`Generation`] snapshot keep extracting against the old
//! epoch until they drop it: updates never block or corrupt in-flight
//! extractions.
//!
//! For fleet-wide dictionary swaps the update splits into two phases:
//! [`ShardedEngine::prepare_update`] builds the next generation off to the
//! side and parks it, [`ShardedEngine::activate`] commits it by id. A
//! coordinator prepares a delta on every replica first and only then
//! activates everywhere, so no replica ever serves a generation its peers
//! have not at least finished building.

mod engine;
mod generation;

pub use engine::{ActivateError, DictDelta, RuleDelta, ShardedEngine, UpdateError};
pub use generation::{shard_of, Generation, Shard, ShardStats};
