//! Documents and token spans.

use crate::interner::{Interner, TokenId};
use crate::tokenize::Tokenizer;

/// A half-open token range `[start, start + len)` inside a document.
///
/// This is the paper's substring `W_p^l`: start position `p`, length `l`,
/// both in *tokens* (not bytes).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Span {
    /// First token position.
    pub start: u32,
    /// Number of tokens.
    pub len: u32,
}

impl Span {
    /// Creates a span.
    pub fn new(start: usize, len: usize) -> Self {
        Self { start: start as u32, len: len as u32 }
    }

    /// One-past-the-end token position.
    pub fn end(&self) -> usize {
        (self.start + self.len) as usize
    }

    /// Whether `self` and `other` overlap in token positions.
    pub fn overlaps(&self, other: &Span) -> bool {
        (self.start as usize) < other.end() && (other.start as usize) < self.end()
    }
}

/// A tokenized document.
///
/// Keeps the raw text and the byte span of every token so extraction results
/// (token spans) can be rendered back as substrings of the original text.
#[derive(Debug, Clone, Default)]
pub struct Document {
    /// Raw source text (may be empty when constructed from tokens).
    pub raw: String,
    tokens: Vec<TokenId>,
    byte_spans: Vec<(u32, u32)>,
}

impl Document {
    /// Tokenizes `text` into a document.
    pub fn parse(text: &str, tokenizer: &Tokenizer, interner: &mut Interner) -> Self {
        let (tokens, byte_spans) = tokenizer.tokenize_spanned(text, interner);
        Self { raw: text.to_string(), tokens, byte_spans }
    }

    /// Builds a document directly from token ids (used by generators; no raw
    /// text or byte spans are available in that case).
    pub fn from_tokens(tokens: Vec<TokenId>) -> Self {
        Self { raw: String::new(), tokens, byte_spans: Vec::new() }
    }

    /// Refills this document in place with `tokens`, dropping any raw text
    /// and byte spans but keeping all allocated capacity. The streaming
    /// extractor reuses one document across chunk feeds this way, so the
    /// steady-state feed path never reallocates the token buffer.
    pub fn assign_tokens(&mut self, tokens: &[TokenId]) {
        self.raw.clear();
        self.byte_spans.clear();
        self.tokens.clear();
        self.tokens.extend_from_slice(tokens);
    }

    /// The token sequence.
    pub fn tokens(&self) -> &[TokenId] {
        &self.tokens
    }

    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the document has no tokens.
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }

    /// The tokens covered by `span`.
    ///
    /// # Panics
    /// Panics if the span is out of bounds.
    pub fn slice(&self, span: Span) -> &[TokenId] {
        &self.tokens[span.start as usize..span.end()]
    }

    /// The raw text covered by `span`, when the document was built with
    /// [`Document::parse`]. Returns `None` for token-only documents.
    pub fn text_of(&self, span: Span) -> Option<&str> {
        if self.byte_spans.is_empty() || span.len == 0 {
            return None;
        }
        let first = self.byte_spans.get(span.start as usize)?;
        let last = self.byte_spans.get(span.end().checked_sub(1)?)?;
        self.raw.get(first.0 as usize..last.1 as usize)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn doc(text: &str) -> (Document, Interner) {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        (Document::parse(text, &t, &mut i), i)
    }

    #[test]
    fn parse_and_slice() {
        let (d, i) = doc("the University of Washington is in Seattle");
        assert_eq!(d.len(), 7);
        let s = d.slice(Span::new(1, 3));
        assert_eq!(i.render(s), "university of washington");
    }

    #[test]
    fn text_of_recovers_raw_substring() {
        let (d, _) = doc("PC members: Univ. of Wisconsin, Madison!");
        let span = Span::new(2, 3); // "Univ of Wisconsin"
        assert_eq!(d.text_of(span), Some("Univ. of Wisconsin"));
    }

    #[test]
    fn text_of_none_for_token_only_docs() {
        let d = Document::from_tokens(vec![TokenId(0), TokenId(1)]);
        assert_eq!(d.text_of(Span::new(0, 1)), None);
    }

    #[test]
    fn span_overlap_semantics() {
        let a = Span::new(2, 3); // [2,5)
        assert!(a.overlaps(&Span::new(4, 1)));
        assert!(a.overlaps(&Span::new(0, 3)));
        assert!(!a.overlaps(&Span::new(5, 2)));
        assert!(!a.overlaps(&Span::new(0, 2)));
    }

    #[test]
    fn empty_span_text_is_none() {
        let (d, _) = doc("a b c");
        assert_eq!(d.text_of(Span::new(0, 0)), None);
    }

    #[test]
    fn empty_document() {
        let (d, _) = doc("");
        assert!(d.is_empty());
        assert_eq!(d.len(), 0);
    }
}
