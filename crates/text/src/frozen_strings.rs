//! The frozen (zero-copy) string table behind an [`Interner`] overlay.
//!
//! Layout: one UTF-8 byte arena holding every string back to back, a
//! `u32` prefix-offset array (`len + 1` entries), and an open-addressing
//! FNV-1a hash table for the string → id direction. All three live in
//! [`Arena`]s, so an engine opened from a v5 artifact resolves token
//! strings straight out of the file image with no per-string allocation.
//!
//! The hash table stores `id + 1` per slot (0 = empty) in a power-of-two
//! slot array; probing is linear. [`FrozenStrings::new`] re-probes every
//! string once, which simultaneously validates UTF-8, offset monotonicity
//! and the table itself — a corrupted table yields a clean error, and
//! lookups afterwards can trust bounded probes.

use crate::interner::{StringTable, TokenId};
use aeetes_frozen::Arena;
use std::fmt;

/// FNV-1a 64-bit hash; the writer and the open path must agree on it.
#[inline]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Number of hash-table slots for `n` strings: next power of two of `2n`,
/// at least 8, keeping the load factor at or below 50%.
pub fn table_slots(n: usize) -> usize {
    (2 * n).next_power_of_two().max(8)
}

/// Builds the open-addressing table for `strings` (writer side). The
/// returned vector has [`table_slots`]`(strings.len())` entries holding
/// `id + 1`, with 0 marking an empty slot.
pub fn build_table<'a>(strings: impl ExactSizeIterator<Item = &'a str>) -> Vec<u32> {
    let slots = table_slots(strings.len());
    let mask = slots - 1;
    let mut table = vec![0u32; slots];
    for (id, s) in strings.enumerate() {
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        while table[slot] != 0 {
            slot = (slot + 1) & mask;
        }
        table[slot] = id as u32 + 1;
    }
    table
}

/// A validated read-only string table over flat arenas.
pub struct FrozenStrings {
    /// UTF-8 bytes of all strings, back to back.
    bytes: Arena<u8>,
    /// `offsets[i]..offsets[i+1]` is string `i`; `len + 1` entries.
    offsets: Arena<u32>,
    /// Open-addressing slots holding `id + 1`; power-of-two length.
    table: Arena<u32>,
}

impl FrozenStrings {
    /// Assembles and fully validates a string table.
    ///
    /// Checks: the offset array is non-empty, starts at 0, is monotonic and
    /// ends at `bytes.len()`; every string is valid UTF-8; the hash table
    /// has the expected power-of-two size and, probed with every string,
    /// finds exactly that string's id. Any violation is a clean error.
    pub fn new(bytes: Arena<u8>, offsets: Arena<u32>, table: Arena<u32>) -> Result<Self, String> {
        let n = offsets.len().checked_sub(1).ok_or("string offsets empty")?;
        let off: &[u32] = &offsets;
        let raw: &[u8] = &bytes;
        let slots: &[u32] = &table;
        if off[0] != 0 {
            return Err("string offsets do not start at 0".into());
        }
        if !off.windows(2).fold(true, |ok, w| ok & (w[0] <= w[1])) {
            return Err("string offsets not monotonic".into());
        }
        if off[n] as usize != raw.len() {
            return Err(format!("string offsets end at {} but byte arena holds {}", off[n], raw.len()));
        }
        if slots.len() != table_slots(n) {
            return Err(format!("string hash table has {} slots, expected {}", slots.len(), table_slots(n)));
        }
        // One UTF-8 pass over the whole arena (std's SIMD validator), then a
        // char-boundary check per offset: together these prove every
        // substring is itself valid UTF-8 without n separate validations.
        let all = std::str::from_utf8(raw).map_err(|e| format!("string arena is not UTF-8: {e}"))?;
        if let Some(i) = (0..n).find(|&i| !all.is_char_boundary(off[i] as usize)) {
            return Err(format!("string {i} starts mid-character"));
        }
        // Re-probe every string once: a corrupted table yields a clean error
        // here, and lookups afterwards can trust bounded probes.
        let mask = slots.len() - 1;
        for i in 0..n {
            let s = &raw[off[i] as usize..off[i + 1] as usize];
            let mut slot = (fnv1a(s) as usize) & mask;
            let mut found = false;
            for _ in 0..=slots.len() {
                let v = slots[slot];
                if v == 0 {
                    return Err(format!("string hash table inconsistent: string {i} probes to None"));
                }
                let id = (v - 1) as usize;
                if id == i {
                    found = true;
                    break;
                }
                if id < n && &raw[off[id] as usize..off[id + 1] as usize] == s {
                    return Err(format!("string hash table inconsistent: string {i} probes to Some(TokenId({id}))"));
                }
                slot = (slot + 1) & mask;
            }
            if !found {
                return Err(format!("string hash table inconsistent: string {i} probes to None"));
            }
        }
        Ok(Self { bytes, offsets, table })
    }

    /// Builds an owned (heap) table from strings in id order — the writer
    /// path and the unit-test path.
    pub fn from_strings<'a>(strings: impl IntoIterator<Item = &'a str>) -> Self {
        let all: Vec<&str> = strings.into_iter().collect();
        let mut bytes = Vec::new();
        let mut offsets = Vec::with_capacity(all.len() + 1);
        offsets.push(0u32);
        for s in &all {
            bytes.extend_from_slice(s.as_bytes());
            offsets.push(u32::try_from(bytes.len()).expect("string arena overflows u32 offsets"));
        }
        let table = build_table(all.iter().copied());
        Self { bytes: bytes.into(), offsets: offsets.into(), table: table.into() }
    }

    fn probe(&self, s: &str) -> Option<TokenId> {
        let mask = self.table.len() - 1;
        let mut slot = (fnv1a(s.as_bytes()) as usize) & mask;
        // Linear probing; at 50% max load an empty slot always terminates
        // the scan, and validation re-probed every string at open, so the
        // bound also holds for tables read from disk. Slot values were
        // checked to resolve in range during validation probing itself:
        // guard anyway so a hand-crafted table cannot index out of bounds.
        for _ in 0..=self.table.len() {
            let v = self.table[slot];
            if v == 0 {
                return None;
            }
            let id = (v - 1) as usize;
            if id + 1 < self.offsets.len() {
                let raw = &self.bytes[self.offsets[id] as usize..self.offsets[id + 1] as usize];
                if raw == s.as_bytes() {
                    return Some(TokenId(id as u32));
                }
            }
            slot = (slot + 1) & mask;
        }
        None
    }

    /// The raw byte arena (writer/serialization access).
    pub fn raw_bytes(&self) -> &[u8] {
        &self.bytes
    }

    /// The raw offset array (writer/serialization access).
    pub fn raw_offsets(&self) -> &[u32] {
        &self.offsets
    }

    /// The raw hash-table slots (writer/serialization access).
    pub fn raw_table(&self) -> &[u32] {
        &self.table
    }
}

impl StringTable for FrozenStrings {
    fn len(&self) -> usize {
        self.offsets.len() - 1
    }

    fn lookup(&self, s: &str) -> Option<TokenId> {
        self.probe(s)
    }

    fn resolve(&self, id: u32) -> &str {
        let raw = &self.bytes[self.offsets[id as usize] as usize..self.offsets[id as usize + 1] as usize];
        // Validated as UTF-8 in `new`/`from_strings` construction.
        unsafe { std::str::from_utf8_unchecked(raw) }
    }
}

impl fmt::Debug for FrozenStrings {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenStrings").field("len", &StringTable::len(self)).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::interner::Interner;
    use std::sync::Arc;

    fn sample() -> Vec<String> {
        (0..100).map(|i| format!("token-{i}")).chain(["", "université", "a"].map(String::from)).collect()
    }

    #[test]
    fn from_strings_round_trips() {
        let words = sample();
        let fs = FrozenStrings::from_strings(words.iter().map(|s| s.as_str()));
        assert_eq!(StringTable::len(&fs), words.len());
        for (i, w) in words.iter().enumerate() {
            assert_eq!(fs.resolve(i as u32), w);
            assert_eq!(fs.lookup(w), Some(TokenId(i as u32)), "lookup {w:?}");
        }
        assert_eq!(fs.lookup("not-present"), None);
    }

    #[test]
    fn validated_reassembly_matches() {
        let words = sample();
        let fs = FrozenStrings::from_strings(words.iter().map(|s| s.as_str()));
        let re = FrozenStrings::new(fs.raw_bytes().to_vec().into(), fs.raw_offsets().to_vec().into(), fs.raw_table().to_vec().into()).unwrap();
        assert_eq!(re.lookup("token-42"), Some(TokenId(42)));
    }

    #[test]
    fn corrupted_tables_rejected() {
        let words = sample();
        let fs = FrozenStrings::from_strings(words.iter().map(|s| s.as_str()));
        let bytes: Vec<u8> = fs.raw_bytes().to_vec();
        let offsets: Vec<u32> = fs.raw_offsets().to_vec();
        let table: Vec<u32> = fs.raw_table().to_vec();

        assert!(FrozenStrings::new(bytes.clone().into(), Vec::new().into(), table.clone().into()).is_err(), "empty offsets");
        let mut bad = offsets.clone();
        bad[1] = bad[2] + 1;
        assert!(FrozenStrings::new(bytes.clone().into(), bad.into(), table.clone().into()).is_err(), "non-monotonic offsets");
        let mut bad = offsets.clone();
        *bad.last_mut().unwrap() += 4;
        assert!(FrozenStrings::new(bytes.clone().into(), bad.into(), table.clone().into()).is_err(), "offsets past arena");
        let mut bad = table.clone();
        bad[0] = bad[0].wrapping_add(1);
        assert!(FrozenStrings::new(bytes.clone().into(), offsets.clone().into(), bad.into()).is_err(), "poisoned table slot");
        assert!(
            FrozenStrings::new(bytes.clone().into(), offsets.clone().into(), table[1..].to_vec().into()).is_err(),
            "wrong slot count"
        );
        let mut bad_bytes = bytes.clone();
        bad_bytes[0] = 0xFF;
        let err = FrozenStrings::new(bad_bytes.into(), offsets.into(), table.into());
        assert!(err.is_err(), "invalid UTF-8 or table mismatch");
    }

    #[test]
    fn interner_overlay_over_frozen_strings() {
        let mut warm = Interner::new();
        for w in ["purdue", "university", "usa"] {
            warm.intern(w);
        }
        let fs = Arc::new(FrozenStrings::from_strings(warm.iter_strings()));
        let mut cold = Interner::with_base(fs);
        assert_eq!(cold.len(), 3);
        assert_eq!(cold.get("university"), warm.get("university"));
        assert_eq!(cold.intern("indiana"), TokenId(3));
        assert_eq!(cold.resolve(TokenId(0)), "purdue");
        let round: Vec<&str> = cold.iter_strings().collect();
        assert_eq!(round, vec!["purdue", "university", "usa", "indiana"]);
    }
}
