//! Tokenization of raw text into interned token sequences.

use crate::interner::{Interner, TokenId};

/// Configuration for [`Tokenizer`].
#[derive(Debug, Clone)]
pub struct TokenizerConfig {
    /// Lowercase every token before interning. The paper's datasets are
    /// case-normalized, so this defaults to `true`.
    pub lowercase: bool,
    /// Strip leading/trailing punctuation from each whitespace-separated
    /// chunk (so `"York,"` and `"York"` intern to the same token).
    pub strip_punctuation: bool,
}

impl Default for TokenizerConfig {
    fn default() -> Self {
        Self { lowercase: true, strip_punctuation: true }
    }
}

/// Splits text into word tokens.
///
/// Tokens are maximal runs of alphanumeric characters (plus `'`, `-`, `_`,
/// and `.` when `strip_punctuation` is off they are kept verbatim). The
/// tokenizer also reports the byte span of every token so extraction results
/// can be mapped back onto the raw document.
#[derive(Debug, Clone, Default)]
pub struct Tokenizer {
    config: TokenizerConfig,
}

impl Tokenizer {
    /// Creates a tokenizer with the given configuration.
    pub fn new(config: TokenizerConfig) -> Self {
        Self { config }
    }

    /// The active configuration.
    pub fn config(&self) -> &TokenizerConfig {
        &self.config
    }

    /// Tokenizes `text`, interning each token, and returns `(ids, spans)`
    /// where `spans[i]` is the byte range of token `i` in `text`.
    pub fn tokenize_spanned(&self, text: &str, interner: &mut Interner) -> (Vec<TokenId>, Vec<(u32, u32)>) {
        let mut ids = Vec::new();
        let mut spans = Vec::new();
        self.tokenize_spanned_into(text, interner, &mut ids, &mut spans);
        (ids, spans)
    }

    /// [`Tokenizer::tokenize_spanned`] appending into caller-owned buffers
    /// (which are *not* cleared), so repeat callers — the streaming
    /// extractor's per-chunk hot path — tokenize without allocating once
    /// the buffers reach their high-water capacity. Lowercasing ASCII text
    /// with no uppercase letters stays allocation-free; mixed-case or
    /// non-ASCII chunks go through an internal lowering buffer.
    pub fn tokenize_spanned_into(&self, text: &str, interner: &mut Interner, ids: &mut Vec<TokenId>, spans: &mut Vec<(u32, u32)>) {
        let mut lower_buf = String::new();
        self.for_each_chunk(text, |start, end| {
            let raw = &text[start..end];
            // ASCII fast path; non-ASCII always goes through to_lowercase
            // (titlecase characters like 'ᾈ' are not `is_uppercase` yet
            // still have lowercase mappings).
            let needs_lowering = if raw.is_ascii() { raw.bytes().any(|b| b.is_ascii_uppercase()) } else { true };
            let tok = if self.config.lowercase && needs_lowering {
                lower_buf.clear();
                if self.config.strip_punctuation {
                    // Lowercasing can *introduce* non-alphanumerics — İ
                    // (U+0130) maps to "i" + combining dot above — which
                    // would break the alphanumeric-token invariant of
                    // stripped chunks; drop such marks.
                    lower_buf.extend(raw.chars().flat_map(char::to_lowercase).filter(|c| c.is_alphanumeric()));
                } else {
                    lower_buf.extend(raw.chars().flat_map(char::to_lowercase));
                }
                lower_buf.as_str()
            } else {
                raw
            };
            ids.push(interner.intern(tok));
            spans.push((start as u32, end as u32));
        });
    }

    /// Tokenizes `text` and returns only the token ids.
    pub fn tokenize(&self, text: &str, interner: &mut Interner) -> Vec<TokenId> {
        self.tokenize_spanned(text, interner).0
    }

    /// Whether `c` can be part of a token chunk under this configuration.
    /// Chunking is a per-character (context-free) decision, which is what
    /// lets a streaming caller tokenize chunk-by-chunk: splitting text at
    /// any non-word boundary yields the same tokens as tokenizing it whole.
    pub fn is_word_char(&self, c: char) -> bool {
        if self.config.strip_punctuation {
            c.is_alphanumeric()
        } else {
            !c.is_whitespace()
        }
    }

    /// Calls `f(start, end)` for the byte span of every token chunk in
    /// `text`, before interning. Allocation-free.
    fn for_each_chunk(&self, text: &str, mut f: impl FnMut(usize, usize)) {
        let mut start: Option<usize> = None;
        for (i, c) in text.char_indices() {
            match (self.is_word_char(c), start) {
                (true, None) => start = Some(i),
                (false, Some(s)) => {
                    f(s, i);
                    start = None;
                }
                _ => {}
            }
        }
        if let Some(s) = start {
            f(s, text.len());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(text: &str) -> Vec<String> {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        t.tokenize(text, &mut i).into_iter().map(|id| i.resolve(id).to_string()).collect()
    }

    #[test]
    fn splits_on_whitespace_and_punct() {
        assert_eq!(toks("New York, NY!"), vec!["new", "york", "ny"]);
    }

    #[test]
    fn lowercases_by_default() {
        assert_eq!(toks("MIT"), vec!["mit"]);
    }

    #[test]
    fn empty_and_punct_only_yield_nothing() {
        assert!(toks("").is_empty());
        assert!(toks("  ... !!! ").is_empty());
    }

    #[test]
    fn unicode_tokens_survive() {
        assert_eq!(toks("café zürich"), vec!["café", "zürich"]);
    }

    #[test]
    fn spans_point_at_source_bytes() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let text = "Univ. of Queensland";
        let (ids, spans) = t.tokenize_spanned(text, &mut i);
        assert_eq!(ids.len(), 3);
        assert_eq!(&text[spans[0].0 as usize..spans[0].1 as usize], "Univ");
        assert_eq!(&text[spans[2].0 as usize..spans[2].1 as usize], "Queensland");
    }

    #[test]
    fn no_strip_keeps_punctuation_chunks() {
        let t = Tokenizer::new(TokenizerConfig { lowercase: false, strip_punctuation: false });
        let mut i = Interner::new();
        let ids = t.tokenize("a,b c", &mut i);
        assert_eq!(ids.len(), 2);
        assert_eq!(i.resolve(ids[0]), "a,b");
    }

    #[test]
    fn digits_are_tokens() {
        assert_eq!(toks("EDBT 2019"), vec!["edbt", "2019"]);
    }

    #[test]
    fn expanding_lowercase_stays_alphanumeric() {
        // İ (U+0130) lowercases to "i" + U+0307 (combining dot above); the
        // combining mark must not survive into a stripped token.
        assert_eq!(toks("İstanbul"), vec!["istanbul"]);
    }
}
