//! Text substrate for the Aeetes framework: string interning, tokenization,
//! entities, dictionaries and documents.
//!
//! Everything downstream (synonym rules, similarity, indexing, extraction)
//! works on interned [`TokenId`]s rather than strings, so this crate is the
//! single place where raw text is parsed and owned.
//!
//! # Quick example
//!
//! ```
//! use aeetes_text::{Interner, Tokenizer, Dictionary, Document};
//!
//! let mut interner = Interner::new();
//! let tokenizer = Tokenizer::default();
//! let mut dict = Dictionary::new();
//! let e = dict.push("Purdue University USA", &tokenizer, &mut interner);
//! assert_eq!(dict.entity(e).len(), 3);
//!
//! let doc = Document::parse("the Purdue University USA campus", &tokenizer, &mut interner);
//! assert_eq!(doc.len(), 5);
//! ```

mod document;
mod entity;
mod frozen_strings;
mod interner;
mod tokenize;

pub use document::{Document, Span};
pub use entity::{Dictionary, Entity, EntityId};
pub use frozen_strings::{build_table, fnv1a, table_slots, FrozenStrings};
pub use interner::{Interner, StringTable, TokenId};
pub use tokenize::{Tokenizer, TokenizerConfig};

/// A token sequence borrowed from an entity or a document window.
pub type TokenSlice<'a> = &'a [TokenId];
