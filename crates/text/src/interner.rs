//! String interning: maps tokens to dense `u32` ids and back.

use std::collections::HashMap;
use std::fmt;
use std::sync::Arc;

/// A dense identifier for an interned token string.
///
/// Ids are assigned in first-seen order starting from zero, so they can be
/// used directly as indices into side tables (frequencies, ranks, postings).
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

// SAFETY: repr(transparent) over u32 — fixed layout, any bit pattern valid.
unsafe impl aeetes_frozen::Pod for TokenId {}

impl TokenId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// A read-only table of interned strings an [`Interner`] can layer an
/// append-only overlay on top of. Implemented by the frozen (mmap-backed)
/// string table so that opening an artifact costs no per-string allocation.
pub trait StringTable: Send + Sync + fmt::Debug {
    /// Number of strings; ids `0..len` are resolvable.
    fn len(&self) -> usize;
    /// Whether the table is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Looks up a string, returning its id if present.
    fn lookup(&self, s: &str) -> Option<TokenId>;
    /// The string for id `id` (which must be `< len`).
    fn resolve(&self, id: u32) -> &str;
}

/// An append-only string interner.
///
/// Tokens are stored once; lookups in both directions are O(1) (amortized for
/// the string → id direction). The interner is deliberately append-only:
/// downstream structures cache `TokenId`s and rely on them never being
/// invalidated.
///
/// An interner can be layered over a read-only [`StringTable`] base (the
/// frozen path): ids below the base length resolve from the base with zero
/// copies, and newly interned strings go to a heap overlay starting at the
/// next id. Cloning such an interner clones only the overlay.
#[derive(Default, Clone)]
pub struct Interner {
    base: Option<Arc<dyn StringTable>>,
    base_len: u32,
    map: HashMap<Box<str>, TokenId>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an interner layered over a read-only base table. Ids
    /// `0..base.len()` resolve from the base; fresh strings are assigned ids
    /// starting at `base.len()`.
    pub fn with_base(base: Arc<dyn StringTable>) -> Self {
        let base_len = u32::try_from(base.len()).expect("base string table overflows u32 ids");
        Self { base: Some(base), base_len, map: HashMap::new(), strings: Vec::new() }
    }

    /// Interns `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> TokenId {
        if let Some(id) = self.base.as_ref().and_then(|b| b.lookup(s)) {
            return id;
        }
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let next = (self.base_len as usize)
            .checked_add(self.strings.len())
            .and_then(|n| u32::try_from(n).ok())
            .expect("interner overflow: more than u32::MAX distinct tokens");
        let id = TokenId(next);
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<TokenId> {
        if let Some(id) = self.base.as_ref().and_then(|b| b.lookup(s)) {
            return Some(id);
        }
        self.map.get(s).copied()
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: TokenId) -> &str {
        if id.0 < self.base_len {
            return self.base.as_ref().expect("base_len > 0 implies a base").resolve(id.0);
        }
        &self.strings[(id.0 - self.base_len) as usize]
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.base_len as usize + self.strings.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates all interned strings in id order (id 0 first). Useful for
    /// serialization: re-interning them in order reproduces identical ids.
    pub fn iter_strings(&self) -> impl Iterator<Item = &str> {
        let base = self.base.as_deref();
        (0..self.base_len)
            .map(move |i| base.expect("base ids imply a base").resolve(i))
            .chain(self.strings.iter().map(|s| s.as_ref()))
    }

    /// Renders a token sequence back to a space-joined string (for display
    /// and debugging; the original inter-token whitespace is not preserved).
    pub fn render(&self, tokens: &[TokenId]) -> String {
        let mut out = String::new();
        for (i, t) in tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.resolve(*t));
        }
        out
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner").field("len", &self.len()).field("overlay", &self.strings.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("hello");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let id = i.intern("université");
        assert_eq!(i.resolve(id), "université");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        assert!(i.is_empty());
        i.intern("x");
        assert!(i.get("x").is_some());
    }

    #[test]
    fn render_joins_with_spaces() {
        let mut i = Interner::new();
        let toks = vec![i.intern("new"), i.intern("york")];
        assert_eq!(i.render(&toks), "new york");
        assert_eq!(i.render(&[]), "");
    }

    #[test]
    fn distinct_strings_distinct_ids() {
        let mut i = Interner::new();
        assert_ne!(i.intern("a"), i.intern("A"));
    }

    #[test]
    fn iter_strings_round_trips_ids() {
        let mut i = Interner::new();
        for w in ["x", "y", "z"] {
            i.intern(w);
        }
        let mut j = Interner::new();
        for s in i.iter_strings() {
            j.intern(s);
        }
        assert_eq!(j.len(), i.len());
        assert_eq!(j.get("y"), i.get("y"));
    }

    /// A toy heap-backed base table for overlay tests.
    #[derive(Debug)]
    struct VecTable(Vec<String>);

    impl StringTable for VecTable {
        fn len(&self) -> usize {
            self.0.len()
        }
        fn lookup(&self, s: &str) -> Option<TokenId> {
            self.0.iter().position(|x| x == s).map(|i| TokenId(i as u32))
        }
        fn resolve(&self, id: u32) -> &str {
            &self.0[id as usize]
        }
    }

    fn based() -> Interner {
        Interner::with_base(Arc::new(VecTable(vec!["alpha".into(), "beta".into()])))
    }

    #[test]
    fn overlay_resolves_base_ids() {
        let i = based();
        assert_eq!(i.len(), 2);
        assert_eq!(i.resolve(TokenId(0)), "alpha");
        assert_eq!(i.get("beta"), Some(TokenId(1)));
    }

    #[test]
    fn overlay_interns_above_base() {
        let mut i = based();
        assert_eq!(i.intern("alpha"), TokenId(0), "base hit does not allocate");
        let g = i.intern("gamma");
        assert_eq!(g, TokenId(2));
        assert_eq!(i.resolve(g), "gamma");
        assert_eq!(i.intern("gamma"), g);
        assert_eq!(i.len(), 3);
    }

    #[test]
    fn overlay_iter_strings_covers_base_and_overlay() {
        let mut i = based();
        i.intern("gamma");
        let all: Vec<&str> = i.iter_strings().collect();
        assert_eq!(all, vec!["alpha", "beta", "gamma"]);
    }
}
