//! String interning: maps tokens to dense `u32` ids and back.

use std::collections::HashMap;
use std::fmt;

/// A dense identifier for an interned token string.
///
/// Ids are assigned in first-seen order starting from zero, so they can be
/// used directly as indices into side tables (frequencies, ranks, postings).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TokenId(pub u32);

impl TokenId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for TokenId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

/// An append-only string interner.
///
/// Tokens are stored once; lookups in both directions are O(1) (amortized for
/// the string → id direction). The interner is deliberately append-only:
/// downstream structures cache `TokenId`s and rely on them never being
/// invalidated.
#[derive(Default, Clone)]
pub struct Interner {
    map: HashMap<Box<str>, TokenId>,
    strings: Vec<Box<str>>,
}

impl Interner {
    /// Creates an empty interner.
    pub fn new() -> Self {
        Self::default()
    }

    /// Interns `s`, returning its id (existing or freshly assigned).
    pub fn intern(&mut self, s: &str) -> TokenId {
        if let Some(&id) = self.map.get(s) {
            return id;
        }
        let id = TokenId(u32::try_from(self.strings.len()).expect("interner overflow: more than u32::MAX distinct tokens"));
        let boxed: Box<str> = s.into();
        self.strings.push(boxed.clone());
        self.map.insert(boxed, id);
        id
    }

    /// Looks up an already-interned string without inserting.
    pub fn get(&self, s: &str) -> Option<TokenId> {
        self.map.get(s).copied()
    }

    /// Returns the string for `id`.
    ///
    /// # Panics
    /// Panics if `id` was not produced by this interner.
    pub fn resolve(&self, id: TokenId) -> &str {
        &self.strings[id.idx()]
    }

    /// Number of distinct interned tokens.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// Whether no token has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// Iterates all interned strings in id order (id 0 first). Useful for
    /// serialization: re-interning them in order reproduces identical ids.
    pub fn iter_strings(&self) -> impl Iterator<Item = &str> {
        self.strings.iter().map(|s| s.as_ref())
    }

    /// Renders a token sequence back to a space-joined string (for display
    /// and debugging; the original inter-token whitespace is not preserved).
    pub fn render(&self, tokens: &[TokenId]) -> String {
        let mut out = String::new();
        for (i, t) in tokens.iter().enumerate() {
            if i > 0 {
                out.push(' ');
            }
            out.push_str(self.resolve(*t));
        }
        out
    }
}

impl fmt::Debug for Interner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Interner").field("len", &self.len()).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut i = Interner::new();
        let a = i.intern("hello");
        let b = i.intern("hello");
        assert_eq!(a, b);
        assert_eq!(i.len(), 1);
    }

    #[test]
    fn ids_are_dense_and_ordered() {
        let mut i = Interner::new();
        let a = i.intern("a");
        let b = i.intern("b");
        let c = i.intern("c");
        assert_eq!((a.0, b.0, c.0), (0, 1, 2));
    }

    #[test]
    fn resolve_round_trips() {
        let mut i = Interner::new();
        let id = i.intern("université");
        assert_eq!(i.resolve(id), "université");
    }

    #[test]
    fn get_does_not_insert() {
        let mut i = Interner::new();
        assert!(i.get("x").is_none());
        assert!(i.is_empty());
        i.intern("x");
        assert!(i.get("x").is_some());
    }

    #[test]
    fn render_joins_with_spaces() {
        let mut i = Interner::new();
        let toks = vec![i.intern("new"), i.intern("york")];
        assert_eq!(i.render(&toks), "new york");
        assert_eq!(i.render(&[]), "");
    }

    #[test]
    fn distinct_strings_distinct_ids() {
        let mut i = Interner::new();
        assert_ne!(i.intern("a"), i.intern("A"));
    }

    #[test]
    fn iter_strings_round_trips_ids() {
        let mut i = Interner::new();
        for w in ["x", "y", "z"] {
            i.intern(w);
        }
        let mut j = Interner::new();
        for s in i.iter_strings() {
            j.intern(s);
        }
        assert_eq!(j.len(), i.len());
        assert_eq!(j.get("y"), i.get("y"));
    }
}
