//! Entities and the reference dictionary.

use crate::interner::{Interner, TokenId};
use crate::tokenize::Tokenizer;
use std::fmt;

/// Identifier of an *origin* entity in a [`Dictionary`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

impl EntityId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// An entity: a non-empty token sequence plus its source string.
#[derive(Debug, Clone)]
pub struct Entity {
    /// Original surface form as it appeared in the reference table.
    pub raw: String,
    /// Interned tokens, in surface order.
    pub tokens: Vec<TokenId>,
}

impl Entity {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the entity has no tokens (never true for dictionary entries).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// The reference entity table (the paper's dictionary `E0`).
///
/// Entities are stored in insertion order; [`EntityId`]s are dense indices.
#[derive(Debug, Clone, Default)]
pub struct Dictionary {
    entities: Vec<Entity>,
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Tokenizes and appends an entity, returning its id.
    ///
    /// Entities that tokenize to nothing (all punctuation) are still stored
    /// so that ids remain aligned with the caller's input order, but they
    /// will never match anything.
    pub fn push(&mut self, raw: &str, tokenizer: &Tokenizer, interner: &mut Interner) -> EntityId {
        let tokens = tokenizer.tokenize(raw, interner);
        self.push_tokens(raw.to_string(), tokens)
    }

    /// Appends a pre-tokenized entity.
    pub fn push_tokens(&mut self, raw: String, tokens: Vec<TokenId>) -> EntityId {
        let id = EntityId(u32::try_from(self.entities.len()).expect("dictionary overflow"));
        self.entities.push(Entity { raw, tokens });
        id
    }

    /// The token sequence of entity `id`.
    pub fn entity(&self, id: EntityId) -> &[TokenId] {
        &self.entities[id.idx()].tokens
    }

    /// The full record of entity `id`.
    pub fn record(&self, id: EntityId) -> &Entity {
        &self.entities[id.idx()]
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.entities.len()
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.entities.is_empty()
    }

    /// Iterates over `(id, entity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, &Entity)> {
        self.entities.iter().enumerate().map(|(i, e)| (EntityId(i as u32), e))
    }

    /// Builds a dictionary from an iterator of raw strings.
    pub fn from_strings<'a, I>(raws: I, tokenizer: &Tokenizer, interner: &mut Interner) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut d = Self::new();
        for raw in raws {
            d.push(raw, tokenizer, interner);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let mut d = Dictionary::new();
        let a = d.push("Purdue University USA", &t, &mut i);
        let b = d.push("UQ AU", &t, &mut i);
        assert_eq!(d.len(), 2);
        assert_eq!(d.entity(a).len(), 3);
        assert_eq!(d.entity(b).len(), 2);
        assert_eq!(d.record(a).raw, "Purdue University USA");
    }

    #[test]
    fn ids_are_dense() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let d = Dictionary::from_strings(["a", "b", "c"], &t, &mut i);
        let ids: Vec<u32> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn shared_tokens_share_ids() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let mut d = Dictionary::new();
        let a = d.push("University of Washington", &t, &mut i);
        let b = d.push("University of Queensland", &t, &mut i);
        assert_eq!(d.entity(a)[0], d.entity(b)[0]);
        assert_eq!(d.entity(a)[1], d.entity(b)[1]);
        assert_ne!(d.entity(a)[2], d.entity(b)[2]);
    }

    #[test]
    fn empty_entity_is_stored_but_empty() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let mut d = Dictionary::new();
        let e = d.push("!!!", &t, &mut i);
        assert!(d.record(e).is_empty());
    }
}
