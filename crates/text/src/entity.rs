//! Entities and the reference dictionary.

use crate::interner::{Interner, TokenId};
use crate::tokenize::Tokenizer;
use std::fmt;

/// Identifier of an *origin* entity in a [`Dictionary`].
#[repr(transparent)]
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EntityId(pub u32);

// SAFETY: repr(transparent) over u32 — fixed layout, any bit pattern valid.
unsafe impl aeetes_frozen::Pod for EntityId {}

impl EntityId {
    /// The id as a usize, for indexing side tables.
    #[inline]
    pub fn idx(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for EntityId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "e{}", self.0)
    }
}

/// A borrowed view of one entity: a non-empty token sequence plus its
/// source string, both resolved out of the dictionary's flat arenas.
#[derive(Debug, Clone, Copy)]
pub struct Entity<'a> {
    /// Original surface form as it appeared in the reference table.
    pub raw: &'a str,
    /// Interned tokens, in surface order.
    pub tokens: &'a [TokenId],
}

impl Entity<'_> {
    /// Number of tokens.
    pub fn len(&self) -> usize {
        self.tokens.len()
    }

    /// Whether the entity has no tokens (never true for dictionary entries).
    pub fn is_empty(&self) -> bool {
        self.tokens.is_empty()
    }
}

/// The reference entity table (the paper's dictionary `E0`).
///
/// Entities are stored in insertion order; [`EntityId`]s are dense indices.
/// Storage is four flat arenas (surface bytes + offsets, tokens + offsets)
/// rather than a `Vec` of per-entity records: a clone is four allocations
/// regardless of entity count, and deserializing a dictionary appends into
/// the arenas without any per-entity heap traffic.
#[derive(Debug, Clone)]
pub struct Dictionary {
    /// Every surface form, concatenated.
    raws: String,
    /// `raws[raw_off[i]..raw_off[i+1]]` is entity `i`'s surface form.
    raw_off: Vec<u32>,
    /// Every token sequence, concatenated.
    tokens: Vec<TokenId>,
    /// `tokens[tok_off[i]..tok_off[i+1]]` is entity `i`'s token sequence.
    tok_off: Vec<u32>,
}

impl Default for Dictionary {
    fn default() -> Self {
        Self { raws: String::new(), raw_off: vec![0], tokens: Vec::new(), tok_off: vec![0] }
    }
}

impl Dictionary {
    /// Creates an empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-allocates for `entities` more entities averaging `avg_tokens`
    /// tokens and `avg_raw` surface bytes (a deserializer's bulk-load hint).
    pub fn reserve(&mut self, entities: usize, avg_tokens: usize, avg_raw: usize) {
        self.raws.reserve(entities * avg_raw);
        self.raw_off.reserve(entities);
        self.tokens.reserve(entities * avg_tokens);
        self.tok_off.reserve(entities);
    }

    /// Tokenizes and appends an entity, returning its id.
    ///
    /// Entities that tokenize to nothing (all punctuation) are still stored
    /// so that ids remain aligned with the caller's input order, but they
    /// will never match anything.
    pub fn push(&mut self, raw: &str, tokenizer: &Tokenizer, interner: &mut Interner) -> EntityId {
        let tokens = tokenizer.tokenize(raw, interner);
        self.push_from(raw, tokens.into_iter())
    }

    /// Appends a pre-tokenized entity.
    pub fn push_tokens(&mut self, raw: String, tokens: Vec<TokenId>) -> EntityId {
        self.push_from(&raw, tokens.into_iter())
    }

    /// Appends an entity from borrowed parts without intermediate
    /// allocations (the arenas absorb the bytes directly).
    pub fn push_from(&mut self, raw: &str, tokens: impl Iterator<Item = TokenId>) -> EntityId {
        let id = EntityId(u32::try_from(self.len()).expect("dictionary overflow"));
        self.raws.push_str(raw);
        self.raw_off.push(u32::try_from(self.raws.len()).expect("dictionary surface arena overflow"));
        self.tokens.extend(tokens);
        self.tok_off.push(u32::try_from(self.tokens.len()).expect("dictionary token arena overflow"));
        id
    }

    /// The four flat arenas backing the dictionary, in storage order:
    /// `(raws, raw_off, tokens, tok_off)`. The offset tables are prefix
    /// sums of `len() + 1` entries each, starting at 0.
    pub fn raw_arenas(&self) -> (&str, &[u32], &[TokenId], &[u32]) {
        (&self.raws, &self.raw_off, &self.tokens, &self.tok_off)
    }

    /// Reassembles a dictionary from the arenas [`Self::raw_arenas`]
    /// exposes, re-validating every invariant the push path maintains:
    /// matching offset tables forming monotone prefix sums that span their
    /// arenas, UTF-8 raw bytes cut at character boundaries, and token ids
    /// below `n_tokens`. The arenas move in unchanged — reassembly costs no
    /// per-entity work beyond the validation scans.
    pub fn from_raw_arenas(raws: Vec<u8>, raw_off: Vec<u32>, tokens: Vec<TokenId>, tok_off: Vec<u32>, n_tokens: u32) -> Result<Self, String> {
        if raw_off.len() != tok_off.len() {
            return Err(format!("offset tables disagree: {} raw offsets, {} token offsets", raw_off.len(), tok_off.len()));
        }
        let spans = |off: &[u32], len: usize, what: &str| -> Result<(), String> {
            let ok = len <= u32::MAX as usize
                && off.first() == Some(&0)
                && off.last() == Some(&(len as u32))
                && off.windows(2).fold(true, |ok, w| ok & (w[0] <= w[1]));
            if ok {
                Ok(())
            } else {
                Err(format!("{what} offsets are not a prefix sum spanning {len} elements"))
            }
        };
        spans(&raw_off, raws.len(), "surface")?;
        spans(&tok_off, tokens.len(), "token")?;
        let raws = String::from_utf8(raws).map_err(|e| format!("surface arena is not UTF-8: {e}"))?;
        if let Some(i) = raw_off.iter().position(|&o| !raws.is_char_boundary(o as usize)) {
            return Err(format!("surface offset {i} splits a UTF-8 character"));
        }
        if let Some(t) = tokens.iter().find(|t| t.0 >= n_tokens) {
            return Err(format!("entity token {:?} out of interner range {n_tokens}", t));
        }
        Ok(Self { raws, raw_off, tokens, tok_off })
    }

    /// The token sequence of entity `id`.
    pub fn entity(&self, id: EntityId) -> &[TokenId] {
        &self.tokens[self.tok_off[id.idx()] as usize..self.tok_off[id.idx() + 1] as usize]
    }

    /// The full record of entity `id`.
    pub fn record(&self, id: EntityId) -> Entity<'_> {
        Entity {
            raw: &self.raws[self.raw_off[id.idx()] as usize..self.raw_off[id.idx() + 1] as usize],
            tokens: self.entity(id),
        }
    }

    /// Number of entities.
    pub fn len(&self) -> usize {
        self.tok_off.len() - 1
    }

    /// Whether the dictionary is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Iterates over `(id, entity)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (EntityId, Entity<'_>)> {
        (0..self.len()).map(|i| (EntityId(i as u32), self.record(EntityId(i as u32))))
    }

    /// Builds a dictionary from an iterator of raw strings.
    pub fn from_strings<'a, I>(raws: I, tokenizer: &Tokenizer, interner: &mut Interner) -> Self
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut d = Self::new();
        for raw in raws {
            d.push(raw, tokenizer, interner);
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_lookup() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let mut d = Dictionary::new();
        let a = d.push("Purdue University USA", &t, &mut i);
        let b = d.push("UQ AU", &t, &mut i);
        assert_eq!(d.len(), 2);
        assert_eq!(d.entity(a).len(), 3);
        assert_eq!(d.entity(b).len(), 2);
        assert_eq!(d.record(a).raw, "Purdue University USA");
    }

    #[test]
    fn ids_are_dense() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let d = Dictionary::from_strings(["a", "b", "c"], &t, &mut i);
        let ids: Vec<u32> = d.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn shared_tokens_share_ids() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let mut d = Dictionary::new();
        let a = d.push("University of Washington", &t, &mut i);
        let b = d.push("University of Queensland", &t, &mut i);
        assert_eq!(d.entity(a)[0], d.entity(b)[0]);
        assert_eq!(d.entity(a)[1], d.entity(b)[1]);
        assert_ne!(d.entity(a)[2], d.entity(b)[2]);
    }

    #[test]
    fn empty_entity_is_stored_but_empty() {
        let mut i = Interner::new();
        let t = Tokenizer::default();
        let mut d = Dictionary::new();
        let e = d.push("!!!", &t, &mut i);
        assert!(d.record(e).is_empty());
    }
}
