//! Property tests for tokenization and interning.

use aeetes_text::{Document, Interner, Span, Tokenizer, TokenizerConfig};
use proptest::prelude::*;

proptest! {
    /// Token byte spans are in-bounds, non-empty, ascending and disjoint.
    #[test]
    fn token_spans_are_well_formed(text in "\\PC{0,120}") {
        let mut interner = Interner::new();
        let tokenizer = Tokenizer::default();
        let (ids, spans) = tokenizer.tokenize_spanned(&text, &mut interner);
        prop_assert_eq!(ids.len(), spans.len());
        let mut prev_end = 0usize;
        for (s, e) in &spans {
            let (s, e) = (*s as usize, *e as usize);
            prop_assert!(s < e, "empty span");
            prop_assert!(e <= text.len());
            prop_assert!(s >= prev_end, "spans overlap or go backwards");
            prop_assert!(text.is_char_boundary(s) && text.is_char_boundary(e));
            prev_end = e;
        }
    }

    /// Default config: every produced token is lowercase and alphanumeric.
    #[test]
    fn default_tokens_are_normalized(text in "\\PC{0,120}") {
        let mut interner = Interner::new();
        let ids = Tokenizer::default().tokenize(&text, &mut interner);
        for id in ids {
            let tok = interner.resolve(id);
            prop_assert!(!tok.is_empty());
            prop_assert!(tok.chars().all(char::is_alphanumeric), "{tok:?}");
            // Lowercasing is idempotent (some uppercase-category characters,
            // e.g. 𝕀, have no lowercase mapping and survive verbatim).
            let relowered: String = tok.chars().flat_map(char::to_lowercase).collect();
            prop_assert_eq!(relowered.as_str(), tok);
        }
    }

    /// Tokenizing the space-joined render of a token sequence reproduces
    /// exactly the same ids (render/tokenize round trip).
    #[test]
    fn render_tokenize_round_trip(words in proptest::collection::vec("[a-z][a-z0-9]{0,8}", 0..12)) {
        let mut interner = Interner::new();
        let tokenizer = Tokenizer::default();
        let joined = words.join(" ");
        let ids = tokenizer.tokenize(&joined, &mut interner);
        let rendered = interner.render(&ids);
        let again = tokenizer.tokenize(&rendered, &mut interner);
        prop_assert_eq!(ids, again);
    }

    /// Interning is idempotent and order-stable.
    #[test]
    fn interner_ids_stable(words in proptest::collection::vec("[a-zA-Z]{1,8}", 1..30)) {
        let mut a = Interner::new();
        let first: Vec<_> = words.iter().map(|w| a.intern(w)).collect();
        let second: Vec<_> = words.iter().map(|w| a.intern(w)).collect();
        prop_assert_eq!(&first, &second);
        // Rebuilding from iter_strings reproduces the same mapping.
        let mut b = Interner::new();
        for s in a.iter_strings() {
            b.intern(s);
        }
        for w in &words {
            prop_assert_eq!(a.get(w), b.get(w));
        }
    }

    /// `Document::text_of` always returns a substring of the raw text that
    /// itself re-tokenizes to the span's tokens.
    #[test]
    fn text_of_is_consistent(words in proptest::collection::vec("[a-z]{1,6}", 1..15), start in 0usize..10, len in 1usize..6) {
        let mut interner = Interner::new();
        let tokenizer = Tokenizer::default();
        let text = words.join(" ");
        let doc = Document::parse(&text, &tokenizer, &mut interner);
        prop_assume!(start + len <= doc.len());
        let span = Span::new(start, len);
        let sub = doc.text_of(span).expect("span in range");
        prop_assert!(text.contains(sub));
        let re = tokenizer.tokenize(sub, &mut interner);
        prop_assert_eq!(re.as_slice(), doc.slice(span));
    }

    /// strip_punctuation=false never produces more tokens than whitespace
    /// splitting, and both configs agree on pure [a-z ] input.
    #[test]
    fn config_variants_agree_on_clean_text(words in proptest::collection::vec("[a-z]{1,6}", 0..10)) {
        let text = words.join(" ");
        let mut i1 = Interner::new();
        let mut i2 = Interner::new();
        let t1 = Tokenizer::default();
        let t2 = Tokenizer::new(TokenizerConfig { lowercase: true, strip_punctuation: false });
        let a = t1.tokenize(&text, &mut i1);
        let b = t2.tokenize(&text, &mut i2);
        prop_assert_eq!(a.len(), b.len());
    }
}
