//! Zero-overhead observability for the aeetes extraction stack.
//!
//! Three pieces, all dependency-free:
//!
//! - [`Stage`] / [`StageSlots`] / [`StageTimer`]: a fixed-size, allocation-free
//!   per-pipeline-stage timing accumulator. The extraction hot path records
//!   into slots resident in its reusable scratch, so steady-state extraction
//!   stays zero-allocation (guarded by the counting-allocator test in
//!   `aeetes-core`).
//! - [`MetricRegistry`] with [`Counter`] / [`Gauge`] / [`Histogram`]: striped
//!   (per-thread-shard) atomics, merged only on scrape — increments on the
//!   hot path never contend on a shared cache line.
//! - [`export`]: Prometheus text-format and JSON renderers over a registry
//!   snapshot.
//!
//! The crate deliberately has no dependency on the engine crates; engine
//! types flush their counters into it through plain integers (see
//! [`ExtractCounts`]).

mod export;
mod fleet;
mod pool;
mod registry;
mod stage;
mod stream;
mod wal;

pub use export::{json, prometheus_text};
pub use fleet::{FleetMetrics, ReplicaMetrics};
pub use pool::PoolMetrics;
pub use registry::{Counter, Gauge, Histogram, MetricRegistry, MetricSnapshot, MetricValue};
pub use stage::{Stage, StageSlots, StageTimer, SAMPLE_MASK};
pub use stream::StreamMetrics;
pub use wal::WalMetrics;

/// Work counters of one extraction, mirrored as plain integers so engine
/// crates can flush their stats into an [`ExtractMetrics`] bundle without
/// this crate depending on them.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExtractCounts {
    /// Posting-list entries touched during candidate generation.
    pub accessed_entries: u64,
    /// Candidate `(span, entity)` pairs handed to verification.
    pub candidates: u64,
    /// Candidate pairs that survived the cheap filters and were scored.
    pub verifications: u64,
    /// Verified matches reported.
    pub matches: u64,
}

/// The standard extraction metric bundle: per-stage duration histograms plus
/// the work counters every aeetes pipeline reports. Handles are pre-registered
/// `Arc`s, so recording does no registry lookup and no allocation.
pub struct ExtractMetrics {
    /// `aeetes_stage_duration_seconds{stage=...}`, one histogram per stage,
    /// indexed by `Stage as usize`. Observed per document with the stage's
    /// estimated total nanos.
    pub stage: [std::sync::Arc<Histogram>; Stage::COUNT],
    /// `aeetes_docs_total`: documents whose extraction was observed.
    pub docs: std::sync::Arc<Counter>,
    /// `aeetes_accessed_entries_total`.
    pub accessed_entries: std::sync::Arc<Counter>,
    /// `aeetes_candidates_total`.
    pub candidates: std::sync::Arc<Counter>,
    /// `aeetes_verifications_total`.
    pub verifications: std::sync::Arc<Counter>,
    /// `aeetes_matches_total`.
    pub matches: std::sync::Arc<Counter>,
    /// `aeetes_truncated_total`: extractions cut short by a budget.
    pub truncated: std::sync::Arc<Counter>,
}

impl ExtractMetrics {
    /// Registers (or re-acquires) the bundle's families in `registry`.
    pub fn register(registry: &MetricRegistry) -> Self {
        let stage = Stage::ALL.map(|s| {
            registry.histogram_with(
                "aeetes_stage_duration_seconds",
                "Estimated per-document time spent in each extraction pipeline stage",
                &[("stage", s.name())],
            )
        });
        ExtractMetrics {
            stage,
            docs: registry.counter("aeetes_docs_total", "Documents extracted"),
            accessed_entries: registry.counter("aeetes_accessed_entries_total", "Posting-list entries accessed during candidate generation"),
            candidates: registry.counter("aeetes_candidates_total", "Candidate (span, entity) pairs generated"),
            verifications: registry.counter("aeetes_verifications_total", "Candidates scored by the verifier"),
            matches: registry.counter("aeetes_matches_total", "Verified matches reported"),
            truncated: registry.counter("aeetes_truncated_total", "Extractions truncated by a budget or cancellation"),
        }
    }

    /// Flushes one document's outcome: stage slots become histogram samples
    /// (estimated totals), counters accumulate. Allocation-free.
    pub fn observe(&self, slots: &StageSlots, counts: &ExtractCounts, truncated: bool) {
        for s in Stage::ALL {
            let est = slots.estimated_nanos(s);
            if est > 0 {
                self.stage[s as usize].observe_nanos(est);
            }
        }
        self.docs.inc(1);
        self.accessed_entries.inc(counts.accessed_entries);
        self.candidates.inc(counts.candidates);
        self.verifications.inc(counts.verifications);
        self.matches.inc(counts.matches);
        if truncated {
            self.truncated.inc(1);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn extract_metrics_observe_accumulates() {
        let reg = MetricRegistry::new();
        let m = ExtractMetrics::register(&reg);
        let mut slots = StageSlots::default();
        slots.record(Stage::Verify, 1_000);
        m.observe(&slots, &ExtractCounts { accessed_entries: 7, candidates: 5, verifications: 4, matches: 2 }, false);
        m.observe(&slots, &ExtractCounts { accessed_entries: 1, candidates: 2, verifications: 1, matches: 1 }, true);
        assert_eq!(m.docs.value(), 2);
        assert_eq!(m.candidates.value(), 7);
        assert_eq!(m.matches.value(), 3);
        assert_eq!(m.truncated.value(), 1);
        assert_eq!(m.stage[Stage::Verify as usize].count(), 2);
        assert_eq!(m.stage[Stage::Tokenize as usize].count(), 0);
    }

    #[test]
    fn register_is_idempotent() {
        let reg = MetricRegistry::new();
        let a = ExtractMetrics::register(&reg);
        let b = ExtractMetrics::register(&reg);
        a.candidates.inc(3);
        b.candidates.inc(4);
        assert_eq!(a.candidates.value(), 7, "same family name must yield the same instance");
    }
}
