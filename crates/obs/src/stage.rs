//! Pipeline stages and the allocation-free timing slots they record into.
//!
//! The extraction hot path cannot afford a histogram update — or any shared
//! write — per window position. Instead each [`SegmentScratch`-resident]
//! [`StageSlots`] accumulates plain `u64`s: summed nanoseconds of the spans
//! that were actually timed, how many were timed, and how many happened in
//! total. Inner-loop stages are *sampled* (one position in
//! `SAMPLE_MASK + 1` is timed, the rest only counted), so the estimator
//! `nanos × spans / timed` scales the measured time back to the full run
//! while the steady-state cost stays at two `Instant` reads per ~64
//! positions. Document-level stages (remap, verify, …) are timed exactly:
//! for them `timed == spans` and the estimator is the identity.

use std::time::Instant;

/// Sampling mask for inner-loop stage timing: a window position `p` is
/// timed when `p & SAMPLE_MASK == 0` (1 in 64).
pub const SAMPLE_MASK: usize = 63;

/// One stage of the extraction pipeline, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
#[repr(usize)]
pub enum Stage {
    /// Document text → token ids (recorded by callers that parse).
    Tokenize = 0,
    /// Global-order keys → dense per-document ranks (`DenseRemap::build`).
    Remap = 1,
    /// Initial window-state construction (the Window Extend chain, or the
    /// per-substring prefix sort of the Simple/Skip strategies).
    PrefixBuild = 2,
    /// Incremental prefix maintenance (Window Migrate operations).
    PrefixUpdate = 3,
    /// The sliding-window enumeration loop, *inclusive* of the per-position
    /// sub-stages — the per-document wall time of candidate generation.
    WindowSlide = 4,
    /// Posting-list scans and candidate emission.
    CandidateGen = 5,
    /// Candidate verification (filters + similarity scoring).
    Verify = 6,
}

impl Stage {
    /// Number of stages (slot-array length).
    pub const COUNT: usize = 7;

    /// All stages, in execution order.
    pub const ALL: [Stage; Stage::COUNT] = [
        Stage::Tokenize,
        Stage::Remap,
        Stage::PrefixBuild,
        Stage::PrefixUpdate,
        Stage::WindowSlide,
        Stage::CandidateGen,
        Stage::Verify,
    ];

    /// The stable label used by exporters and the profile table.
    pub fn name(self) -> &'static str {
        match self {
            Stage::Tokenize => "tokenize",
            Stage::Remap => "remap",
            Stage::PrefixBuild => "prefix_build",
            Stage::PrefixUpdate => "prefix_update",
            Stage::WindowSlide => "window_slide",
            Stage::CandidateGen => "candidate_gen",
            Stage::Verify => "verify",
        }
    }
}

/// Fixed-size per-stage timing accumulator. Plain `Copy` data — no heap,
/// no atomics — meant to live inside a reusable extraction scratch and be
/// merged/flushed after the run.
#[derive(Debug, Clone, Copy, Default)]
pub struct StageSlots {
    nanos: [u64; Stage::COUNT],
    timed: [u64; Stage::COUNT],
    spans: [u64; Stage::COUNT],
}

impl StageSlots {
    /// Zeroes every slot (start of a new document).
    #[inline]
    pub fn clear(&mut self) {
        *self = StageSlots::default();
    }

    /// Records one timed span of `stage`.
    #[inline]
    pub fn record(&mut self, stage: Stage, nanos: u64) {
        let i = stage as usize;
        self.nanos[i] += nanos;
        self.timed[i] += 1;
        self.spans[i] += 1;
    }

    /// Counts one span of `stage` that was *not* timed (sampled out).
    #[inline]
    pub fn skip(&mut self, stage: Stage) {
        self.spans[stage as usize] += 1;
    }

    /// Raises the span total of `stage` to `total` (no-op when already
    /// there). Hot loops whose span count is known in bulk — one span per
    /// window position, say — call this once after the loop instead of
    /// paying a [`StageSlots::skip`] per sampled-out iteration; only the
    /// sampled positions touch the slots inside the loop.
    #[inline]
    pub fn account_spans(&mut self, stage: Stage, total: u64) {
        let i = stage as usize;
        self.spans[i] = self.spans[i].max(total);
    }

    /// Accumulates another slot set (shard fan-out merge, profile runs).
    #[inline]
    pub fn merge(&mut self, other: &StageSlots) {
        for i in 0..Stage::COUNT {
            self.nanos[i] += other.nanos[i];
            self.timed[i] += other.timed[i];
            self.spans[i] += other.spans[i];
        }
    }

    /// Summed nanoseconds of the spans actually timed.
    #[inline]
    pub fn nanos(&self, stage: Stage) -> u64 {
        self.nanos[stage as usize]
    }

    /// Spans timed.
    #[inline]
    pub fn timed(&self, stage: Stage) -> u64 {
        self.timed[stage as usize]
    }

    /// Spans total (timed + sampled out).
    #[inline]
    pub fn spans(&self, stage: Stage) -> u64 {
        self.spans[stage as usize]
    }

    /// Estimated total nanoseconds: measured time scaled by the sampling
    /// ratio (`nanos × spans / timed`). Exact for stages timed on every
    /// span; 0 when nothing was timed.
    #[inline]
    pub fn estimated_nanos(&self, stage: Stage) -> u64 {
        let i = stage as usize;
        if self.timed[i] == 0 {
            return 0;
        }
        // 128-bit intermediate: nanos × spans can exceed u64 on long runs;
        // the final estimate saturates instead of wrapping.
        let est = (self.nanos[i] as u128 * self.spans[i] as u128) / self.timed[i] as u128;
        est.min(u64::MAX as u128) as u64
    }
}

/// A started stage timer. [`StageTimer::lap`] records the span since the
/// previous lap (or start) and re-arms, so chained sub-stages pay one clock
/// read per boundary instead of two per stage.
#[derive(Debug)]
pub struct StageTimer {
    start: Instant,
}

impl StageTimer {
    /// Starts timing now.
    #[inline]
    pub fn start() -> Self {
        StageTimer { start: Instant::now() }
    }

    /// Records the span since start/last lap into `slots` and re-arms.
    #[inline]
    pub fn lap(&mut self, stage: Stage, slots: &mut StageSlots) {
        let now = Instant::now();
        slots.record(stage, (now - self.start).as_nanos() as u64);
        self.start = now;
    }

    /// Records the final span and consumes the timer.
    #[inline]
    pub fn stop(self, stage: Stage, slots: &mut StageSlots) {
        slots.record(stage, self.start.elapsed().as_nanos() as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn estimator_scales_by_sampling_ratio() {
        let mut s = StageSlots::default();
        s.record(Stage::PrefixUpdate, 100);
        s.record(Stage::PrefixUpdate, 300);
        for _ in 0..6 {
            s.skip(Stage::PrefixUpdate);
        }
        assert_eq!(s.nanos(Stage::PrefixUpdate), 400);
        assert_eq!(s.timed(Stage::PrefixUpdate), 2);
        assert_eq!(s.spans(Stage::PrefixUpdate), 8);
        // 400ns over 2 timed spans, 8 spans total → 1600ns estimated.
        assert_eq!(s.estimated_nanos(Stage::PrefixUpdate), 1600);
    }

    #[test]
    fn account_spans_raises_to_bulk_total() {
        let mut s = StageSlots::default();
        s.record(Stage::CandidateGen, 500);
        s.record(Stage::CandidateGen, 300);
        // Bulk accounting after a 100-position loop with 2 timed samples.
        s.account_spans(Stage::CandidateGen, 100);
        assert_eq!(s.spans(Stage::CandidateGen), 100);
        assert_eq!(s.timed(Stage::CandidateGen), 2);
        // 800ns over 2 timed of 100 spans → 40µs estimated.
        assert_eq!(s.estimated_nanos(Stage::CandidateGen), 40_000);
        // Idempotent, and never lowers an already-larger count.
        s.account_spans(Stage::CandidateGen, 50);
        assert_eq!(s.spans(Stage::CandidateGen), 100);
    }

    #[test]
    fn exact_stages_estimate_exactly() {
        let mut s = StageSlots::default();
        s.record(Stage::Verify, 12_345);
        assert_eq!(s.estimated_nanos(Stage::Verify), 12_345);
        assert_eq!(s.estimated_nanos(Stage::Remap), 0, "untimed stage estimates to zero");
    }

    #[test]
    fn merge_sums_all_slots() {
        let mut a = StageSlots::default();
        let mut b = StageSlots::default();
        a.record(Stage::Remap, 10);
        b.record(Stage::Remap, 20);
        b.skip(Stage::CandidateGen);
        a.merge(&b);
        assert_eq!(a.nanos(Stage::Remap), 30);
        assert_eq!(a.timed(Stage::Remap), 2);
        assert_eq!(a.spans(Stage::CandidateGen), 1);
    }

    #[test]
    fn timer_lap_chains_spans() {
        let mut s = StageSlots::default();
        let mut t = StageTimer::start();
        t.lap(Stage::Remap, &mut s);
        t.stop(Stage::Verify, &mut s);
        assert_eq!(s.timed(Stage::Remap), 1);
        assert_eq!(s.timed(Stage::Verify), 1);
    }

    #[test]
    fn estimator_survives_large_products() {
        let mut s = StageSlots::default();
        s.record(Stage::CandidateGen, u64::MAX / 4);
        for _ in 0..7 {
            s.skip(Stage::CandidateGen);
        }
        // nanos × spans overflows u64; the estimate saturates, not wraps.
        assert_eq!(s.estimated_nanos(Stage::CandidateGen), u64::MAX);
    }
}
