//! Streaming extraction metric families.
//!
//! The streaming engine (`aeetes-stream`) and the server's stream mode
//! record per-stream lifecycle and per-chunk work here: how many streams
//! are open, how many chunks each has carried across, how many tokens are
//! held back waiting to settle, and how long a `flush` takes to drain the
//! tail. Like [`crate::ExtractMetrics`] this is a bundle of
//! pre-registered `Arc` handles: recording touches only striped atomics,
//! never the registry, so observation rides the allocation-free feed path.

use crate::{Counter, Gauge, Histogram, MetricRegistry};
use std::sync::Arc;

/// Stream-mode metrics, one bundle per serving process.
pub struct StreamMetrics {
    /// `aeetes_streams_open`: streams currently open (between the server's
    /// `open` and `close` verbs, disconnects included).
    pub open: Arc<Gauge>,
    /// `aeetes_streams_opened_total`: streams ever opened.
    pub opened: Arc<Counter>,
    /// `aeetes_streams_closed_total`: streams closed for any reason —
    /// explicit close, client disconnect, or server drain.
    pub closed: Arc<Counter>,
    /// `aeetes_stream_chunks_total`: chunks fed across all streams.
    pub chunks: Arc<Counter>,
    /// `aeetes_stream_carried_bytes`: bytes currently buffered across all
    /// open streams (undecoded suffixes, held-back word runs, and the
    /// retained token tails).
    pub carried_bytes: Arc<Gauge>,
    /// `aeetes_stream_emitted_total`: matches emitted across all streams.
    pub emitted: Arc<Counter>,
    /// `aeetes_stream_flush_nanos`: latency of a stream flush (finish the
    /// current document, emit the remaining tail).
    pub flush_nanos: Arc<Histogram>,
}

impl StreamMetrics {
    /// Registers (or re-acquires) the stream families in `registry`.
    pub fn register(registry: &MetricRegistry) -> Self {
        StreamMetrics {
            open: registry.gauge("aeetes_streams_open", "Streams currently open"),
            opened: registry.counter("aeetes_streams_opened_total", "Streams ever opened"),
            closed: registry.counter("aeetes_streams_closed_total", "Streams closed (explicit, disconnect, or drain)"),
            chunks: registry.counter("aeetes_stream_chunks_total", "Chunks fed across all streams"),
            carried_bytes: registry.gauge("aeetes_stream_carried_bytes", "Bytes buffered across open streams awaiting settlement"),
            emitted: registry.counter("aeetes_stream_emitted_total", "Matches emitted across all streams"),
            flush_nanos: registry.histogram("aeetes_stream_flush_nanos", "Latency of a stream flush (drain + emit tail)"),
        }
    }

    /// Records one fed chunk: `emitted` matches settled by it and the
    /// stream's carried-byte delta (may be negative as the tail drains).
    pub fn observe_chunk(&self, emitted: u64, carried_delta: i64) {
        self.chunks.inc(1);
        self.emitted.inc(emitted);
        self.carried_bytes.add(carried_delta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_observe() {
        let registry = MetricRegistry::new();
        let m = StreamMetrics::register(&registry);
        m.open.add(1);
        m.opened.inc(1);
        m.observe_chunk(3, 128);
        m.observe_chunk(0, -64);
        m.flush_nanos.observe_nanos(1_500);
        m.open.add(-1);
        m.closed.inc(1);
        let text = crate::prometheus_text(&registry.snapshot());
        assert!(text.contains("aeetes_streams_open 0"), "{text}");
        assert!(text.contains("aeetes_streams_opened_total 1"), "{text}");
        assert!(text.contains("aeetes_stream_chunks_total 2"), "{text}");
        assert!(text.contains("aeetes_stream_carried_bytes 64"), "{text}");
        assert!(text.contains("aeetes_stream_emitted_total 3"), "{text}");
        assert!(text.contains("aeetes_stream_flush_nanos"), "{text}");
    }

    #[test]
    fn register_is_idempotent() {
        let registry = MetricRegistry::new();
        let a = StreamMetrics::register(&registry);
        let b = StreamMetrics::register(&registry);
        a.opened.inc(1);
        b.opened.inc(1);
        let text = crate::prometheus_text(&registry.snapshot());
        assert!(text.contains("aeetes_streams_opened_total 2"), "{text}");
    }
}
