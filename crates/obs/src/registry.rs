//! The sharded metric registry.
//!
//! Hot-path writes (counter increments, histogram observations) land in a
//! per-thread *stripe*: each metric owns `STRIPES` cache-line-aligned
//! atomic blocks, and every thread is assigned a stripe round-robin on
//! first use. Two worker threads therefore never bounce the same cache
//! line on an increment; a scrape (rare) sums all stripes with relaxed
//! loads. Monotonic counters tolerate relaxed ordering because scrapes are
//! point-in-time snapshots, not synchronization points.
//!
//! Registration is `Mutex`-guarded and idempotent: asking for the same
//! `(name, labels)` pair again returns the existing handle, so workers and
//! reload paths can re-register freely. Handles are `Arc`s — recording
//! never touches the registry lock.

use std::sync::atomic::{AtomicI64, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Number of write stripes per metric. Spacious enough that a typical
/// worker pool maps 1:1, small enough that scrape-time merges stay cheap.
const STRIPES: usize = 16;

static NEXT_STRIPE: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    static STRIPE: std::cell::Cell<usize> = const { std::cell::Cell::new(usize::MAX) };
}

/// The calling thread's stripe index, assigned round-robin on first use.
#[inline]
fn stripe() -> usize {
    STRIPE.with(|s| {
        let mut v = s.get();
        if v == usize::MAX {
            v = NEXT_STRIPE.fetch_add(1, Ordering::Relaxed) % STRIPES;
            s.set(v);
        }
        v
    })
}

/// One cache line of counter state: stripes never share a line.
#[repr(align(64))]
#[derive(Default)]
struct PaddedU64(AtomicU64);

/// A monotonic counter.
#[derive(Default)]
pub struct Counter {
    cells: [PaddedU64; STRIPES],
}

impl Counter {
    /// Adds `by` (relaxed, striped — never contends across workers).
    #[inline]
    pub fn inc(&self, by: u64) {
        self.cells[stripe()].0.fetch_add(by, Ordering::Relaxed);
    }

    /// Point-in-time total across all stripes.
    pub fn value(&self) -> u64 {
        self.cells.iter().map(|c| c.0.load(Ordering::Relaxed)).sum()
    }
}

/// A gauge: a signed last-write/delta value (queue depths, generation ids).
/// Gauges are scraped and set rarely, so a single atomic suffices.
#[derive(Default)]
pub struct Gauge {
    cell: AtomicI64,
}

impl Gauge {
    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        self.cell.store(v, Ordering::Relaxed);
    }

    /// Adds `by` (may be negative).
    #[inline]
    pub fn add(&self, by: i64) {
        self.cell.fetch_add(by, Ordering::Relaxed);
    }

    /// Current value.
    pub fn value(&self) -> i64 {
        self.cell.load(Ordering::Relaxed)
    }
}

/// Histogram bucket count: log₂-scale over nanoseconds. Bucket `i` has the
/// upper bound `1µs × 2^i` (the last bucket is `+Inf`), spanning ~1µs to
/// ~67s — the full range of a document extraction.
pub(crate) const BUCKETS: usize = 27;

/// Upper bound of bucket `i` in nanoseconds (`u64::MAX` for the last).
pub fn bucket_bound_nanos(i: usize) -> u64 {
    if i + 1 >= BUCKETS {
        u64::MAX
    } else {
        1_000u64 << i
    }
}

/// Bucket `i` covers `(bound(i-1), bound(i)]`, matching Prometheus `le`.
#[inline]
fn bucket_index(nanos: u64) -> usize {
    let q = nanos.saturating_sub(1) / 1_000;
    ((64 - q.leading_zeros()) as usize).min(BUCKETS - 1)
}

/// One stripe of histogram state, padded to its own cache-line start.
#[repr(align(64))]
#[derive(Default)]
struct HistStripe {
    buckets: [AtomicU64; BUCKETS],
    sum_nanos: AtomicU64,
    count: AtomicU64,
}

/// A fixed-bucket log-scale duration histogram (nanosecond samples,
/// exported in seconds).
#[derive(Default)]
pub struct Histogram {
    stripes: [HistStripe; STRIPES],
}

impl Histogram {
    /// Records one duration sample (relaxed, striped).
    #[inline]
    pub fn observe_nanos(&self, nanos: u64) {
        let s = &self.stripes[stripe()];
        s.buckets[bucket_index(nanos)].fetch_add(1, Ordering::Relaxed);
        s.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
        s.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.stripes.iter().map(|s| s.count.load(Ordering::Relaxed)).sum()
    }

    /// Sum of all samples in nanoseconds.
    pub fn sum_nanos(&self) -> u64 {
        self.stripes.iter().map(|s| s.sum_nanos.load(Ordering::Relaxed)).sum()
    }

    /// Per-bucket counts merged across stripes (not cumulative).
    pub(crate) fn merged_buckets(&self) -> [u64; BUCKETS] {
        let mut out = [0u64; BUCKETS];
        for s in &self.stripes {
            for (o, b) in out.iter_mut().zip(s.buckets.iter()) {
                *o += b.load(Ordering::Relaxed);
            }
        }
        out
    }

    /// Upper-bound estimate of the `q`-quantile in nanoseconds (nearest
    /// rank over the merged buckets), or `None` when empty. Resolution is
    /// one log₂ bucket — good enough for p50/p99 dashboards, free of
    /// per-sample storage.
    pub fn quantile_nanos(&self, q: f64) -> Option<u64> {
        let buckets = self.merged_buckets();
        let total: u64 = buckets.iter().sum();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut cum = 0u64;
        for (i, &c) in buckets.iter().enumerate() {
            cum += c;
            if cum >= rank {
                return Some(bucket_bound_nanos(i));
            }
        }
        Some(bucket_bound_nanos(BUCKETS - 1))
    }
}

/// The value of one metric at scrape time.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Monotonic counter total.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram: `(upper_bound_nanos, cumulative_count)` per bucket, plus
    /// sum and count. The last bound is `u64::MAX` (+Inf).
    Histogram {
        /// Cumulative bucket counts with their nanosecond upper bounds.
        buckets: Vec<(u64, u64)>,
        /// Sum of samples in nanoseconds.
        sum_nanos: u64,
        /// Number of samples.
        count: u64,
    },
}

/// One scraped metric instance: family name, help, label pairs, value.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricSnapshot {
    /// Family name (e.g. `aeetes_candidates_total`).
    pub name: String,
    /// Family help text.
    pub help: String,
    /// Label pairs, e.g. `[("shard", "3")]`.
    pub labels: Vec<(String, String)>,
    /// The merged value.
    pub value: MetricValue,
}

enum Handle {
    Counter(Arc<Counter>),
    Gauge(Arc<Gauge>),
    Histogram(Arc<Histogram>),
}

struct Entry {
    name: String,
    help: String,
    labels: Vec<(String, String)>,
    handle: Handle,
}

/// The metric registry: owns every registered instance, hands out `Arc`
/// handles, and renders merged snapshots on scrape.
#[derive(Default)]
pub struct MetricRegistry {
    entries: Mutex<Vec<Entry>>,
}

impl MetricRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    fn get_or_insert(&self, name: &str, help: &str, labels: &[(&str, &str)], make: impl FnOnce() -> Handle) -> Handle {
        let mut entries = self.entries.lock().expect("metric registry poisoned");
        if let Some(e) = entries
            .iter()
            .find(|e| e.name == name && e.labels.len() == labels.len() && e.labels.iter().zip(labels).all(|(a, b)| a.0 == b.0 && a.1 == b.1))
        {
            return match &e.handle {
                Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
                Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
                Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
            };
        }
        let handle = make();
        let cloned = match &handle {
            Handle::Counter(c) => Handle::Counter(Arc::clone(c)),
            Handle::Gauge(g) => Handle::Gauge(Arc::clone(g)),
            Handle::Histogram(h) => Handle::Histogram(Arc::clone(h)),
        };
        entries.push(Entry {
            name: name.to_string(),
            help: help.to_string(),
            labels: labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            handle,
        });
        cloned
    }

    /// Registers (or re-acquires) an unlabeled counter.
    pub fn counter(&self, name: &str, help: &str) -> Arc<Counter> {
        self.counter_with(name, help, &[])
    }

    /// Registers (or re-acquires) a labeled counter instance.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Counter> {
        match self.get_or_insert(name, help, labels, || Handle::Counter(Arc::new(Counter::default()))) {
            Handle::Counter(c) => c,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or re-acquires) an unlabeled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Arc<Gauge> {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or re-acquires) a labeled gauge instance.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Gauge> {
        match self.get_or_insert(name, help, labels, || Handle::Gauge(Arc::new(Gauge::default()))) {
            Handle::Gauge(g) => g,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Registers (or re-acquires) an unlabeled histogram.
    pub fn histogram(&self, name: &str, help: &str) -> Arc<Histogram> {
        self.histogram_with(name, help, &[])
    }

    /// Registers (or re-acquires) a labeled histogram instance.
    pub fn histogram_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Arc<Histogram> {
        match self.get_or_insert(name, help, labels, || Handle::Histogram(Arc::new(Histogram::default()))) {
            Handle::Histogram(h) => h,
            _ => panic!("metric {name} already registered with a different type"),
        }
    }

    /// Point-in-time snapshot of every registered instance, in registration
    /// order (instances of one family stay adjacent for exporters).
    pub fn snapshot(&self) -> Vec<MetricSnapshot> {
        let entries = self.entries.lock().expect("metric registry poisoned");
        entries
            .iter()
            .map(|e| {
                let value = match &e.handle {
                    Handle::Counter(c) => MetricValue::Counter(c.value()),
                    Handle::Gauge(g) => MetricValue::Gauge(g.value()),
                    Handle::Histogram(h) => {
                        let merged = h.merged_buckets();
                        let mut cum = 0u64;
                        let buckets = merged
                            .iter()
                            .enumerate()
                            .map(|(i, &c)| {
                                cum += c;
                                (bucket_bound_nanos(i), cum)
                            })
                            .collect();
                        MetricValue::Histogram { buckets, sum_nanos: h.sum_nanos(), count: h.count() }
                    }
                };
                MetricSnapshot { name: e.name.clone(), help: e.help.clone(), labels: e.labels.clone(), value }
            })
            .collect()
    }

    /// Number of distinct family names registered.
    pub fn family_count(&self) -> usize {
        let entries = self.entries.lock().expect("metric registry poisoned");
        let mut names: Vec<&str> = entries.iter().map(|e| e.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        names.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_sums_across_threads() {
        let reg = MetricRegistry::new();
        let c = reg.counter("t_total", "help");
        std::thread::scope(|s| {
            for _ in 0..8 {
                let c = Arc::clone(&c);
                s.spawn(move || {
                    for _ in 0..1000 {
                        c.inc(1);
                    }
                });
            }
        });
        assert_eq!(c.value(), 8000);
    }

    #[test]
    fn gauge_set_and_add() {
        let g = Gauge::default();
        g.set(5);
        g.add(-2);
        assert_eq!(g.value(), 3);
    }

    #[test]
    fn bucket_index_is_monotonic_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(999), 0); // < 1µs
        assert_eq!(bucket_index(1_000), 0, "le bounds are inclusive");
        assert_eq!(bucket_index(1_001), 1);
        assert_eq!(bucket_index(2_000), 1);
        assert_eq!(bucket_index(2_001), 2);
        assert_eq!(bucket_index(u64::MAX), BUCKETS - 1);
        for n in [1u64, 500, 1_000, 3_000, 1_000_000, 1_000_000_000] {
            let i = bucket_index(n);
            assert!(n <= bucket_bound_nanos(i), "{n}ns must fall under its bucket bound");
            if i > 0 {
                assert!(n > bucket_bound_nanos(i - 1), "{n}ns must be above the previous bound");
            }
        }
    }

    #[test]
    fn histogram_quantiles_bracket_samples() {
        let h = Histogram::default();
        assert_eq!(h.quantile_nanos(0.5), None);
        for micros in [10u64, 20, 30, 40, 1000] {
            h.observe_nanos(micros * 1_000);
        }
        assert_eq!(h.count(), 5);
        let p50 = h.quantile_nanos(0.5).unwrap();
        assert!((20_000..=64_000).contains(&p50), "p50 bucket bound {p50}ns should bracket the 30µs median");
        let p99 = h.quantile_nanos(0.99).unwrap();
        assert!(p99 >= 1_000_000, "p99 must land in the 1ms sample's bucket, got {p99}ns");
    }

    #[test]
    fn registry_snapshot_merges_and_orders() {
        let reg = MetricRegistry::new();
        let c = reg.counter_with("s_total", "h", &[("shard", "0")]);
        let c1 = reg.counter_with("s_total", "h", &[("shard", "1")]);
        let g = reg.gauge("g", "h");
        let h = reg.histogram("lat", "h");
        c.inc(2);
        c1.inc(3);
        g.set(7);
        h.observe_nanos(5_000);
        let snap = reg.snapshot();
        assert_eq!(snap.len(), 4);
        assert_eq!(snap[0].value, MetricValue::Counter(2));
        assert_eq!(snap[1].labels, vec![("shard".to_string(), "1".to_string())]);
        assert_eq!(reg.family_count(), 3);
        match &snap[3].value {
            MetricValue::Histogram { buckets, count, .. } => {
                assert_eq!(*count, 1);
                assert_eq!(buckets.last().unwrap().1, 1, "+Inf bucket is cumulative total");
            }
            v => panic!("expected histogram, got {v:?}"),
        }
    }

    #[test]
    fn same_name_different_labels_are_distinct_instances() {
        let reg = MetricRegistry::new();
        let a = reg.counter_with("x_total", "h", &[("shard", "0")]);
        let b = reg.counter_with("x_total", "h", &[("shard", "1")]);
        a.inc(1);
        assert_eq!(b.value(), 0);
        let again = reg.counter_with("x_total", "h", &[("shard", "0")]);
        again.inc(1);
        assert_eq!(a.value(), 2, "same (name, labels) returns the same instance");
    }
}
