//! The extraction executor's metric bundle.
//!
//! The worker pool (`aeetes-pool`) records its scheduling activity here:
//! how deep the task queues run, how often idle workers steal from a
//! sibling's deque, and how long each worker spends busy per task. The
//! sharded engine's routing decision — run a request shard-sequentially or
//! fan it out across the pool — is counted in the same family so a scrape
//! can correlate queue pressure with routing behaviour. Like
//! [`crate::ExtractMetrics`] this is a bundle of pre-registered `Arc`
//! handles: recording touches only striped atomics, never the registry.

use crate::{Counter, Gauge, Histogram, MetricRegistry};
use std::sync::Arc;

/// Executor metrics, one bundle per process-wide pool.
pub struct PoolMetrics {
    /// `aeetes_pool_workers`: persistent worker threads in the pool.
    pub workers: Arc<Gauge>,
    /// `aeetes_pool_queue_depth`: tasks currently queued (injector plus
    /// every worker deque), excluding tasks already executing.
    pub queue_depth: Arc<Gauge>,
    /// `aeetes_pool_steals_total`: tasks an idle worker took from a
    /// sibling's deque instead of its own or the injector.
    pub steals: Arc<Counter>,
    /// `aeetes_pool_tasks_total`: tasks executed to completion by workers.
    pub tasks: Arc<Counter>,
    /// `aeetes_pool_worker_busy_nanos{worker="i"}`: per-worker histogram of
    /// time spent executing one task.
    pub busy_nanos: Vec<Arc<Histogram>>,
    /// `aeetes_pool_route_sequential_total`: sharded extractions answered
    /// on the calling thread because the estimated cost (document tokens ×
    /// live shards) fell below the fan-out threshold.
    pub route_sequential: Arc<Counter>,
    /// `aeetes_pool_route_fanout_total`: sharded extractions fanned out
    /// across the pool.
    pub route_fanout: Arc<Counter>,
}

impl PoolMetrics {
    /// Registers (or re-acquires) the pool families in `registry` for a
    /// pool of `workers` threads.
    pub fn register(registry: &Arc<MetricRegistry>, workers: usize) -> Self {
        PoolMetrics {
            workers: registry.gauge("aeetes_pool_workers", "Persistent worker threads in the extraction pool"),
            queue_depth: registry.gauge("aeetes_pool_queue_depth", "Tasks queued in the pool (injector + worker deques)"),
            steals: registry.counter("aeetes_pool_steals_total", "Tasks stolen from a sibling worker's deque"),
            tasks: registry.counter("aeetes_pool_tasks_total", "Tasks executed by pool workers"),
            busy_nanos: (0..workers)
                .map(|i| {
                    registry.histogram_with("aeetes_pool_worker_busy_nanos", "Per-task busy time of one pool worker", &[("worker", &i.to_string())])
                })
                .collect(),
            route_sequential: registry
                .counter("aeetes_pool_route_sequential_total", "Sharded extractions routed shard-sequentially (cost below the fan-out threshold)"),
            route_fanout: registry.counter("aeetes_pool_route_fanout_total", "Sharded extractions fanned out across the pool"),
        }
    }
}
