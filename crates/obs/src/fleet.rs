//! The coordinator's fleet metric bundle.
//!
//! The cluster coordinator (`crates/cluster`) records its routing and
//! failure-handling decisions here: how many requests were routed, retried
//! after a retryable failure, failed over to another replica, and how many
//! replicas were resynced after crashing mid-generation-swap. Per-replica
//! families are labeled by replica id so a scrape shows which member of
//! the fleet is absorbing retries.
//!
//! Like [`crate::ExtractMetrics`] this is a bundle of pre-registered `Arc`
//! handles: recording touches only striped atomics, never the registry.

use crate::{Counter, Gauge, MetricRegistry};
use std::sync::Arc;

/// Fleet-wide (unlabeled) coordinator metrics. Per-replica views are
/// acquired per replica via [`FleetMetrics::replica`].
pub struct FleetMetrics {
    /// `aeetes_fleet_routed_total`: extract requests dispatched to a replica
    /// (counted per attempt, so retries route again).
    pub routed: Arc<Counter>,
    /// `aeetes_fleet_retried_total`: attempts re-dispatched after a
    /// retryable failure (shedding/timeout/connection reset).
    pub retried: Arc<Counter>,
    /// `aeetes_fleet_failed_over_total`: retries that moved to a *different*
    /// replica (a subset of `retried`).
    pub failed_over: Arc<Counter>,
    /// `aeetes_fleet_resyncs_total`: replicas brought back to the fleet
    /// generation after a crash or a missed swap.
    pub resyncs: Arc<Counter>,
    /// `aeetes_fleet_answered_total{outcome=...}`: admitted client requests
    /// answered, by final outcome. `served + shed + failed` reconciles with
    /// admissions — the exactly-once ledger.
    pub answered_served: Arc<Counter>,
    pub answered_shed: Arc<Counter>,
    pub answered_failed: Arc<Counter>,
    /// `aeetes_fleet_duplicates_total`: replica responses discarded because
    /// the request was already answered (late arrival after a failover won
    /// the race). Nonzero is fine; each one is a duplicate the pending
    /// table suppressed.
    pub duplicates: Arc<Counter>,
    /// `aeetes_fleet_replicas_up`: replicas currently routable.
    pub replicas_up: Arc<Gauge>,
    /// `aeetes_fleet_pending`: admitted requests not yet answered.
    pub pending: Arc<Gauge>,
    /// `aeetes_fleet_generation_id`: the generation the fleet has converged
    /// on (the coordinator's view).
    pub generation: Arc<Gauge>,
    /// `aeetes_fleet_reloads_total`: two-phase fleet reloads completed.
    pub reloads: Arc<Counter>,
    registry: Arc<MetricRegistry>,
}

/// Per-replica labeled handles, acquired once per replica at spawn/attach
/// time so the routing path does no registry lookups.
pub struct ReplicaMetrics {
    /// `aeetes_fleet_replica_routed_total{replica=...}`.
    pub routed: Arc<Counter>,
    /// `aeetes_fleet_replica_failures_total{replica=...}`: attempts this
    /// replica failed (error response with a retryable code, reset, or
    /// probe timeout).
    pub failures: Arc<Counter>,
    /// `aeetes_fleet_replica_restarts_total{replica=...}`: times the
    /// supervisor respawned this replica slot.
    pub restarts: Arc<Counter>,
    /// `aeetes_fleet_replica_up{replica=...}`: 1 when routable.
    pub up: Arc<Gauge>,
}

impl FleetMetrics {
    /// Registers (or re-acquires) the coordinator families in `registry`.
    pub fn register(registry: &Arc<MetricRegistry>) -> Self {
        let outcome = |o| registry.counter_with("aeetes_fleet_answered_total", "Admitted client requests answered, by outcome", &[("outcome", o)]);
        FleetMetrics {
            routed: registry.counter("aeetes_fleet_routed_total", "Extract attempts dispatched to a replica"),
            retried: registry.counter("aeetes_fleet_retried_total", "Attempts re-dispatched after a retryable failure"),
            failed_over: registry.counter("aeetes_fleet_failed_over_total", "Retries that moved to a different replica"),
            resyncs: registry.counter("aeetes_fleet_resyncs_total", "Replicas resynced to the fleet generation after rejoin"),
            answered_served: outcome("served"),
            answered_shed: outcome("shed"),
            answered_failed: outcome("failed"),
            duplicates: registry.counter("aeetes_fleet_duplicates_total", "Late replica responses discarded as already answered"),
            replicas_up: registry.gauge("aeetes_fleet_replicas_up", "Replicas currently routable"),
            pending: registry.gauge("aeetes_fleet_pending", "Admitted requests awaiting an answer"),
            generation: registry.gauge("aeetes_fleet_generation_id", "Generation the fleet has converged on"),
            reloads: registry.counter("aeetes_fleet_reloads_total", "Two-phase fleet reloads completed"),
            registry: Arc::clone(registry),
        }
    }

    /// Acquires the labeled per-replica handles for `replica_id`.
    pub fn replica(&self, replica_id: usize) -> ReplicaMetrics {
        let id = replica_id.to_string();
        let labels = [("replica", id.as_str())];
        ReplicaMetrics {
            routed: self
                .registry
                .counter_with("aeetes_fleet_replica_routed_total", "Extract attempts dispatched, per replica", &labels),
            failures: self.registry.counter_with(
                "aeetes_fleet_replica_failures_total",
                "Failed attempts (retryable error, reset, probe timeout), per replica",
                &labels,
            ),
            restarts: self
                .registry
                .counter_with("aeetes_fleet_replica_restarts_total", "Supervisor respawns of this replica slot", &labels),
            up: self.registry.gauge_with("aeetes_fleet_replica_up", "1 when the replica is routable", &labels),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fleet_register_is_idempotent_and_replica_handles_are_labeled() {
        let reg = Arc::new(MetricRegistry::new());
        let a = FleetMetrics::register(&reg);
        let b = FleetMetrics::register(&reg);
        a.routed.inc(2);
        b.routed.inc(3);
        assert_eq!(a.routed.value(), 5, "same family must resolve to the same instance");

        let r0 = a.replica(0);
        let r1 = a.replica(1);
        r0.failures.inc(1);
        assert_eq!(r0.failures.value(), 1);
        assert_eq!(r1.failures.value(), 0, "labels must separate replica series");
        let r0_again = b.replica(0);
        assert_eq!(r0_again.failures.value(), 1, "re-acquiring the same label must share the series");
    }

    #[test]
    fn answered_outcomes_are_distinct_series() {
        let reg = Arc::new(MetricRegistry::new());
        let m = FleetMetrics::register(&reg);
        m.answered_served.inc(4);
        m.answered_shed.inc(2);
        m.answered_failed.inc(1);
        assert_eq!(m.answered_served.value(), 4);
        assert_eq!(m.answered_shed.value(), 2);
        assert_eq!(m.answered_failed.value(), 1);
    }
}
