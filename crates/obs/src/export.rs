//! Renderers over a registry snapshot: Prometheus text exposition format
//! and a plain JSON document. Both are hand-rolled — the snapshot model is
//! small and this crate stays dependency-free.

use crate::registry::{MetricSnapshot, MetricValue};

const NANOS_PER_SEC: f64 = 1e9;

fn fmt_seconds(nanos: u64) -> String {
    format!("{}", nanos as f64 / NANOS_PER_SEC)
}

fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut parts: Vec<String> = labels.iter().map(|(k, v)| format!("{k}=\"{}\"", escape_label(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

fn escape_label(v: &str) -> String {
    v.replace('\\', "\\\\").replace('"', "\\\"").replace('\n', "\\n")
}

fn escape_json(v: &str) -> String {
    let mut out = String::with_capacity(v.len());
    for c in v.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders a snapshot in the Prometheus text exposition format (0.0.4).
/// Histograms are exported in seconds; `# HELP`/`# TYPE` headers are
/// emitted once per family, on its first instance.
pub fn prometheus_text(snapshot: &[MetricSnapshot]) -> String {
    let mut out = String::new();
    let mut seen: Vec<&str> = Vec::new();
    for m in snapshot {
        if !seen.contains(&m.name.as_str()) {
            seen.push(&m.name);
            let kind = match m.value {
                MetricValue::Counter(_) => "counter",
                MetricValue::Gauge(_) => "gauge",
                MetricValue::Histogram { .. } => "histogram",
            };
            out.push_str(&format!("# HELP {} {}\n# TYPE {} {}\n", m.name, m.help, m.name, kind));
        }
        match &m.value {
            MetricValue::Counter(v) => {
                out.push_str(&format!("{}{} {}\n", m.name, label_block(&m.labels, None), v));
            }
            MetricValue::Gauge(v) => {
                out.push_str(&format!("{}{} {}\n", m.name, label_block(&m.labels, None), v));
            }
            MetricValue::Histogram { buckets, sum_nanos, count } => {
                for &(bound, cum) in buckets {
                    let le = if bound == u64::MAX { "+Inf".to_string() } else { fmt_seconds(bound) };
                    out.push_str(&format!("{}_bucket{} {}\n", m.name, label_block(&m.labels, Some(("le", &le))), cum));
                }
                out.push_str(&format!("{}_sum{} {}\n", m.name, label_block(&m.labels, None), fmt_seconds(*sum_nanos)));
                out.push_str(&format!("{}_count{} {}\n", m.name, label_block(&m.labels, None), count));
            }
        }
    }
    out
}

/// Renders a snapshot as a JSON array of metric objects. Histogram buckets
/// are `[le_seconds, cumulative_count]` pairs with `null` for `+Inf`.
pub fn json(snapshot: &[MetricSnapshot]) -> String {
    let mut items = Vec::with_capacity(snapshot.len());
    for m in snapshot {
        let labels = m
            .labels
            .iter()
            .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
            .collect::<Vec<_>>()
            .join(",");
        let value = match &m.value {
            MetricValue::Counter(v) => format!("\"type\":\"counter\",\"value\":{v}"),
            MetricValue::Gauge(v) => format!("\"type\":\"gauge\",\"value\":{v}"),
            MetricValue::Histogram { buckets, sum_nanos, count } => {
                let bs = buckets
                    .iter()
                    .map(|&(bound, cum)| {
                        if bound == u64::MAX {
                            format!("[null,{cum}]")
                        } else {
                            format!("[{},{cum}]", fmt_seconds(bound))
                        }
                    })
                    .collect::<Vec<_>>()
                    .join(",");
                format!("\"type\":\"histogram\",\"sum_seconds\":{},\"count\":{count},\"buckets\":[{bs}]", fmt_seconds(*sum_nanos))
            }
        };
        items.push(format!(
            "{{\"name\":\"{}\",\"help\":\"{}\",\"labels\":{{{labels}}},{value}}}",
            escape_json(&m.name),
            escape_json(&m.help)
        ));
    }
    format!("[{}]", items.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::MetricRegistry;

    fn sample_registry() -> MetricRegistry {
        let reg = MetricRegistry::new();
        reg.counter("aeetes_candidates_total", "Candidates generated").inc(42);
        reg.counter_with("aeetes_shard_served_total", "Per-shard serves", &[("shard", "0")]).inc(7);
        reg.counter_with("aeetes_shard_served_total", "Per-shard serves", &[("shard", "1")]).inc(9);
        reg.gauge("aeetes_queue_depth", "Queued requests").set(3);
        reg.histogram("aeetes_request_duration_seconds", "Request latency").observe_nanos(1_500_000);
        reg
    }

    #[test]
    fn prometheus_text_shape() {
        let text = prometheus_text(&sample_registry().snapshot());
        assert!(text.contains("# TYPE aeetes_candidates_total counter"));
        assert!(text.contains("aeetes_candidates_total 42"));
        assert!(text.contains("aeetes_shard_served_total{shard=\"0\"} 7"));
        assert!(text.contains("aeetes_shard_served_total{shard=\"1\"} 9"));
        assert_eq!(text.matches("# TYPE aeetes_shard_served_total").count(), 1, "one header per family");
        assert!(text.contains("# TYPE aeetes_queue_depth gauge"));
        assert!(text.contains("aeetes_request_duration_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("aeetes_request_duration_seconds_count 1"));
        assert!(text.contains("aeetes_request_duration_seconds_sum 0.0015"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_bounded_in_seconds() {
        let reg = MetricRegistry::new();
        let h = reg.histogram("h", "help");
        h.observe_nanos(500); // sub-µs → first bucket
        h.observe_nanos(3_000_000_000); // 3s
        let text = prometheus_text(&reg.snapshot());
        assert!(text.contains("h_bucket{le=\"0.000001\"} 1"), "first bucket holds the sub-µs sample:\n{text}");
        let inf_line = text.lines().find(|l| l.contains("+Inf")).unwrap();
        assert!(inf_line.ends_with(" 2"), "+Inf bucket is the total: {inf_line}");
    }

    #[test]
    fn json_is_parseable_shape() {
        let out = json(&sample_registry().snapshot());
        assert!(out.starts_with('[') && out.ends_with(']'));
        assert!(out.contains("\"name\":\"aeetes_candidates_total\""));
        assert!(out.contains("\"type\":\"counter\",\"value\":42"));
        assert!(out.contains("\"labels\":{\"shard\":\"0\"}"));
        assert!(out.contains("\"type\":\"histogram\""));
        assert!(out.contains("[null,1]"), "+Inf bucket is null-bounded: {out}");
    }

    #[test]
    fn label_escaping() {
        assert_eq!(escape_label("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_json("tab\there"), "tab\\there");
    }
}
