//! The durability layer's WAL metric bundle.
//!
//! Both a serving node (`aeetes serve --wal`) and the fleet coordinator
//! (`aeetes fleet --wal`) record their write-ahead-log activity here:
//! appends and the fsync latency paid per commit, how many records a
//! restart replayed (and how long recovery took), and how often the log
//! was compacted into a fresh snapshot. Like [`crate::ExtractMetrics`]
//! this is a bundle of pre-registered `Arc` handles: recording touches
//! only striped atomics, never the registry.

use crate::{Counter, Gauge, Histogram, MetricRegistry};
use std::sync::Arc;

/// WAL activity metrics, one family set shared by serve and fleet.
pub struct WalMetrics {
    /// `aeetes_wal_appends_total`: delta records appended (before ack).
    pub appends: Arc<Counter>,
    /// `aeetes_wal_append_bytes_total`: payload bytes appended.
    pub append_bytes: Arc<Counter>,
    /// `aeetes_wal_fsync_nanos`: latency of each commit fsync.
    pub fsync_nanos: Arc<Histogram>,
    /// `aeetes_wal_append_failures_total`: appends or syncs that failed;
    /// the delta was NOT acknowledged.
    pub append_failures: Arc<Counter>,
    /// `aeetes_wal_replayed_records_total`: records replayed over the
    /// snapshot during startup recovery.
    pub replayed_records: Arc<Counter>,
    /// `aeetes_wal_truncated_bytes_total`: torn-tail bytes discarded
    /// during recovery (all unacknowledged by construction).
    pub truncated_bytes: Arc<Counter>,
    /// `aeetes_wal_recovery_nanos`: wall time of the last WAL-over-snapshot
    /// recovery (open + replay + rebuild).
    pub recovery_nanos: Arc<Gauge>,
    /// `aeetes_wal_compactions_total`: times the log was folded into a
    /// fresh AEET snapshot and reset.
    pub compactions: Arc<Counter>,
    /// `aeetes_wal_records`: committed records currently in the log.
    pub records: Arc<Gauge>,
    /// `aeetes_wal_bytes`: committed bytes currently in the log.
    pub bytes: Arc<Gauge>,
}

impl WalMetrics {
    /// Registers (or re-acquires) the WAL families in `registry`.
    pub fn register(registry: &Arc<MetricRegistry>) -> Self {
        WalMetrics {
            appends: registry.counter("aeetes_wal_appends_total", "Delta records appended to the WAL"),
            append_bytes: registry.counter("aeetes_wal_append_bytes_total", "Payload bytes appended to the WAL"),
            fsync_nanos: registry.histogram("aeetes_wal_fsync_nanos", "Latency of each WAL commit fsync"),
            append_failures: registry.counter("aeetes_wal_append_failures_total", "WAL appends/syncs that failed (delta not acked)"),
            replayed_records: registry.counter("aeetes_wal_replayed_records_total", "Records replayed over the snapshot at startup"),
            truncated_bytes: registry.counter("aeetes_wal_truncated_bytes_total", "Torn-tail bytes discarded during recovery"),
            recovery_nanos: registry.gauge("aeetes_wal_recovery_nanos", "Wall time of the last WAL recovery"),
            compactions: registry.counter("aeetes_wal_compactions_total", "WAL compactions into a fresh snapshot"),
            records: registry.gauge("aeetes_wal_records", "Committed records currently in the WAL"),
            bytes: registry.gauge("aeetes_wal_bytes", "Committed bytes currently in the WAL"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_register_is_idempotent() {
        let reg = Arc::new(MetricRegistry::new());
        let a = WalMetrics::register(&reg);
        let b = WalMetrics::register(&reg);
        a.appends.inc(2);
        b.appends.inc(3);
        assert_eq!(a.appends.value(), 5, "same family must resolve to the same instance");
        a.fsync_nanos.observe_nanos(1_000);
        a.records.set(4);
        assert_eq!(b.records.value(), 4);
        let text = crate::prometheus_text(&reg.snapshot());
        assert!(text.contains("aeetes_wal_appends_total"), "scrape must carry the wal family:\n{text}");
    }
}
