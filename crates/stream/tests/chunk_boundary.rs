//! The streaming oracle: for *any* way of splitting a byte stream into
//! chunks — mid-token, mid-UTF-8 sequence, empty chunks, one byte at a
//! time — the concatenation of [`StreamExtractor::feed`] outputs plus the
//! [`StreamExtractor::finish`] flush is **bit-identical** to extracting
//! over the whole document at once, for all four strategies. The oracle
//! for arbitrary (possibly invalid) bytes is extraction over
//! `String::from_utf8_lossy` of the whole input, which is what the
//! incremental decoder promises to reproduce.

use aeetes_core::{Aeetes, AeetesConfig, Match, Strategy};
use aeetes_rules::RuleSet;
use aeetes_stream::{StreamExtractor, StreamMatch};
use aeetes_text::{Dictionary, Document, Interner, Tokenizer};
use proptest::prelude::*;
use std::sync::OnceLock;

/// Words the generator draws from: dictionary hits, rule right-hand sides,
/// noise, and multi-byte UTF-8 words so byte-level splits land inside
/// characters.
const VOCAB: [&str; 12] = [
    "purdue",
    "university",
    "usa",
    "uq",
    "au",
    "united",
    "states",
    "of",
    "queensland",
    "café",
    "zürich",
    "noise",
];

struct Fixture {
    engines: Vec<(Strategy, Aeetes)>,
    interner: Interner,
    tokenizer: Tokenizer,
}

fn fixture() -> &'static Fixture {
    static FIX: OnceLock<Fixture> = OnceLock::new();
    FIX.get_or_init(|| {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        dict.push("uq au", &tok, &mut int);
        dict.push("university of queensland", &tok, &mut int);
        dict.push("café zürich", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
        rules.push_str("usa", "united states", &tok, &mut int).unwrap();
        let engines = Strategy::ALL
            .iter()
            .map(|&strategy| {
                let config = AeetesConfig { strategy, ..AeetesConfig::default() };
                (strategy, Aeetes::build(dict.clone(), &rules, &int, config))
            })
            .collect();
        Fixture { engines, interner: int, tokenizer: tok }
    })
}

/// Splits `bytes` at the (sorted, deduped) cut offsets and runs the
/// stream; returns the concatenated feed + finish outputs.
fn run_stream(engine: &Aeetes, tok: &Tokenizer, int: &mut Interner, bytes: &[u8], cuts: &[usize], tau: f64) -> Vec<StreamMatch> {
    let mut s = StreamExtractor::new(engine, tau);
    let mut got = Vec::new();
    let mut prev = 0;
    for &c in cuts {
        let c = c.min(bytes.len());
        got.extend_from_slice(s.feed(engine, tok, int, &bytes[prev..c]));
        prev = c;
    }
    got.extend_from_slice(s.feed(engine, tok, int, &bytes[prev..]));
    got.extend_from_slice(s.finish(engine, tok, int));
    got
}

fn assert_bit_identical(stream: &[StreamMatch], doc_matches: &[Match], strategy: Strategy) -> Result<(), TestCaseError> {
    prop_assert_eq!(stream.len(), doc_matches.len(), "{}: {:?} vs {:?}", strategy, stream, doc_matches);
    for (s, d) in stream.iter().zip(doc_matches) {
        prop_assert_eq!(s.start, d.span.start as u64, "{}", strategy);
        prop_assert_eq!(s.len, d.span.len, "{}", strategy);
        prop_assert_eq!(s.entity, d.entity, "{}", strategy);
        prop_assert_eq!(s.score, d.score, "{}", strategy);
        prop_assert_eq!(s.best_variant, d.best_variant, "{}", strategy);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Valid UTF-8 text, arbitrary byte-offset chunk splits (including
    /// mid-character and mid-token), all four strategies.
    #[test]
    fn streamed_equals_whole_document(
        words in proptest::collection::vec(0usize..VOCAB.len(), 0..40),
        cuts in proptest::collection::vec(0usize..400, 0..12),
        tau_pct in 50u32..=100,
    ) {
        let fix = fixture();
        let text: String = words.iter().map(|&w| VOCAB[w]).collect::<Vec<_>>().join(" ");
        let tau = tau_pct as f64 / 100.0;
        let mut cuts = cuts;
        cuts.sort_unstable();
        for (strategy, engine) in &fix.engines {
            let mut whole_int = fix.interner.clone();
            let doc = Document::parse(&text, &fix.tokenizer, &mut whole_int);
            let expect = engine.extract(&doc, tau);
            let mut stream_int = fix.interner.clone();
            let got = run_stream(engine, &fix.tokenizer, &mut stream_int, text.as_bytes(), &cuts, tau);
            assert_bit_identical(&got, &expect, *strategy)?;
            // The two paths must also intern identically: same tokens, in
            // the same order, from the same starting interner.
            prop_assert_eq!(stream_int.len(), whole_int.len());
        }
    }

    /// Arbitrary bytes — including invalid UTF-8 — chunked arbitrarily.
    /// Oracle: lossy-decode the whole input, extract over that.
    #[test]
    fn arbitrary_bytes_match_lossy_oracle(
        bytes in proptest::collection::vec(0u8..=255, 0..300),
        cuts in proptest::collection::vec(0usize..300, 0..10),
        words in proptest::collection::vec(0usize..VOCAB.len(), 0..10),
    ) {
        let fix = fixture();
        // Mix generated words into the raw bytes so some cases still match.
        let mut bytes = bytes;
        for &w in &words {
            bytes.extend_from_slice(b" ");
            bytes.extend_from_slice(VOCAB[w].as_bytes());
        }
        let mut cuts = cuts;
        cuts.sort_unstable();
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let (strategy, engine) = &fix.engines[0];
        let mut whole_int = fix.interner.clone();
        let doc = Document::parse(&text, &fix.tokenizer, &mut whole_int);
        let expect = engine.extract(&doc, 0.7);
        let mut stream_int = fix.interner.clone();
        let got = run_stream(engine, &fix.tokenizer, &mut stream_int, &bytes, &cuts, 0.7);
        assert_bit_identical(&got, &expect, *strategy)?;
    }

    /// Byte spans reported by the stream slice the original text back out
    /// whenever the input is valid UTF-8.
    #[test]
    fn byte_spans_slice_source_text(
        words in proptest::collection::vec(0usize..VOCAB.len(), 0..30),
        cuts in proptest::collection::vec(0usize..300, 0..8),
    ) {
        let fix = fixture();
        let text: String = words.iter().map(|&w| VOCAB[w]).collect::<Vec<_>>().join(" ");
        let mut cuts = cuts;
        cuts.sort_unstable();
        let (_, engine) = &fix.engines[0];
        let mut int = fix.interner.clone();
        let got = run_stream(engine, &fix.tokenizer, &mut int, text.as_bytes(), &cuts, 0.7);
        for m in &got {
            let slice = &text[m.byte_start as usize..m.byte_end as usize];
            // The slice must re-tokenize to exactly the matched span length.
            let n = fix.tokenizer.tokenize(slice, &mut int).len();
            prop_assert_eq!(n as u32, m.len, "span {:?} -> {:?}", m, slice);
        }
    }
}
