//! Proves the steady-state streaming feed path is allocation-free, the
//! same way `aeetes-core/tests/zero_alloc.rs` proves it for one-shot
//! extraction: a counting `#[global_allocator]`, warm-up rounds to reach
//! high-water buffer capacity, then steady rounds asserting the counter
//! does not move. One test per binary so nothing else perturbs the
//! counter.
//!
//! Input is lowercase ASCII: the tokenizer's ASCII fast path interns raw
//! slices without a lowering buffer, so a warmed [`StreamExtractor`] fed
//! already-seen tokens performs zero heap allocations per chunk — decode,
//! tokenize, extract, emit and drain included.

use aeetes_core::{Aeetes, AeetesConfig, Strategy};
use aeetes_rules::RuleSet;
use aeetes_stream::StreamExtractor;
use aeetes_text::{Dictionary, Interner, Tokenizer};
use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

static ALLOCS: AtomicU64 = AtomicU64::new(0);

struct CountingAlloc;

// SAFETY: delegates every operation to `System` unchanged; the counter is
// a side effect only.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        unsafe { System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.realloc(ptr, layout, new_size) }
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        unsafe { System.alloc_zeroed(layout) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

#[test]
fn steady_state_streaming_allocates_nothing() {
    for strategy in [Strategy::Dynamic, Strategy::Lazy] {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        dict.push("uq au", &tok, &mut int);
        dict.push("university of wisconsin madison", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
        rules.push_str("usa", "united states", &tok, &mut int).unwrap();
        let config = AeetesConfig { strategy, ..AeetesConfig::default() };
        let engine = Aeetes::build(dict, &rules, &int, config);
        // Chunks split mid-token and mid-document on purpose; every token
        // is pre-interned lowercase ASCII so steady-state feeding takes
        // the allocation-free fast path.
        let chunks: &[&[u8]] = &[
            b"a visit to purdue univ",
            b"ersity usa was scheduled after the uni",
            b"versity of queensland au talks and uq au ",
            b"purdue university united states then university of wis",
            b"consin madison closed it out ",
        ];
        let mut stream = StreamExtractor::new(&engine, 0.8);
        let mut warm_matches = 0usize;
        for _ in 0..3 {
            warm_matches = 0;
            for chunk in chunks {
                warm_matches += stream.feed(&engine, &tok, &mut int, chunk).len();
            }
            warm_matches += stream.finish(&engine, &tok, &mut int).len();
        }
        assert!(warm_matches > 0, "fixture must produce matches for the test to mean anything");
        let before = ALLOCS.load(Ordering::Relaxed);
        let mut steady_matches = 0usize;
        for _ in 0..5 {
            steady_matches = 0;
            for chunk in chunks {
                steady_matches += stream.feed(&engine, &tok, &mut int, chunk).len();
            }
            steady_matches += stream.finish(&engine, &tok, &mut int).len();
        }
        let delta = ALLOCS.load(Ordering::Relaxed) - before;
        assert_eq!(steady_matches, warm_matches, "steady-state rounds must reproduce the warmed-up result");
        assert_eq!(delta, 0, "strategy {strategy} allocated {delta} time(s) across 5 steady-state rounds");
    }
}
