//! Streaming extraction over unbounded text feeds (ROADMAP item 3).
//!
//! [`StreamExtractor`] accepts raw byte chunks of *arbitrary* size — split
//! mid-UTF-8 sequence, mid-token, anywhere — and emits matches
//! incrementally, with results **bit-identical** to running the engine over
//! the whole concatenated document (the chunk-boundary property suite is
//! the oracle). Three layers of carry make that possible:
//!
//! 1. **Byte carry** — an incomplete trailing UTF-8 sequence is held until
//!    the next chunk completes it; truly invalid sequences are replaced
//!    with U+FFFD exactly as `String::from_utf8_lossy` would, so the
//!    decoded stream equals the lossy decoding of the whole input.
//! 2. **Token carry** — a trailing run of word characters is held back
//!    (the next chunk may extend the token). Chunking is per-character
//!    ([`Tokenizer::is_word_char`]), so tokenizing complete chunks yields
//!    the same tokens as tokenizing the whole text.
//! 3. **Window carry** — only the trailing `L_max − 1` tokens are retained,
//!    where `L_max` is the longest admissible window at the stream's τ
//!    (always finite: [`metric_window_bounds`] caps even the Overlap
//!    metric). After `T` total tokens, every window starting at
//!    `p ≤ T − L_max` is fully contained in the tokens seen, so its
//!    matches can never be extended or re-scored by future input: the
//!    *watermark* `W = T − L_max + 1` advances monotonically and each feed
//!    emits exactly the matches whose start lies in `[W_prev, W)` —
//!    exactly once, as early as possible. [`StreamExtractor::finish`]
//!    flushes the held-back tail and emits the remainder.
//!
//! Steady-state feeding is allocation-free: the extractor reuses one
//! [`Document`], one [`ExtractScratch`] and a set of carry buffers that
//! retain their high-water capacity (asserted by the counting-allocator
//! gate `zero_alloc_stream.rs`, mirroring core's `zero_alloc.rs`).

use aeetes_core::{ExtractBackend, ExtractLimits, ExtractScratch};
use aeetes_index::metric_window_bounds;
use aeetes_rules::DerivedId;
use aeetes_sim::Metric;
use aeetes_text::{Document, EntityId, Interner, TokenId, Tokenizer};

/// One match emitted by a stream, in global stream coordinates.
///
/// `start`/`len` are token coordinates over the whole stream (the document
/// a non-streaming engine would have seen); `byte_start`/`byte_end` are
/// byte offsets into the decoded stream, which for valid UTF-8 input equal
/// offsets into the fed bytes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamMatch {
    /// The origin entity from the dictionary.
    pub entity: EntityId,
    /// Global token start position.
    pub start: u64,
    /// Match length in tokens.
    pub len: u32,
    /// The exact similarity score.
    pub score: f64,
    /// The derived variant achieving the maximum.
    pub best_variant: DerivedId,
    /// Byte offset of the first matched token in the decoded stream.
    pub byte_start: u64,
    /// Byte offset one past the last matched token in the decoded stream.
    pub byte_end: u64,
}

/// Incremental extraction state over one logical document fed as chunks.
///
/// The extractor does not own the engine: [`StreamExtractor::feed`] and
/// [`StreamExtractor::finish`] take the backend (and tokenizer/interner)
/// per call, so a server can pin an engine generation per stream without
/// creating reference cycles. A `finish` resets positional state, making
/// the same extractor (and its warmed buffers) reusable for the next
/// document on the same stream.
#[derive(Debug)]
pub struct StreamExtractor {
    tau: f64,
    metric: Metric,
    /// Longest admissible window at `tau`; `None` for an empty dictionary
    /// (nothing can ever match — tokens are discarded as they settle).
    lmax: Option<usize>,

    /// Undecoded suffix bytes (an incomplete UTF-8 sequence, ≤ 3 bytes in
    /// steady state).
    pending_bytes: Vec<u8>,
    /// Decoded but not yet tokenized text: the held-back trailing word run.
    carry_text: String,
    /// Global decoded-byte offset of `carry_text[0]`.
    text_base: u64,

    /// Retained trailing tokens, starting at global token index `base`.
    tail: Vec<TokenId>,
    /// Global decoded-byte span of each tail token, parallel to `tail`.
    tail_spans: Vec<(u64, u64)>,
    /// Global token index of `tail[0]` — also the emission watermark:
    /// every match starting before it has already been emitted.
    base: u64,

    ids_buf: Vec<TokenId>,
    spans_buf: Vec<(u32, u32)>,
    doc: Document,
    scratch: ExtractScratch,
    out: Vec<StreamMatch>,

    chunks: u64,
    tokens_seen: u64,
    emitted: u64,
}

impl StreamExtractor {
    /// Creates a stream at threshold `tau` against `backend`'s dictionary.
    /// The tail retention bound `L_max` is derived once, here — a server
    /// that pins the backend per stream keeps it stable across reloads.
    ///
    /// # Panics
    /// Panics when `tau` is not in `(0, 1]`.
    pub fn new(backend: &dyn ExtractBackend, tau: f64) -> Self {
        assert!(tau > 0.0 && tau <= 1.0, "similarity threshold must be in (0, 1], got {tau}");
        let metric = backend.config().metric;
        let lmax = backend
            .set_len_range()
            .and_then(|(lo, hi)| metric_window_bounds(Some(lo), Some(hi), tau, metric))
            .map(|b| b.max);
        StreamExtractor {
            tau,
            metric,
            lmax,
            pending_bytes: Vec::new(),
            carry_text: String::new(),
            text_base: 0,
            tail: Vec::new(),
            tail_spans: Vec::new(),
            base: 0,
            ids_buf: Vec::new(),
            spans_buf: Vec::new(),
            doc: Document::default(),
            scratch: ExtractScratch::new(),
            out: Vec::new(),
            chunks: 0,
            tokens_seen: 0,
            emitted: 0,
        }
    }

    /// The stream's similarity threshold.
    pub fn tau(&self) -> f64 {
        self.tau
    }

    /// The stream's metric (the backend's configured one, captured at
    /// [`StreamExtractor::new`]).
    pub fn metric(&self) -> Metric {
        self.metric
    }

    /// The tail retention bound: windows are settled once `L_max − 1`
    /// further tokens have arrived. `None` for an empty dictionary.
    pub fn max_window_len(&self) -> Option<usize> {
        self.lmax
    }

    /// Tokens currently carried across chunk boundaries.
    pub fn carried_tokens(&self) -> usize {
        self.tail.len()
    }

    /// Bytes currently buffered: undecoded bytes, the held-back word run,
    /// and the byte extent of the carried token tail. This is the number a
    /// server charges against its admission accounting.
    pub fn carried_bytes(&self) -> usize {
        let tail_extent = match (self.tail_spans.first(), self.tail_spans.last()) {
            (Some(first), Some(last)) => (last.1 - first.0) as usize,
            _ => 0,
        };
        self.pending_bytes.len() + self.carry_text.len() + tail_extent
    }

    /// Chunks fed since creation (cumulative across `finish` resets).
    pub fn chunks_fed(&self) -> u64 {
        self.chunks
    }

    /// Tokens decoded since creation (cumulative across `finish` resets).
    pub fn tokens_seen(&self) -> u64 {
        self.tokens_seen
    }

    /// Matches emitted since creation (cumulative across `finish` resets).
    pub fn matches_emitted(&self) -> u64 {
        self.emitted
    }

    /// Feeds one chunk of raw bytes and returns the matches this chunk
    /// settled — each exactly once, in global `(start, len, entity)` order,
    /// bit-identical to what whole-document extraction would report for
    /// them. The slice is valid until the next call.
    pub fn feed<'a>(&'a mut self, backend: &dyn ExtractBackend, tokenizer: &Tokenizer, interner: &mut Interner, chunk: &[u8]) -> &'a [StreamMatch] {
        self.chunks += 1;
        self.pending_bytes.extend_from_slice(chunk);
        self.decode_pending(false);
        self.tokenize_ready(tokenizer, interner, false);
        self.run_extraction(backend, false);
        &self.out
    }

    /// Flushes every carried byte, token and window: decodes the held
    /// suffix (an incomplete final UTF-8 sequence becomes U+FFFD, exactly
    /// as lossy decoding of the whole input would), tokenizes the held-back
    /// word run, and emits all remaining matches. Afterwards the extractor
    /// is reset (global offsets back to zero) and ready for the next
    /// document, keeping its warmed buffers.
    pub fn finish<'a>(&'a mut self, backend: &dyn ExtractBackend, tokenizer: &Tokenizer, interner: &mut Interner) -> &'a [StreamMatch] {
        self.decode_pending(true);
        self.tokenize_ready(tokenizer, interner, true);
        self.run_extraction(backend, true);
        self.base = 0;
        self.text_base = 0;
        &self.out
    }

    /// Decodes the maximal prefix of `pending_bytes` into `carry_text`,
    /// substituting U+FFFD for invalid subparts per the
    /// `String::from_utf8_lossy` algorithm. Without `flush`, a trailing
    /// sequence that is a valid prefix of a longer encoding is held for the
    /// next chunk; with it, the truncated sequence is also substituted.
    fn decode_pending(&mut self, flush: bool) {
        let mut i = 0;
        loop {
            match std::str::from_utf8(&self.pending_bytes[i..]) {
                Ok(s) => {
                    self.carry_text.push_str(s);
                    i = self.pending_bytes.len();
                    break;
                }
                Err(e) => {
                    let valid = e.valid_up_to();
                    // The validated prefix is sound UTF-8 by construction.
                    self.carry_text
                        .push_str(std::str::from_utf8(&self.pending_bytes[i..i + valid]).expect("validated prefix"));
                    i += valid;
                    match e.error_len() {
                        Some(bad) => {
                            self.carry_text.push('\u{FFFD}');
                            i += bad;
                        }
                        None => {
                            if flush {
                                self.carry_text.push('\u{FFFD}');
                                i = self.pending_bytes.len();
                            }
                            break;
                        }
                    }
                }
            }
        }
        self.pending_bytes.drain(..i);
    }

    /// Tokenizes the ready prefix of `carry_text` into the tail. Without
    /// `flush`, the trailing run of word characters is held back — the next
    /// chunk may extend that token; with it, everything is tokenized.
    fn tokenize_ready(&mut self, tokenizer: &Tokenizer, interner: &mut Interner, flush: bool) {
        let cut = if flush {
            self.carry_text.len()
        } else {
            let mut cut = self.carry_text.len();
            for (i, c) in self.carry_text.char_indices().rev() {
                if tokenizer.is_word_char(c) {
                    cut = i;
                } else {
                    break;
                }
            }
            cut
        };
        if cut == 0 {
            return;
        }
        self.ids_buf.clear();
        self.spans_buf.clear();
        tokenizer.tokenize_spanned_into(&self.carry_text[..cut], interner, &mut self.ids_buf, &mut self.spans_buf);
        for (&id, &(s, e)) in self.ids_buf.iter().zip(&self.spans_buf) {
            self.tail.push(id);
            self.tail_spans.push((self.text_base + s as u64, self.text_base + e as u64));
        }
        self.tokens_seen += self.ids_buf.len() as u64;
        self.text_base += cut as u64;
        self.carry_text.drain(..cut);
    }

    /// Extracts over the retained tail and emits the newly settled matches:
    /// those starting before the advanced watermark. The tail then drains
    /// to the watermark, keeping exactly the trailing `L_max − 1` tokens
    /// (everything, on `flush`).
    fn run_extraction(&mut self, backend: &dyn ExtractBackend, flush: bool) {
        self.out.clear();
        let total = self.base + self.tail.len() as u64;
        let Some(lmax) = self.lmax else {
            // Empty dictionary: no window can ever match.
            self.tail.clear();
            self.tail_spans.clear();
            self.base = total;
            return;
        };
        let watermark = if flush {
            total
        } else {
            (total + 1).saturating_sub(lmax as u64).max(self.base)
        };
        if watermark == self.base {
            return; // nothing newly settled; every match would re-surface later
        }
        self.doc.assign_tokens(&self.tail);
        let outcome = backend.extract_scratched(&self.doc, self.tau, &ExtractLimits::UNLIMITED, None, &mut self.scratch);
        let cutoff = (watermark - self.base) as u32;
        for m in outcome.matches {
            if m.span.start >= cutoff {
                break; // sorted by start: the rest is unsettled
            }
            let first = m.span.start as usize;
            let last = m.span.end() - 1;
            self.out.push(StreamMatch {
                entity: m.entity,
                start: self.base + m.span.start as u64,
                len: m.span.len,
                score: m.score,
                best_variant: m.best_variant,
                byte_start: self.tail_spans[first].0,
                byte_end: self.tail_spans[last].1,
            });
        }
        self.emitted += self.out.len() as u64;
        let drop = (watermark - self.base) as usize;
        self.tail.drain(..drop);
        self.tail_spans.drain(..drop);
        self.base = watermark;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aeetes_core::{Aeetes, AeetesConfig, Match};
    use aeetes_rules::RuleSet;
    use aeetes_text::Dictionary;

    fn fixture() -> (Aeetes, Interner, Tokenizer) {
        let mut int = Interner::new();
        let tok = Tokenizer::default();
        let mut dict = Dictionary::new();
        dict.push("purdue university usa", &tok, &mut int);
        dict.push("uq au", &tok, &mut int);
        let mut rules = RuleSet::new();
        rules.push_str("uq", "university of queensland", &tok, &mut int).unwrap();
        rules.push_str("usa", "united states", &tok, &mut int).unwrap();
        let engine = Aeetes::build(dict, &rules, &int, AeetesConfig::default());
        (engine, int, tok)
    }

    fn whole(engine: &Aeetes, tok: &Tokenizer, int: &mut Interner, text: &str, tau: f64) -> Vec<Match> {
        let doc = Document::parse(text, tok, int);
        engine.extract(&doc, tau)
    }

    fn streamed(engine: &Aeetes, tok: &Tokenizer, int: &mut Interner, chunks: &[&[u8]], tau: f64) -> Vec<StreamMatch> {
        let mut s = StreamExtractor::new(engine, tau);
        let mut got = Vec::new();
        for c in chunks {
            got.extend_from_slice(s.feed(engine, tok, int, c));
        }
        got.extend_from_slice(s.finish(engine, tok, int));
        got
    }

    fn assert_same(stream: &[StreamMatch], doc: &[Match]) {
        assert_eq!(stream.len(), doc.len(), "stream {stream:?} vs doc {doc:?}");
        for (s, d) in stream.iter().zip(doc) {
            assert_eq!(s.start, d.span.start as u64);
            assert_eq!(s.len, d.span.len);
            assert_eq!(s.entity, d.entity);
            assert_eq!(s.score, d.score);
            assert_eq!(s.best_variant, d.best_variant);
        }
    }

    #[test]
    fn single_chunk_equals_whole_document() {
        let (engine, mut int, tok) = fixture();
        let text = "she left purdue university usa for uq au last year";
        let expect = whole(&engine, &tok, &mut int.clone(), text, 0.8);
        let got = streamed(&engine, &tok, &mut int, &[text.as_bytes()], 0.8);
        assert_same(&got, &expect);
    }

    #[test]
    fn byte_at_a_time_equals_whole_document() {
        let (engine, mut int, tok) = fixture();
        let text = "purdue university united states then university of queensland australia";
        let expect = whole(&engine, &tok, &mut int.clone(), text, 0.7);
        let chunks: Vec<&[u8]> = text.as_bytes().chunks(1).collect();
        let got = streamed(&engine, &tok, &mut int, &chunks, 0.7);
        assert_same(&got, &expect);
    }

    #[test]
    fn mid_utf8_split_is_carried() {
        let (engine, mut int, tok) = fixture();
        let text = "café uq au café"; // é = 2 bytes
        let expect = whole(&engine, &tok, &mut int.clone(), text, 0.9);
        let bytes = text.as_bytes();
        let got = streamed(&engine, &tok, &mut int, &[&bytes[..4], &bytes[4..]], 0.9);
        assert_same(&got, &expect);
    }

    #[test]
    fn matches_emit_before_finish_once_settled() {
        let (engine, mut int, tok) = fixture();
        let mut s = StreamExtractor::new(&engine, 0.8);
        let lmax = s.max_window_len().expect("nonempty dictionary");
        // Enough trailing filler to push the match past the watermark.
        let filler = " x".repeat(lmax + 2);
        let text = format!("uq au{filler}");
        let early = s.feed(&engine, &tok, &mut int, text.as_bytes()).to_vec();
        assert!(early.iter().any(|m| m.start == 0 && m.len == 2), "settled match must emit without finish: {early:?}");
        let late = s.finish(&engine, &tok, &mut int);
        assert!(late.iter().all(|m| m.start > 0), "no duplicate emission at finish");
    }

    #[test]
    fn byte_offsets_recover_matched_text() {
        let (engine, mut int, tok) = fixture();
        let text = "visit Purdue University USA today";
        let got = streamed(&engine, &tok, &mut int, &[text.as_bytes()], 0.9);
        let m = got.iter().find(|m| m.len == 3).expect("three-token match");
        assert_eq!(&text[m.byte_start as usize..m.byte_end as usize], "Purdue University USA");
    }

    #[test]
    fn finish_resets_for_next_document() {
        let (engine, mut int, tok) = fixture();
        let mut s = StreamExtractor::new(&engine, 0.9);
        for _ in 0..2 {
            let a = s.feed(&engine, &tok, &mut int, b"uq ").to_vec();
            let b = s.feed(&engine, &tok, &mut int, b"au").to_vec();
            let end = s.finish(&engine, &tok, &mut int);
            let all: Vec<_> = a.iter().chain(&b).chain(end).collect();
            assert_eq!(all.len(), 1, "{all:?}");
            assert_eq!(all[0].start, 0, "offsets reset per document");
            assert_eq!(s.carried_tokens(), 0);
            assert_eq!(s.carried_bytes(), 0);
        }
        assert_eq!(s.matches_emitted(), 2);
    }

    #[test]
    fn empty_dictionary_stream_never_matches_or_retains() {
        let int0 = Interner::new();
        let engine = Aeetes::build(Dictionary::new(), &RuleSet::new(), &int0, AeetesConfig::default());
        let tok = Tokenizer::default();
        let mut int = int0.clone();
        let mut s = StreamExtractor::new(&engine, 0.8);
        assert!(s.max_window_len().is_none());
        assert!(s.feed(&engine, &tok, &mut int, b"some words here ").is_empty());
        assert_eq!(s.carried_tokens(), 0, "tokens discarded immediately");
        assert!(s.finish(&engine, &tok, &mut int).is_empty());
    }

    #[test]
    #[should_panic(expected = "similarity threshold")]
    fn zero_tau_panics() {
        let (engine, ..) = fixture();
        let _ = StreamExtractor::new(&engine, 0.0);
    }

    #[test]
    fn invalid_utf8_matches_lossy_whole_document() {
        let (engine, mut int, tok) = fixture();
        let mut bytes = b"uq au ".to_vec();
        bytes.extend_from_slice(&[0xE0, 0x80, 0xFF]); // invalid sequence
        bytes.extend_from_slice(b" uq au");
        let text = String::from_utf8_lossy(&bytes).into_owned();
        let expect = whole(&engine, &tok, &mut int.clone(), &text, 0.9);
        let chunks: Vec<&[u8]> = bytes.chunks(2).collect();
        let got = streamed(&engine, &tok, &mut int, &chunks, 0.9);
        assert_same(&got, &expect);
    }
}
