//! Zero-copy arena substrate for the frozen AEET v5 format.
//!
//! The v5 artifact lays every heavy structure (interner strings, global
//! order, derived dictionary, clustered postings) out as flat little-endian
//! arrays so an engine can memory-map the file and index into it directly.
//! This crate provides the three building blocks the data-structure crates
//! share:
//!
//! - [`FrozenBuf`]: an immutable byte buffer that is either a `mmap`-ed file
//!   (via a minimal `extern "C"` wrapper — dependencies are vendored, so no
//!   libc crate) or an 8-byte-aligned heap copy on platforms/filesystems
//!   where mapping fails. Extraction is bit-identical either way.
//! - [`FrozenSlice<T>`]: a validated, typed window into a `FrozenBuf`.
//!   Construction checks alignment and bounds once; afterwards it derefs to
//!   `&[T]` with zero per-access cost.
//! - [`Arena<T>`]: the storage enum the index structures hold — either an
//!   owned `Vec<T>` (built in memory, the mutable path) or a `FrozenSlice`
//!   (opened from disk, the zero-copy path). Both deref to `&[T]`, so all
//!   read paths are written once against plain slices.
//!
//! Only [`Pod`] types may live in an arena: fixed layout, any bit pattern
//! valid, alignment at most 8 (the buffer's guaranteed alignment).

use std::fmt;
use std::fs::File;
use std::marker::PhantomData;
use std::ops::Deref;
use std::sync::Arc;

/// Marker for types that can be reinterpreted from raw little-endian bytes.
///
/// # Safety
/// Implementors must guarantee: `#[repr(C)]`/`#[repr(transparent)]` layout,
/// every bit pattern is a valid value (padding bytes are never read as
/// typed data), and `align_of::<Self>() <= 8`.
pub unsafe trait Pod: Copy + 'static {}

unsafe impl Pod for u8 {}
unsafe impl Pod for u16 {}
unsafe impl Pod for u32 {}
unsafe impl Pod for u64 {}
unsafe impl Pod for f64 {}

/// An immutable, 8-byte-aligned byte buffer backing frozen slices.
pub enum FrozenBuf {
    /// A `PROT_READ, MAP_PRIVATE` file mapping (unmapped on drop).
    #[cfg(unix)]
    Mmap { ptr: *mut u8, len: usize },
    /// Heap fallback: the file copied into a `Vec<u64>` so the base pointer
    /// is 8-aligned (a `Vec<u8>` only guarantees alignment 1). `len` is the
    /// logical byte length; the last word may be partially used.
    Heap { words: Vec<u64>, len: usize },
}

// The mapping is PROT_READ and owned exclusively by the enum; sharing the
// raw pointer across threads is sound because no one can write through it.
unsafe impl Send for FrozenBuf {}
unsafe impl Sync for FrozenBuf {}

#[cfg(unix)]
mod sys {
    use std::ffi::c_void;
    use std::os::raw::c_int;

    pub const PROT_READ: c_int = 1;
    pub const MAP_PRIVATE: c_int = 2;
    /// Linux: pre-fault the mapping up front. The open path reads every
    /// byte immediately (whole-file CRC), so batching the page-ins beats
    /// taking ~one minor fault per 4 KiB during the checksum scan.
    #[cfg(target_os = "linux")]
    pub const MAP_POPULATE: c_int = 0x8000;

    extern "C" {
        pub fn mmap(addr: *mut c_void, len: usize, prot: c_int, flags: c_int, fd: c_int, offset: i64) -> *mut c_void;
        pub fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }
}

impl FrozenBuf {
    /// Maps `file` read-only. Fails (with the OS error) when the platform
    /// or filesystem refuses the mapping; callers fall back to
    /// [`FrozenBuf::heap_from_bytes`]. Zero-length files use the heap
    /// representation (a zero-length `mmap` is an error on Linux).
    #[cfg(unix)]
    pub fn mmap_file(file: &File) -> std::io::Result<Self> {
        use std::os::unix::io::AsRawFd;
        let len = file.metadata()?.len();
        let len = usize::try_from(len).map_err(|_| std::io::Error::other("file too large to map"))?;
        if len == 0 {
            return Ok(Self::Heap { words: Vec::new(), len: 0 });
        }
        // SAFETY: a fresh PROT_READ/MAP_PRIVATE mapping of `len` bytes; the
        // pointer is checked against MAP_FAILED before use and unmapped in
        // Drop with the same length.
        #[cfg(target_os = "linux")]
        let flags = sys::MAP_PRIVATE | sys::MAP_POPULATE;
        #[cfg(not(target_os = "linux"))]
        let flags = sys::MAP_PRIVATE;
        let ptr = unsafe { sys::mmap(std::ptr::null_mut(), len, sys::PROT_READ, flags, file.as_raw_fd(), 0) };
        if ptr as isize == -1 {
            return Err(std::io::Error::last_os_error());
        }
        Ok(Self::Mmap { ptr: ptr as *mut u8, len })
    }

    #[cfg(not(unix))]
    pub fn mmap_file(_file: &File) -> std::io::Result<Self> {
        Err(std::io::Error::other("mmap unsupported on this platform"))
    }

    /// Copies `bytes` into an 8-aligned heap buffer.
    pub fn heap_from_bytes(bytes: &[u8]) -> Self {
        let n_words = bytes.len().div_ceil(8);
        let mut words = vec![0u64; n_words];
        if !bytes.is_empty() {
            // SAFETY: the destination holds n_words * 8 >= bytes.len() bytes
            // and u64 has no invalid bit patterns.
            unsafe {
                std::ptr::copy_nonoverlapping(bytes.as_ptr(), words.as_mut_ptr() as *mut u8, bytes.len());
            }
        }
        Self::Heap { words, len: bytes.len() }
    }

    /// The buffer contents.
    #[inline]
    pub fn as_bytes(&self) -> &[u8] {
        match self {
            #[cfg(unix)]
            // SAFETY: the mapping is live for `len` bytes until Drop.
            Self::Mmap { ptr, len } => unsafe { std::slice::from_raw_parts(*ptr, *len) },
            Self::Heap { words, len } => {
                // SAFETY: the vec holds at least `len` initialized bytes.
                unsafe { std::slice::from_raw_parts(words.as_ptr() as *const u8, *len) }
            }
        }
    }

    /// Byte length.
    #[inline]
    pub fn len(&self) -> usize {
        match self {
            #[cfg(unix)]
            Self::Mmap { len, .. } => *len,
            Self::Heap { len, .. } => *len,
        }
    }

    /// Whether the buffer is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this buffer is a live file mapping (vs a heap copy).
    pub fn is_mmap(&self) -> bool {
        match self {
            #[cfg(unix)]
            Self::Mmap { .. } => true,
            Self::Heap { .. } => false,
        }
    }
}

impl Drop for FrozenBuf {
    fn drop(&mut self) {
        #[cfg(unix)]
        if let Self::Mmap { ptr, len } = self {
            // SAFETY: pointer and length are exactly what mmap returned.
            unsafe {
                sys::munmap(*ptr as *mut std::ffi::c_void, *len);
            }
        }
    }
}

impl fmt::Debug for FrozenBuf {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("FrozenBuf").field("len", &self.len()).field("mmap", &self.is_mmap()).finish()
    }
}

/// A validated typed window into a shared [`FrozenBuf`].
pub struct FrozenSlice<T: Pod> {
    buf: Arc<FrozenBuf>,
    /// Byte offset of the first element (already validated as aligned).
    off: usize,
    /// Number of `T` elements.
    len: usize,
    _marker: PhantomData<T>,
}

impl<T: Pod> FrozenSlice<T> {
    /// Creates a slice over `byte_len` bytes at `byte_off`, validating
    /// bounds, element-size divisibility and alignment of the concrete
    /// address. Misaligned or out-of-range windows are rejected, never UB.
    pub fn new(buf: Arc<FrozenBuf>, byte_off: usize, byte_len: usize) -> Result<Self, String> {
        let size = std::mem::size_of::<T>();
        assert!(size > 0 && std::mem::align_of::<T>() <= 8, "Pod contract violated");
        let end = byte_off.checked_add(byte_len).ok_or_else(|| "section range overflows".to_string())?;
        if end > buf.len() {
            return Err(format!("section [{byte_off}, {end}) out of file bounds {}", buf.len()));
        }
        if !byte_len.is_multiple_of(size) {
            return Err(format!("section length {byte_len} not a multiple of element size {size}"));
        }
        let addr = buf.as_bytes().as_ptr() as usize + byte_off;
        if !addr.is_multiple_of(std::mem::align_of::<T>()) {
            return Err(format!("section offset {byte_off} misaligned for element alignment {}", std::mem::align_of::<T>()));
        }
        Ok(Self { buf, off: byte_off, len: byte_len / size, _marker: PhantomData })
    }

    /// The backing buffer (for keeping sibling slices on one file alive).
    pub fn buffer(&self) -> &Arc<FrozenBuf> {
        &self.buf
    }
}

impl<T: Pod> Clone for FrozenSlice<T> {
    fn clone(&self) -> Self {
        Self { buf: Arc::clone(&self.buf), off: self.off, len: self.len, _marker: PhantomData }
    }
}

impl<T: Pod> Deref for FrozenSlice<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        // SAFETY: construction validated bounds, divisibility and alignment;
        // Pod guarantees every bit pattern (including padding we never read
        // as typed data) is valid.
        unsafe { std::slice::from_raw_parts(self.buf.as_bytes().as_ptr().add(self.off) as *const T, self.len) }
    }
}

impl<T: Pod + fmt::Debug> fmt::Debug for FrozenSlice<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

/// Storage for one flat array of an index structure: owned while building,
/// frozen (borrowing an mmap or heap file image) after opening from disk.
#[derive(Clone, Debug)]
pub enum Arena<T: Pod> {
    /// Heap-built storage (the mutable build path).
    Owned(Vec<T>),
    /// Zero-copy storage into a frozen artifact.
    Frozen(FrozenSlice<T>),
}

impl<T: Pod> Arena<T> {
    /// An empty owned arena.
    pub const fn new() -> Self {
        Self::Owned(Vec::new())
    }

    /// Mutable access to the owned vector.
    ///
    /// # Panics
    /// Panics when the arena is frozen — build paths only run on owned
    /// storage; update paths copy-on-write into fresh owned arenas first.
    #[inline]
    pub fn as_mut_vec(&mut self) -> &mut Vec<T> {
        match self {
            Self::Owned(v) => v,
            Self::Frozen(_) => panic!("attempted to mutate a frozen arena"),
        }
    }

    /// Copies the contents into a fresh owned `Vec`.
    pub fn to_vec(&self) -> Vec<T> {
        self.as_slice().to_vec()
    }

    /// The contents as a slice.
    #[inline]
    pub fn as_slice(&self) -> &[T] {
        match self {
            Self::Owned(v) => v,
            Self::Frozen(s) => s,
        }
    }

    /// Whether this arena borrows a frozen buffer (zero-copy) rather than
    /// owning heap storage.
    pub fn is_frozen(&self) -> bool {
        matches!(self, Self::Frozen(_))
    }

    /// Heap bytes owned by this arena (0 when frozen — the bytes belong to
    /// the shared file image).
    pub fn owned_bytes(&self) -> usize {
        match self {
            Self::Owned(v) => v.capacity() * std::mem::size_of::<T>(),
            Self::Frozen(_) => 0,
        }
    }
}

impl<T: Pod> Default for Arena<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T: Pod> From<Vec<T>> for Arena<T> {
    fn from(v: Vec<T>) -> Self {
        Self::Owned(v)
    }
}

impl<T: Pod> From<FrozenSlice<T>> for Arena<T> {
    fn from(s: FrozenSlice<T>) -> Self {
        Self::Frozen(s)
    }
}

impl<T: Pod> Deref for Arena<T> {
    type Target = [T];
    #[inline]
    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T: Pod + PartialEq> PartialEq for Arena<T> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Pod + Eq> Eq for Arena<T> {}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Write;

    #[test]
    fn heap_buf_round_trips_bytes() {
        let data: Vec<u8> = (0..37).collect();
        let buf = FrozenBuf::heap_from_bytes(&data);
        assert_eq!(buf.as_bytes(), &data[..]);
        assert_eq!(buf.len(), 37);
        assert!(!buf.is_mmap());
    }

    #[test]
    fn heap_buf_is_8_aligned() {
        let buf = FrozenBuf::heap_from_bytes(&[1, 2, 3]);
        assert_eq!(buf.as_bytes().as_ptr() as usize % 8, 0);
    }

    #[cfg(unix)]
    #[test]
    fn mmap_matches_heap() {
        let mut path = std::env::temp_dir();
        path.push(format!("aeetes-frozen-test-{}", std::process::id()));
        let data: Vec<u8> = (0u32..1000).flat_map(|x| x.to_le_bytes()).collect();
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(&data).unwrap();
        }
        let mapped = FrozenBuf::mmap_file(&File::open(&path).unwrap()).unwrap();
        assert!(mapped.is_mmap());
        assert_eq!(mapped.as_bytes(), &data[..]);
        assert_eq!(mapped.as_bytes().as_ptr() as usize % 8, 0, "page-aligned mapping");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn zero_length_file_maps_to_empty_heap() {
        let mut path = std::env::temp_dir();
        path.push(format!("aeetes-frozen-empty-{}", std::process::id()));
        File::create(&path).unwrap();
        let buf = FrozenBuf::mmap_file(&File::open(&path).unwrap()).unwrap();
        assert!(buf.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn frozen_slice_reads_typed_data() {
        let values: Vec<u32> = vec![7, 11, 13, 17];
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = Arc::new(FrozenBuf::heap_from_bytes(&bytes));
        let s = FrozenSlice::<u32>::new(buf, 0, bytes.len()).unwrap();
        assert_eq!(&*s, &values[..]);
    }

    #[test]
    fn frozen_slice_rejects_bad_windows() {
        let buf = Arc::new(FrozenBuf::heap_from_bytes(&[0u8; 16]));
        assert!(FrozenSlice::<u32>::new(Arc::clone(&buf), 0, 17).is_err(), "out of bounds");
        assert!(FrozenSlice::<u32>::new(Arc::clone(&buf), 0, 6).is_err(), "not element-divisible");
        assert!(FrozenSlice::<u64>::new(Arc::clone(&buf), 4, 8).is_err(), "misaligned");
        assert!(FrozenSlice::<u32>::new(Arc::clone(&buf), usize::MAX, 8).is_err(), "offset overflow");
        assert!(FrozenSlice::<u32>::new(buf, 8, 8).is_ok());
    }

    #[test]
    fn arena_owned_and_frozen_agree() {
        let values: Vec<u64> = vec![1, 2, 3];
        let bytes: Vec<u8> = values.iter().flat_map(|v| v.to_le_bytes()).collect();
        let buf = Arc::new(FrozenBuf::heap_from_bytes(&bytes));
        let frozen: Arena<u64> = FrozenSlice::new(buf, 0, bytes.len()).unwrap().into();
        let owned: Arena<u64> = values.into();
        assert_eq!(owned, frozen);
        assert!(frozen.is_frozen());
        assert!(!owned.is_frozen());
        assert_eq!(frozen.owned_bytes(), 0);
        assert!(owned.owned_bytes() >= 24);
    }

    #[test]
    #[should_panic(expected = "frozen arena")]
    fn frozen_arena_rejects_mutation() {
        let buf = Arc::new(FrozenBuf::heap_from_bytes(&[0u8; 8]));
        let mut a: Arena<u64> = FrozenSlice::new(buf, 0, 8).unwrap().into();
        a.as_mut_vec().push(1);
    }
}
