//! Chaos harness for `aeetes serve` stream mode: spawns the real binary
//! and drives the open/feed/flush/close verbs through every failure path
//! the protocol promises to survive — abrupt client disconnects
//! mid-stream, graceful drain with streams still open, admission-slot
//! exhaustion — asserting the exactly-once contract throughout: every
//! opened stream is answered with exactly one `closed` event, and the
//! server's open-stream and carried-byte accounting returns to zero.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use aeetes_core::{save_engine, Aeetes, AeetesConfig};
use aeetes_rules::RuleSet;
use aeetes_text::{Dictionary, Interner, Tokenizer};

/// Builds a small engine file and returns its path (unique per test).
fn engine_file(tag: &str) -> PathBuf {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for entity in ["Purdue University USA", "UQ AU", "University of Wisconsin Madison"] {
        dict.push(entity, &tokenizer, &mut interner);
    }
    let mut rules = RuleSet::new();
    for (lhs, rhs) in [("uq", "university of queensland"), ("usa", "united states"), ("au", "australia")] {
        rules.push_str(lhs, rhs, &tokenizer, &mut interner).unwrap();
    }
    let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
    let bytes = save_engine(&engine, &interner);
    let path = std::env::temp_dir().join(format!("aeetes-stream-chaos-{}-{tag}.bin", std::process::id()));
    std::fs::write(&path, bytes).expect("write engine file");
    path
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `aeetes serve --listen 127.0.0.1:0 ...` and parses the bound
    /// address from its first stdout line.
    fn spawn(engine: &PathBuf, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_aeetes"))
            .arg("serve")
            .arg("--engine")
            .arg(engine)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn server");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("server stdout"))
            .read_line(&mut line)
            .expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        stream
    }

    /// Sends one request line and returns the one response line.
    fn round_trip(&self, line: &str) -> String {
        let mut stream = self.connect();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "server closed without answering {line:?}");
        resp
    }

    /// Waits (bounded) until the child exits, asserting success.
    fn wait_for_clean_exit(mut self, budget: Duration) {
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "server exited with {status:?}");
                return;
            }
            if start.elapsed() > budget {
                let _ = self.child.kill();
                panic!("server did not drain and exit within {budget:?}");
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// One request line over an existing connection, one response line back.
fn send(stream: &mut TcpStream, reader: &mut BufReader<TcpStream>, line: &str) -> String {
    stream.write_all(line.as_bytes()).unwrap();
    stream.write_all(b"\n").unwrap();
    let mut resp = String::new();
    reader.read_line(&mut resp).expect("read response");
    assert!(!resp.is_empty(), "server closed without answering {line:?}");
    resp
}

fn parse(json: &str) -> serde_json::Value {
    serde_json::from_str(json).unwrap_or_else(|e| panic!("bad JSON response {json:?}: {e}"))
}

fn field_str<'v>(v: &'v serde_json::Value, key: &str) -> &'v str {
    v.get(key).and_then(serde_json::Value::as_str).unwrap_or_else(|| panic!("no string `{key}` in {v}"))
}

/// Finds a numeric field anywhere in the response (stats live nested
/// under a `"stats"` object).
fn field_i64(v: &serde_json::Value, key: &str) -> i64 {
    fn find(v: &serde_json::Value, key: &str) -> Option<f64> {
        if let Some(n) = v.get(key).and_then(serde_json::Value::as_f64) {
            return Some(n);
        }
        v.as_object()?.iter().find_map(|(_, child)| find(child, key))
    }
    find(v, key).unwrap_or_else(|| panic!("no number `{key}` in {v}")) as i64
}

/// Collects the `entity_text` of every match in an event's `matches` array.
fn entity_texts(v: &serde_json::Value) -> Vec<String> {
    v.get("matches")
        .and_then(serde_json::Value::as_array)
        .unwrap_or_else(|| panic!("no matches array in {v}"))
        .iter()
        .map(|m| field_str(m, "entity_text").to_string())
        .collect()
}

/// Reads the value of one counter family out of the inline
/// `{"type":"metrics"}` response (the JSON metric export embedded under
/// `"metrics"` as an array of `{name, value, ...}` rows).
fn metric_value(server: &Server, family: &str) -> u64 {
    let resp = server.round_trip(r#"{"type":"metrics"}"#);
    let v = parse(&resp);
    v.get("metrics")
        .and_then(serde_json::Value::as_array)
        .unwrap_or_else(|| panic!("no metrics array in {resp}"))
        .iter()
        .find(|m| m.get("name").and_then(serde_json::Value::as_str) == Some(family))
        .and_then(|m| m.get("value").and_then(serde_json::Value::as_u64))
        .unwrap_or_else(|| panic!("no `{family}` sample in {resp}"))
}

/// Polls stats until both stream gauges return to zero (accounting from a
/// disconnect settles asynchronously with the reader thread's teardown).
fn wait_for_zero_streams(server: &Server) -> serde_json::Value {
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let stats = parse(&server.round_trip(r#"{"type":"stats"}"#));
        if field_i64(&stats, "streams_open") == 0 && field_i64(&stats, "stream_carried_bytes") == 0 {
            return stats;
        }
        assert!(Instant::now() < deadline, "stream gauges never returned to zero: {stats}");
        std::thread::sleep(Duration::from_millis(100));
    }
}

/// The happy path under awkward chunking: a stream fed mid-token chunks
/// must produce exactly the whole-document matches, settled matches must
/// arrive before the flush, byte offsets must slice the source text, and
/// close-after-close must be a bad request (the event fires exactly once).
#[test]
fn stream_round_trip_equals_whole_document_and_closes_once() {
    let engine = engine_file("roundtrip");
    let server = Server::spawn(&engine, &["--workers", "2", "--drain", "10"]);

    // Whole-document oracle through the plain extract path.
    let doc = "a visit to purdue university usa was planned before uq au term started";
    let oracle = parse(&server.round_trip(&format!(r#"{{"id":"oracle","type":"extract","doc":"{doc}","tau":0.8}}"#)));
    assert_eq!(field_str(&oracle, "status"), "ok");
    let mut expect = entity_texts(&oracle);
    expect.sort();

    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    let opened = parse(&send(&mut conn, &mut reader, r#"{"id":1,"type":"stream","stream":7,"verb":"open","tau":0.8}"#));
    assert_eq!(field_str(&opened, "event"), "opened");

    // Feed in chunks that split tokens: the carry logic must stitch them.
    let mut got: Vec<String> = Vec::new();
    let mut pre_flush = 0usize;
    for chunk in ["a visit to purdue uni", "versity usa was pl", "anned before uq", " au term started"] {
        let resp = parse(&send(&mut conn, &mut reader, &format!(r#"{{"id":2,"type":"stream","stream":7,"verb":"feed","text":"{chunk}"}}"#)));
        assert_eq!(field_str(&resp, "event"), "matches", "{resp}");
        for m in resp.get("matches").and_then(serde_json::Value::as_array).unwrap() {
            // Byte offsets index the decoded stream == the concatenation.
            let (bs, be) = (field_i64(m, "byte_start") as usize, field_i64(m, "byte_end") as usize);
            let sliced = &doc[bs..be];
            assert!(sliced.split_whitespace().count() == field_i64(m, "len") as usize, "span {sliced:?} vs {m}");
            got.push(field_str(m, "entity_text").to_string());
        }
        pre_flush = got.len();
    }
    // The first entity settles long before the end of the document: it must
    // stream out of an intermediate feed, not wait for the flush.
    assert!(pre_flush >= 1, "no match emitted before the flush");

    let flushed = parse(&send(&mut conn, &mut reader, r#"{"id":3,"type":"stream","stream":7,"verb":"flush"}"#));
    assert_eq!(field_str(&flushed, "event"), "flushed", "{flushed}");
    got.extend(entity_texts(&flushed));
    got.sort();
    assert_eq!(got, expect, "streamed matches must equal the whole-document extraction");

    // After a flush the stream is reset and reusable for a new document.
    let resp = parse(&send(&mut conn, &mut reader, r#"{"id":4,"type":"stream","stream":7,"verb":"feed","text":"uq au again"}"#));
    assert_eq!(field_str(&resp, "event"), "matches");
    let closed = parse(&send(&mut conn, &mut reader, r#"{"id":5,"type":"stream","stream":7,"verb":"close"}"#));
    assert_eq!(field_str(&closed, "event"), "closed");
    assert_eq!(field_str(&closed, "reason"), "close");
    assert_eq!(entity_texts(&closed), vec!["UQ AU".to_string()], "the second document's tail flushes on close: {closed}");

    // Exactly once: a second close is a bad request, not a second event.
    let again = send(&mut conn, &mut reader, r#"{"id":6,"type":"stream","stream":7,"verb":"close"}"#);
    assert!(again.contains("bad_request"), "{again}");
    let fed = send(&mut conn, &mut reader, r#"{"id":7,"type":"stream","stream":7,"verb":"feed","text":"x"}"#);
    assert!(fed.contains("bad_request"), "{fed}");

    let stats = wait_for_zero_streams(&server);
    assert_eq!(field_i64(&stats, "queue_depth"), 0, "{stats}");

    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}

/// Abrupt client disconnects mid-stream: every stream opened by the dead
/// connections must be closed server-side exactly once, releasing its
/// admission slot and carried-byte accounting, while streams on surviving
/// connections keep working.
#[test]
fn disconnect_mid_stream_releases_every_slot_exactly_once() {
    let engine = engine_file("disconnect");
    let server = Server::spawn(&engine, &["--workers", "2", "--queue", "64", "--drain", "10"]);

    // Three connections, two streams each, all fed a dangling partial
    // entity so real bytes are carried when the connection dies.
    let conns = 3usize;
    let per_conn = 2usize;
    for c in 0..conns {
        let mut conn = server.connect();
        let mut reader = BufReader::new(conn.try_clone().unwrap());
        for s in 0..per_conn {
            let opened = parse(&send(&mut conn, &mut reader, &format!(r#"{{"id":1,"type":"stream","stream":{s},"verb":"open","tau":0.8}}"#)));
            assert_eq!(field_str(&opened, "event"), "opened", "conn {c} stream {s}");
            let resp = parse(&send(
                &mut conn,
                &mut reader,
                &format!(r#"{{"id":2,"type":"stream","stream":{s},"verb":"feed","text":"visit purdue university"}}"#),
            ));
            assert_eq!(field_str(&resp, "event"), "matches");
            assert!(field_i64(&resp, "carried_tokens") > 0, "the partial entity must be carried: {resp}");
        }
        drop(conn); // hang up with both streams open
    }

    // Accounting must settle back to zero, with opened == closed == 6:
    // one server-side close per opened stream, none dropped or doubled.
    let stats = wait_for_zero_streams(&server);
    assert_eq!(field_i64(&stats, "queue_depth"), 0, "disconnect must release admission slots: {stats}");
    let opened = metric_value(&server, "aeetes_streams_opened_total");
    let closed = metric_value(&server, "aeetes_streams_closed_total");
    assert_eq!(opened, (conns * per_conn) as u64, "opened counter");
    assert_eq!(closed, opened, "every opened stream must be closed exactly once");

    // The server is unharmed: a fresh stream still works end to end.
    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    send(&mut conn, &mut reader, r#"{"id":1,"type":"stream","stream":0,"verb":"open","tau":0.8}"#);
    send(&mut conn, &mut reader, r#"{"id":2,"type":"stream","stream":0,"verb":"feed","text":"uq au it is"}"#);
    let closed = parse(&send(&mut conn, &mut reader, r#"{"id":3,"type":"stream","stream":0,"verb":"close"}"#));
    assert_eq!(field_str(&closed, "event"), "closed");
    assert_eq!(entity_texts(&closed), vec!["UQ AU".to_string()], "{closed}");

    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}

/// Graceful drain with streams still open: the client holds two open
/// streams (one with a pending tail match) and never closes them; a
/// shutdown from another connection must flush and close each exactly
/// once with reason `drain`, then the server exits cleanly.
#[test]
fn drain_flushes_and_closes_open_streams_exactly_once() {
    let engine = engine_file("drain");
    let server = Server::spawn(&engine, &["--workers", "2", "--drain", "15"]);

    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    for s in 0..2 {
        let opened = parse(&send(&mut conn, &mut reader, &format!(r#"{{"id":1,"type":"stream","stream":{s},"verb":"open","tau":0.8}}"#)));
        assert_eq!(field_str(&opened, "event"), "opened");
    }
    // Stream 0 ends on a complete match still inside the retention window:
    // only the drain-time flush can emit it.
    let resp = parse(&send(&mut conn, &mut reader, r#"{"id":2,"type":"stream","stream":0,"verb":"feed","text":"meet at uq au"}"#));
    assert_eq!(field_str(&resp, "event"), "matches");

    // Drain from a second connection while both streams are open. The
    // drain must not deadlock on the held admission slots: the reader
    // notices the drain, drops the connection state, and that closes the
    // streams, releasing the slots the drain is waiting for.
    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");

    // The held connection now receives exactly one closed event per open
    // stream (reason drain, tail matches included), then EOF.
    let mut closed_streams = Vec::new();
    let mut drain_matches = Vec::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break; // EOF: the server hung up after closing everything
        }
        if line.trim().is_empty() {
            continue;
        }
        let v = parse(&line);
        assert_eq!(field_str(&v, "event"), "closed", "only closed events may follow a drain: {line}");
        assert_eq!(field_str(&v, "reason"), "drain", "{line}");
        closed_streams.push(field_i64(&v, "stream"));
        drain_matches.extend(entity_texts(&v));
    }
    closed_streams.sort_unstable();
    assert_eq!(closed_streams, vec![0, 1], "each open stream must get exactly one closed event");
    assert_eq!(drain_matches, vec!["UQ AU".to_string()], "the pending tail must flush during drain");

    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}

/// Open streams hold admission slots: with a one-slot queue a second open
/// sheds, closing the stream readmits, and opening during a drain sheds.
#[test]
fn stream_admission_counts_against_queue_capacity() {
    let engine = engine_file("admission");
    let server = Server::spawn(&engine, &["--workers", "1", "--queue", "1", "--drain", "10"]);

    let mut conn = server.connect();
    let mut reader = BufReader::new(conn.try_clone().unwrap());
    // The admission cap is `--queue` waiting slots plus one running slot
    // per worker: with 1+1 the first two opens fill it.
    for s in 0..2 {
        let opened = parse(&send(&mut conn, &mut reader, &format!(r#"{{"id":1,"type":"stream","stream":{s},"verb":"open","tau":0.8}}"#)));
        assert_eq!(field_str(&opened, "event"), "opened");
    }

    // Both admission slots are held: the next open must shed, and a
    // duplicate id on the same connection is a bad request (not a shed —
    // it never reaches admission).
    let shed = send(&mut conn, &mut reader, r#"{"id":2,"type":"stream","stream":2,"verb":"open","tau":0.8}"#);
    assert!(shed.contains("shedding"), "{shed}");
    let dup = send(&mut conn, &mut reader, r#"{"id":3,"type":"stream","stream":0,"verb":"open","tau":0.8}"#);
    assert!(dup.contains("bad_request"), "{dup}");

    // Closing releases a slot; a new open succeeds.
    let closed = parse(&send(&mut conn, &mut reader, r#"{"id":4,"type":"stream","stream":0,"verb":"close"}"#));
    assert_eq!(field_str(&closed, "event"), "closed");
    let reopened = parse(&send(&mut conn, &mut reader, r#"{"id":5,"type":"stream","stream":2,"verb":"open","tau":0.8}"#));
    assert_eq!(field_str(&reopened, "event"), "opened", "{reopened}");
    for s in [1, 2] {
        let closed = parse(&send(&mut conn, &mut reader, &format!(r#"{{"id":6,"type":"stream","stream":{s},"verb":"close"}}"#)));
        assert_eq!(field_str(&closed, "event"), "closed");
    }

    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}
