//! Chaos harness for `aeetes fleet`: spawns the real coordinator binary
//! over real replica children and drives the failure matrix the cluster
//! was built for — a replica SIGKILLed mid-stream concurrent with a
//! dictionary-delta ship, reloads under sustained load, and full drain —
//! asserting the contract end to end:
//!
//! - every admitted request is answered exactly once (lockstep clients
//!   check each response id, and the coordinator's served/shed/failed
//!   ledger reconciles exactly with what the harness sent);
//! - the fleet converges back to a single generation after a crash that
//!   races a two-phase swap;
//! - the killed replica is respawned, resynced from the delta log, and
//!   serves post-delta entities.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use aeetes_core::{save_engine, Aeetes, AeetesConfig};
use aeetes_rules::RuleSet;
use aeetes_text::{Dictionary, Interner, Tokenizer};
use serde_json::Value;

/// Builds a small engine file and returns its path (unique per test).
fn engine_file(tag: &str) -> PathBuf {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for entity in ["Purdue University USA", "UQ AU", "University of Wisconsin Madison", "Acme Corporation Inc"] {
        dict.push(entity, &tokenizer, &mut interner);
    }
    let mut rules = RuleSet::new();
    for (lhs, rhs) in [("uq", "university of queensland"), ("usa", "united states"), ("au", "australia")] {
        rules.push_str(lhs, rhs, &tokenizer, &mut interner).unwrap();
    }
    let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
    let bytes = save_engine(&engine, &interner);
    let path = std::env::temp_dir().join(format!("aeetes-fleet-chaos-{}-{tag}.bin", std::process::id()));
    std::fs::write(&path, bytes).expect("write engine file");
    path
}

struct Fleet {
    child: Child,
    addr: String,
    /// Pids of the initially spawned replicas, from the bring-up banner.
    replica_pids: Vec<u32>,
}

impl Fleet {
    /// Spawns `aeetes fleet --replicas N --listen 127.0.0.1:0 ...` and
    /// parses the replica banners plus the bound address from stdout.
    fn spawn(engine: &PathBuf, n: usize, extra: &[&str]) -> Fleet {
        let mut child = Command::new(env!("CARGO_BIN_EXE_aeetes"))
            .arg("fleet")
            .arg("--engine")
            .arg(engine)
            .args(["--replicas", &n.to_string(), "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fleet");
        let mut reader = BufReader::new(child.stdout.take().expect("fleet stdout"));
        let mut replica_pids = Vec::new();
        let addr = loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read fleet banner");
            assert!(!line.is_empty(), "fleet exited before printing its banner");
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.to_string();
            }
            // "replica N pid P at ADDR"
            if let Some(rest) = line.strip_prefix("replica ") {
                let pid: u32 = rest
                    .split_whitespace()
                    .nth(2)
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_else(|| panic!("bad replica banner {line:?}"));
                replica_pids.push(pid);
            }
        };
        assert_eq!(replica_pids.len(), n, "one banner per replica");
        // Keep draining stdout (respawn banners) so the pipe never fills.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(x) if x > 0) {
                sink.clear();
            }
        });
        Fleet { child, addr, replica_pids }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect fleet");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream
    }

    /// Sends one request line on a fresh connection, returns the response.
    fn round_trip(&self, line: &str) -> Value {
        let mut stream = self.connect();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut resp = String::new();
        BufReader::new(stream).read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "fleet closed without answering {line:?}");
        serde_json::from_str(&resp).unwrap_or_else(|e| panic!("bad response {resp:?}: {e}"))
    }

    fn stats(&self) -> Value {
        let v = self.round_trip(r#"{"type":"stats","id":0}"#);
        v.get("stats").cloned().unwrap_or_else(|| panic!("no stats in {v}"))
    }

    /// Polls stats until `pred` holds, panicking past the deadline.
    fn wait_until(&self, what: &str, budget: Duration, pred: impl Fn(&Value) -> bool) -> Value {
        let deadline = Instant::now() + budget;
        loop {
            let stats = self.stats();
            if pred(&stats) {
                return stats;
            }
            assert!(Instant::now() < deadline, "fleet never reached `{what}` within {budget:?}; last stats: {stats}");
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    fn shutdown_and_wait(mut self, budget: Duration) {
        let v = self.round_trip(r#"{"type":"shutdown","id":0}"#);
        assert_eq!(v.get("status").and_then(Value::as_str), Some("ok"), "shutdown must ack: {v}");
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "fleet exited with {status:?}");
                return;
            }
            if start.elapsed() > budget {
                let _ = self.child.kill();
                panic!("fleet did not drain and exit within {budget:?}");
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

fn status_of(v: &Value) -> &str {
    v.get("status").and_then(Value::as_str).unwrap_or_else(|| panic!("no status in {v}"))
}

/// True when every replica is up and reports `generation`.
fn converged_at(stats: &Value, generation: u64) -> bool {
    let Some(replicas) = stats.get("replicas").and_then(Value::as_array) else {
        return false;
    };
    stats.get("generation").and_then(Value::as_u64) == Some(generation)
        && replicas
            .iter()
            .all(|r| r.get("up").and_then(Value::as_bool) == Some(true) && r.get("generation").and_then(Value::as_u64) == Some(generation))
}

/// One lockstep client: `count` extract requests on a persistent
/// connection, asserting every response echoes the id it sent (a
/// double-delivered answer would surface as a mismatched id on the next
/// read). Returns (ok, shed, failed) as observed client-side.
fn lockstep_client(addr: &str, thread: usize, count: usize, sent: &AtomicU64) -> (u64, u64, u64) {
    let mut stream = TcpStream::connect(addr).expect("client connect");
    stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let (mut ok, mut shed, mut failed) = (0u64, 0u64, 0u64);
    for i in 0..count {
        let id = format!("c{thread}-{i}");
        let line = format!(r#"{{"type":"extract","id":"{id}","doc":"the university of wisconsin madison and acme corporation inc"}}"#);
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        sent.fetch_add(1, Ordering::Relaxed);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("client read");
        assert!(!resp.is_empty(), "fleet closed mid-conversation on request {id}");
        let v: Value = serde_json::from_str(&resp).unwrap_or_else(|e| panic!("bad response {resp:?}: {e}"));
        assert_eq!(
            v.get("id").and_then(Value::as_str),
            Some(id.as_str()),
            "response id must match the request (duplicate or reordered answer): {v}"
        );
        match status_of(&v) {
            "ok" => ok += 1,
            "error" if v.get("code").and_then(Value::as_str) == Some("shedding") => shed += 1,
            _ => failed += 1,
        }
    }
    (ok, shed, failed)
}

/// The headline chaos scenario from the issue: three replicas under
/// sustained load, one SIGKILLed mid-stream *concurrently with* a
/// dictionary-delta ship. Afterwards: exact ledger reconciliation, single
/// converged generation, and the restarted replica serving the delta.
#[test]
fn kill_replica_mid_stream_during_delta_ship() {
    let engine = engine_file("kill-mid-delta");
    let fleet = Fleet::spawn(&engine, 3, &["--request-timeout", "20", "--health-interval", "0.2", "--drain", "10"]);
    let victim = fleet.replica_pids[1];
    let sent = Arc::new(AtomicU64::new(0));

    // Sustained load: 4 lockstep clients, 60 requests each.
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let addr = fleet.addr.clone();
            let sent = Arc::clone(&sent);
            std::thread::spawn(move || lockstep_client(&addr, t, 60, &sent))
        })
        .collect();

    // Mid-stream: ship a delta and SIGKILL the victim at the same moment,
    // from two racing threads.
    while sent.load(Ordering::Relaxed) < 40 {
        std::thread::sleep(Duration::from_millis(5));
    }
    let reload = {
        let addr = fleet.addr.clone();
        std::thread::spawn(move || {
            let mut stream = TcpStream::connect(&addr).expect("reload connect");
            stream.set_read_timeout(Some(Duration::from_secs(60))).unwrap();
            stream.write_all(br#"{"type":"reload","id":"ship","add_entities":["eth zurich"]}"#).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut resp = String::new();
            BufReader::new(stream).read_line(&mut resp).expect("reload read");
            serde_json::from_str(&resp).unwrap_or_else(|e| panic!("bad reload response {resp:?}: {e}"))
        })
    };
    let killer = std::thread::spawn(move || {
        // SAFETY: plain libc kill(2) on a child we spawned.
        unsafe { libc_kill(victim as i32, 9) };
    });
    killer.join().unwrap();
    // The reload is answered exactly once, whatever the race decided: ok
    // (the kill landed outside the two-phase window) or a clean error (a
    // phase lost the victim). Either way the fleet must reconverge below.
    let reload_resp = reload.join().unwrap();
    assert_eq!(reload_resp.get("id").and_then(Value::as_str), Some("ship"));
    let delta_applied = status_of(&reload_resp) == "ok";

    // Every client request answered exactly once, client-side.
    let mut client_ok = 0u64;
    let mut client_shed = 0u64;
    let mut client_failed = 0u64;
    for c in clients {
        let (ok, shed, failed) = c.join().expect("client thread");
        client_ok += ok;
        client_shed += shed;
        client_failed += failed;
    }
    let total = sent.load(Ordering::Relaxed);
    assert_eq!(client_ok + client_shed + client_failed, total, "every request must be answered exactly once");
    assert_eq!(total, 240);
    // With 3 replicas, per-replica failover, and a generous deadline, one
    // crash must not surface to clients as a failure.
    assert_eq!(client_failed, 0, "a single replica crash must be absorbed by failover");

    // The fleet converges: victim respawned, resynced, single generation.
    let target_gen = if delta_applied { 2 } else { 1 };
    let stats = fleet.wait_until("3 replicas up on one generation", Duration::from_secs(20), |s| converged_at(s, target_gen));
    let restarts: u64 = stats
        .get("replicas")
        .and_then(Value::as_array)
        .unwrap()
        .iter()
        .map(|r| r.get("restarts").and_then(Value::as_u64).unwrap_or(0))
        .sum();
    assert!(restarts >= 1, "the killed replica must have been respawned: {stats}");

    // The coordinator's ledger reconciles exactly with what we sent (the
    // reload and stats/health probes are control-plane, not in the ledger).
    assert_eq!(stats.get("served").and_then(Value::as_u64), Some(client_ok), "served ledger");
    assert_eq!(stats.get("shed").and_then(Value::as_u64), Some(client_shed), "shed ledger");
    assert_eq!(stats.get("failed").and_then(Value::as_u64), Some(client_failed), "failed ledger");

    // Ship (another) delta now that the fleet is whole: all 3 must ack,
    // proving the restarted replica rejoined the two-phase protocol.
    let v = fleet.round_trip(r#"{"type":"reload","id":"after","add_entities":["nagoya institute of technology"]}"#);
    assert_eq!(status_of(&v), "ok", "post-recovery reload must succeed: {v}");
    assert_eq!(v.get("replicas_acked").and_then(Value::as_u64), Some(3), "restarted replica must take the swap: {v}");
    let final_gen = v.get("generation").and_then(Value::as_u64).unwrap();
    fleet.wait_until("post-recovery convergence", Duration::from_secs(10), |s| converged_at(s, final_gen));

    // And the fleet serves the post-delta entity — including, eventually,
    // from the restarted replica (route enough to hit every replica).
    for i in 0..6 {
        let v = fleet.round_trip(&format!(r#"{{"type":"extract","id":"probe{i}","doc":"nagoya institute of technology"}}"#));
        assert_eq!(status_of(&v), "ok", "{v}");
        let matched = v.get("matches").and_then(Value::as_array).map(Vec::len).unwrap_or(0);
        assert!(matched >= 1, "post-delta entity must match on every replica: {v}");
    }

    fleet.shutdown_and_wait(Duration::from_secs(20));
}

/// Reload-under-load swap with all three replicas healthy: several deltas
/// shipped while clients stream, each acked 3/3, generation strictly
/// increasing, ledger exact, zero client-visible failures.
#[test]
fn three_replica_reload_under_load_swaps_cleanly() {
    let engine = engine_file("reload-under-load");
    let fleet = Fleet::spawn(&engine, 3, &["--request-timeout", "20", "--drain", "10"]);
    let sent = Arc::new(AtomicU64::new(0));
    let clients: Vec<_> = (0..3)
        .map(|t| {
            let addr = fleet.addr.clone();
            let sent = Arc::clone(&sent);
            std::thread::spawn(move || lockstep_client(&addr, t, 50, &sent))
        })
        .collect();

    let mut generation = 1u64;
    for round in 0..3 {
        while sent.load(Ordering::Relaxed) < (round + 1) * 30 {
            std::thread::sleep(Duration::from_millis(5));
        }
        let v = fleet.round_trip(&format!(r#"{{"type":"reload","id":"r{round}","add_entities":["entity round {round}"]}}"#));
        assert_eq!(status_of(&v), "ok", "reload under load must succeed with a healthy fleet: {v}");
        assert_eq!(v.get("replicas_acked").and_then(Value::as_u64), Some(3), "every replica acks the swap: {v}");
        let g = v.get("generation").and_then(Value::as_u64).unwrap();
        assert_eq!(g, generation + 1, "generations must advance one per delta");
        generation = g;
    }

    let (mut ok, mut shed, mut failed) = (0u64, 0u64, 0u64);
    for c in clients {
        let (o, s, f) = c.join().expect("client thread");
        ok += o;
        shed += s;
        failed += f;
    }
    assert_eq!(ok + shed + failed, sent.load(Ordering::Relaxed));
    assert_eq!(failed, 0, "a healthy fleet must not fail requests during swaps");
    let stats = fleet.wait_until("convergence", Duration::from_secs(10), |s| converged_at(s, generation));
    assert_eq!(stats.get("served").and_then(Value::as_u64), Some(ok));
    assert_eq!(stats.get("shed").and_then(Value::as_u64), Some(shed));
    assert_eq!(stats.get("failed").and_then(Value::as_u64), Some(0));
    // All four pre-delta + three per-round entities are now served.
    let v = fleet.round_trip(r#"{"type":"extract","id":"p","doc":"entity round 2"}"#);
    assert!(v.get("matches").and_then(Value::as_array).map(Vec::len).unwrap_or(0) >= 1, "{v}");
    fleet.shutdown_and_wait(Duration::from_secs(20));
}

/// Fleet control plane basics: health and stats expose generation and
/// draining, direct prepare/activate are the coordinator's business, and
/// drain answers everything before exit.
#[test]
fn fleet_control_plane_and_drain() {
    let engine = engine_file("control");
    let fleet = Fleet::spawn(&engine, 2, &["--drain", "10"]);
    let h = fleet.round_trip(r#"{"type":"health","id":1}"#);
    assert_eq!(status_of(&h), "ok");
    assert_eq!(h.get("generation").and_then(Value::as_u64), Some(1), "{h}");
    assert_eq!(h.get("draining").and_then(Value::as_bool), Some(false), "{h}");
    assert_eq!(h.get("replicas_up").and_then(Value::as_u64), Some(2), "{h}");

    // The two-phase protocol is coordinator-internal; a client cannot
    // split-brain the fleet by activating one replica directly.
    for t in ["prepare", "activate"] {
        let v = fleet.round_trip(&format!(r#"{{"type":"{t}","id":2,"generation":9,"add_entities":["x"]}}"#));
        assert_eq!(status_of(&v), "error", "{v}");
        assert_eq!(v.get("code").and_then(Value::as_str), Some("bad_request"), "{v}");
    }

    let v = fleet.round_trip(r#"{"type":"extract","id":3,"doc":"uq au"}"#);
    assert_eq!(status_of(&v), "ok", "{v}");
    fleet.shutdown_and_wait(Duration::from_secs(20));
}

extern "C" {
    #[link_name = "kill"]
    fn libc_kill(pid: i32, sig: i32) -> i32;
}
