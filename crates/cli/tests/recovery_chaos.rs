//! Crash-recovery chaos suite for `aeetes serve --wal`: SIGKILL the real
//! server binary mid-reload, restart it on the same log, and require the
//! recovered extraction to be *bit-identical* to a fresh-rebuild oracle —
//! a second server that replays the same delta bodies onto the same
//! engine artifact through ordinary reloads.
//!
//! The invariant under test at every crash point: after restart the
//! server's generation `G` satisfies `last acked ≤ G ≤ last sent`, and
//! extraction at `G` equals the oracle at `G` byte-for-byte. Acked deltas
//! are never lost; unacked deltas may survive (they were applied and
//! possibly durable) but must be *whole* — never a torn half-delta.
//!
//! With `--features failpoints` the suite also drives the injected-fault
//! paths via `AEETES_FAILPOINTS` in child processes: process abort at the
//! WAL fsync, crash between the two renames of a compaction, and EIO on
//! an append (which must poison reloads but leave extraction serving).

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use aeetes_core::{save_engine, Aeetes, AeetesConfig};
use aeetes_rules::RuleSet;
use aeetes_text::{Dictionary, Interner, Tokenizer};

/// Builds a small engine file and returns its path (unique per test).
fn engine_file(tag: &str) -> PathBuf {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for entity in ["Purdue University USA", "UQ AU", "University of Wisconsin Madison"] {
        dict.push(entity, &tokenizer, &mut interner);
    }
    let mut rules = RuleSet::new();
    for (lhs, rhs) in [("uq", "university of queensland"), ("usa", "united states")] {
        rules.push_str(lhs, rhs, &tokenizer, &mut interner).unwrap();
    }
    let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
    let bytes = save_engine(&engine, &interner);
    let path = std::env::temp_dir().join(format!("aeetes-recovery-{}-{tag}.bin", std::process::id()));
    std::fs::write(&path, bytes).expect("write engine file");
    path
}

fn wal_file(tag: &str) -> PathBuf {
    std::env::temp_dir().join(format!("aeetes-recovery-{}-{tag}.wal", std::process::id()))
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `aeetes serve --listen 127.0.0.1:0 ...` with optional extra
    /// environment (for `AEETES_FAILPOINTS`) and parses the bound address
    /// from the banner.
    fn spawn(engine: &PathBuf, extra: &[&str], envs: &[(&str, &str)]) -> Server {
        let mut cmd = Command::new(env!("CARGO_BIN_EXE_aeetes"));
        cmd.arg("serve")
            .arg("--engine")
            .arg(engine)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null());
        for (k, v) in envs {
            cmd.env(k, v);
        }
        let mut child = cmd.spawn().expect("spawn server");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("server stdout"))
            .read_line(&mut line)
            .expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        Server { child, addr }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        stream
    }

    /// Sends one request line and returns the one response line.
    fn round_trip(&self, line: &str) -> String {
        let mut stream = self.connect();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "server closed without answering {line:?}");
        resp
    }

    /// SIGKILL — no drain, no atexit, the crash the WAL exists for.
    fn sigkill(&mut self) {
        self.child.kill().expect("kill server");
        self.child.wait().expect("reap server");
    }

    /// Asks for a drain and waits (bounded) for a clean exit.
    fn shutdown(mut self) {
        let bye = self.round_trip(r#"{"type":"shutdown"}"#);
        assert!(bye.contains("\"draining\":true"), "{bye}");
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "server exited with {status:?}");
                return;
            }
            assert!(start.elapsed() < Duration::from_secs(20), "server did not drain and exit in time");
            std::thread::sleep(Duration::from_millis(50));
        }
    }

    /// Waits for the child to die on its own (injected crash), asserting
    /// the abnormal exit the failpoint promised.
    #[cfg_attr(not(feature = "failpoints"), allow(dead_code))]
    fn wait_for_crash(mut self) {
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(!status.success(), "server should have crashed, exited {status:?}");
                return;
            }
            assert!(start.elapsed() < Duration::from_secs(20), "server never hit the injected crash");
            std::thread::sleep(Duration::from_millis(20));
        }
    }
}

fn status_of(json: &str) -> String {
    let v: serde_json::Value = serde_json::from_str(json).unwrap_or_else(|e| panic!("bad JSON response {json:?}: {e}"));
    v.get("status")
        .and_then(serde_json::Value::as_str)
        .unwrap_or_else(|| panic!("no status in {json}"))
        .to_string()
}

fn field_u64(json: &str, key: &str) -> u64 {
    let v: serde_json::Value = serde_json::from_str(json).unwrap_or_else(|e| panic!("bad JSON response {json:?}: {e}"));
    fn find(v: &serde_json::Value, key: &str) -> Option<u64> {
        if let Some(n) = v.get(key).and_then(serde_json::Value::as_u64) {
            return Some(n);
        }
        v.as_object()?.iter().find_map(|(_, child)| find(child, key))
    }
    find(&v, key).unwrap_or_else(|| panic!("no `{key}` in {json}"))
}

/// The i-th delta body (1-based): deterministic, so the oracle can rebuild
/// any prefix. Delta `i` takes the engine from generation `i` to `i + 1`.
fn delta_body(i: u64) -> String {
    format!(r#"{{"type":"reload","id":"d{i}","add_entities":["recovery entity {i}","aux recovery term {i}"]}}"#)
}

/// Probe set covering the base dictionary plus every delta entity up to
/// `max_delta`. Probes past the applied prefix simply match nothing — on
/// both sides of the comparison.
fn probe_requests(max_delta: u64) -> Vec<String> {
    let mut probes = vec![
        r#"{"id":"p-base","type":"extract","doc":"purdue university united states met uq australia","tau":0.6}"#.to_string(),
        r#"{"id":"p-rule","type":"extract","doc":"university of queensland au","tau":0.6}"#.to_string(),
    ];
    for i in 1..=max_delta {
        probes.push(format!(r#"{{"id":"p{i}","type":"extract","doc":"saw recovery entity {i} and aux recovery term {i} today","tau":0.6}}"#));
    }
    probes
}

/// Fresh-rebuild oracle: a brand-new server on the pristine artifact, the
/// first `deltas` bodies replayed as ordinary reloads, then the probe set
/// extracted. Returns the raw response lines.
fn oracle_extractions(engine: &PathBuf, deltas: u64, probes: &[String]) -> Vec<String> {
    let server = Server::spawn(engine, &[], &[]);
    for i in 1..=deltas {
        let resp = server.round_trip(&delta_body(i));
        assert_eq!(status_of(&resp), "ok", "oracle reload {i}: {resp}");
        assert_eq!(field_u64(&resp, "generation"), i + 1, "oracle reload {i}: {resp}");
    }
    let out = probes.iter().map(|p| server.round_trip(p)).collect();
    server.shutdown();
    out
}

fn generation_of(server: &Server) -> u64 {
    field_u64(&server.round_trip(r#"{"type":"stats"}"#), "generation")
}

fn assert_matches_oracle(server: &Server, engine: &PathBuf, generation: u64, max_delta: u64) {
    let probes = probe_requests(max_delta);
    let recovered: Vec<String> = probes.iter().map(|p| server.round_trip(p)).collect();
    let oracle = oracle_extractions(engine, generation - 1, &probes);
    for (probe, (got, want)) in probes.iter().zip(recovered.iter().zip(&oracle)) {
        assert_eq!(got, want, "extraction diverged from the fresh-rebuild oracle on {probe}");
    }
}

/// THE acceptance test: SIGKILL the server while a reload storm is in
/// flight, restart on the same WAL, and require generation and extraction
/// to reconstruct exactly — acked deltas all present, any surviving
/// unacked delta whole, extraction bit-identical to the oracle.
#[test]
fn sigkill_mid_reload_restart_matches_fresh_rebuild_oracle() {
    let engine = engine_file("sigkill");
    let wal = wal_file("sigkill");
    let _ = std::fs::remove_file(&wal);

    let mut server = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);

    // A settled, definitely-acked prefix.
    const SETTLED: u64 = 4;
    for i in 1..=SETTLED {
        let resp = server.round_trip(&delta_body(i));
        assert_eq!(status_of(&resp), "ok", "{resp}");
        assert_eq!(field_u64(&resp, "generation"), i + 1, "{resp}");
    }

    // A reload storm on its own connection; SIGKILL lands somewhere in it.
    const STORM_TOP: u64 = 60;
    let addr = server.addr.clone();
    let storm = std::thread::spawn(move || {
        let mut last_acked = SETTLED;
        let Ok(mut stream) = TcpStream::connect(&addr) else { return last_acked };
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        for i in SETTLED + 1..=STORM_TOP {
            if stream.write_all(delta_body(i).as_bytes()).is_err() || stream.write_all(b"\n").is_err() {
                return last_acked;
            }
            let mut resp = String::new();
            match reader.read_line(&mut resp) {
                Ok(n) if n > 0 => {
                    if resp.contains("\"status\":\"ok\"") {
                        last_acked = i + 1;
                    }
                }
                _ => return last_acked, // the kill landed mid-request
            }
        }
        last_acked
    });
    std::thread::sleep(Duration::from_millis(40));
    server.sigkill();
    let last_acked = storm.join().expect("storm thread");

    // Restart on the same artifact + WAL.
    let revived = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
    let generation = generation_of(&revived);
    assert!(generation >= last_acked, "recovery lost acked deltas: restarted at {generation}, acked through {last_acked}");
    assert!(generation <= STORM_TOP + 1, "recovery invented deltas: restarted at {generation}");
    assert_matches_oracle(&revived, &engine, generation, STORM_TOP);

    // The revived server is not read-only: the next delta in sequence is
    // accepted, logged, and survives another (clean) restart.
    let resp = revived.round_trip(&delta_body(generation));
    assert_eq!(status_of(&resp), "ok", "{resp}");
    assert_eq!(field_u64(&resp, "generation"), generation + 1, "{resp}");
    revived.shutdown();
    let again = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
    assert_eq!(generation_of(&again), generation + 1);
    again.shutdown();

    let _ = std::fs::remove_file(&engine);
    let _ = std::fs::remove_file(&wal);
}

/// A torn tail — garbage appended to the log, as a crash mid-append would
/// leave — is truncated on restart: every acked delta survives, the
/// debris is gone, and the log accepts the next generation.
#[test]
fn torn_wal_tail_is_truncated_and_acked_deltas_survive() {
    let engine = engine_file("torn");
    let wal = wal_file("torn");
    let _ = std::fs::remove_file(&wal);

    let mut server = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
    const ACKED: u64 = 3;
    for i in 1..=ACKED {
        let resp = server.round_trip(&delta_body(i));
        assert_eq!(status_of(&resp), "ok", "{resp}");
    }
    server.sigkill();

    // Crash debris: half a record of garbage at the tail.
    let mut bytes = std::fs::read(&wal).expect("read wal");
    let clean_len = bytes.len();
    bytes.extend_from_slice(&[0xC7; 13]);
    std::fs::write(&wal, &bytes).expect("write torn wal");

    let revived = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
    assert_eq!(generation_of(&revived), ACKED + 1, "exactly the acked deltas must be recovered");
    assert_eq!(std::fs::metadata(&wal).expect("wal meta").len() as usize, clean_len, "torn tail must be physically truncated");
    assert_matches_oracle(&revived, &engine, ACKED + 1, ACKED);
    let resp = revived.round_trip(&delta_body(ACKED + 1));
    assert_eq!(status_of(&resp), "ok", "recovered log must accept the next generation: {resp}");
    revived.shutdown();

    let _ = std::fs::remove_file(&engine);
    let _ = std::fs::remove_file(&wal);
}

/// `aeetes wal inspect` reports the log faithfully and `aeetes wal
/// compact` folds it into the artifact: after compaction the log is empty
/// at the new base and a restart replays nothing — with identical
/// extraction.
#[test]
fn wal_inspect_and_compact_round_trip() {
    let engine = engine_file("compact");
    let wal = wal_file("compact");
    let _ = std::fs::remove_file(&wal);

    let server = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
    const ACKED: u64 = 2;
    for i in 1..=ACKED {
        let resp = server.round_trip(&delta_body(i));
        assert_eq!(status_of(&resp), "ok", "{resp}");
    }
    server.shutdown();

    let inspect = |args: &[&str]| -> String {
        let out = Command::new(env!("CARGO_BIN_EXE_aeetes")).arg("wal").args(args).output().expect("run aeetes wal");
        assert!(out.status.success(), "aeetes wal {args:?} failed: {}", String::from_utf8_lossy(&out.stderr));
        String::from_utf8(out.stdout).expect("utf8 stdout")
    };

    let report = inspect(&["inspect", "--wal", wal.to_str().unwrap(), "--json"]);
    assert_eq!(field_u64(&report, "base_generation"), 1, "{report}");
    assert_eq!(field_u64(&report, "last_generation"), ACKED + 1, "{report}");
    assert_eq!(field_u64(&report, "records"), ACKED, "{report}");
    assert_eq!(field_u64(&report, "torn_bytes_truncated"), 0, "{report}");

    inspect(&["compact", "--wal", wal.to_str().unwrap(), "--engine", engine.to_str().unwrap()]);
    let report = inspect(&["inspect", "--wal", wal.to_str().unwrap(), "--json"]);
    assert_eq!(field_u64(&report, "base_generation"), ACKED + 1, "compacted log must rebase: {report}");
    assert_eq!(field_u64(&report, "records"), 0, "compacted log must be empty: {report}");

    // The compacted artifact + empty log reconstruct the same state.
    let revived = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
    assert_eq!(generation_of(&revived), ACKED + 1);
    let probes = probe_requests(ACKED);
    let recovered: Vec<String> = probes.iter().map(|p| revived.round_trip(p)).collect();
    revived.shutdown();
    // Oracle rebuilds from a *pristine* artifact — recreate it.
    let fresh = engine_file("compact-oracle");
    let oracle = oracle_extractions(&fresh, ACKED, &probes);
    assert_eq!(recovered, oracle, "compacted state must extract identically to the fresh rebuild");

    let _ = std::fs::remove_file(&engine);
    let _ = std::fs::remove_file(&fresh);
    let _ = std::fs::remove_file(&wal);
}

// ---------------------------------------------------------------------
// Coordinator durability: `aeetes fleet --wal`.
// ---------------------------------------------------------------------

struct Fleet {
    child: Child,
    addr: String,
    replica_pids: Vec<u32>,
}

impl Fleet {
    /// Spawns `aeetes fleet --replicas N ...` and parses the replica
    /// banners plus the bound address from stdout.
    fn spawn(engine: &PathBuf, n: usize, extra: &[&str]) -> Fleet {
        let mut child = Command::new(env!("CARGO_BIN_EXE_aeetes"))
            .arg("fleet")
            .arg("--engine")
            .arg(engine)
            .args(["--replicas", &n.to_string(), "--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn fleet");
        let mut reader = BufReader::new(child.stdout.take().expect("fleet stdout"));
        let mut replica_pids = Vec::new();
        let addr = loop {
            let mut line = String::new();
            reader.read_line(&mut line).expect("read fleet banner");
            assert!(!line.is_empty(), "fleet exited before printing its banner");
            let line = line.trim();
            if let Some(rest) = line.strip_prefix("listening on ") {
                break rest.to_string();
            }
            if let Some(rest) = line.strip_prefix("replica ") {
                let pid: u32 = rest
                    .split_whitespace()
                    .nth(2)
                    .and_then(|p| p.parse().ok())
                    .unwrap_or_else(|| panic!("bad replica banner {line:?}"));
                replica_pids.push(pid);
            }
        };
        // Keep draining stdout (respawn banners) so the pipe never fills.
        std::thread::spawn(move || {
            let mut sink = String::new();
            while matches!(reader.read_line(&mut sink), Ok(x) if x > 0) {
                sink.clear();
            }
        });
        Fleet { child, addr, replica_pids }
    }

    fn round_trip(&self, line: &str) -> String {
        let mut stream = TcpStream::connect(&self.addr).expect("connect fleet");
        stream.set_read_timeout(Some(Duration::from_secs(30))).unwrap();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut resp = String::new();
        BufReader::new(stream).read_line(&mut resp).expect("read fleet response");
        assert!(!resp.is_empty(), "fleet closed without answering {line:?}");
        resp
    }

    /// Polls fleet stats until the fleet converges at `generation` with
    /// every replica up.
    fn wait_converged_at(&self, generation: u64, budget: Duration) {
        let deadline = Instant::now() + budget;
        loop {
            let resp = self.round_trip(r#"{"type":"stats","id":0}"#);
            let v: serde_json::Value = serde_json::from_str(&resp).unwrap_or_else(|e| panic!("bad stats {resp:?}: {e}"));
            let stats = v.get("stats").cloned().unwrap_or(serde_json::Value::Null);
            let converged = stats.get("generation").and_then(serde_json::Value::as_u64) == Some(generation)
                && stats.get("replicas").and_then(serde_json::Value::as_array).is_some_and(|rs| {
                    !rs.is_empty()
                        && rs.iter().all(|r| {
                            r.get("up").and_then(serde_json::Value::as_bool) == Some(true)
                                && r.get("generation").and_then(serde_json::Value::as_u64) == Some(generation)
                        })
                });
            if converged {
                return;
            }
            assert!(Instant::now() < deadline, "fleet never converged at generation {generation}; last stats: {resp}");
            std::thread::sleep(Duration::from_millis(100));
        }
    }

    /// SIGKILL the coordinator and reap the replica children it orphans.
    fn sigkill_all(mut self) {
        self.child.kill().expect("kill fleet");
        self.child.wait().expect("reap fleet");
        for pid in &self.replica_pids {
            let _ = Command::new("kill").args(["-9", &pid.to_string()]).status();
        }
    }

    fn shutdown(mut self) {
        let resp = self.round_trip(r#"{"type":"shutdown","id":0}"#);
        assert!(resp.contains("\"status\":\"ok\""), "shutdown must ack: {resp}");
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "fleet exited with {status:?}");
                return;
            }
            assert!(start.elapsed() < Duration::from_secs(20), "fleet did not drain and exit in time");
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// A SIGKILLed coordinator restarted on the same `--wal` restores its
/// generation math from disk and resyncs the (fresh, artifact-generation)
/// replicas it spawns — the shipped delta is served again without any
/// client re-shipping it.
#[test]
fn fleet_coordinator_restart_resyncs_replicas_from_disk() {
    let engine = engine_file("fleet-wal");
    let wal = wal_file("fleet-wal");
    let _ = std::fs::remove_file(&wal);
    let wal_arg = wal.to_str().unwrap().to_string();

    let fleet = Fleet::spawn(&engine, 1, &["--wal", &wal_arg]);
    let resp = fleet.round_trip(r#"{"type":"reload","id":"d1","add_entities":["fleet recovery entity"]}"#);
    assert!(resp.contains("\"status\":\"ok\""), "{resp}");
    let shipped_gen = field_u64(&resp, "generation");
    let probe = r#"{"id":"p","type":"extract","doc":"met the fleet recovery entity downtown","tau":0.6}"#;
    let served = fleet.round_trip(probe);
    assert!(served.contains("fleet recovery entity"), "{served}");
    fleet.sigkill_all();

    // Same artifact, same log: the delta must come back from disk alone.
    let revived = Fleet::spawn(&engine, 1, &["--wal", &wal_arg]);
    revived.wait_converged_at(shipped_gen, Duration::from_secs(20));
    let served = revived.round_trip(probe);
    assert!(served.contains("fleet recovery entity"), "restarted coordinator must resync the delta from its wal: {served}");
    revived.shutdown();

    let _ = std::fs::remove_file(&engine);
    let _ = std::fs::remove_file(&wal);
}

/// Past `--compact-threshold` the coordinator folds its delta log into a
/// fresh engine artifact and rebases the WAL: the log stays bounded, and
/// a restart on the compacted pair still serves every shipped delta.
#[test]
fn fleet_compaction_bounds_the_log_and_survives_restart() {
    let engine = engine_file("fleet-compact");
    let wal = wal_file("fleet-compact");
    let _ = std::fs::remove_file(&wal);
    let wal_arg = wal.to_str().unwrap().to_string();

    let fleet = Fleet::spawn(&engine, 1, &["--wal", &wal_arg, "--compact-threshold", "2"]);
    let mut last_gen = 0;
    for i in 1..=3u64 {
        let resp = fleet.round_trip(&format!(r#"{{"type":"reload","id":"d{i}","add_entities":["bounded log entity {i}"]}}"#));
        assert!(resp.contains("\"status\":\"ok\""), "{resp}");
        last_gen = field_u64(&resp, "generation");
    }
    fleet.shutdown();

    // The threshold was crossed at the second reload: the log must have
    // been rebased past generation 1 and hold fewer records than deltas.
    let out = Command::new(env!("CARGO_BIN_EXE_aeetes"))
        .args(["wal", "inspect", "--wal", &wal_arg, "--json"])
        .output()
        .expect("run aeetes wal inspect");
    assert!(out.status.success(), "wal inspect failed: {}", String::from_utf8_lossy(&out.stderr));
    let report = String::from_utf8(out.stdout).expect("utf8");
    assert!(field_u64(&report, "base_generation") > 1, "compaction must rebase the log: {report}");
    assert!(field_u64(&report, "records") < 3, "compaction must bound the log: {report}");

    // Compacted artifact + rebased log reconstruct the full fleet state.
    let revived = Fleet::spawn(&engine, 1, &["--wal", &wal_arg, "--compact-threshold", "2"]);
    revived.wait_converged_at(last_gen, Duration::from_secs(20));
    for i in 1..=3u64 {
        let served = revived.round_trip(&format!(r#"{{"id":"p{i}","type":"extract","doc":"saw bounded log entity {i} again","tau":0.6}}"#));
        assert!(served.contains(&format!("bounded log entity {i}")), "delta {i} must survive compaction + restart: {served}");
    }
    revived.shutdown();

    let _ = std::fs::remove_file(&engine);
    let _ = std::fs::remove_file(&wal);
}

/// Injected-fault tests: these need the binary built with `--features
/// failpoints` so `AEETES_FAILPOINTS` is honored in the children.
#[cfg(feature = "failpoints")]
mod failpoints {
    use super::*;

    /// Process abort at the WAL fsync of the second reload — after the
    /// delta is applied and written, before the ack. The client sees a
    /// dead connection (no ack); restart recovers generation 2 (acked) or
    /// 3 (the unacked record survived whole) and matches the oracle.
    #[test]
    fn crash_at_wal_fsync_recovers_consistently() {
        let engine = engine_file("fsync-crash");
        let wal = wal_file("fsync-crash");
        let _ = std::fs::remove_file(&wal);

        let server = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[("AEETES_FAILPOINTS", "wal.append.sync=crash@2")]);
        let resp = server.round_trip(&delta_body(1));
        assert_eq!(status_of(&resp), "ok", "{resp}");

        // The second reload dies at the fsync: no response line comes back.
        {
            let mut stream = server.connect();
            stream.write_all(delta_body(2).as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            let mut resp = String::new();
            let n = BufReader::new(stream).read_line(&mut resp).unwrap_or(0);
            assert!(n == 0 || resp.is_empty(), "crashed server must not ack: {resp:?}");
        }
        server.wait_for_crash();

        let revived = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
        let generation = generation_of(&revived);
        assert!(
            generation == 2 || generation == 3,
            "restart must hold the acked delta and at most the whole unacked one, got generation {generation}"
        );
        assert_matches_oracle(&revived, &engine, generation, 2);
        revived.shutdown();

        let _ = std::fs::remove_file(&engine);
        let _ = std::fs::remove_file(&wal);
    }

    /// EIO on the WAL append write: the reload is refused (applied but
    /// unloggable ⇒ error, not ack), further reloads are poisoned, but
    /// extraction keeps serving. A restart on the same log comes back at
    /// the last *logged* generation.
    #[test]
    fn append_error_poisons_reloads_but_extraction_survives() {
        let engine = engine_file("poison");
        let wal = wal_file("poison");
        let _ = std::fs::remove_file(&wal);

        let mut server = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[("AEETES_FAILPOINTS", "wal.append.write=error@2")]);
        let resp = server.round_trip(&delta_body(1));
        assert_eq!(status_of(&resp), "ok", "{resp}");

        let resp = server.round_trip(&delta_body(2));
        assert_eq!(status_of(&resp), "error", "unloggable delta must not be acked: {resp}");

        let resp = server.round_trip(&delta_body(3));
        assert_eq!(status_of(&resp), "error", "later reloads must be refused: {resp}");
        assert!(resp.contains("disabled"), "poisoned-log refusal should say so: {resp}");

        // The data plane is unaffected.
        let probe = server.round_trip(r#"{"id":"p","type":"extract","doc":"saw recovery entity 1 today","tau":0.6}"#);
        assert_eq!(status_of(&probe), "ok", "{probe}");
        assert!(probe.contains("recovery entity 1"), "{probe}");
        server.sigkill();

        let revived = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
        assert_eq!(generation_of(&revived), 2, "only the logged delta may survive");
        assert_matches_oracle(&revived, &engine, 2, 3);
        revived.shutdown();

        let _ = std::fs::remove_file(&engine);
        let _ = std::fs::remove_file(&wal);
    }

    /// Crash points inside `aeetes wal compact`: before the artifact
    /// rename (nothing changed), and between the artifact rename and the
    /// log reset (artifact new, log old — recovery must skip the already
    /// folded records). Both leave a state a restart fully recovers.
    #[test]
    fn compaction_crash_at_each_rename_is_recoverable() {
        let engine = engine_file("compact-crash");
        let wal = wal_file("compact-crash");
        let _ = std::fs::remove_file(&wal);

        let server = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
        const ACKED: u64 = 3;
        for i in 1..=ACKED {
            let resp = server.round_trip(&delta_body(i));
            assert_eq!(status_of(&resp), "ok", "{resp}");
        }
        server.shutdown();
        let engine_before = std::fs::read(&engine).expect("read engine");
        let wal_before = std::fs::read(&wal).expect("read wal");

        let compact_with = |failpoints: &str| -> std::process::Output {
            let mut cmd = Command::new(env!("CARGO_BIN_EXE_aeetes"));
            cmd.args(["wal", "compact", "--wal", wal.to_str().unwrap(), "--engine", engine.to_str().unwrap()]);
            if !failpoints.is_empty() {
                cmd.env("AEETES_FAILPOINTS", failpoints);
            }
            cmd.output().expect("run aeetes wal compact")
        };

        // Crash before the first rename: the compaction evaporates.
        let out = compact_with("durable.rename.before=crash");
        assert!(!out.status.success(), "injected crash must kill the compactor");
        assert_eq!(std::fs::read(&engine).expect("engine"), engine_before, "crashed compaction must not touch the artifact");
        assert_eq!(std::fs::read(&wal).expect("wal"), wal_before, "crashed compaction must not touch the log");

        // Crash between the renames: new artifact, old log. Recovery skips
        // the records the artifact already embeds.
        let out = compact_with("durable.rename.before=crash@2");
        assert!(!out.status.success(), "injected crash must kill the compactor");
        assert_ne!(std::fs::read(&engine).expect("engine"), engine_before, "the artifact rename happened before the crash");
        assert_eq!(std::fs::read(&wal).expect("wal"), wal_before, "the log reset must not have happened yet");

        let revived = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
        assert_eq!(generation_of(&revived), ACKED + 1, "already-folded records must be skipped, not reapplied");
        let probes = probe_requests(ACKED);
        let recovered: Vec<String> = probes.iter().map(|p| revived.round_trip(p)).collect();
        revived.shutdown();
        let fresh = engine_file("compact-crash-oracle");
        let oracle = oracle_extractions(&fresh, ACKED, &probes);
        assert_eq!(recovered, oracle, "half-compacted state must extract identically to the fresh rebuild");

        // A clean compaction finishes the job.
        let out = compact_with("");
        assert!(out.status.success(), "clean compaction failed: {}", String::from_utf8_lossy(&out.stderr));
        let revived = Server::spawn(&engine, &["--wal", wal.to_str().unwrap()], &[]);
        assert_eq!(generation_of(&revived), ACKED + 1);
        revived.shutdown();

        let _ = std::fs::remove_file(&engine);
        let _ = std::fs::remove_file(&fresh);
        let _ = std::fs::remove_file(&wal);
    }
}
