//! Chaos harness for `aeetes serve`: spawns the real binary and fires
//! malformed JSON, truncated lines, oversized documents, pathological τ
//! values, and concurrent connections at it, then checks the server (a)
//! never crashed, (b) still answers well-formed requests correctly, and
//! (c) reports counters that reconcile exactly with what the harness sent.
//!
//! Also exercises overload: with a saturated one-worker/one-slot queue the
//! server must shed promptly with `{"status":"shedding"}`, and a graceful
//! drain must answer every outstanding request before exit.

use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

use aeetes_core::{save_engine, Aeetes, AeetesConfig};
use aeetes_rules::RuleSet;
use aeetes_text::{Dictionary, Interner, Tokenizer};

/// Builds a small engine file and returns its path (unique per test).
fn engine_file(tag: &str) -> PathBuf {
    let mut interner = Interner::new();
    let tokenizer = Tokenizer::default();
    let mut dict = Dictionary::new();
    for entity in ["Purdue University USA", "UQ AU", "University of Wisconsin Madison", "Acme Corporation Inc"] {
        dict.push(entity, &tokenizer, &mut interner);
    }
    let mut rules = RuleSet::new();
    for (lhs, rhs) in [("uq", "university of queensland"), ("usa", "united states"), ("au", "australia")] {
        rules.push_str(lhs, rhs, &tokenizer, &mut interner).unwrap();
    }
    let engine = Aeetes::build(dict, &rules, &interner, AeetesConfig::default());
    let bytes = save_engine(&engine, &interner);
    let path = std::env::temp_dir().join(format!("aeetes-serve-chaos-{}-{tag}.bin", std::process::id()));
    std::fs::write(&path, bytes).expect("write engine file");
    path
}

struct Server {
    child: Child,
    addr: String,
}

impl Server {
    /// Spawns `aeetes serve --listen 127.0.0.1:0 ...` and parses the bound
    /// address from its first stdout line.
    fn spawn(engine: &PathBuf, extra: &[&str]) -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_aeetes"))
            .arg("serve")
            .arg("--engine")
            .arg(engine)
            .args(["--listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn server");
        let mut line = String::new();
        BufReader::new(child.stdout.take().expect("server stdout"))
            .read_line(&mut line)
            .expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        Server { child, addr }
    }

    /// Like [`Server::spawn`] but with `--metrics-listen 127.0.0.1:0`; the
    /// server prints a second banner line with the bound metrics address,
    /// returned alongside the server handle.
    fn spawn_with_metrics(engine: &PathBuf, extra: &[&str]) -> (Server, String) {
        let mut child = Command::new(env!("CARGO_BIN_EXE_aeetes"))
            .arg("serve")
            .arg("--engine")
            .arg(engine)
            .args(["--listen", "127.0.0.1:0", "--metrics-listen", "127.0.0.1:0"])
            .args(extra)
            .stdin(Stdio::null())
            .stdout(Stdio::piped())
            .stderr(Stdio::null())
            .spawn()
            .expect("spawn server");
        let mut reader = BufReader::new(child.stdout.take().expect("server stdout"));
        let mut line = String::new();
        reader.read_line(&mut line).expect("read listen line");
        let addr = line
            .trim()
            .strip_prefix("listening on ")
            .unwrap_or_else(|| panic!("unexpected banner {line:?}"))
            .to_string();
        let mut mline = String::new();
        reader.read_line(&mut mline).expect("read metrics listen line");
        let maddr = mline
            .trim()
            .strip_prefix("metrics listening on ")
            .unwrap_or_else(|| panic!("unexpected metrics banner {mline:?}"))
            .to_string();
        (Server { child, addr }, maddr)
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(&self.addr).expect("connect");
        stream.set_read_timeout(Some(Duration::from_secs(20))).unwrap();
        stream
    }

    /// Sends one request line and returns the one response line.
    fn round_trip(&self, line: &str) -> String {
        let mut stream = self.connect();
        stream.write_all(line.as_bytes()).unwrap();
        stream.write_all(b"\n").unwrap();
        let mut reader = BufReader::new(stream);
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read response");
        assert!(!resp.is_empty(), "server closed without answering {line:?}");
        resp
    }

    /// Waits (bounded) until the child exits, asserting success.
    fn wait_for_clean_exit(mut self, budget: Duration) {
        let start = Instant::now();
        loop {
            if let Some(status) = self.child.try_wait().expect("try_wait") {
                assert!(status.success(), "server exited with {status:?}");
                return;
            }
            if start.elapsed() > budget {
                let _ = self.child.kill();
                panic!("server did not drain and exit within {budget:?}");
            }
            std::thread::sleep(Duration::from_millis(50));
        }
    }
}

/// One HTTP/1.0 GET against the metrics endpoint; returns the status line
/// and the body.
fn http_get(addr: &str, path: &str) -> (String, String) {
    let mut stream = TcpStream::connect(addr).expect("connect metrics endpoint");
    stream.set_read_timeout(Some(Duration::from_secs(10))).unwrap();
    write!(stream, "GET {path} HTTP/1.0\r\n\r\n").unwrap();
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).expect("read http response");
    let (head, body) = raw.split_once("\r\n\r\n").unwrap_or_else(|| panic!("no header/body split in {raw:?}"));
    (head.lines().next().unwrap_or_default().to_string(), body.to_string())
}

fn field_u64(json: &str, key: &str) -> u64 {
    let v = serde_json::from_str(json).unwrap_or_else(|e| panic!("bad JSON response {json:?}: {e}"));
    fn find(v: &serde_json::Value, key: &str) -> Option<u64> {
        if let Some(n) = v.get(key).and_then(serde_json::Value::as_u64) {
            return Some(n);
        }
        v.as_object()?.iter().find_map(|(_, child)| find(child, key))
    }
    find(&v, key).unwrap_or_else(|| panic!("no `{key}` in {json}"))
}

fn status_of(json: &str) -> String {
    let v = serde_json::from_str(json).unwrap_or_else(|e| panic!("bad JSON response {json:?}: {e}"));
    v.get("status")
        .and_then(serde_json::Value::as_str)
        .unwrap_or_else(|| panic!("no status in {json}"))
        .to_string()
}

/// The main chaos storm + soak: every abuse vector at once, then exact
/// counter reconciliation and a correctness probe.
#[test]
fn chaos_storm_survives_and_counters_reconcile() {
    let engine = engine_file("storm");
    let server = Server::spawn(&engine, &["--workers", "2", "--queue", "64", "--max-doc-bytes", "4096", "--drain", "10"]);

    // Every line below that is not blank and not a control request must be
    // answered as exactly one of served/shed/failed.
    let mut countable_sent = 0u64;

    // Phase 1: malformed JSON, wrong shapes, pathological τ, oversized doc.
    let big_doc = "pad ".repeat(2000); // 8000 B > 4096 B ceiling
    let abuse: Vec<String> = vec![
        "not json at all".into(),
        "{\"type\":".into(),
        "{}".into(),
        "[1,2,3]".into(),
        "\"bare string\"".into(),
        "{\"type\":\"explode\"}".into(),
        "{\"type\":\"extract\"}".into(),
        "{\"type\":\"extract\",\"doc\":42}".into(),
        "{\"type\":\"extract\",\"doc\":\"x\",\"tau\":0}".into(),
        "{\"type\":\"extract\",\"doc\":\"x\",\"tau\":-3}".into(),
        "{\"type\":\"extract\",\"doc\":\"x\",\"tau\":17.5}".into(),
        "{\"type\":\"extract\",\"doc\":\"x\",\"tau\":\"NaN\"}".into(),
        "{\"type\":\"extract\",\"doc\":\"x\",\"timeout_ms\":-5}".into(),
        format!("{{\"type\":\"extract\",\"doc\":\"{big_doc}\"}}"),
        "\u{0007}\u{0001}binary soup \\xff".into(),
    ];
    {
        let mut stream = server.connect();
        for line in &abuse {
            stream.write_all(line.as_bytes()).unwrap();
            stream.write_all(b"\n").unwrap();
            countable_sent += 1;
        }
        stream.write_all(b"\n\n").unwrap(); // blank lines: ignored, not counted
        let mut reader = BufReader::new(stream);
        for line in &abuse {
            let mut resp = String::new();
            reader.read_line(&mut resp).unwrap();
            let status = status_of(&resp);
            assert!(status == "error" || status == "shedding", "abuse line {line:?} got {resp:?}");
        }
    }

    // Phase 2: a truncated line — partial JSON, no newline, then hang up.
    {
        let mut stream = server.connect();
        stream.write_all(b"{\"type\":\"extract\",\"doc\":\"cut off mid").unwrap();
        drop(stream);
        countable_sent += 1; // the fragment is processed as a (bad) request
    }

    // Phase 3: an oversized *line* (beyond doc ceiling × 2 + 1 KiB).
    {
        let mut stream = server.connect();
        let huge = vec![b'z'; 64 * 1024];
        stream.write_all(&huge).unwrap();
        stream.write_all(b"\n").unwrap();
        countable_sent += 1;
        let mut resp = String::new();
        BufReader::new(stream).read_line(&mut resp).unwrap();
        assert_eq!(status_of(&resp), "error");
        assert!(resp.contains("too_large"), "{resp}");
    }

    // Phase 4: concurrent well-formed connections (the soak).
    let per_conn = 25u64;
    let conns = 8u64;
    let workers: Vec<_> = (0..conns)
        .map(|c| {
            let mut stream = server.connect();
            std::thread::spawn(move || {
                let mut ok = 0u64;
                for i in 0..per_conn {
                    let line =
                        format!("{{\"id\":\"c{c}-{i}\",\"type\":\"extract\",\"doc\":\"visit purdue university usa and uq au today\",\"tau\":0.8}}\n");
                    stream.write_all(line.as_bytes()).unwrap();
                }
                let mut reader = BufReader::new(stream);
                for _ in 0..per_conn {
                    let mut resp = String::new();
                    reader.read_line(&mut resp).unwrap();
                    let status = status_of(&resp);
                    assert!(status == "ok" || status == "shedding", "unexpected response {resp:?}");
                    if status == "ok" {
                        // Both entities must be found in the fixed document.
                        assert!(resp.contains("Purdue University USA"), "{resp}");
                        assert!(resp.contains("UQ AU"), "{resp}");
                        ok += 1;
                    }
                }
                ok
            })
        })
        .collect();
    let ok_served: u64 = workers.into_iter().map(|h| h.join().expect("conn thread")).sum();
    countable_sent += conns * per_conn;
    assert!(ok_served > 0, "soak must see at least one successful extraction");

    // Phase 5: after all that abuse the server still answers correctly.
    let resp = server.round_trip(r#"{"id":"probe","type":"extract","doc":"uq au rocks","tau":0.9}"#);
    assert_eq!(status_of(&resp), "ok");
    assert!(resp.contains("\"entity_text\":\"UQ AU\""), "{resp}");
    countable_sent += 1;

    // Reconciliation: poll stats until the counters absorb the truncated-
    // line request (its connection closed before the response was written).
    let deadline = Instant::now() + Duration::from_secs(10);
    let last = loop {
        let snapshot = server.round_trip(r#"{"type":"stats"}"#);
        let total = field_u64(&snapshot, "served") + field_u64(&snapshot, "shed") + field_u64(&snapshot, "failed");
        if total == countable_sent {
            break snapshot;
        }
        assert!(Instant::now() < deadline, "counters never reconciled: sent {countable_sent}, stats {snapshot}");
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(field_u64(&last, "served"), ok_served + 1, "served = soak successes + the probe; stats {last}");
    assert_eq!(field_u64(&last, "queue_depth"), 0, "{last}");
    assert_eq!(field_u64(&last, "in_flight"), 0, "{last}");

    // Health then graceful shutdown.
    let health = server.round_trip(r#"{"type":"health"}"#);
    assert_eq!(status_of(&health), "ok");
    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}

/// Overload: one worker, one queue slot, a slow document. Excess requests
/// must shed promptly, and a graceful drain must answer everything that was
/// admitted (every request gets exactly one response) before exit.
#[test]
fn overload_sheds_promptly_and_drain_answers_everything() {
    let engine = engine_file("overload");
    let server = Server::spawn(&engine, &["--workers", "1", "--queue", "1", "--drain", "15"]);

    // ~4400 tokens of dictionary-dense text: slow enough (low τ, dense
    // matches) to pin the single worker while the harness floods the queue.
    let slow_doc = "purdue university usa uq au ".repeat(880);
    let burst = 20usize;
    let mut stream = server.connect();
    let send_started = Instant::now();
    for i in 0..burst {
        let line = format!("{{\"id\":{i},\"type\":\"extract\",\"doc\":\"{slow_doc}\",\"tau\":0.45}}\n");
        stream.write_all(line.as_bytes()).unwrap();
    }
    let sent_in = send_started.elapsed();

    // Shedding responses must come back promptly — while the worker is
    // still grinding through the first document, not after the backlog.
    let mut reader = BufReader::new(stream.try_clone().unwrap());
    let mut first_shed = None;
    let mut statuses = Vec::new();
    for _ in 0..burst {
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("response during overload");
        let status = status_of(&resp);
        if status == "shedding" && first_shed.is_none() {
            first_shed = Some(send_started.elapsed());
        }
        statuses.push(status);
        if statuses.len() >= burst - 2 {
            break; // leave a couple in flight for the drain to finish
        }
    }
    let first_shed = first_shed.expect("a 20-request burst against queue=1/workers=1 must shed");
    assert!(
        first_shed < Duration::from_secs(5),
        "shedding must be prompt (admission-time), got {first_shed:?} (burst sent in {sent_in:?})"
    );

    // Graceful drain: whatever was admitted must still be answered.
    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    let mut rest = String::new();
    reader.read_to_string(&mut rest).expect("drain responses");
    let total_responses = statuses.len() + rest.lines().filter(|l| !l.trim().is_empty()).count();
    assert_eq!(total_responses, burst, "every admitted request must be answered exactly once across the drain");
    for line in rest.lines().filter(|l| !l.trim().is_empty()) {
        let status = status_of(line);
        assert!(status == "ok" || status == "shedding", "drain answered with {line:?}");
    }
    drop(stream);
    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}

/// Hot reload under load: several connections flood extracts while a
/// dictionary delta (add an entity + a rule, tombstone another) lands
/// mid-flood. Every flooded request must be answered exactly once — the
/// generation swap may not drop, duplicate, or fail any of them — and each
/// response must come from a consistent generation: entities present in
/// both generations always match, and the delta becomes fully visible once
/// the reload response returns.
#[test]
fn reload_under_load_answers_every_request_once() {
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    let engine = engine_file("reload");
    // --shards 3 re-partitions the single-segment v2 artifact on load, so
    // the swap exercises real multi-shard rebuilds.
    let server = Server::spawn(&engine, &["--shards", "3", "--workers", "4", "--queue", "256", "--drain", "15"]);

    // Generation 1 sanity: the entity and rule arriving via reload are
    // unknown, the one being tombstoned still matches.
    let mut probes = 0u64;
    let pre = server.round_trip(r#"{"type":"extract","doc":"eth zurich","tau":0.8}"#);
    probes += 1;
    assert_eq!(status_of(&pre), "ok");
    assert!(!pre.contains("ETH Zurich"), "{pre}");
    let pre = server.round_trip(r#"{"type":"extract","doc":"acme corporation inc","tau":0.8}"#);
    probes += 1;
    assert!(pre.contains("Acme Corporation Inc"), "{pre}");

    // Flooders: round-trip extracts until told to stop. The document is
    // dictionary-dense so requests are slow enough that the reload lands
    // while plenty are in flight.
    let stop = Arc::new(AtomicBool::new(false));
    let doc = "purdue university usa uq au eth zurich ".repeat(40);
    let flooders: Vec<_> = (0..4u64)
        .map(|c| {
            let stop = Arc::clone(&stop);
            let mut stream = server.connect();
            let doc = doc.clone();
            std::thread::spawn(move || {
                let mut reader = BufReader::new(stream.try_clone().unwrap());
                let mut sent = 0u64;
                let mut responses = Vec::new();
                while !stop.load(Ordering::Relaxed) || sent == 0 {
                    let line = format!("{{\"id\":\"c{c}-{sent}\",\"type\":\"extract\",\"doc\":\"{doc}\",\"tau\":0.6}}\n");
                    stream.write_all(line.as_bytes()).unwrap();
                    sent += 1;
                    let mut resp = String::new();
                    reader.read_line(&mut resp).expect("flood response");
                    assert!(!resp.is_empty(), "server hung up mid-flood");
                    responses.push(resp);
                }
                (sent, responses)
            })
        })
        .collect();

    // Let the flood build up, then swap generations underneath it.
    std::thread::sleep(Duration::from_millis(300));
    let reload = server.round_trip(concat!(
        r#"{"id":"swap","type":"reload","add_entities":["ETH Zurich"],"remove_entities":[3],"#,
        r#""add_rules":[{"lhs":"eth","rhs":"eidgenossische technische hochschule"}]}"#
    ));
    assert_eq!(status_of(&reload), "ok", "{reload}");
    assert_eq!(field_u64(&reload, "generation"), 2, "{reload}");

    // Keep the flood running briefly across the swap, then stop it.
    std::thread::sleep(Duration::from_millis(300));
    stop.store(true, Ordering::Relaxed);

    let mut flood_sent = 0u64;
    for h in flooders {
        let (sent, responses) = h.join().expect("flooder thread");
        assert_eq!(responses.len() as u64, sent, "every flooded request must be answered exactly once");
        flood_sent += sent;
        for resp in &responses {
            let status = status_of(resp);
            assert!(status == "ok" || status == "shedding", "flood answered with {resp:?}");
            if status == "ok" {
                // Present in both generations: must match no matter which
                // side of the swap served the request.
                assert!(resp.contains("Purdue University USA"), "{resp}");
                assert!(resp.contains("UQ AU"), "{resp}");
            }
        }
    }

    // Generation 2 is fully visible: the new entity matches directly and
    // through its new rule, the tombstoned one is gone.
    let post = server.round_trip(&format!("{{\"type\":\"extract\",\"doc\":\"{doc}\",\"tau\":0.6}}"));
    probes += 1;
    assert_eq!(status_of(&post), "ok");
    assert!(post.contains("ETH Zurich"), "{post}");
    let post = server.round_trip(r#"{"type":"extract","doc":"eidgenossische technische hochschule zurich","tau":0.9}"#);
    probes += 1;
    assert!(post.contains("ETH Zurich"), "new rule must derive post-reload: {post}");
    let post = server.round_trip(r#"{"type":"extract","doc":"acme corporation inc","tau":0.8}"#);
    probes += 1;
    assert!(!post.contains("Acme Corporation Inc"), "tombstoned entity must not match: {post}");

    // Counters reconcile across the swap: nothing dropped, nothing failed,
    // and stats report the new generation with per-shard activity.
    let deadline = Instant::now() + Duration::from_secs(10);
    let stats = loop {
        let snapshot = server.round_trip(r#"{"type":"stats"}"#);
        let total = field_u64(&snapshot, "served") + field_u64(&snapshot, "shed") + field_u64(&snapshot, "failed");
        if total == flood_sent + probes {
            break snapshot;
        }
        assert!(Instant::now() < deadline, "counters never reconciled: sent {}, stats {snapshot}", flood_sent + probes);
        std::thread::sleep(Duration::from_millis(100));
    };
    assert_eq!(field_u64(&stats, "failed"), 0, "{stats}");
    assert_eq!(field_u64(&stats, "generation"), 2, "{stats}");
    assert!(stats.contains("\"shard\":2"), "expected 3 shard stat rows: {stats}");

    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}

/// With fewer than two latency samples a quantile estimate is meaningless,
/// so the stats reply must report `null` — not a misleading `0` — for
/// p50/p99 until the second served request lands.
#[test]
fn stats_latency_quantiles_are_null_until_two_samples() {
    let engine = engine_file("quantiles");
    let server = Server::spawn(&engine, &["--workers", "1"]);

    // Zero samples: both quantiles are null.
    let stats = server.round_trip(r#"{"type":"stats"}"#);
    assert_eq!(field_u64(&stats, "latency_samples"), 0, "{stats}");
    assert!(stats.contains("\"latency_p50_us\":null"), "{stats}");
    assert!(stats.contains("\"latency_p99_us\":null"), "{stats}");

    // One sample: still null. The latency histogram is recorded before the
    // extract response is written, so no polling is needed.
    let resp = server.round_trip(r#"{"id":1,"type":"extract","doc":"uq au visit","tau":0.8}"#);
    assert_eq!(status_of(&resp), "ok");
    let stats = server.round_trip(r#"{"type":"stats"}"#);
    assert_eq!(field_u64(&stats, "latency_samples"), 1, "{stats}");
    assert!(stats.contains("\"latency_p50_us\":null"), "{stats}");
    assert!(stats.contains("\"latency_p99_us\":null"), "{stats}");

    // Two samples: real numbers appear.
    let resp = server.round_trip(r#"{"id":2,"type":"extract","doc":"uq au again","tau":0.8}"#);
    assert_eq!(status_of(&resp), "ok");
    let stats = server.round_trip(r#"{"type":"stats"}"#);
    assert_eq!(field_u64(&stats, "latency_samples"), 2, "{stats}");
    assert!(!stats.contains("\"latency_p50_us\":null"), "{stats}");
    assert!(!stats.contains("\"latency_p99_us\":null"), "{stats}");

    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}

/// The observability surface end to end: the Prometheus scrape exposes the
/// full family catalog, counters advance in lock-step with served traffic,
/// the JSON flavor parses, unknown paths 404, and the inline
/// `{"type":"metrics"}` protocol request mirrors the scrape.
#[test]
fn metrics_endpoints_expose_families_and_track_requests() {
    let engine = engine_file("metrics");
    let (server, maddr) = Server::spawn_with_metrics(&engine, &["--workers", "1"]);

    // Cold scrape: the whole catalog is pre-registered, not lazily created
    // on first use, so dashboards see every family from second zero.
    let (status, body) = http_get(&maddr, "/metrics");
    assert!(status.contains("200"), "{status}");
    let families = body.lines().filter(|l| l.starts_with("# TYPE ")).count();
    assert!(families >= 12, "expected >= 12 metric families, got {families}:\n{body}");
    assert!(body.contains("aeetes_requests_total{outcome=\"served\"} 0"), "{body}");

    // One served extract advances the pipeline counters. Metrics are
    // recorded before the response line is written, so the next scrape
    // must already see them.
    let resp = server.round_trip(r#"{"id":1,"type":"extract","doc":"visit purdue university usa today","tau":0.8}"#);
    assert_eq!(status_of(&resp), "ok");
    assert!(resp.contains("Purdue University USA"), "{resp}");
    let (_, body) = http_get(&maddr, "/metrics");
    assert!(body.contains("aeetes_docs_total 1"), "{body}");
    assert!(body.contains("aeetes_requests_total{outcome=\"served\"} 1"), "{body}");
    assert!(body.contains("aeetes_matches_total 1"), "{body}");
    assert!(body.contains("aeetes_request_duration_seconds_count 1"), "{body}");
    assert!(body.contains("aeetes_shard_served_total{shard=\"0\"} 1"), "{body}");

    // JSON flavor: parses, same counter values.
    let (status, body) = http_get(&maddr, "/metrics.json");
    assert!(status.contains("200"), "{status}");
    let v: serde_json::Value = serde_json::from_str(&body).unwrap_or_else(|e| panic!("bad /metrics.json body: {e}\n{body}"));
    let docs_total = v
        .as_array()
        .expect("json export is an array")
        .iter()
        .find(|m| m.get("name").and_then(serde_json::Value::as_str) == Some("aeetes_docs_total"))
        .unwrap_or_else(|| panic!("no aeetes_docs_total in {body}"));
    assert_eq!(docs_total.get("value").and_then(serde_json::Value::as_u64), Some(1), "{body}");

    // Unknown paths are 404s, not scrapes.
    let (status, _) = http_get(&maddr, "/other");
    assert!(status.contains("404"), "{status}");

    // The inline protocol request embeds the same snapshot.
    let resp = server.round_trip(r#"{"id":7,"type":"metrics"}"#);
    assert_eq!(status_of(&resp), "ok");
    assert!(resp.contains("aeetes_docs_total"), "{resp}");
    assert!(resp.contains("aeetes_stage_duration_seconds"), "{resp}");

    let bye = server.round_trip(r#"{"type":"shutdown"}"#);
    assert!(bye.contains("\"draining\":true"), "{bye}");
    server.wait_for_clean_exit(Duration::from_secs(30));
    let _ = std::fs::remove_file(&engine);
}

/// The stdin/stdout transport: requests piped in, EOF triggers the drain,
/// process exits cleanly with all responses written.
#[test]
fn stdin_mode_serves_and_drains_on_eof() {
    let engine = engine_file("stdin");
    let mut child = Command::new(env!("CARGO_BIN_EXE_aeetes"))
        .arg("serve")
        .arg("--engine")
        .arg(&engine)
        .args(["--workers", "2"])
        .stdin(Stdio::piped())
        .stdout(Stdio::piped())
        .stderr(Stdio::null())
        .spawn()
        .expect("spawn server");
    {
        let mut stdin = child.stdin.take().expect("stdin");
        stdin
            .write_all(
                b"{\"id\":1,\"type\":\"extract\",\"doc\":\"acme corporation inc filed papers\"}\n\
                  garbage line\n\
                  {\"id\":2,\"type\":\"health\"}\n",
            )
            .unwrap();
        // Dropping stdin sends EOF: the server must drain and exit.
    }
    let start = Instant::now();
    let out = child.wait_with_output().expect("server output");
    assert!(out.status.success(), "stdin-mode server exited with {:?}", out.status);
    assert!(start.elapsed() < Duration::from_secs(30), "drain-on-EOF took too long");
    let stdout = String::from_utf8(out.stdout).unwrap();
    let lines: Vec<&str> = stdout.lines().filter(|l| !l.trim().is_empty()).collect();
    assert_eq!(lines.len(), 3, "one response per request: {stdout}");
    assert!(stdout.contains("Acme Corporation Inc") || stdout.contains("acme corporation inc"), "{stdout}");
    assert!(stdout.contains("bad_request"), "{stdout}");
    assert!(stdout.contains("\"health\":\"ok\""), "{stdout}");
    let _ = std::fs::remove_file(&engine);
}

/// A connection that sends nothing is closed once the idle timeout
/// elapses; a connection that keeps talking is not. A partial line does
/// not count as activity (slowloris does not hold a slot open).
#[test]
fn idle_connections_are_closed_and_active_ones_are_not() {
    let engine = engine_file("idle");
    let server = Server::spawn(&engine, &["--idle-timeout", "1"]);

    // Idle: the server must close within the timeout plus slack.
    let idle = server.connect();
    let start = Instant::now();
    let mut buf = String::new();
    let n = BufReader::new(idle).read_line(&mut buf).expect("read on idle conn");
    assert_eq!(n, 0, "idle connection must see EOF, got {buf:?}");
    let waited = start.elapsed();
    assert!(waited >= Duration::from_millis(900), "closed too early: {waited:?}");
    assert!(waited < Duration::from_secs(10), "closed too late: {waited:?}");

    // Slowloris: a byte trickle that never completes a line must not
    // reset the idle clock.
    let mut slow = server.connect();
    let start = Instant::now();
    let mut reader = BufReader::new(slow.try_clone().unwrap());
    let closed = loop {
        if slow.write_all(b"x").is_err() {
            break true; // write failed: server already closed
        }
        let mut buf = String::new();
        match reader.read_line(&mut buf) {
            Ok(0) => break true,
            Ok(_) => break false, // a response to an incomplete line?!
            Err(_) => {}
        }
        if start.elapsed() > Duration::from_secs(10) {
            break false;
        }
        std::thread::sleep(Duration::from_millis(200));
    };
    assert!(closed, "a never-completing line must not hold the connection open");

    // Active: requests spaced under the timeout keep the connection alive
    // well past several idle windows.
    let mut active = server.connect();
    let mut reader = BufReader::new(active.try_clone().unwrap());
    for _ in 0..5 {
        std::thread::sleep(Duration::from_millis(400));
        active.write_all(b"{\"type\":\"health\",\"id\":1}\n").unwrap();
        let mut resp = String::new();
        reader.read_line(&mut resp).expect("read on active conn");
        assert!(resp.contains("\"health\":\"ok\""), "active connection died: {resp:?}");
    }

    server.round_trip(r#"{"type":"shutdown"}"#);
    server.wait_for_clean_exit(Duration::from_secs(20));
    let _ = std::fs::remove_file(&engine);
}

/// Past --max-conns, new connections get one shedding error line and are
/// closed; slots freed by disconnects become usable again.
#[test]
fn connection_cap_sheds_and_recovers() {
    let engine = engine_file("conncap");
    let server = Server::spawn(&engine, &["--max-conns", "2"]);

    let held: Vec<TcpStream> = (0..2).map(|_| server.connect()).collect();
    // Give the acceptor a moment to register both holds.
    std::thread::sleep(Duration::from_millis(200));

    // The third connection is rejected with a parseable shedding line.
    let over = server.connect();
    let mut resp = String::new();
    BufReader::new(over).read_line(&mut resp).expect("read rejection");
    assert!(resp.contains("\"shedding\""), "over-cap connection must be shed: {resp:?}");
    assert!(resp.contains("connection limit"), "{resp:?}");

    // Freeing a slot readmits new connections.
    drop(held);
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let mut conn = server.connect();
        conn.write_all(b"{\"type\":\"health\",\"id\":1}\n").unwrap();
        let mut resp = String::new();
        BufReader::new(conn).read_line(&mut resp).expect("read after release");
        if resp.contains("\"health\":\"ok\"") {
            break;
        }
        assert!(Instant::now() < deadline, "slot never freed: {resp:?}");
        std::thread::sleep(Duration::from_millis(100));
    }

    server.round_trip(r#"{"type":"shutdown"}"#);
    server.wait_for_clean_exit(Duration::from_secs(20));
    let _ = std::fs::remove_file(&engine);
}

/// The two-phase wire protocol on a single replica: prepare parks the next
/// generation without serving it, activate swaps it in, and activating a
/// generation that is not the parked one is a conflict.
#[test]
fn prepare_activate_round_trip_and_conflicts() {
    let engine = engine_file("twophase");
    let server = Server::spawn(&engine, &[]);

    // Nothing prepared: activate is a conflict.
    let premature = server.round_trip(r#"{"type":"activate","id":1,"generation":2}"#);
    assert_eq!(status_of(&premature), "error");
    assert!(premature.contains("\"conflict\""), "{premature}");

    // Prepare generation 2; the entity must NOT serve yet.
    let prepared = server.round_trip(r#"{"type":"prepare","id":2,"add_entities":["eth zurich"]}"#);
    assert_eq!(status_of(&prepared), "ok");
    assert_eq!(field_u64(&prepared, "prepared_generation"), 2, "{prepared}");
    let v = server.round_trip(r#"{"type":"extract","id":3,"doc":"eth zurich","tau":0.8}"#);
    assert!(!v.contains("eth zurich\","), "prepared-but-inactive generation must not serve: {v}");
    let stats = server.round_trip(r#"{"type":"stats","id":4}"#);
    assert_eq!(field_u64(&stats, "pending_generation"), 2, "{stats}");
    assert_eq!(field_u64(&stats, "generation"), 1, "{stats}");

    // Activating the wrong id is a conflict and must not swap.
    let wrong = server.round_trip(r#"{"type":"activate","id":5,"generation":7}"#);
    assert!(wrong.contains("\"conflict\""), "{wrong}");
    assert_eq!(field_u64(&server.round_trip(r#"{"type":"stats","id":6}"#), "generation"), 1);

    // Activating the parked id swaps; the entity serves afterwards.
    let swapped = server.round_trip(r#"{"type":"activate","id":7,"generation":2}"#);
    assert_eq!(status_of(&swapped), "ok");
    assert_eq!(field_u64(&swapped, "generation"), 2, "{swapped}");
    let v = server.round_trip(r#"{"type":"extract","id":8,"doc":"eth zurich","tau":0.8}"#);
    assert!(v.contains("eth zurich"), "activated generation must serve: {v}");
    // Health reports the new generation (the fleet handshake reads it).
    let h = server.round_trip(r#"{"type":"health","id":9}"#);
    assert_eq!(field_u64(&h, "generation"), 2, "{h}");

    server.round_trip(r#"{"type":"shutdown"}"#);
    server.wait_for_clean_exit(Duration::from_secs(20));
    let _ = std::fs::remove_file(&engine);
}
